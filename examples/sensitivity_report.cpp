// Capacity-planning view: how sensitive is the optimized makespan to each
// model parameter, which knob should a platform owner buy down first, and
// what does first-order theory predict vs the exact DP?
//
//   $ ./sensitivity_report [--platform CoastalSSD] [--tasks 30]
#include <iostream>

#include "analysis/first_order.hpp"
#include "chain/patterns.hpp"
#include "core/sensitivity.hpp"
#include "platform/cost_model.hpp"
#include "platform/registry.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace chainckpt;
  util::CliParser cli;
  cli.add_option("platform", "CoastalSSD", "Table I platform name");
  cli.add_option("tasks", "30", "number of tasks");
  cli.add_option("weight", "25000", "total weight (s)");
  cli.add_option("step", "0.1", "relative perturbation");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help_text(
        "sensitivity_report: parameter elasticities of the optimum");
    return 0;
  }

  const auto platform = platform::by_name(cli.get("platform"));
  const auto chain = chain::make_uniform(
      static_cast<std::size_t>(cli.get_int("tasks")),
      cli.get_double("weight"));
  std::cout << "Platform: " << platform.describe() << "\n";
  std::cout << "Workload: " << chain.describe() << "\n\n";

  core::SensitivityOptions options;
  options.relative_step = cli.get_double("step");
  const auto rows = core::parameter_sensitivity(chain, platform, options);
  std::cout << core::render_sensitivity(rows) << '\n';
  std::cout
      << "Elasticity 0.01 means: a 10% increase of that parameter costs "
         "~0.1% expected makespan (after re-optimizing the plan).\n\n";

  const auto fo = analysis::first_order_prediction(platform);
  std::cout << "First-order theory: " << fo.describe() << '\n';
  const platform::CostModel costs(platform);
  const auto dp = core::optimize(core::Algorithm::kADMVstar, chain, costs);
  const double overhead =
      dp.expected_makespan / chain.total_weight() - 1.0;
  std::cout << "Exact DP overhead (incl. final bundle): "
            << overhead * 100.0 << "%\n";
  return 0;
}
