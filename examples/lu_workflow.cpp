// Dense LU/QR-style factorization workflow (the paper's Decrease
// pattern): panel factorizations shrink quadratically as the trailing
// matrix empties, so early tasks dwarf late ones.  Shows how the optimal
// plan front-loads resilience and leaves the cheap tail bare, and
// decomposes where the expected time goes.
//
//   $ ./lu_workflow [--platform Hera] [--panels 50]
#include <iostream>

#include "analysis/breakdown.hpp"
#include "analysis/evaluator.hpp"
#include "chain/patterns.hpp"
#include "core/optimizer.hpp"
#include "plan/render.hpp"
#include "platform/cost_model.hpp"
#include "platform/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace chainckpt;
  util::CliParser cli;
  cli.add_option("platform", "Hera", "Table I platform name");
  cli.add_option("panels", "50", "number of panel steps (tasks)");
  cli.add_option("weight", "25000", "total factorization time (s)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help_text(
        "lu_workflow: resilience for a decreasing-weight factorization");
    return 0;
  }

  const auto n = static_cast<std::size_t>(cli.get_int("panels"));
  const double weight = cli.get_double("weight");
  const auto platform = platform::by_name(cli.get("platform"));
  const platform::CostModel costs(platform);
  const auto chain = chain::make_decrease(n, weight);

  std::cout << "LU factorization: " << n << " panel steps; first panel "
            << chain.weight(1) << "s, last " << chain.weight(n) << "s\n\n";

  const auto result = core::optimize(core::Algorithm::kADMV, chain, costs);
  std::cout << plan::render_figure(result.plan,
                                   "Optimal ADMV plan (" + platform.name +
                                       ", Decrease)")
            << '\n';

  // Where do the mechanisms sit relative to the work distribution?
  std::size_t front = 0, back = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (result.plan.action(i) != plan::Action::kNone) {
      (i <= n / 2 ? front : back) += 1;
    }
  }
  std::cout << "Mechanisms in the first half: " << front
            << ", in the second half: " << back
            << " (the paper's Figure 7 observation).\n\n";

  const analysis::PlanEvaluator evaluator(chain, costs);
  std::cout << analysis::breakdown(evaluator, result.plan).describe()
            << "\n\n";

  // Contrast with a naive equal-spacing policy to quantify the value of
  // weight-aware placement.
  const auto periodic =
      core::optimize(core::Algorithm::kPeriodic, chain, costs);
  util::TextTable table({"policy", "expected makespan (s)", "normalized"});
  table.add_row({"best periodic",
                 util::TextTable::num(periodic.expected_makespan, 1),
                 util::TextTable::num(periodic.expected_makespan / weight,
                                      5)});
  table.add_row({"optimal (ADMV)",
                 util::TextTable::num(result.expected_makespan, 1),
                 util::TextTable::num(result.expected_makespan / weight,
                                      5)});
  std::cout << table.render();
  return 0;
}
