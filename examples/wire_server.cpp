// Wire server: expose a SolverService on the network edge -- the binary
// the CI smoke lane boots and drives with tools/wire_smoke.py.
//
//   $ ./wire_server [--port 7433] [--http-port 7434] [--workers 0]
//                   [--quotas "2:0.001:0.002,5:1.5:3"]
//
// --quotas is a comma-separated list of tenant:rate:burst triples
// (units/second and units; see docs/PROTOCOL.md for quota tuning); any
// tenant not listed is unlimited.  Port 0 picks an ephemeral port; the
// bound ports are printed one per line ("wire 127.0.0.1:7433") so a
// harness can scrape them.  Runs until SIGINT/SIGTERM.
#include <csignal>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "net/http_gateway.hpp"
#include "net/wire_server.hpp"
#include "service/solver_service.hpp"
#include "util/cli.hpp"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

/// "2:0.001:0.002,5:1.5:3" -> per-tenant {rate, burst} quota entries.
std::map<std::uint64_t, chainckpt::net::TenantQuota> parse_quotas(
    const std::string& spec) {
  std::map<std::uint64_t, chainckpt::net::TenantQuota> quotas;
  std::istringstream stream(spec);
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    if (entry.empty()) continue;
    std::istringstream fields(entry);
    std::string tenant, rate, burst;
    if (!std::getline(fields, tenant, ':') ||
        !std::getline(fields, rate, ':') ||
        !std::getline(fields, burst, ':')) {
      throw std::invalid_argument("bad --quotas entry: " + entry);
    }
    chainckpt::net::TenantQuota quota;
    quota.rate_units_per_sec = std::stod(rate);
    quota.burst_units = std::stod(burst);
    quotas[std::stoull(tenant)] = quota;
  }
  return quotas;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace chainckpt;
  util::CliParser cli;
  cli.add_option("port", "7433", "wire protocol TCP port (0 = ephemeral)");
  cli.add_option("http-port", "7434", "HTTP/JSON gateway port (-1 = off)");
  cli.add_option("workers", "0", "solver workers (0 = hardware threads)");
  cli.add_option("quotas", "", "tenant:rate:burst[,tenant:rate:burst...]");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help_text("wire_server: SolverService network edge");
    return 0;
  }

  service::ServiceOptions service_options;
  service_options.workers =
      static_cast<std::size_t>(cli.get_int("workers"));
  service::SolverService svc(service_options);

  net::WireServerOptions wire_options;
  wire_options.port = static_cast<std::uint16_t>(cli.get_int("port"));
  wire_options.tenant_quotas = parse_quotas(cli.get("quotas"));
  net::WireServer server(svc, wire_options);
  server.start();
  std::cout << "wire 127.0.0.1:" << server.port() << std::endl;

  std::unique_ptr<net::HttpGateway> gateway;
  const std::int64_t http_port = cli.get_int("http-port");
  if (http_port >= 0) {
    net::HttpGatewayOptions http_options;
    http_options.port = static_cast<std::uint16_t>(http_port);
    gateway = std::make_unique<net::HttpGateway>(svc, server.governor(),
                                                 http_options);
    gateway->start();
    std::cout << "http 127.0.0.1:" << gateway->port() << std::endl;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  if (gateway) gateway->stop();
  server.stop();
  const net::WireServerStats stats = server.stats();
  std::cout << "served " << stats.frames_received << " frames, "
            << stats.submits_accepted << " submits accepted, "
            << stats.throttled << " throttled, " << stats.backpressured
            << " backpressured" << std::endl;
  return 0;
}
