// End-to-end file workflow: load a task chain from disk, optimize its
// resilience plan, print/diff against the cheaper algorithms, and write
// the plan next to the input.  Demonstrates the intended integration
// path for workflow managers.
//
//   $ ./workflow_file examples/data/genomics_pipeline.chain --platform Hera
#include <fstream>
#include <iostream>

#include "analysis/breakdown.hpp"
#include "analysis/evaluator.hpp"
#include "chain/chain_io.hpp"
#include "core/optimizer.hpp"
#include "plan/plan_diff.hpp"
#include "plan/plan_io.hpp"
#include "plan/render.hpp"
#include "platform/cost_model.hpp"
#include "platform/registry.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace chainckpt;
  util::CliParser cli;
  cli.add_option("platform", "Hera", "Table I platform name");
  cli.add_option("out", "", "path to write the plan to (default: stdout)");
  cli.parse(argc, argv);
  if (cli.help_requested() || cli.positional().empty()) {
    std::cout << cli.help_text(
        "workflow_file <chain-file>: optimize a workflow loaded from disk");
    return cli.help_requested() ? 0 : 1;
  }

  const auto chain = chain::load_chain(cli.positional().front());
  const auto platform = platform::by_name(cli.get("platform"));
  const platform::CostModel costs(platform);
  std::cout << "Loaded " << chain.describe() << " from "
            << cli.positional().front() << "\n";
  for (std::size_t i = 1; i <= chain.size(); ++i) {
    std::cout << "  T" << i << "  " << chain.task(i).name << "  "
              << chain.weight(i) << "s\n";
  }
  std::cout << '\n';

  const auto admv_star =
      core::optimize(core::Algorithm::kADMVstar, chain, costs);
  const auto admv = core::optimize(core::Algorithm::kADMV, chain, costs);
  std::cout << plan::render_figure(admv.plan, "Optimal plan (ADMV)")
            << '\n';
  const analysis::PlanEvaluator evaluator(chain, costs);
  std::cout << analysis::breakdown(evaluator, admv.plan).describe()
            << "\n\n";

  std::cout << "What the partial verifications changed vs ADMV*:\n"
            << plan::diff_plans(admv_star.plan, admv.plan).describe()
            << '\n';

  const std::string out = cli.get("out");
  if (out.empty()) {
    std::cout << "Plan (text format):\n" << plan::to_text(admv.plan);
  } else {
    std::ofstream os(out);
    plan::write_text(os, admv.plan);
    std::cout << "Plan written to " << out << '\n';
  }
  return 0;
}
