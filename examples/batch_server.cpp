// Batch server: drive a mixed multi-chain workload through one
// core::BatchSolver the way a long-lived planning service would -- solve a
// burst, report throughput and cache behavior, release the scratch memory
// between bursts, and show that the next burst reproduces identical plans.
//
//   $ ./batch_server [--waves 4] [--serial]
#include <chrono>
#include <iostream>
#include <vector>

#include "chain/patterns.hpp"
#include "core/batch_solver.hpp"
#include "platform/cost_model.hpp"
#include "platform/registry.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace chainckpt;
  util::CliParser cli;
  cli.add_option("waves", "4", "request waves in the batch");
  cli.add_flag("serial", "solve in order instead of the work-queue");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help_text("batch_server: BatchSolver workload demo");
    return 0;
  }

  // 1. A request: many independent chains of different lengths, weight
  //    patterns, platforms, and algorithms.  Waves repeat the same chain
  //    shapes -- the traffic pattern the coefficient-table cache serves.
  const auto waves = static_cast<std::size_t>(cli.get_int("waves"));
  std::vector<core::BatchJob> jobs;
  for (std::size_t w = 0; w < waves; ++w) {
    for (const auto& p : platform::table1_platforms()) {
      const platform::CostModel costs{p};
      jobs.push_back({core::Algorithm::kADVstar,
                      chain::make_uniform(300, 25000.0), costs});
      jobs.push_back({core::Algorithm::kAD,
                      chain::make_decrease(150, 25000.0), costs});
      jobs.push_back({core::Algorithm::kADMVstar,
                      chain::make_highlow(50, 50000.0), costs});
    }
    jobs.push_back({core::Algorithm::kADMV, chain::make_uniform(30, 25000.0),
                    platform::CostModel{platform::hera()}});
  }
  std::cout << "Batch: " << jobs.size() << " chains over "
            << platform::table1_platforms().size() << " platforms\n\n";

  // 2. Solve the burst through the shared work-queue.
  core::BatchSolver solver{{.parallel = !cli.get_flag("serial")}};
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = solver.solve(jobs);
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  std::cout << "Solved " << results.size() << " chains in " << seconds
            << "s (" << static_cast<double>(results.size()) / seconds
            << " chains/sec)\n";
  std::cout << "Tables built: " << solver.stats().tables_built
            << ", reused: " << solver.stats().tables_reused
            << ", resident: " << solver.resident_bytes() / (1024.0 * 1024.0)
            << " MiB\n\n";

  // 3. Between bursts, a server gives the grow-only scratch back.
  const std::size_t freed = solver.release_scratch();
  std::cout << "release_scratch() freed " << freed / (1024.0 * 1024.0)
            << " MiB\n";

  // 4. The next burst rebuilds on demand -- and reproduces every plan.
  const auto again = solver.solve(jobs);
  bool identical = true;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    identical = identical &&
                again[i].expected_makespan == results[i].expected_makespan &&
                again[i].plan == results[i].plan;
  }
  std::cout << "Re-solve after release: "
            << (identical ? "identical plans and objectives"
                          : "MISMATCH (bug!)")
            << '\n';
  return identical ? 0 : 1;
}
