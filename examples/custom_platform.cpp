// Bring-your-own-platform: define error rates and resilience costs on the
// command line -- including the per-task checkpoint-cost extension, where
// the checkpoint size follows each task's output volume instead of being
// uniform.  Demonstrates the CostModel API beyond the Table I presets.
//
//   $ ./custom_platform --lambda_f 1e-6 --lambda_s 5e-6 --cd 400 --cm 12
//   $ ./custom_platform --tasks 30 --growing-state
#include <iostream>
#include <vector>

#include "chain/patterns.hpp"
#include "core/optimizer.hpp"
#include "plan/render.hpp"
#include "platform/cost_model.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace chainckpt;
  util::CliParser cli;
  cli.add_option("lambda_f", "9.46e-7", "fail-stop error rate (/s)");
  cli.add_option("lambda_s", "3.38e-6", "silent error rate (/s)");
  cli.add_option("cd", "300", "disk checkpoint cost (s)");
  cli.add_option("cm", "15.4", "memory checkpoint cost (s)");
  cli.add_option("recall", "0.8", "partial verification recall");
  cli.add_option("tasks", "30", "number of tasks");
  cli.add_option("weight", "25000", "total weight (s)");
  cli.add_flag("growing-state",
               "scale checkpoint/verification costs linearly with task "
               "position (simulates a growing live data set)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help_text("custom_platform: user-defined cost model");
    return 0;
  }

  platform::Platform p = platform::make_paper_platform(
      "Custom", 0, cli.get_double("lambda_f"), cli.get_double("lambda_s"),
      cli.get_double("cd"), cli.get_double("cm"));
  p.recall = cli.get_double("recall");
  p.validate();

  const auto n = static_cast<std::size_t>(cli.get_int("tasks"));
  const auto chain = chain::make_uniform(n, cli.get_double("weight"));

  std::cout << "Platform: " << p.describe() << "\n\n";

  // Uniform-cost model vs position-scaled model.
  const platform::CostModel uniform(p);
  std::vector<platform::CostModel> models{uniform};
  std::vector<std::string> labels{"uniform costs"};
  if (cli.get_flag("growing-state")) {
    // Cost of saving/verifying after task i grows with i: by the end the
    // application holds ~2x the initial state.
    std::vector<double> cd(n), cm(n), vg(n), vp(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double scale =
          1.0 + static_cast<double>(i) / static_cast<double>(n);
      cd[i] = p.c_disk * scale;
      cm[i] = p.c_mem * scale;
      vg[i] = p.v_guaranteed * scale;
      vp[i] = p.v_partial * scale;
    }
    models.emplace_back(p, cd, cm, vg, vp);
    labels.emplace_back("growing-state costs");
  }

  util::TextTable table({"cost model", "algorithm",
                         "expected makespan (s)", "#D", "#M", "#V*", "#V"});
  for (std::size_t m = 0; m < models.size(); ++m) {
    for (core::Algorithm a :
         {core::Algorithm::kADMVstar, core::Algorithm::kADMV}) {
      const auto result = core::optimize(a, chain, models[m]);
      const auto c = result.plan.interior_counts();
      table.add_row({labels[m], core::to_string(a),
                     util::TextTable::num(result.expected_makespan, 1),
                     std::to_string(c.disk), std::to_string(c.memory),
                     std::to_string(c.guaranteed),
                     std::to_string(c.partial)});
      if (m + 1 == models.size() && a == core::Algorithm::kADMV) {
        std::cout << plan::render_figure(result.plan,
                                         "ADMV plan under " + labels[m])
                  << '\n';
      }
    }
  }
  std::cout << table.render();
  return 0;
}
