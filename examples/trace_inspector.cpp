// Watch the simulator execute a plan event by event: error injections,
// detections, misses, rollbacks, checkpoints.  Useful for understanding
// the execution model of the paper (Section II) and for debugging custom
// plans.  Scans replicas until it finds an eventful one.
//
//   $ ./trace_inspector [--platform Hera] [--tasks 10] [--seed 1]
//                       [--rate-boost 50]  (options combine freely)
#include <iostream>

#include "chain/patterns.hpp"
#include "core/optimizer.hpp"
#include "plan/render.hpp"
#include "platform/cost_model.hpp"
#include "platform/registry.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace chainckpt;
  util::CliParser cli;
  cli.add_option("platform", "Hera", "Table I platform name");
  cli.add_option("tasks", "10", "number of tasks");
  cli.add_option("seed", "1", "master seed");
  cli.add_option("rate-boost", "50",
                 "error-rate multiplier (makes traces eventful)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help_text("trace_inspector: event-level MC replay");
    return 0;
  }

  platform::Platform p = platform::by_name(cli.get("platform"));
  const double boost = cli.get_double("rate-boost");
  p.lambda_f *= boost;
  p.lambda_s *= boost;
  const platform::CostModel costs(p);
  const auto n = static_cast<std::size_t>(cli.get_int("tasks"));
  const auto chain = chain::make_uniform(n, 25000.0);

  const auto result = core::optimize(core::Algorithm::kADMV, chain, costs);
  std::cout << plan::render_figure(result.plan,
                                   "Plan under inspection (" + p.name +
                                       " x" + cli.get("rate-boost") + ")")
            << '\n';

  const sim::Simulator simulator(chain, costs);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  for (std::uint64_t replica = 0; replica < 1000; ++replica) {
    sim::TraceRecorder trace;
    const auto stats =
        simulator.run_seeded(result.plan, seed, replica, &trace);
    const bool eventful = stats.fail_stop_errors > 0 &&
                          stats.silent_corruptions > 0;
    if (!eventful && replica + 1 < 1000) continue;

    std::cout << "Replica " << replica << " (seed " << seed
              << "): makespan " << stats.makespan << "s, "
              << stats.fail_stop_errors << " fail-stop, "
              << stats.silent_corruptions << " silent, "
              << stats.partial_misses << " partial misses, "
              << stats.memory_recoveries << " memory recoveries, "
              << stats.disk_recoveries << " disk recoveries\n\n";
    std::cout << trace.render();
    break;
  }
  return 0;
}
