// Solver service: drive a mixed workload through the async
// service::SolverService the way a long-lived planning daemon would --
// submit a burst of priced jobs, poll and wait on handles, cancel one,
// let a deadline expire, watch the LRU cache budget evict tables, and
// prove the async results are bit-identical to a synchronous
// core::BatchSolver run of the same jobs.
//
//   $ ./solver_service [--jobs 24] [--budget-mib 8]
//
// The submit/solve/verify skeleton below is the compile-checked source of
// the quickstart snippet in docs/SERVER.md.
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "chain/patterns.hpp"
#include "core/batch_solver.hpp"
#include "platform/cost_model.hpp"
#include "platform/registry.hpp"
#include "service/solver_service.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace chainckpt;
  util::CliParser cli;
  cli.add_option("jobs", "24", "jobs in the burst");
  cli.add_option("budget-mib", "8", "LRU table-cache budget (MiB)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help_text("solver_service: async SolverService demo");
    return 0;
  }
  const auto burst = static_cast<std::size_t>(cli.get_int("jobs"));
  const auto budget_mib = static_cast<std::size_t>(cli.get_int("budget-mib"));

  // 1. Configure the service: admission pricing with a concurrency
  //    budget, an LRU byte budget on the table cache, and a completion
  //    callback counting terminal jobs.
  service::ServiceOptions options;
  options.admission.budget_units = 256.0;
  options.admission.max_job_units = service::price_units(
      core::Algorithm::kADMV, 64);  // reject pathological ADMV sizes
  options.solver.cache_budget_bytes = budget_mib * 1024 * 1024;
  service::SolverService svc(options);
  std::atomic<int> callbacks{0};
  svc.on_completion([&](const service::JobStatus&) { ++callbacks; });

  // 2. Submit a mixed burst: every handle returns immediately.
  std::vector<core::BatchJob> jobs;
  for (std::size_t i = 0; i < burst; ++i) {
    const auto& platforms = platform::table1_platforms();
    const platform::CostModel costs{platforms[i % platforms.size()]};
    switch (i % 4) {
      case 0:
        jobs.push_back({core::Algorithm::kADVstar,
                        chain::make_uniform(200 + 10 * (i % 5), 25000.0),
                        costs});
        break;
      case 1:
        jobs.push_back({core::Algorithm::kAD,
                        chain::make_decrease(150, 25000.0), costs});
        break;
      case 2:
        jobs.push_back({core::Algorithm::kADMVstar,
                        chain::make_highlow(60, 50000.0), costs});
        break;
      default:
        jobs.push_back({core::Algorithm::kADMV,
                        chain::make_uniform(25, 25000.0), costs});
        break;
    }
  }
  std::vector<service::JobHandle> handles;
  for (const auto& job : jobs) handles.push_back(svc.submit({job}));
  std::cout << "Submitted " << handles.size() << " jobs; first poll: "
            << service::to_string(svc.poll(handles.front()).state) << "\n";

  // 3. Exercise the control surface: cancel one job, expire another.
  const service::JobHandle cancelled = svc.submit(
      {{core::Algorithm::kADMVstar, chain::make_uniform(80, 25000.0),
        platform::CostModel{platform::hera()}}});
  svc.cancel(cancelled);
  const service::JobHandle expired =
      svc.submit({{core::Algorithm::kADVstar,
                   chain::make_uniform(300, 25000.0),
                   platform::CostModel{platform::atlas()}},
                  std::chrono::milliseconds(1)});

  // 4. Wait for every handle and tally terminal states.
  for (const auto& handle : handles) svc.wait(handle);
  std::cout << "cancel() -> " << service::to_string(svc.wait(cancelled).state)
            << ", 1ms deadline -> "
            << service::to_string(svc.wait(expired).state) << "\n";
  svc.drain();
  // wait()/drain() order on terminal states; each callback lands on its
  // worker just after, so give the last ones a bounded moment.
  const int expected_callbacks = static_cast<int>(handles.size()) + 2;
  for (int i = 0; i < 2000 && callbacks < expected_callbacks; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const service::ServiceStats stats = svc.stats();
  std::cout << "succeeded=" << stats.succeeded
            << " cancelled=" << stats.cancelled
            << " expired=" << stats.expired
            << " rejected=" << stats.rejected << " callbacks=" << callbacks
            << "\n";
  std::cout << "tables built=" << stats.solver.tables_built
            << " reused=" << stats.solver.tables_reused
            << " evicted=" << stats.solver.tables_evicted << " ("
            << stats.solver.evicted_bytes / (1024.0 * 1024.0)
            << " MiB); resident=" << svc.resident_bytes() / (1024.0 * 1024.0)
            << " MiB\n";
  const auto est = svc.estimate(core::Algorithm::kADVstar, 300);
  std::cout << "calibrated ADV* n=300 estimate: " << est.cost_units
            << " units";
  if (est.seconds >= 0.0) std::cout << " ~" << est.seconds << "s";
  std::cout << "\n\n";

  // 5. The async results must be bit-identical to a synchronous
  //    BatchSolver run of the same job set.
  core::BatchSolver sync_solver;
  const auto sync = sync_solver.solve(jobs);
  bool identical = true;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const service::JobStatus status = svc.poll(handles[i]);
    identical = identical && status.state == service::JobState::kSucceeded &&
                status.result.expected_makespan ==
                    sync[i].expected_makespan &&
                status.result.plan == sync[i].plan;
  }
  std::cout << "Async vs sync BatchSolver: "
            << (identical ? "identical plans and objectives"
                          : "MISMATCH (bug!)")
            << "\n";
  return identical ? 0 : 1;
}
