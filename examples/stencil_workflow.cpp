// Iterative stencil application (the paper's motivation for the Uniform
// pattern): a long run partitioned into equal sweeps that exchange data at
// phase boundaries.  Compares every algorithm the library implements --
// the paper's three plus the classical baselines -- and shows what each
// level of sophistication buys.
//
//   $ ./stencil_workflow [--platform Atlas] [--sweeps 40]
#include <iostream>

#include "chain/patterns.hpp"
#include "core/optimizer.hpp"
#include "platform/cost_model.hpp"
#include "platform/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace chainckpt;
  util::CliParser cli;
  cli.add_option("platform", "Atlas", "Table I platform name");
  cli.add_option("sweeps", "40", "number of stencil sweeps (tasks)");
  cli.add_option("weight", "25000", "total computation (s)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help_text(
        "stencil_workflow: algorithm shoot-out on a uniform chain");
    return 0;
  }

  const auto n = static_cast<std::size_t>(cli.get_int("sweeps"));
  const double weight = cli.get_double("weight");
  const auto platform = platform::by_name(cli.get("platform"));
  const platform::CostModel costs(platform);
  const auto chain = chain::make_uniform(n, weight);

  std::cout << "Stencil run: " << n << " sweeps, " << weight << "s total, "
            << "on " << platform.name << "\n\n";

  util::TextTable table({"algorithm", "expected makespan (s)",
                         "normalized", "overhead vs best", "#D", "#M",
                         "#V*", "#V"});
  // From least to most sophisticated.
  const std::vector<core::Algorithm> algorithms{
      core::Algorithm::kAD,       core::Algorithm::kDaly,
      core::Algorithm::kPeriodic, core::Algorithm::kADVstar,
      core::Algorithm::kADMVstar, core::Algorithm::kADMV};
  double best = 0.0;
  {
    const auto r = core::optimize(core::Algorithm::kADMV, chain, costs);
    best = r.expected_makespan;
  }
  for (core::Algorithm a : algorithms) {
    const auto r = core::optimize(a, chain, costs);
    const auto c = r.plan.interior_counts();
    table.add_row(
        {core::to_string(a), util::TextTable::num(r.expected_makespan, 1),
         util::TextTable::num(r.expected_makespan / weight, 5),
         util::TextTable::num(
             (r.expected_makespan / best - 1.0) * 100.0, 3) +
             "%",
         std::to_string(c.disk), std::to_string(c.memory),
         std::to_string(c.guaranteed), std::to_string(c.partial)});
  }
  std::cout << table.render() << '\n';
  std::cout << "Reading: AD pays for undetected silent errors with full "
               "disk rollbacks; adding verifications (ADV*), a memory "
               "level (ADMV*), and cheap partial detectors (ADMV) "
               "progressively trims the expected overhead.\n";
  return 0;
}
