// Quickstart: optimize the resilience plan of a 20-task workflow on the
// Hera platform, inspect it, and sanity-check the expectation with a
// Monte-Carlo run.
//
//   $ ./quickstart [--platform Hera] [--tasks 20] [--weight 25000]
#include <iostream>

#include "analysis/breakdown.hpp"
#include "analysis/evaluator.hpp"
#include "chain/patterns.hpp"
#include "core/optimizer.hpp"
#include "plan/plan_io.hpp"
#include "plan/render.hpp"
#include "platform/cost_model.hpp"
#include "platform/registry.hpp"
#include "sim/validation.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace chainckpt;
  util::CliParser cli;
  cli.add_option("platform", "Hera", "Table I platform name");
  cli.add_option("tasks", "20", "number of tasks in the chain");
  cli.add_option("weight", "25000", "total computational weight (s)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help_text("quickstart: optimal two-level plan demo");
    return 0;
  }

  // 1. Describe the application: a linear chain of equal-sized kernels.
  const auto n = static_cast<std::size_t>(cli.get_int("tasks"));
  const double weight = cli.get_double("weight");
  const auto chain = chain::make_uniform(n, weight);

  // 2. Pick a platform (error rates + resilience costs).
  const auto platform = platform::by_name(cli.get("platform"));
  const platform::CostModel costs(platform);
  std::cout << "Platform: " << platform.describe() << "\n";
  std::cout << "Chain:    " << chain.describe() << "\n\n";

  // 3. Run the paper's full optimizer (disk + memory checkpoints,
  //    guaranteed + partial verifications).
  const auto result = core::optimize(core::Algorithm::kADMV, chain, costs);
  std::cout << "Optimal expected makespan: " << result.expected_makespan
            << "s (normalized " << result.expected_makespan / weight
            << ")\n\n";
  std::cout << plan::render_figure(result.plan, "Optimal ADMV plan")
            << '\n';

  // 4. Understand where the time goes.
  const analysis::PlanEvaluator evaluator(chain, costs);
  std::cout << analysis::breakdown(evaluator, result.plan).describe()
            << "\n\n";

  // 5. Cross-check the analytic expectation by simulation.
  sim::ExperimentOptions mc;
  mc.replicas = 20000;
  const auto report =
      sim::validate_plan(chain, costs, result.plan, mc);
  std::cout << "Monte-Carlo check: " << report.describe() << "\n\n";

  // 6. Plans serialize to a stable text format.
  std::cout << "Serialized plan:\n" << plan::to_text(result.plan);
  return 0;
}
