#include "analysis/segment_math.hpp"

#include "util/assert.hpp"
#include "util/math.hpp"

namespace chainckpt::analysis {

Interval make_interval(const chain::WeightTable& table, std::size_t i,
                       std::size_t j) {
  CHAINCKPT_ASSERT(i <= j && j <= table.n(), "interval indices out of order");
  return Interval{table.weight(i, j), table.em1_f(i, j), table.em1_s(i, j)};
}

double em1f_over_lambda(const Interval& seg, double lambda_f) noexcept {
  // (e^{lf W} - 1)/lf == W * expm1(x)/x with x = lf * W; the series form
  // keeps full precision as lf -> 0 where em1_f/lambda_f would be 0/0.
  const double x = lambda_f * seg.w;
  if (x < 1e-5) return seg.w * util::expm1_over_x(x);
  return seg.em1_f / lambda_f;
}

double expected_verified_segment(const Interval& seg, double lambda_f,
                                 double v_guaranteed,
                                 const LeftContext& left) noexcept {
  const double es = seg.exp_s();
  return es * (em1f_over_lambda(seg, lambda_f) + v_guaranteed) +
         es * seg.em1_f * (left.r_disk + left.e_mem) +
         seg.em1_fs() * left.e_verif + seg.em1_s * left.r_mem;
}

double e_minus_segment(const Interval& seg, double lambda_f, double v_partial,
                       double miss, const LeftContext& left,
                       double e_right_next) noexcept {
  const double es = seg.exp_s();
  return es * (em1f_over_lambda(seg, lambda_f) + v_partial) +
         es * seg.em1_f * (left.r_disk + left.e_mem) +
         seg.em1_fs() * left.e_verif +
         seg.em1_s * ((1.0 - miss) * left.r_mem + miss * e_right_next);
}

double e_right_step(const Interval& seg, double lambda_f, double v_partial,
                    double miss, double r_disk, double r_mem, double e_mem,
                    double e_right_next) noexcept {
  // p^f (T_lost + R_D + E_mem) + (1 - p^f)(W + V + (1-g) R_M + g E_right').
  // p^f = 1 - e^{-lf W} = em1_f / e^{lf W}; 1 - p^f = 1 / e^{lf W}.
  const double ef = seg.exp_f();
  const double p_fail = seg.em1_f / ef;
  const double t_lost = util::expected_time_lost(lambda_f, seg.w);
  return p_fail * (t_lost + r_disk + e_mem) +
         (seg.w + v_partial + (1.0 - miss) * r_mem + miss * e_right_next) /
             ef;
}

double e_partial_terminal(const Interval& seg, double lambda_f,
                          double v_partial, double v_guaranteed, double miss,
                          const LeftContext& left) noexcept {
  // E^-(..., p1, v2, v2) with E_right(..., v2, v2) = R_M, plus the
  // verification-cost upgrade e^{(ls+lf) W} (V* - V).
  const double base = e_minus_segment(seg, lambda_f, v_partial, miss, left,
                                      /*e_right_next=*/left.r_mem);
  return base + seg.exp_fs() * (v_guaranteed - v_partial);
}

}  // namespace chainckpt::analysis
