#include "analysis/segment_math.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace chainckpt::analysis {

Interval make_interval(const chain::WeightTable& table, std::size_t i,
                       std::size_t j) {
  CHAINCKPT_ASSERT(i <= j && j <= table.n(), "interval indices out of order");
  return Interval{table.weight(i, j), table.em1_f(i, j), table.em1_s(i, j)};
}

double em1f_over_lambda(const Interval& seg, double lambda_f) noexcept {
  // (e^{lf W} - 1)/lf == W * expm1(x)/x with x = lf * W; the series form
  // keeps full precision as lf -> 0 where em1_f/lambda_f would be 0/0.
  const double x = lambda_f * seg.w;
  if (x < 1e-5) return seg.w * util::expm1_over_x(x);
  return seg.em1_f / lambda_f;
}

double expected_verified_segment(const Interval& seg, double lambda_f,
                                 double v_guaranteed,
                                 const LeftContext& left) noexcept {
  const double es = seg.exp_s();
  return es * (em1f_over_lambda(seg, lambda_f) + v_guaranteed) +
         es * seg.em1_f * (left.r_disk + left.e_mem) +
         seg.em1_fs() * left.e_verif + seg.em1_s * left.r_mem;
}

double e_minus_segment(const Interval& seg, double lambda_f, double v_partial,
                       double miss, const LeftContext& left,
                       double e_right_next) noexcept {
  const double es = seg.exp_s();
  return es * (em1f_over_lambda(seg, lambda_f) + v_partial) +
         es * seg.em1_f * (left.r_disk + left.e_mem) +
         seg.em1_fs() * left.e_verif +
         seg.em1_s * ((1.0 - miss) * left.r_mem + miss * e_right_next);
}

double e_right_step(const Interval& seg, double lambda_f, double v_partial,
                    double miss, double r_disk, double r_mem, double e_mem,
                    double e_right_next) noexcept {
  // p^f (T_lost + R_D + E_mem) + (1 - p^f)(W + V + (1-g) R_M + g E_right').
  // p^f = 1 - e^{-lf W} = em1_f / e^{lf W}; 1 - p^f = 1 / e^{lf W}.
  const double ef = seg.exp_f();
  const double p_fail = seg.em1_f / ef;
  const double t_lost = util::expected_time_lost(lambda_f, seg.w);
  return p_fail * (t_lost + r_disk + e_mem) +
         (seg.w + v_partial + (1.0 - miss) * r_mem + miss * e_right_next) /
             ef;
}

double e_partial_terminal(const Interval& seg, double lambda_f,
                          double v_partial, double v_guaranteed, double miss,
                          const LeftContext& left) noexcept {
  // E^-(..., p1, v2, v2) with E_right(..., v2, v2) = R_M, plus the
  // verification-cost upgrade e^{(ls+lf) W} (V* - V).
  const double base = e_minus_segment(seg, lambda_f, v_partial, miss, left,
                                      /*e_right_next=*/left.r_mem);
  return base + seg.exp_fs() * (v_guaranteed - v_partial);
}

// --- Law-integrated generalization (see header) ---------------------------

WeibullLawTasks::WeibullLawTasks(const chain::WeightTable& table,
                                 double lambda_f, double shape)
    : shape_(shape) {
  CHAINCKPT_REQUIRE(shape > 0.0, "Weibull shape must be positive");
  const std::size_t n = table.n();
  rho_.assign(n + 1, 0.0);
  p_fail_.assign(n + 1, 0.0);
  elapsed_failed_.assign(n + 1, 0.0);
  if (lambda_f <= 0.0) return;  // failure-free: all hazards stay zero
  // Mean-matched scale: theta Gamma(1 + 1/k) = 1/lambda_f, so one attempt's
  // MTTF equals the exponential law's.
  const double a = 1.0 + 1.0 / shape;
  const double theta = 1.0 / (lambda_f * std::tgamma(a));
  for (std::size_t t = 1; t <= n; ++t) {
    const double w = table.weight(t - 1, t);
    if (w <= 0.0) continue;
    const double rho = std::pow(w / theta, shape);
    rho_[t] = rho;
    p_fail_[t] = util::one_minus_exp_neg(rho);
    // E[T 1{T < w}] = theta Gamma(a) P(a, rho) = P(a, rho) / lambda_f.
    double elapsed = util::incomplete_gamma_p(a, rho) / lambda_f;
    if (!(elapsed >= 0.0) || !(elapsed <= w)) {
      // Closed form misbehaved (it should not, for a in (1, inf)): fall
      // back to the fixed-node quadrature oracle.
      elapsed = util::weibull_elapsed_quadrature(shape, theta, w);
    }
    elapsed_failed_[t] = elapsed;
  }
}

LawInterval make_law_interval(const chain::WeightTable& table,
                              const WeibullLawTasks& tasks, std::size_t i,
                              std::size_t j) {
  CHAINCKPT_ASSERT(i <= j && j <= table.n(), "interval indices out of order");
  // Left-to-right accumulation keeps every Lambda summand non-negative --
  // no cancellation, unlike the algebraically equal (M - qW)/(1 - q) form.
  double hazard = 0.0;
  double lambda_acc = 0.0;
  for (std::size_t t = i + 1; t <= j; ++t) {
    const double survive_prefix = std::exp(-hazard);
    lambda_acc += survive_prefix * (tasks.p_fail(t) * table.weight(i, t - 1) +
                                    tasks.elapsed_when_failed(t));
    hazard += tasks.rho(t);
  }
  LawInterval seg;
  seg.w = table.weight(i, j);
  seg.em1_f = std::expm1(hazard);
  seg.em1_s = table.em1_s(i, j);
  const double ef = 1.0 + seg.em1_f;
  seg.x = lambda_acc * ef + seg.w;
  const double p_fail = seg.em1_f / ef;
  // Hazard-free limit of E[elapsed | fail] is w/2, matching Eq. (3) as
  // lambda -> 0; the value is only ever multiplied by p_fail = 0 there.
  seg.t_lost = p_fail > 0.0 ? lambda_acc / p_fail : 0.5 * seg.w;
  return seg;
}

double expected_verified_segment(const LawInterval& seg, double v_guaranteed,
                                 const LeftContext& left) noexcept {
  const double es = seg.exp_s();
  return es * (seg.x + v_guaranteed) +
         es * seg.em1_f * (left.r_disk + left.e_mem) +
         seg.em1_fs() * left.e_verif + seg.em1_s * left.r_mem;
}

double e_minus_segment(const LawInterval& seg, double v_partial, double miss,
                       const LeftContext& left,
                       double e_right_next) noexcept {
  const double es = seg.exp_s();
  return es * (seg.x + v_partial) +
         es * seg.em1_f * (left.r_disk + left.e_mem) +
         seg.em1_fs() * left.e_verif +
         seg.em1_s * ((1.0 - miss) * left.r_mem + miss * e_right_next);
}

double e_right_step(const LawInterval& seg, double v_partial, double miss,
                    double r_disk, double r_mem, double e_mem,
                    double e_right_next) noexcept {
  const double ef = seg.exp_f();
  const double p_fail = seg.em1_f / ef;
  return p_fail * (seg.t_lost + r_disk + e_mem) +
         (seg.w + v_partial + (1.0 - miss) * r_mem + miss * e_right_next) /
             ef;
}

double e_partial_terminal(const LawInterval& seg, double v_partial,
                          double v_guaranteed, double miss,
                          const LeftContext& left) noexcept {
  const double base = e_minus_segment(seg, v_partial, miss, left,
                                      /*e_right_next=*/left.r_mem);
  return base + seg.exp_fs() * (v_guaranteed - v_partial);
}

}  // namespace chainckpt::analysis
