// Cost decomposition of a plan's expected makespan: how much goes to raw
// work, checkpoints, verifications, and expected error handling.  Used by
// the examples and the ablation benches to explain *why* a configuration
// wins, not only that it wins.
#pragma once

#include <string>

#include "analysis/evaluator.hpp"

namespace chainckpt::analysis {

struct CostBreakdown {
  double work = 0.0;               ///< error-free computation (total weight)
  double disk_checkpoints = 0.0;   ///< sum of C_D over placed disk ckpts
  double memory_checkpoints = 0.0; ///< sum of C_M over placed memory ckpts
  double guaranteed_verifs = 0.0;  ///< sum of V* over placed V*
  double partial_verifs = 0.0;     ///< sum of V over placed V
  /// Expected time beyond the deterministic terms: rollbacks, recoveries,
  /// re-executions and their nested verifications/checkpoints.
  double expected_error_handling = 0.0;
  double expected_makespan = 0.0;

  /// Deterministic overhead (all checkpoint + verification costs).
  double deterministic_overhead() const noexcept {
    return disk_checkpoints + memory_checkpoints + guaranteed_verifs +
           partial_verifs;
  }

  std::string describe() const;
};

/// Decomposes the expected makespan of `plan`.  The deterministic terms are
/// exact sums of placed mechanism costs; expected_error_handling is the
/// remainder of the analytic expectation.
CostBreakdown breakdown(const PlanEvaluator& evaluator,
                        const plan::ResiliencePlan& plan,
                        FormulaMode mode = FormulaMode::kAuto);

}  // namespace chainckpt::analysis
