// First-order (Young/Daly-style) theory for the two-level model.
//
// The paper's companion work (Benoit et al., IPDPS'16) analyses
// divisible-load applications with periodic patterns and derives, to
// first order in the error rates, the optimal period of each mechanism
// and the resulting overhead.  Linear chains quantize those periods to
// task boundaries, but the continuous predictions remain excellent
// sanity checks for the DP output on near-uniform chains:
//
//   W_V ~ sqrt(2 V* / lambda_s)            (verification period)
//   W_M ~ sqrt(2 (C_M + V*) / lambda_s)    (memory-checkpoint period)
//   W_D ~ sqrt(2 C_D / lambda_f)           (disk-checkpoint period)
//
// and overhead contributions of 2*sqrt(lambda/2 * cost) per mechanism
// (deterministic cost amortization + expected re-execution, equal at the
// optimum).  The total first-order overhead prediction is
//
//   H ~ sqrt(2 lambda_s (C_M + V*)) + sqrt(2 lambda_f C_D)
//
// -- silent errors handled by the memory level, fail-stop by the disk
// level.  These are order-of-magnitude tools, not exact values; the
// tests gate the DP against them within generous factors.
#pragma once

#include <cstddef>
#include <string>

#include "platform/platform.hpp"

namespace chainckpt::analysis {

struct FirstOrderPrediction {
  double period_verif = 0.0;   ///< W_V (s); +inf when lambda_s == 0
  double period_memory = 0.0;  ///< W_M (s); +inf when lambda_s == 0
  double period_disk = 0.0;    ///< W_D (s); +inf when lambda_f == 0
  /// Predicted overhead fraction: E[makespan]/W - 1 for a long chain.
  double overhead = 0.0;

  /// Predicted mechanism counts for a workload of `total_weight` seconds
  /// (rounded down; the final mandatory bundle is not counted).
  std::size_t expected_disk(double total_weight) const;
  std::size_t expected_memory(double total_weight) const;
  std::size_t expected_verifs(double total_weight) const;

  std::string describe() const;
};

/// First-order prediction for `platform` (partial verifications ignored:
/// the first-order optimum uses them only through a higher-order term).
FirstOrderPrediction first_order_prediction(const platform::Platform& p);

/// Advisory drift radius for a parameter that a mechanism deployed
/// `mechanism_count` times responds to.  The Young/Daly periods above all
/// scale as (cost/lambda)^{1/2}, so a relative parameter drift delta
/// misplaces the optimal period by about delta/2 and the optimal count by
/// about count * delta / 2; the radius is the drift at which roughly one
/// placement moves, clamped to [0.02, 0.5] so dense plans keep a usable
/// window and sparse plans do not claim unbounded stability.  This is a
/// *screen*, not a soundness bound -- core::ValidityCertificate uses it
/// to decide when a cached plan is even worth re-scoring, never to skip
/// the re-scoring itself.
double stability_radius(std::size_t mechanism_count);

}  // namespace chainckpt::analysis
