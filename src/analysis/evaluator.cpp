#include "analysis/evaluator.hpp"

#include <stdexcept>

#include "util/assert.hpp"

namespace chainckpt::analysis {

PlanEvaluator::PlanEvaluator(chain::TaskChain chain,
                             platform::CostModel costs)
    : chain_(std::move(chain)),
      costs_(std::move(costs)),
      table_(chain_, costs_.lambda_f(), costs_.lambda_s()) {
  CHAINCKPT_REQUIRE(!chain_.empty(), "evaluator needs a non-empty chain");
  const platform::PlanningLaw& law = costs_.planning_law();
  if (!law.is_exponential()) {
    law_tasks_.emplace(table_, costs_.lambda_f(), law.weibull_shape);
  }
}

double PlanEvaluator::partial_segment_value(const plan::ResiliencePlan& plan,
                                            std::size_t v1, std::size_t v2,
                                            const LeftContext& left) const {
  // Verification points inside (v1, v2): the partial verifications of the
  // plan, in ascending order; the segment is closed by the guaranteed
  // verification at v2.
  std::vector<std::size_t> points;
  points.push_back(v1);
  for (std::size_t p = v1 + 1; p < v2; ++p) {
    if (has_partial_verif(plan.action(p))) points.push_back(p);
  }
  const double lf = costs_.lambda_f();
  const double g = costs_.miss();

  // Right-to-left accumulation of E_partial (ep) and E_right (er), exactly
  // as the DP does with fixed choices (see dp_partial.cpp).
  double ep_next = 0.0;
  double er_next = left.r_mem;  // E_right(..., v2, v2) = R_M
  for (std::size_t k = points.size(); k-- > 0;) {
    const std::size_t p1 = points[k];
    const bool terminal = (k + 1 == points.size());
    const std::size_t p2 = terminal ? v2 : points[k + 1];
    double ep;
    double er;
    if (law_tasks_) {
      const LawInterval seg = make_law_interval(table_, *law_tasks_, p1, p2);
      if (terminal) {
        ep = e_partial_terminal(seg, costs_.v_partial_after(v2),
                                costs_.v_guaranteed_after(v2), g, left);
        er = e_right_step(seg, costs_.v_partial_after(v2), g, left.r_disk,
                          left.r_mem, left.e_mem,
                          /*e_right_next=*/left.r_mem);
      } else {
        const double reexec =
            make_law_interval(table_, *law_tasks_, p2, v2).exp_fs();
        ep = e_minus_segment(seg, costs_.v_partial_after(p2), g, left,
                             er_next) *
                 reexec +
             ep_next;
        er = e_right_step(seg, costs_.v_partial_after(p2), g, left.r_disk,
                          left.r_mem, left.e_mem, er_next);
      }
    } else {
      const Interval seg = make_interval(table_, p1, p2);
      if (terminal) {
        // The interval (p1, v2] is closed by the guaranteed verification at
        // v2: E_right there is R_M (immediate detection).
        ep = e_partial_terminal(seg, lf, costs_.v_partial_after(v2),
                                costs_.v_guaranteed_after(v2), g, left);
        er = e_right_step(seg, lf, costs_.v_partial_after(v2), g,
                          left.r_disk, left.r_mem, left.e_mem,
                          /*e_right_next=*/left.r_mem);
      } else {
        const double reexec = table_.exp_fs(p2, v2);
        ep = e_minus_segment(seg, lf, costs_.v_partial_after(p2), g, left,
                             er_next) *
                 reexec +
             ep_next;
        er = e_right_step(seg, lf, costs_.v_partial_after(p2), g,
                          left.r_disk, left.r_mem, left.e_mem, er_next);
      }
    }
    ep_next = ep;
    er_next = er;
  }
  return ep_next;
}

FormulaMode PlanEvaluator::resolve_mode(const plan::ResiliencePlan& plan,
                                        FormulaMode mode) const {
  const bool has_partials = plan.uses_partial_verifications();
  if (mode == FormulaMode::kAuto) {
    return has_partials ? FormulaMode::kPartialFramework
                        : FormulaMode::kTwoLevel;
  }
  if (mode == FormulaMode::kTwoLevel && has_partials) {
    throw std::invalid_argument(
        "kTwoLevel (Eq. 4) cannot evaluate plans with partial "
        "verifications; use kPartialFramework");
  }
  return mode;
}

template <typename Visitor>
void PlanEvaluator::walk_segments(const plan::ResiliencePlan& plan,
                                  FormulaMode mode, Visitor&& visit) const {
  CHAINCKPT_REQUIRE(plan.size() == chain_.size(),
                    "plan size must match chain size");
  plan.validate();
  mode = resolve_mode(plan, mode);

  const std::size_t n = chain_.size();
  const double lf = costs_.lambda_f();

  std::size_t d1 = 0;  // last disk checkpoint
  for (std::size_t db = 1; db <= n; ++db) {
    if (!has_disk_checkpoint(plan.action(db))) continue;
    // Disk segment (d1, db].
    double e_mem_acc = 0.0;  // E_mem(d1, m1), accumulated left-to-right
    std::size_t m1 = d1;     // last memory checkpoint
    for (std::size_t mb = d1 + 1; mb <= db; ++mb) {
      if (!has_memory_checkpoint(plan.action(mb))) continue;
      // Memory segment (m1, mb].
      double e_verif_acc = 0.0;  // E_verif(d1, m1, v1), accumulated
      std::size_t v1 = m1;       // last guaranteed verification
      for (std::size_t vb = m1 + 1; vb <= mb; ++vb) {
        if (!has_guaranteed_verif(plan.action(vb))) continue;
        // Verified segment (v1, vb].
        const LeftContext left{costs_.r_disk_after(d1),
                               costs_.r_mem_after(m1), e_mem_acc,
                               e_verif_acc};
        double segment;
        if (mode != FormulaMode::kTwoLevel) {
          segment = partial_segment_value(plan, v1, vb, left);
        } else if (law_tasks_) {
          segment = expected_verified_segment(
              make_law_interval(table_, *law_tasks_, v1, vb),
              costs_.v_guaranteed_after(vb), left);
        } else {
          segment = expected_verified_segment(
              make_interval(table_, v1, vb), lf,
              costs_.v_guaranteed_after(vb), left);
        }
        visit(SegmentValue{d1, m1, v1, vb, segment});
        e_verif_acc += segment;
        v1 = vb;
      }
      CHAINCKPT_ASSERT(
          v1 == mb,
          "memory checkpoints must carry a guaranteed verification");
      e_mem_acc += e_verif_acc + costs_.c_mem_after(mb);
      m1 = mb;
    }
    CHAINCKPT_ASSERT(m1 == db,
                     "disk checkpoints must carry a memory checkpoint");
    d1 = db;
  }
  CHAINCKPT_ASSERT(d1 == n, "the final task must carry a disk checkpoint");
}

double PlanEvaluator::expected_makespan(const plan::ResiliencePlan& plan,
                                        FormulaMode mode) const {
  double total = 0.0;
  walk_segments(plan, mode,
                [&](const SegmentValue& s) { total += s.value; });
  for (std::size_t i = 1; i <= plan.size(); ++i) {
    const plan::Action a = plan.action(i);
    if (has_memory_checkpoint(a)) total += costs_.c_mem_after(i);
    if (has_disk_checkpoint(a)) total += costs_.c_disk_after(i);
  }
  return total;
}

double PlanEvaluator::normalized_makespan(const plan::ResiliencePlan& plan,
                                          FormulaMode mode) const {
  return expected_makespan(plan, mode) / chain_.total_weight();
}

std::vector<SegmentValue> PlanEvaluator::verified_segments(
    const plan::ResiliencePlan& plan, FormulaMode mode) const {
  std::vector<SegmentValue> out;
  walk_segments(plan, mode, [&](const SegmentValue& s) { out.push_back(s); });
  return out;
}

}  // namespace chainckpt::analysis
