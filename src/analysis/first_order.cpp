#include "analysis/first_order.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace chainckpt::analysis {

namespace {
std::size_t count_for(double period, double total_weight) {
  if (!std::isfinite(period) || period <= 0.0) return 0;
  const double k = total_weight / period;
  return k <= 1.0 ? 0 : static_cast<std::size_t>(k) - 1;
}
}  // namespace

std::size_t FirstOrderPrediction::expected_disk(double total_weight) const {
  return count_for(period_disk, total_weight);
}

std::size_t FirstOrderPrediction::expected_memory(
    double total_weight) const {
  return count_for(period_memory, total_weight);
}

std::size_t FirstOrderPrediction::expected_verifs(
    double total_weight) const {
  return count_for(period_verif, total_weight);
}

std::string FirstOrderPrediction::describe() const {
  std::ostringstream os;
  os << "first-order periods: V* every " << period_verif
     << "s, memory ckpt every " << period_memory
     << "s, disk ckpt every " << period_disk << "s; predicted overhead "
     << overhead * 100.0 << "%";
  return os.str();
}

double stability_radius(std::size_t mechanism_count) {
  const double count = static_cast<double>(mechanism_count);
  return std::clamp(2.0 / std::max(1.0, 2.0 * count), 0.02, 0.5);
}

FirstOrderPrediction first_order_prediction(const platform::Platform& p) {
  const double inf = std::numeric_limits<double>::infinity();
  FirstOrderPrediction out;
  out.period_verif =
      p.lambda_s > 0.0 ? std::sqrt(2.0 * p.v_guaranteed / p.lambda_s) : inf;
  out.period_memory =
      p.lambda_s > 0.0
          ? std::sqrt(2.0 * (p.c_mem + p.v_guaranteed) / p.lambda_s)
          : inf;
  out.period_disk =
      p.lambda_f > 0.0 ? std::sqrt(2.0 * p.c_disk / p.lambda_f) : inf;
  // At the first-order optimum each mechanism's amortized placement cost
  // equals its expected rollback cost, giving sqrt(2 lambda cost) per
  // level.
  out.overhead = std::sqrt(2.0 * p.lambda_s * (p.c_mem + p.v_guaranteed)) +
                 std::sqrt(2.0 * p.lambda_f * p.c_disk);
  return out;
}

}  // namespace chainckpt::analysis
