#include "analysis/segment_tables.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "analysis/segment_math.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace chainckpt::analysis {

namespace {

bool bits_differ(double a, double b) noexcept {
  return std::memcmp(&a, &b, sizeof(double)) != 0;
}

}  // namespace

SegmentTables::SegmentTables(const chain::WeightTable& table,
                             const platform::CostModel& costs,
                             bool build_rows)
    : n_(table.n()),
      has_rows_(build_rows),
      lambda_f_(table.lambda_f()),
      lambda_s_(table.lambda_s()),
      law_(costs.planning_law()) {
  build(table, costs, kStreamAll, nullptr);
}

SegmentTables::SegmentTables(const SegmentTables& base,
                             const chain::WeightTable& table,
                             const platform::CostModel& costs, bool build_rows,
                             PatchSummary* summary)
    : n_(table.n()),
      has_rows_(build_rows),
      lambda_f_(table.lambda_f()),
      lambda_s_(table.lambda_s()),
      law_(costs.planning_law()) {
  CHAINCKPT_REQUIRE(base.n_ == n_,
                    "segment-table patch donor has a different chain length");
  unsigned mask = stream_mask_for(base, table, costs);
  if (build_rows && !base.has_rows_) {
    // The donor never built the row arrays; everything row-oriented must
    // be filled from scratch (the b/c/d bits cover the row mirrors too).
    mask |= kStreamB | kStreamC | kStreamD | kStreamExv | kStreamTl |
            kStreamPf | kStreamEf | kStreamW;
  }
  build(table, costs, mask, &base);
  if (summary != nullptr) {
    const auto arrays_for = [this](unsigned m) {
      std::size_t count = 0;
      for (const unsigned col_bit :
           {kStreamExvg, kStreamFs, kStreamVg, kStreamVp}) {
        if (m & col_bit) ++count;
      }
      for (const unsigned shared_bit : {kStreamB, kStreamC, kStreamD}) {
        if (m & shared_bit) count += has_rows_ ? 2 : 1;
      }
      if (has_rows_) {
        for (const unsigned row_bit :
             {kStreamExv, kStreamTl, kStreamPf, kStreamEf, kStreamW}) {
          if (m & row_bit) ++count;
        }
      }
      return count;
    };
    summary->streams_rebuilt = arrays_for(mask);
    summary->streams_reused = arrays_for(kStreamAll) - summary->streams_rebuilt;
    summary->qi_rebuilt =
        (mask & (kStreamExvg | kStreamB | kStreamC | kStreamD)) != 0;
  }
}

unsigned SegmentTables::stream_mask_for(const SegmentTables& base,
                                        const chain::WeightTable& table,
                                        const platform::CostModel& costs) {
  const bool lf_changed = bits_differ(table.lambda_f(), base.lambda_f_);
  const bool ls_changed = bits_differ(table.lambda_s(), base.lambda_s_);
  const platform::PlanningLaw& law = costs.planning_law();
  // Laws compare by the build path they select: every exponential-reducing
  // law (including Weibull at shape exactly 1) is one equivalence class.
  bool law_changed = law.is_exponential() != base.law_.is_exponential();
  if (!law_changed && !law.is_exponential()) {
    law_changed = bits_differ(law.weibull_shape, base.law_.weibull_shape);
  }
  bool vg_changed = false;
  bool vp_changed = false;
  for (std::size_t i = 1; i <= base.n_; ++i) {
    vg_changed |= bits_differ(costs.v_guaranteed_after(i), base.vg_[i]);
    vp_changed |= bits_differ(costs.v_partial_after(i), base.vp_[i]);
  }
  unsigned mask = 0;
  if (lf_changed || law_changed) {
    mask |= kStreamExvg | kStreamB | kStreamC | kStreamFs | kStreamExv |
            kStreamTl | kStreamPf | kStreamEf;
  }
  if (ls_changed) {
    mask |= kStreamExvg | kStreamB | kStreamC | kStreamD | kStreamFs |
            kStreamExv;
  }
  if (vg_changed) mask |= kStreamExvg | kStreamVg;
  if (vp_changed) mask |= kStreamExv | kStreamVp;
  return mask;
}

void SegmentTables::build(const chain::WeightTable& table,
                          const platform::CostModel& costs, unsigned mask,
                          const SegmentTables* base) {
  const std::size_t stride = n_ + 1;
  const std::size_t cells = stride * stride;

  // Allocate the streams the mask rebuilds; copy the rest from the donor
  // byte for byte.  A null donor (the full build) must carry a full mask.
  const auto prepare = [&](std::vector<double>& mine,
                           const std::vector<double> SegmentTables::*member,
                           unsigned bit, std::size_t size) {
    if (mask & bit) {
      mine.assign(size, 0.0);
    } else {
      mine = base->*member;
    }
  };
  prepare(vg_, &SegmentTables::vg_, kStreamVg, stride);
  prepare(vp_, &SegmentTables::vp_, kStreamVp, stride);
  if (mask & kStreamVg) {
    for (std::size_t i = 1; i <= n_; ++i) vg_[i] = costs.v_guaranteed_after(i);
  }
  if (mask & kStreamVp) {
    for (std::size_t i = 1; i <= n_; ++i) vp_[i] = costs.v_partial_after(i);
  }

  prepare(exvg_c_, &SegmentTables::exvg_c_, kStreamExvg, cells);
  prepare(b_c_, &SegmentTables::b_c_, kStreamB, cells);
  prepare(c_c_, &SegmentTables::c_c_, kStreamC, cells);
  prepare(d_c_, &SegmentTables::d_c_, kStreamD, cells);
  prepare(fs_c_, &SegmentTables::fs_c_, kStreamFs, cells);
  if (has_rows_) {
    prepare(exv_r_, &SegmentTables::exv_r_, kStreamExv, cells);
    prepare(b_r_, &SegmentTables::b_r_, kStreamB, cells);
    prepare(c_r_, &SegmentTables::c_r_, kStreamC, cells);
    prepare(d_r_, &SegmentTables::d_r_, kStreamD, cells);
    prepare(tl_r_, &SegmentTables::tl_r_, kStreamTl, cells);
    prepare(pf_r_, &SegmentTables::pf_r_, kStreamPf, cells);
    prepare(ef_r_, &SegmentTables::ef_r_, kStreamEf, cells);
    prepare(w_r_, &SegmentTables::w_r_, kStreamW, cells);
  }

  // Planning-law dispatch: a Weibull law at shape exactly 1 *delegates* to
  // the exponential build, which makes the k = 1 reduction bitwise (the raw
  // Weibull formulas are only equal up to association order: they sum
  // per-task hazards where the exponential path multiplies lambda_f by a
  // prefix-difference weight).
  const unsigned col_mask = kStreamExvg | kStreamB | kStreamC | kStreamD |
                            kStreamFs;
  const unsigned row_mask = kStreamExv | kStreamB | kStreamC | kStreamD |
                            kStreamTl | kStreamPf | kStreamEf | kStreamW;
  const bool need_fill =
      (mask & col_mask) != 0 || (has_rows_ && (mask & row_mask) != 0);
  if (need_fill) {
    if (law_.is_exponential()) {
      build_exponential(table, mask);
    } else {
      build_weibull(table, law_.weibull_shape, mask);
    }
  }
  if (mask & (kStreamExvg | kStreamB | kStreamC | kStreamD)) {
    build_qi_certificate();
  } else {
    qi_ = base->qi_;
  }
}

void SegmentTables::build_exponential(const chain::WeightTable& table,
                                      unsigned mask) {
  const std::size_t stride = n_ + 1;
  const double lambda_f = table.lambda_f();
  for (std::size_t i = 0; i <= n_; ++i) {
    for (std::size_t j = i; j <= n_; ++j) {
      // Same expression trees as segment_math.cpp / WeightTable, so the
      // stored coefficients are bitwise what the scalar path computes --
      // for full builds and masked patch rebuilds alike.
      const double em1_f = table.em1_f(i, j);
      const double em1_s = table.em1_s(i, j);
      const double w = table.weight(i, j);
      const Interval seg{w, em1_f, em1_s};
      const double x = em1f_over_lambda(seg, lambda_f);
      const double es = seg.exp_s();
      const double b = es * em1_f;
      const double c = seg.em1_fs();
      const double d = em1_s;
      const std::size_t cm = j * stride + i;
      if (mask & kStreamExvg) exvg_c_[cm] = es * (x + vg_[j]);
      if (mask & kStreamB) b_c_[cm] = b;
      if (mask & kStreamC) c_c_[cm] = c;
      if (mask & kStreamD) d_c_[cm] = d;
      if (mask & kStreamFs) fs_c_[cm] = seg.exp_fs();
      if (has_rows_) {
        const double ef = seg.exp_f();
        const std::size_t rm = i * stride + j;
        if (mask & kStreamExv) exv_r_[rm] = es * (x + vp_[j]);
        if (mask & kStreamB) b_r_[rm] = b;
        if (mask & kStreamC) c_r_[rm] = c;
        if (mask & kStreamD) d_r_[rm] = d;
        // expected_time_lost dominates the row-build cost; a patch that
        // keeps lambda_f skips it entirely.
        if (mask & kStreamTl) {
          tl_r_[rm] = util::expected_time_lost(lambda_f, w);
        }
        if (mask & kStreamPf) pf_r_[rm] = em1_f / ef;
        if (mask & kStreamEf) ef_r_[rm] = ef;
        if (mask & kStreamW) w_r_[rm] = w;
      }
    }
  }
}

void SegmentTables::build_weibull(const chain::WeightTable& table,
                                  double shape, unsigned mask) {
  const std::size_t stride = n_ + 1;
  const WeibullLawTasks tasks(table, table.lambda_f(), shape);
  for (std::size_t i = 0; i <= n_; ++i) {
    // Incremental law accumulators over j, in the exact operation order of
    // make_law_interval so evaluator-side LawInterval values are bitwise
    // equal to the stored streams.
    double hazard = 0.0;
    double lambda_acc = 0.0;
    for (std::size_t j = i; j <= n_; ++j) {
      if (j > i) {
        const double survive_prefix = std::exp(-hazard);
        lambda_acc +=
            survive_prefix * (tasks.p_fail(j) * table.weight(i, j - 1) +
                              tasks.elapsed_when_failed(j));
        hazard += tasks.rho(j);
      }
      LawInterval seg;
      seg.w = table.weight(i, j);
      seg.em1_f = std::expm1(hazard);
      seg.em1_s = table.em1_s(i, j);
      const double ef = 1.0 + seg.em1_f;
      seg.x = lambda_acc * ef + seg.w;
      const double pf = seg.em1_f / ef;
      seg.t_lost = pf > 0.0 ? lambda_acc / pf : 0.5 * seg.w;
      const double es = seg.exp_s();
      const double b = es * seg.em1_f;
      const double c = seg.em1_fs();
      const double d = seg.em1_s;
      const std::size_t cm = j * stride + i;
      if (mask & kStreamExvg) exvg_c_[cm] = es * (seg.x + vg_[j]);
      if (mask & kStreamB) b_c_[cm] = b;
      if (mask & kStreamC) c_c_[cm] = c;
      if (mask & kStreamD) d_c_[cm] = d;
      if (mask & kStreamFs) fs_c_[cm] = seg.exp_fs();
      if (has_rows_) {
        const std::size_t rm = i * stride + j;
        if (mask & kStreamExv) exv_r_[rm] = es * (seg.x + vp_[j]);
        if (mask & kStreamB) b_r_[rm] = b;
        if (mask & kStreamC) c_r_[rm] = c;
        if (mask & kStreamD) d_r_[rm] = d;
        if (mask & kStreamTl) tl_r_[rm] = seg.t_lost;
        if (mask & kStreamPf) pf_r_[rm] = pf;
        if (mask & kStreamEf) ef_r_[rm] = ef;
        if (mask & kStreamW) w_r_[rm] = seg.w;
      }
    }
  }
}

void SegmentTables::build_qi_certificate() {
  // Strict gate: any negative defect -- however tiny -- marks the cell.
  // Tolerating "rounding-noise" defects would NOT be conservative: the
  // scans compare exact doubles, so even an ulp-level true violation can
  // move the leftmost argmin and break the bitwise-equality contract.
  // The cost of strictness is only lost pruning, and the paper's four
  // platforms pass with zero defects as evaluated.
  qi_ = QiCertificate{};
  const std::size_t stride = n_ + 1;
  qi_.argmin_window_safe.assign(stride, 1);
  std::vector<std::uint8_t> cell_ok(stride, 1);
  for (const std::vector<double>* stream : {&exvg_c_, &b_c_, &c_c_, &d_c_}) {
    const double* f = stream->data();
    for (std::size_t j = 1; j <= n_; ++j) {
      const double* col = f + j * stride;       // f(v, j), v in [0, j]
      const double* prev = f + (j - 1) * stride;  // f(v, j-1), v in [0, j-1]
      for (std::size_t v = 0; v < j; ++v) {
        if (col[v] < 0.0) qi_.streams_nonnegative = false;
        if (v + 2 > j) continue;  // QI cell needs (v+1, j-1) valid
        const double grow_left = col[v] - prev[v];
        const double grow_right = col[v + 1] - prev[v + 1];
        const double defect = grow_left - grow_right;
        if (defect < 0.0) {
          cell_ok[v] = 0;
          ++qi_.violating_cells;
          const double scale =
              std::max({std::abs(col[v]), std::abs(col[v + 1]), 1.0});
          qi_.worst_defect = std::min(qi_.worst_defect, defect / scale);
        }
      }
    }
  }
  // A DP row starting at m1 only reads coefficients with v1 >= m1, so its
  // verdict is the suffix-AND of the per-v cell verdicts.
  std::uint8_t safe = 1;
  for (std::size_t v = stride; v-- > 0;) {
    safe = static_cast<std::uint8_t>(safe & cell_ok[v]);
    qi_.argmin_window_safe[v] = safe;
  }
}

std::size_t SegmentTables::resident_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto* v :
       {&exv_r_, &b_r_, &c_r_, &d_r_, &tl_r_, &pf_r_, &ef_r_, &w_r_,
        &exvg_c_, &b_c_, &c_c_, &d_c_, &fs_c_, &vg_, &vp_}) {
    total += v->capacity() * sizeof(double);
  }
  return total;
}

}  // namespace chainckpt::analysis
