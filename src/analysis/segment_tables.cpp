#include "analysis/segment_tables.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/segment_math.hpp"
#include "util/math.hpp"

namespace chainckpt::analysis {

SegmentTables::SegmentTables(const chain::WeightTable& table,
                             const platform::CostModel& costs,
                             bool build_rows)
    : n_(table.n()), has_rows_(build_rows) {
  const std::size_t stride = n_ + 1;
  const std::size_t cells = stride * stride;

  vg_.assign(stride, 0.0);
  vp_.assign(stride, 0.0);
  for (std::size_t i = 1; i <= n_; ++i) {
    vg_[i] = costs.v_guaranteed_after(i);
    vp_[i] = costs.v_partial_after(i);
  }

  if (build_rows) {
    exv_r_.assign(cells, 0.0);
    b_r_.assign(cells, 0.0);
    c_r_.assign(cells, 0.0);
    d_r_.assign(cells, 0.0);
    tl_r_.assign(cells, 0.0);
    pf_r_.assign(cells, 0.0);
    ef_r_.assign(cells, 0.0);
    w_r_.assign(cells, 0.0);
  }
  exvg_c_.assign(cells, 0.0);
  b_c_.assign(cells, 0.0);
  c_c_.assign(cells, 0.0);
  d_c_.assign(cells, 0.0);
  fs_c_.assign(cells, 0.0);

  // Planning-law dispatch: a Weibull law at shape exactly 1 *delegates* to
  // the exponential build, which makes the k = 1 reduction bitwise (the raw
  // Weibull formulas are only equal up to association order: they sum
  // per-task hazards where the exponential path multiplies lambda_f by a
  // prefix-difference weight).
  const platform::PlanningLaw& law = costs.planning_law();
  if (law.is_exponential()) {
    build_exponential(table);
  } else {
    build_weibull(table, law.weibull_shape);
  }
  build_qi_certificate();
}

void SegmentTables::build_exponential(const chain::WeightTable& table) {
  const std::size_t stride = n_ + 1;
  const double lambda_f = table.lambda_f();
  for (std::size_t i = 0; i <= n_; ++i) {
    for (std::size_t j = i; j <= n_; ++j) {
      // Same expression trees as segment_math.cpp / WeightTable, so the
      // stored coefficients are bitwise what the scalar path computes.
      const double em1_f = table.em1_f(i, j);
      const double em1_s = table.em1_s(i, j);
      const double w = table.weight(i, j);
      const Interval seg{w, em1_f, em1_s};
      const double x = em1f_over_lambda(seg, lambda_f);
      const double es = seg.exp_s();
      const double b = es * em1_f;
      const double c = seg.em1_fs();
      const double d = em1_s;
      const std::size_t cm = j * stride + i;
      exvg_c_[cm] = es * (x + vg_[j]);
      b_c_[cm] = b;
      c_c_[cm] = c;
      d_c_[cm] = d;
      fs_c_[cm] = seg.exp_fs();
      if (has_rows_) {
        const double ef = seg.exp_f();
        const std::size_t rm = i * stride + j;
        exv_r_[rm] = es * (x + vp_[j]);
        b_r_[rm] = b;
        c_r_[rm] = c;
        d_r_[rm] = d;
        tl_r_[rm] = util::expected_time_lost(lambda_f, w);
        pf_r_[rm] = em1_f / ef;
        ef_r_[rm] = ef;
        w_r_[rm] = w;
      }
    }
  }
}

void SegmentTables::build_weibull(const chain::WeightTable& table,
                                  double shape) {
  const std::size_t stride = n_ + 1;
  const WeibullLawTasks tasks(table, table.lambda_f(), shape);
  for (std::size_t i = 0; i <= n_; ++i) {
    // Incremental law accumulators over j, in the exact operation order of
    // make_law_interval so evaluator-side LawInterval values are bitwise
    // equal to the stored streams.
    double hazard = 0.0;
    double lambda_acc = 0.0;
    for (std::size_t j = i; j <= n_; ++j) {
      if (j > i) {
        const double survive_prefix = std::exp(-hazard);
        lambda_acc +=
            survive_prefix * (tasks.p_fail(j) * table.weight(i, j - 1) +
                              tasks.elapsed_when_failed(j));
        hazard += tasks.rho(j);
      }
      LawInterval seg;
      seg.w = table.weight(i, j);
      seg.em1_f = std::expm1(hazard);
      seg.em1_s = table.em1_s(i, j);
      const double ef = 1.0 + seg.em1_f;
      seg.x = lambda_acc * ef + seg.w;
      const double pf = seg.em1_f / ef;
      seg.t_lost = pf > 0.0 ? lambda_acc / pf : 0.5 * seg.w;
      const double es = seg.exp_s();
      const double b = es * seg.em1_f;
      const double c = seg.em1_fs();
      const double d = seg.em1_s;
      const std::size_t cm = j * stride + i;
      exvg_c_[cm] = es * (seg.x + vg_[j]);
      b_c_[cm] = b;
      c_c_[cm] = c;
      d_c_[cm] = d;
      fs_c_[cm] = seg.exp_fs();
      if (has_rows_) {
        const std::size_t rm = i * stride + j;
        exv_r_[rm] = es * (seg.x + vp_[j]);
        b_r_[rm] = b;
        c_r_[rm] = c;
        d_r_[rm] = d;
        tl_r_[rm] = seg.t_lost;
        pf_r_[rm] = pf;
        ef_r_[rm] = ef;
        w_r_[rm] = seg.w;
      }
    }
  }
}

void SegmentTables::build_qi_certificate() {
  // Strict gate: any negative defect -- however tiny -- marks the cell.
  // Tolerating "rounding-noise" defects would NOT be conservative: the
  // scans compare exact doubles, so even an ulp-level true violation can
  // move the leftmost argmin and break the bitwise-equality contract.
  // The cost of strictness is only lost pruning, and the paper's four
  // platforms pass with zero defects as evaluated.
  const std::size_t stride = n_ + 1;
  qi_.argmin_window_safe.assign(stride, 1);
  std::vector<std::uint8_t> cell_ok(stride, 1);
  for (const std::vector<double>* stream : {&exvg_c_, &b_c_, &c_c_, &d_c_}) {
    const double* f = stream->data();
    for (std::size_t j = 1; j <= n_; ++j) {
      const double* col = f + j * stride;       // f(v, j), v in [0, j]
      const double* prev = f + (j - 1) * stride;  // f(v, j-1), v in [0, j-1]
      for (std::size_t v = 0; v < j; ++v) {
        if (col[v] < 0.0) qi_.streams_nonnegative = false;
        if (v + 2 > j) continue;  // QI cell needs (v+1, j-1) valid
        const double grow_left = col[v] - prev[v];
        const double grow_right = col[v + 1] - prev[v + 1];
        const double defect = grow_left - grow_right;
        if (defect < 0.0) {
          cell_ok[v] = 0;
          ++qi_.violating_cells;
          const double scale =
              std::max({std::abs(col[v]), std::abs(col[v + 1]), 1.0});
          qi_.worst_defect = std::min(qi_.worst_defect, defect / scale);
        }
      }
    }
  }
  // A DP row starting at m1 only reads coefficients with v1 >= m1, so its
  // verdict is the suffix-AND of the per-v cell verdicts.
  std::uint8_t safe = 1;
  for (std::size_t v = stride; v-- > 0;) {
    safe = static_cast<std::uint8_t>(safe & cell_ok[v]);
    qi_.argmin_window_safe[v] = safe;
  }
}

std::size_t SegmentTables::resident_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto* v :
       {&exv_r_, &b_r_, &c_r_, &d_r_, &tl_r_, &pf_r_, &ef_r_, &w_r_,
        &exvg_c_, &b_c_, &c_c_, &d_c_, &fs_c_, &vg_, &vp_}) {
    total += v->capacity() * sizeof(double);
  }
  return total;
}

}  // namespace chainckpt::analysis
