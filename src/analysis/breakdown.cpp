#include "analysis/breakdown.hpp"

#include <sstream>

namespace chainckpt::analysis {

std::string CostBreakdown::describe() const {
  std::ostringstream os;
  os << "expected makespan " << expected_makespan << "s = work " << work
     << "s + disk ckpts " << disk_checkpoints << "s + memory ckpts "
     << memory_checkpoints << "s + guaranteed verifs " << guaranteed_verifs
     << "s + partial verifs " << partial_verifs
     << "s + expected error handling " << expected_error_handling << 's';
  return os.str();
}

CostBreakdown breakdown(const PlanEvaluator& evaluator,
                        const plan::ResiliencePlan& plan, FormulaMode mode) {
  CostBreakdown out;
  const auto& costs = evaluator.costs();
  out.work = evaluator.chain().total_weight();
  for (std::size_t i = 1; i <= plan.size(); ++i) {
    const plan::Action a = plan.action(i);
    if (has_disk_checkpoint(a)) out.disk_checkpoints += costs.c_disk_after(i);
    if (has_memory_checkpoint(a))
      out.memory_checkpoints += costs.c_mem_after(i);
    if (has_guaranteed_verif(a))
      out.guaranteed_verifs += costs.v_guaranteed_after(i);
    if (has_partial_verif(a)) out.partial_verifs += costs.v_partial_after(i);
  }
  out.expected_makespan = evaluator.expected_makespan(plan, mode);
  out.expected_error_handling =
      out.expected_makespan - out.work - out.deterministic_overhead();
  return out;
}

}  // namespace chainckpt::analysis
