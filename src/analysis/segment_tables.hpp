// Hoisted interval algebra for the DP hot paths.
//
// The closed forms of segment_math.cpp all decompose over an interval
// (i, j] into coefficient fields that are independent of the DP's left
// context (d1, m1):
//
//   expected_verified_segment = es*(x + V*) + b*(R_D + E_mem)
//                               + c*E_verif + d*R_M
//   e_minus_segment           = es*(x + V)  + b*(R_D + E_mem)
//                               + c*E_verif + d*((1-g) R_M + g E_right')
//   e_right_step              = pf*(tl + R_D + E_mem)
//                               + (W + V + (1-g) R_M + g E_right') / ef
//
// with  x  = (e^{lf W} - 1)/lf      es = e^{ls W}
//       b  = es * (e^{lf W} - 1)    c  = e^{(lf+ls) W} - 1
//       d  = e^{ls W} - 1           fs = e^{(lf+ls) W}
//       ef = e^{lf W}               pf = (e^{lf W} - 1) / ef
//       tl = expected_time_lost(lf, W)
//
// The O(n^4)/O(n^6) dynamic programs used to rebuild Interval/LeftContext
// structs and re-derive these quantities -- including an expm1 per
// e_right_step -- inside their innermost loops; this table materializes
// them once per (chain, cost model) pair as flat SoA arrays.  The
// verification costs are folded into the leading term where possible
// (exv = es*(x + V_j), exvg = es*(x + V*_j)), which drops two more streams
// from the kernels.  Two orientations are kept:
//
//   *_row(i): fixed left endpoint i, contiguous in j -- the access pattern
//             of the partial-verification inner DP (p2 scan);
//   *_col(j): fixed right endpoint j, contiguous in i -- the access pattern
//             of the level-DP v1 scans.
//
// Every entry is computed with the exact expression trees of
// segment_math.cpp on the same WeightTable inputs.  The Eq. (4) level-DP
// kernels (dp_two_level, dp_single_level) consume them with the scalar
// formulas' association order and reproduce those values bit for bit;
// the ADMV kernels (dp_partial) additionally distribute the e^{(lf+ls)W}
// chain factor across per-scan planes, which reassociates sums of
// non-negative terms and may differ from the scalar path by a few ulps --
// well inside the 1e-9 tolerance of the "DP objective == analytic
// evaluator" property tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chain/weight_table.hpp"
#include "platform/cost_model.hpp"

namespace chainckpt::analysis {

/// Result of the quadrangle-inequality probe over the column-oriented
/// coefficient streams (exvg, b, c, d) that the Eq. (4) level-DP kernels
/// read.  The QI at a cell (v, j) is
///
///   f(v, j-1) + f(v+1, j) <= f(v, j) + f(v+1, j-1)
///
/// i.e. the j-increment of each stream must not grow when the left
/// endpoint moves right -- the Knuth/Yao condition under which the
/// leftmost argmin of the v1 scans is non-decreasing in j.  Eq. (4) has
/// no written proof that its full candidate (which adds the
/// E_verif-dependent terms) inherits the property, so the certificate is
/// a *gate*, not a theorem: rows whose coefficient suffix violates the
/// inequality are scanned densely, and rows that pass are additionally
/// fenced by core::MonotoneScanner's per-step boundary guard.
struct QiCertificate {
  /// All stream entries are >= 0 (the non-negativity the window's
  /// pruning argument also relies on).
  bool streams_nonnegative = true;
  /// argmin_window_safe[i] == 1 iff every QI cell (v, j) with v >= i
  /// passes; a DP row (d1, m1) reads coefficients at v1 >= m1 only, so
  /// its verdict is entry m1.
  std::vector<std::uint8_t> argmin_window_safe;
  /// QI cells that failed, across all streams.
  std::size_t violating_cells = 0;
  /// Most negative QI margin seen, relative to the cell's magnitude
  /// (0 when every cell passes).
  double worst_defect = 0.0;

  bool row_ok(std::size_t i) const noexcept {
    return streams_nonnegative &&
           (i < argmin_window_safe.size() ? argmin_window_safe[i] != 0
                                          : true);
  }
  bool all_ok() const noexcept {
    return streams_nonnegative && violating_cells == 0;
  }
};

/// What a patch rebuild actually did: how many coefficient streams were
/// recomputed vs copied from the donor tables.  BatchSolver folds these
/// into its stats; the equivalence tests assert the reuse is real.
struct PatchSummary {
  std::size_t streams_rebuilt = 0;
  std::size_t streams_reused = 0;
  /// The QI certificate had to be re-probed (any column stream changed).
  bool qi_rebuilt = false;
};

class SegmentTables {
 public:
  /// `build_rows = false` skips the nine row-oriented arrays, which only
  /// the ADMV partial solver reads -- the Eq. (4) level DPs (AD, ADV*,
  /// ADMV*) consume the column views alone and need not pay the extra
  /// O(n^2) memory and expected_time_lost build work.
  SegmentTables(const chain::WeightTable& table,
                const platform::CostModel& costs, bool build_rows = true);

  /// Incremental patch constructor: rebuilds only the streams the drifted
  /// cost model actually changes, copying every other stream from `base`.
  /// The dependency map (see stream_mask_for in segment_tables.cpp):
  ///
  ///   lambda_f / planning law -> exvg, b, c, fs, exv, tl, pf, ef
  ///   lambda_s                -> exvg, b, c, d, fs, exv
  ///   V* stream (vg)          -> exvg, vg
  ///   V  stream (vp)          -> exv, vp
  ///   C_D/C_M/R_D/R_M, recall -> nothing (never baked into the tables)
  ///
  /// `table` must be built from the same chain weights as `base` (only
  /// the rates may differ -- use the WeightTable patch constructor), and
  /// rebuilt streams use the exact expression trees of the full build, so
  /// the result is byte-identical (memcmp) to a from-scratch
  /// SegmentTables(table, costs, build_rows) -- the equivalence battery in
  /// tests/analysis/segment_tables_patch_test.cpp pins this for both the
  /// exponential and the Weibull build paths.
  SegmentTables(const SegmentTables& base, const chain::WeightTable& table,
                const platform::CostModel& costs, bool build_rows = true,
                PatchSummary* summary = nullptr);

  std::size_t n() const noexcept { return n_; }
  bool has_rows() const noexcept { return has_rows_; }

  // Row views: pointer indexed by the absolute right endpoint j, valid for
  // j in [i, n].  Require has_rows().
  const double* exv_row(std::size_t i) const noexcept {
    return row(exv_r_, i);
  }
  const double* b_row(std::size_t i) const noexcept { return row(b_r_, i); }
  const double* c_row(std::size_t i) const noexcept { return row(c_r_, i); }
  const double* d_row(std::size_t i) const noexcept { return row(d_r_, i); }
  const double* tl_row(std::size_t i) const noexcept { return row(tl_r_, i); }
  const double* pf_row(std::size_t i) const noexcept { return row(pf_r_, i); }
  const double* ef_row(std::size_t i) const noexcept { return row(ef_r_, i); }
  const double* w_row(std::size_t i) const noexcept { return row(w_r_, i); }

  // Column views: pointer indexed by the absolute left endpoint i, valid
  // for i in [0, j].
  const double* exvg_col(std::size_t j) const noexcept {
    return row(exvg_c_, j);
  }
  const double* b_col(std::size_t j) const noexcept { return row(b_c_, j); }
  const double* c_col(std::size_t j) const noexcept { return row(c_c_, j); }
  const double* d_col(std::size_t j) const noexcept { return row(d_c_, j); }
  const double* fs_col(std::size_t j) const noexcept { return row(fs_c_, j); }

  /// Guaranteed-verification cost after task i (i >= 1), hoisted out of the
  /// CostModel's uniform/per-position branch.
  double vg_after(std::size_t i) const noexcept { return vg_[i]; }
  /// Partial-verification cost after task i (i >= 1).
  double vp_after(std::size_t i) const noexcept { return vp_[i]; }
  /// vp_after as a flat array indexed by position (entry 0 unused).
  const double* vp_data() const noexcept { return vp_.data(); }

  /// Bytes held by the coefficient arrays -- what a BatchSolver cache
  /// entry keeps resident and release_scratch() gives back.
  std::size_t resident_bytes() const noexcept;

  /// The quadrangle-inequality probe over the column streams, computed
  /// once at construction (an O(n^2) pass, amortized across the
  /// O(n^4)/O(n^6) DPs that consult it).  See QiCertificate.
  const QiCertificate& verify_quadrangle() const noexcept { return qi_; }

 private:
  /// One bit per coefficient stream, naming what a (re)build writes.  The
  /// kB/kC/kD bits cover the column stream and its row mirror together
  /// (their values are identical by construction).
  enum StreamBit : unsigned {
    kStreamExvg = 1u << 0,  ///< exvg_c (lambda_f, lambda_s, law, vg)
    kStreamB = 1u << 1,     ///< b_c + b_r (lambda_f, lambda_s, law)
    kStreamC = 1u << 2,     ///< c_c + c_r (lambda_f, lambda_s, law)
    kStreamD = 1u << 3,     ///< d_c + d_r (lambda_s)
    kStreamFs = 1u << 4,    ///< fs_c (lambda_f, lambda_s, law)
    kStreamExv = 1u << 5,   ///< exv_r (lambda_f, lambda_s, law, vp)
    kStreamTl = 1u << 6,    ///< tl_r (lambda_f, law)
    kStreamPf = 1u << 7,    ///< pf_r (lambda_f, law)
    kStreamEf = 1u << 8,    ///< ef_r (lambda_f, law)
    kStreamW = 1u << 9,     ///< w_r (weights only)
    kStreamVg = 1u << 10,   ///< vg_ (vg stream)
    kStreamVp = 1u << 11,   ///< vp_ (vp stream)
    kStreamAll = (1u << 12) - 1,
  };

  const double* row(const std::vector<double>& v,
                    std::size_t i) const noexcept {
    return v.data() + i * (n_ + 1);
  }

  /// Streams the parameter drift from `base` to (table, costs) invalidates
  /// (see the patch-constructor dependency map in the class comment).
  static unsigned stream_mask_for(const SegmentTables& base,
                                  const chain::WeightTable& table,
                                  const platform::CostModel& costs);

  std::size_t n_;
  bool has_rows_ = false;
  /// What the streams were built from, for the patch constructor's diff:
  /// the rates of the WeightTable and the planning law of the cost model.
  double lambda_f_ = 0.0;
  double lambda_s_ = 0.0;
  platform::PlanningLaw law_{};
  std::vector<double> exv_r_, b_r_, c_r_, d_r_, tl_r_, pf_r_, ef_r_, w_r_;
  std::vector<double> exvg_c_, b_c_, c_c_, d_c_, fs_c_;
  std::vector<double> vg_, vp_;
  QiCertificate qi_;

  /// Shared tail of both constructors: allocates/copies per `mask`, fills
  /// the masked streams through the law dispatch, and (re)probes the QI
  /// certificate when a column stream changed.
  void build(const chain::WeightTable& table, const platform::CostModel& costs,
             unsigned mask, const SegmentTables* base);
  /// Paper Eq. (4) coefficient fill (the default; also taken verbatim by a
  /// Weibull planning law at shape exactly 1, which makes the k = 1
  /// reduction bitwise).  Only the streams in `mask` are written.
  void build_exponential(const chain::WeightTable& table, unsigned mask);
  /// Law-integrated fill (platform::FailureLaw::kWeibull): same streams,
  /// with em1_f/x/tl/pf/ef/fs replaced by their renewal-law integrals --
  /// see the LawInterval block of segment_math.hpp.
  void build_weibull(const chain::WeightTable& table, double shape,
                     unsigned mask);
  void build_qi_certificate();
};

}  // namespace chainckpt::analysis
