// Closed-form expected-time formulas of the paper (Section III).
//
// These are the only place in the library where the paper's equations are
// written down; the dynamic programs (src/core) and the analytic plan
// evaluator (src/analysis/evaluator) both call into here, so an algebra
// fix propagates everywhere and the "DP value == evaluator(reconstructed
// plan)" test is meaningful.
//
// Notation (paper Figures 1-4): positions are task indices, 0 = virtual T0.
//   d1 : last disk checkpoint        m1 : last memory checkpoint
//   v1 : last guaranteed verification
//   p1, p2 : consecutive partial verifications
//   v2 : next guaranteed verification
#pragma once

#include <cstddef>

#include "chain/weight_table.hpp"

namespace chainckpt::analysis {

/// Quantities of one interval of tasks T_{i+1}..T_j.  em1_x = e^{x W} - 1
/// stored at full precision (see WeightTable).
struct Interval {
  double w = 0.0;      ///< W_{i,j}
  double em1_f = 0.0;  ///< e^{lambda_f W} - 1
  double em1_s = 0.0;  ///< e^{lambda_s W} - 1

  double exp_f() const noexcept { return 1.0 + em1_f; }
  double exp_s() const noexcept { return 1.0 + em1_s; }
  /// e^{(lambda_f + lambda_s) W} - 1, assembled without cancellation.
  double em1_fs() const noexcept {
    return em1_f + em1_s + em1_f * em1_s;
  }
  double exp_fs() const noexcept { return 1.0 + em1_fs(); }
};

Interval make_interval(const chain::WeightTable& table, std::size_t i,
                       std::size_t j);

/// Everything the formulas need to know about the segment's left context.
struct LeftContext {
  double r_disk = 0.0;   ///< R_D of the last disk checkpoint (0 for T0)
  double r_mem = 0.0;    ///< R_M of the last memory checkpoint (0 for T0)
  double e_mem = 0.0;    ///< E_mem(d1, m1): re-execute d1 -> m1
  double e_verif = 0.0;  ///< E_verif(d1, m1, v1): re-execute m1 -> v1
};

/// (e^{lambda_f W} - 1) / lambda_f, the first re-execution term of Eq. (4);
/// continuous limit W as lambda_f -> 0.
double em1f_over_lambda(const Interval& seg, double lambda_f) noexcept;

/// Paper Eq. (4): expected time to successfully execute the tasks between
/// two guaranteed verifications (interval (v1, v2]), including the cost
/// v_guaranteed of the verification at v2.
///
///   E = e^{ls W} ((e^{lf W} - 1)/lf + V*)
///     + e^{ls W} (e^{lf W} - 1)(R_D + E_mem)
///     + (e^{(ls+lf) W} - 1) E_verif
///     + (e^{ls W} - 1) R_M
double expected_verified_segment(const Interval& seg, double lambda_f,
                                 double v_guaranteed,
                                 const LeftContext& left) noexcept;

/// Paper Section III-B, E^-(d1,m1,v1,p1,p2,v2): expected time for the
/// interval (p1, p2] between two partial verifications, with the
/// E_left(v1,p1) re-execution term removed (it is re-injected by the
/// e^{(ls+lf) W_{p2,v2}} multiplier inside E_partial).  `e_right_next` is
/// E_right(d1,m1,v1,p2,v2) and `miss` is g = 1 - recall.
double e_minus_segment(const Interval& seg, double lambda_f, double v_partial,
                       double miss, const LeftContext& left,
                       double e_right_next) noexcept;

/// Paper Section III-B, one step of the E_right recursion: expected time
/// lost executing (p1, p2] while an undetected silent error is present,
/// where `e_right_next` is E_right at p2.  Initialization at p1 = v2 is
/// E_right = R_M (handled by the caller).
double e_right_step(const Interval& seg, double lambda_f, double v_partial,
                    double miss, double r_disk, double r_mem, double e_mem,
                    double e_right_next) noexcept;

/// Terminal choice of the E_partial recursion (p2 = v2): the interval
/// (p1, v2] is closed by the guaranteed verification, so the partial-
/// verification cost inside E^- is upgraded by
/// e^{(ls+lf) W_{p1,v2}} (V* - V).
/// `seg` is the interval (p1, v2] and `e_right_at_v2` is R_M.
double e_partial_terminal(const Interval& seg, double lambda_f,
                          double v_partial, double v_guaranteed, double miss,
                          const LeftContext& left) noexcept;

}  // namespace chainckpt::analysis
