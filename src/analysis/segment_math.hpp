// Closed-form expected-time formulas of the paper (Section III).
//
// These are the only place in the library where the paper's equations are
// written down; the dynamic programs (src/core) and the analytic plan
// evaluator (src/analysis/evaluator) both call into here, so an algebra
// fix propagates everywhere and the "DP value == evaluator(reconstructed
// plan)" test is meaningful.
//
// Notation (paper Figures 1-4): positions are task indices, 0 = virtual T0.
//   d1 : last disk checkpoint        m1 : last memory checkpoint
//   v1 : last guaranteed verification
//   p1, p2 : consecutive partial verifications
//   v2 : next guaranteed verification
#pragma once

#include <cstddef>
#include <vector>

#include "chain/weight_table.hpp"

namespace chainckpt::analysis {

/// Quantities of one interval of tasks T_{i+1}..T_j.  em1_x = e^{x W} - 1
/// stored at full precision (see WeightTable).
struct Interval {
  double w = 0.0;      ///< W_{i,j}
  double em1_f = 0.0;  ///< e^{lambda_f W} - 1
  double em1_s = 0.0;  ///< e^{lambda_s W} - 1

  double exp_f() const noexcept { return 1.0 + em1_f; }
  double exp_s() const noexcept { return 1.0 + em1_s; }
  /// e^{(lambda_f + lambda_s) W} - 1, assembled without cancellation.
  double em1_fs() const noexcept {
    return em1_f + em1_s + em1_f * em1_s;
  }
  double exp_fs() const noexcept { return 1.0 + em1_fs(); }
};

Interval make_interval(const chain::WeightTable& table, std::size_t i,
                       std::size_t j);

/// Everything the formulas need to know about the segment's left context.
struct LeftContext {
  double r_disk = 0.0;   ///< R_D of the last disk checkpoint (0 for T0)
  double r_mem = 0.0;    ///< R_M of the last memory checkpoint (0 for T0)
  double e_mem = 0.0;    ///< E_mem(d1, m1): re-execute d1 -> m1
  double e_verif = 0.0;  ///< E_verif(d1, m1, v1): re-execute m1 -> v1
};

/// (e^{lambda_f W} - 1) / lambda_f, the first re-execution term of Eq. (4);
/// continuous limit W as lambda_f -> 0.
double em1f_over_lambda(const Interval& seg, double lambda_f) noexcept;

/// Paper Eq. (4): expected time to successfully execute the tasks between
/// two guaranteed verifications (interval (v1, v2]), including the cost
/// v_guaranteed of the verification at v2.
///
///   E = e^{ls W} ((e^{lf W} - 1)/lf + V*)
///     + e^{ls W} (e^{lf W} - 1)(R_D + E_mem)
///     + (e^{(ls+lf) W} - 1) E_verif
///     + (e^{ls W} - 1) R_M
double expected_verified_segment(const Interval& seg, double lambda_f,
                                 double v_guaranteed,
                                 const LeftContext& left) noexcept;

/// Paper Section III-B, E^-(d1,m1,v1,p1,p2,v2): expected time for the
/// interval (p1, p2] between two partial verifications, with the
/// E_left(v1,p1) re-execution term removed (it is re-injected by the
/// e^{(ls+lf) W_{p2,v2}} multiplier inside E_partial).  `e_right_next` is
/// E_right(d1,m1,v1,p2,v2) and `miss` is g = 1 - recall.
double e_minus_segment(const Interval& seg, double lambda_f, double v_partial,
                       double miss, const LeftContext& left,
                       double e_right_next) noexcept;

/// Paper Section III-B, one step of the E_right recursion: expected time
/// lost executing (p1, p2] while an undetected silent error is present,
/// where `e_right_next` is E_right at p2.  Initialization at p1 = v2 is
/// E_right = R_M (handled by the caller).
double e_right_step(const Interval& seg, double lambda_f, double v_partial,
                    double miss, double r_disk, double r_mem, double e_mem,
                    double e_right_next) noexcept;

/// Terminal choice of the E_partial recursion (p2 = v2): the interval
/// (p1, v2] is closed by the guaranteed verification, so the partial-
/// verification cost inside E^- is upgraded by
/// e^{(ls+lf) W_{p1,v2}} (V* - V).
/// `seg` is the interval (p1, v2] and `e_right_at_v2` is R_M.
double e_partial_terminal(const Interval& seg, double lambda_f,
                          double v_partial, double v_guaranteed, double miss,
                          const LeftContext& left) noexcept;

// ---------------------------------------------------------------------------
// Law-integrated generalization (platform::FailureLaw::kWeibull).
//
// The simulator renews the fail-stop clock per *task attempt* (each task of
// weight w_t draws one failure time; see error::WeibullInjector), so the
// renewal argument behind Eq. (4) goes through for any attempt law, with
// the interval quantities replaced by their law integrals:
//
//   H(i,j)      = sum_{t=i+1}^{j} rho_t,  rho_t = (w_t / theta)^k
//                 (cumulative hazard of one attempt over the interval)
//   e^{lf W}    ->  e^{H}          em1_f  ->  expm1(H)
//   Lambda(i,j) = E[elapsed * 1{attempt fails}]
//               = sum_t e^{-H(i,t-1)} (p_t W(i,t-1) + E[T 1{T<w_t}])
//   x = (e^{lf W}-1)/lf  ->  Lambda e^{H} + W
//   T_lost (Eq. 3)       ->  Lambda / p_fail
//
// Silent errors stay per-task Bernoulli-exponential in both the model and
// the simulator, so every lambda_s term is untouched; the four formulas
// below keep the exact linear structure of their exponential counterparts,
// which is what lets SegmentTables feed the same SoA coefficient streams
// to the unmodified DP kernels.  At shape k = 1 the quantities reduce to
// the exponential ones analytically (H = lf W, Lambda e^H + W = em1_f/lf);
// bitwise equality of the streams is obtained by delegation, not by this
// path (see segment_tables.cpp).
// ---------------------------------------------------------------------------

/// Interval quantities under an arbitrary per-attempt failure law.  em1_f
/// carries expm1(H); x and t_lost carry the law integrals that the
/// exponential formulas derive from lambda_f on the fly.
struct LawInterval {
  double w = 0.0;       ///< W_{i,j}
  double em1_f = 0.0;   ///< e^{H(i,j)} - 1
  double em1_s = 0.0;   ///< e^{lambda_s W} - 1 (silent errors unchanged)
  double x = 0.0;       ///< Lambda e^{H} + W (law integral of (e^{lf W}-1)/lf)
  double t_lost = 0.0;  ///< E[elapsed | the attempt fails] = Lambda / p_fail

  double exp_f() const noexcept { return 1.0 + em1_f; }
  double exp_s() const noexcept { return 1.0 + em1_s; }
  double em1_fs() const noexcept { return em1_f + em1_s + em1_f * em1_s; }
  double exp_fs() const noexcept { return 1.0 + em1_fs(); }
};

/// Per-task hazard data of a chain under a mean-matched Weibull planning
/// law: theta = 1 / (lambda_f * Gamma(1 + 1/shape)) so one attempt's mean
/// time-to-failure equals the exponential law's 1/lambda_f.  lambda_f <= 0
/// degenerates to the failure-free law (all hazards zero).
class WeibullLawTasks {
 public:
  WeibullLawTasks(const chain::WeightTable& table, double lambda_f,
                  double shape);

  std::size_t n() const noexcept { return rho_.size() - 1; }
  double shape() const noexcept { return shape_; }
  /// Per-attempt hazard rho_t = (w_t / theta)^shape, t in 1..n.
  double rho(std::size_t t) const noexcept { return rho_[t]; }
  /// P(task t's attempt fails) = 1 - e^{-rho_t}.
  double p_fail(std::size_t t) const noexcept { return p_fail_[t]; }
  /// E[T 1{T < w_t}]: expected elapsed work inside task t on a failing
  /// attempt.  Closed form theta Gamma(1+1/k) P(1+1/k, rho_t) = P(...)/
  /// lambda_f, with Gauss-Legendre quadrature as the fallback.
  double elapsed_when_failed(std::size_t t) const noexcept {
    return elapsed_failed_[t];
  }

 private:
  double shape_ = 1.0;
  std::vector<double> rho_;
  std::vector<double> p_fail_;
  std::vector<double> elapsed_failed_;
};

/// Law quantities of the interval (i, j], accumulated left-to-right over
/// the tasks.  The operation order matches the SegmentTables Weibull build
/// exactly (one exp(-H) per task, Lambda summed in task order), so values
/// computed here are bitwise equal to the stored streams.
LawInterval make_law_interval(const chain::WeightTable& table,
                              const WeibullLawTasks& tasks, std::size_t i,
                              std::size_t j);

/// Eq. (4) under the law integrals; same linear structure, with the x term
/// carried inside `seg`.
double expected_verified_segment(const LawInterval& seg, double v_guaranteed,
                                 const LeftContext& left) noexcept;

/// Section III-B E^- under the law integrals.
double e_minus_segment(const LawInterval& seg, double v_partial, double miss,
                       const LeftContext& left, double e_right_next) noexcept;

/// Section III-B E_right step under the law integrals (t_lost is carried
/// inside `seg`).
double e_right_step(const LawInterval& seg, double v_partial, double miss,
                    double r_disk, double r_mem, double e_mem,
                    double e_right_next) noexcept;

/// Terminal E_partial choice under the law integrals.
double e_partial_terminal(const LawInterval& seg, double v_partial,
                          double v_guaranteed, double miss,
                          const LeftContext& left) noexcept;

}  // namespace chainckpt::analysis
