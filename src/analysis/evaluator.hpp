// Analytic evaluation of an arbitrary resilience plan.
//
// Mirrors the paper's recursions with *fixed* (rather than minimized)
// positions, which gives three guarantees the library leans on:
//   * the DP optimum re-scored through the evaluator must reproduce the DP
//     value exactly (cross-check in tests);
//   * brute-force enumeration over all plans scored with the evaluator
//     provides an independent optimality oracle for small n;
//   * heuristic/baseline plans are scored with the exact same semantics as
//     the optimal ones.
//
// Two formula modes exist because the paper itself has two frameworks:
//   * kTwoLevel        : Eq. (4) per guaranteed-verification segment
//                        (Section III-A); requires a partial-free plan.
//   * kPartialFramework: the E^- / E_right / E_partial machinery of
//                        Section III-B; handles any plan.  On partial-free
//                        plans it differs from Eq. (4) only by the
//                        guaranteed-verification accounting term
//                        (V*-V)(e^{(lf+ls)W} - e^{ls W}) -- see DESIGN.md.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "analysis/segment_math.hpp"
#include "chain/chain.hpp"
#include "chain/weight_table.hpp"
#include "plan/plan.hpp"
#include "platform/cost_model.hpp"

namespace chainckpt::analysis {

enum class FormulaMode {
  kAuto,              ///< kTwoLevel when partial-free, else kPartialFramework
  kTwoLevel,          ///< paper Section III-A (Eq. 4)
  kPartialFramework,  ///< paper Section III-B
};

/// Value of one guaranteed-verification segment (v1, v2] in its context:
/// d1/m1 are the last disk/memory checkpoints at the time the segment
/// executes.  `value` is the expected time to get from v1 verified to v2
/// verified (including the verification costs and all expected rollbacks).
struct SegmentValue {
  std::size_t d1 = 0;
  std::size_t m1 = 0;
  std::size_t v1 = 0;
  std::size_t v2 = 0;
  double value = 0.0;
};

class PlanEvaluator {
 public:
  /// Copies the chain and cost model (both are small value types).
  PlanEvaluator(chain::TaskChain chain, platform::CostModel costs);

  /// Expected makespan of `plan` on this chain/platform.  Throws
  /// std::invalid_argument when the plan size does not match the chain,
  /// when the plan is structurally invalid, or when kTwoLevel is requested
  /// for a plan containing partial verifications.
  double expected_makespan(const plan::ResiliencePlan& plan,
                           FormulaMode mode = FormulaMode::kAuto) const;

  /// Expected makespan divided by the error-free total weight; >= 1 for
  /// any plan under any error rates.
  double normalized_makespan(const plan::ResiliencePlan& plan,
                             FormulaMode mode = FormulaMode::kAuto) const;

  /// The per-segment decomposition behind expected_makespan:
  /// expected_makespan == sum(segment values) + sum(memory checkpoint
  /// costs) + sum(disk checkpoint costs).
  std::vector<SegmentValue> verified_segments(
      const plan::ResiliencePlan& plan,
      FormulaMode mode = FormulaMode::kAuto) const;

  const chain::TaskChain& chain() const noexcept { return chain_; }
  const platform::CostModel& costs() const noexcept { return costs_; }
  const chain::WeightTable& weight_table() const noexcept { return table_; }

 private:
  template <typename Visitor>
  void walk_segments(const plan::ResiliencePlan& plan, FormulaMode mode,
                     Visitor&& visit) const;

  /// Expected time for a guaranteed-verification segment (v1, v2] with the
  /// partial verifications of `plan` inside it, using the Section III-B
  /// machinery.  `left` carries R_D/R_M/E_mem/E_verif of the context.
  double partial_segment_value(const plan::ResiliencePlan& plan,
                               std::size_t v1, std::size_t v2,
                               const LeftContext& left) const;

  FormulaMode resolve_mode(const plan::ResiliencePlan& plan,
                           FormulaMode mode) const;

  chain::TaskChain chain_;
  platform::CostModel costs_;
  chain::WeightTable table_;
  /// Engaged when the cost model carries a non-exponential planning law
  /// (platform::FailureLaw::kWeibull with shape != 1); the walk then scores
  /// segments with the law-integrated formulas of segment_math.hpp, in the
  /// same operation order as the SegmentTables streams the DPs consume.
  std::optional<WeibullLawTasks> law_tasks_;
};

}  // namespace chainckpt::analysis
