#include "plan/plan_diff.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace chainckpt::plan {

std::size_t PlanDiff::upgrades() const noexcept {
  std::size_t count = 0;
  for (const auto& change : changes)
    if (change.is_upgrade()) ++count;
  return count;
}

std::size_t PlanDiff::downgrades() const noexcept {
  return changes.size() - upgrades();
}

std::string PlanDiff::describe() const {
  if (changes.empty()) return "(plans are identical)\n";
  std::ostringstream os;
  for (const auto& change : changes) {
    os << 'T' << change.position << ": " << to_token(change.before)
       << " -> " << to_token(change.after) << '\n';
  }
  return os.str();
}

PlanDiff diff_plans(const ResiliencePlan& before,
                    const ResiliencePlan& after) {
  CHAINCKPT_REQUIRE(before.size() == after.size(),
                    "can only diff plans over the same chain");
  PlanDiff diff;
  for (std::size_t i = 1; i <= before.size(); ++i) {
    if (before.action(i) != after.action(i)) {
      diff.changes.push_back(PlanChange{i, before.action(i),
                                        after.action(i)});
    }
  }
  return diff;
}

}  // namespace chainckpt::plan
