// A resilience plan: which action to take after each task of a chain.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "plan/action.hpp"

namespace chainckpt::plan {

/// Counts of placed mechanisms.  Following the paper's figures, the
/// mandatory final V*+M+D bundle after T_n can be excluded ("interior"
/// counts, positions 1..n-1) or included ("total").  Memory-checkpoint
/// counts include those bundled under disk checkpoints, and
/// guaranteed-verification counts include those bundled under checkpoints,
/// matching Figure 5 where ADV* shows equal #disk and #memory curves.
struct ActionCounts {
  std::size_t disk = 0;
  std::size_t memory = 0;
  std::size_t guaranteed = 0;
  std::size_t partial = 0;
};

class ResiliencePlan {
 public:
  ResiliencePlan() = default;

  /// A fresh plan over n tasks: every interior position is kNone and the
  /// mandatory final position n is kDiskCheckpoint.
  explicit ResiliencePlan(std::size_t n);

  /// Builds from explicit actions (size n, positions 1..n).  Does not
  /// validate; call validate() or use PlanBuilder.
  explicit ResiliencePlan(std::vector<Action> actions);

  std::size_t size() const noexcept { return actions_.size(); }

  /// Action after task i, 1-based.  Position 0 (virtual T0) is reported as
  /// kDiskCheckpoint, matching the paper's convention.
  Action action(std::size_t i) const;
  /// Replaces the action after task i (1-based); bounds-checked.  Callers
  /// mutating interior positions should re-run validate() when done.
  void set_action(std::size_t i, Action a);

  /// Structural validation: n >= 1 and the final task carries a disk
  /// checkpoint (the model requires the output of T_n to be verified and
  /// saved).  Throws std::invalid_argument on violation.
  void validate() const;

  /// Mechanism counts over interior positions 1..n-1 / all positions 1..n
  /// (see ActionCounts for the bundling conventions).
  ActionCounts interior_counts() const noexcept;
  ActionCounts total_counts() const noexcept;

  /// True when any position carries a partial verification -- i.e. the
  /// plan needs the Section III-B (ADMV) scoring formulas.
  bool uses_partial_verifications() const noexcept;

  /// Position of the last action satisfying `pred` at or before position i
  /// (0 = virtual T0 counts as disk+memory+guaranteed).  Used by the
  /// simulator and the evaluator.
  std::size_t last_disk_at_or_before(std::size_t i) const noexcept;
  std::size_t last_memory_at_or_before(std::size_t i) const noexcept;

  /// All positions in [1, n] whose action includes a disk checkpoint,
  /// ascending (the final position n is always present in a valid plan).
  std::vector<std::size_t> disk_positions() const;
  /// Positions with a memory checkpoint (includes disk positions).
  std::vector<std::size_t> memory_positions() const;
  /// Positions with a guaranteed verification (includes checkpoints).
  std::vector<std::size_t> guaranteed_positions() const;
  /// Positions with a partial verification.
  std::vector<std::size_t> partial_positions() const;

  bool operator==(const ResiliencePlan& other) const noexcept {
    return actions_ == other.actions_;
  }

  /// Compact single-line form, one character per position:
  /// '-' none, 'v' partial, 'V' guaranteed, 'M' memory, 'D' disk.
  std::string compact_string() const;

 private:
  std::vector<Action> actions_;
};

}  // namespace chainckpt::plan
