// Fluent construction of valid resilience plans.
#pragma once

#include <cstddef>
#include <vector>

#include "plan/plan.hpp"

namespace chainckpt::plan {

/// Builds a plan over n tasks.  The final disk checkpoint is implicit.
/// Placing a stronger action over a weaker one upgrades it; placing a
/// weaker action over a stronger one is rejected (the caller's intent is
/// ambiguous), except that re-placing the same action is idempotent.
class PlanBuilder {
 public:
  explicit PlanBuilder(std::size_t n);

  PlanBuilder& partial_verif_at(std::size_t i);
  PlanBuilder& guaranteed_verif_at(std::size_t i);
  PlanBuilder& memory_checkpoint_at(std::size_t i);
  PlanBuilder& disk_checkpoint_at(std::size_t i);

  /// Convenience bulk forms.
  PlanBuilder& partial_verifs_at(const std::vector<std::size_t>& positions);
  PlanBuilder& guaranteed_verifs_at(const std::vector<std::size_t>& positions);
  PlanBuilder& memory_checkpoints_at(const std::vector<std::size_t>& positions);
  PlanBuilder& disk_checkpoints_at(const std::vector<std::size_t>& positions);

  /// Validates and returns the plan.
  ResiliencePlan build() const;

 private:
  PlanBuilder& place(std::size_t i, Action a);
  ResiliencePlan plan_;
};

}  // namespace chainckpt::plan
