// Structural comparison of two plans over the same chain: which positions
// gained, lost, or changed their resilience action.  Used by the examples
// and benches to explain *how* algorithms differ, not only by how much.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "plan/plan.hpp"

namespace chainckpt::plan {

struct PlanChange {
  std::size_t position = 0;
  Action before = Action::kNone;
  Action after = Action::kNone;

  /// True when `after` is a strictly stronger decoration than `before`
  /// (partial < guaranteed < memory < disk in protection order).
  bool is_upgrade() const noexcept {
    return static_cast<int>(after) > static_cast<int>(before);
  }
};

struct PlanDiff {
  std::vector<PlanChange> changes;

  bool empty() const noexcept { return changes.empty(); }
  std::size_t upgrades() const noexcept;
  std::size_t downgrades() const noexcept;

  /// One line per change: "T12: V* -> M".
  std::string describe() const;
};

/// Positions where the two plans disagree; throws std::invalid_argument
/// on size mismatch.
PlanDiff diff_plans(const ResiliencePlan& before,
                    const ResiliencePlan& after);

}  // namespace chainckpt::plan
