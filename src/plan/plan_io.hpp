// Plan serialization.
//
// Text format (round-trippable):
//   chainckpt-plan v1 n=<n>
//   <pos>:<token> <pos>:<token> ...
// where tokens are V, V*, M, D and omitted positions are kNone.  A JSON
// writer is provided for interop with external tooling (no JSON parser: the
// text format is the canonical one).
#pragma once

#include <iosfwd>
#include <string>

#include "plan/plan.hpp"

namespace chainckpt::plan {

/// Canonical round-trippable serialization (see the format above).
std::string to_text(const ResiliencePlan& plan);

/// Parses the text format; throws std::invalid_argument on malformed input
/// or structurally invalid plans.
ResiliencePlan from_text(const std::string& text);

/// JSON rendering for external tooling; write-only (to_text/from_text is
/// the round-trip pair).
std::string to_json(const ResiliencePlan& plan);

/// Streams exactly what to_text returns.
void write_text(std::ostream& os, const ResiliencePlan& plan);

}  // namespace chainckpt::plan
