#include "plan/render.hpp"

#include <sstream>

namespace chainckpt::plan {

namespace {
std::string marker_row(const ResiliencePlan& plan, const std::string& label,
                       bool (*pred)(Action)) {
  std::string row = label;
  for (std::size_t i = 1; i <= plan.size(); ++i) {
    row += pred(plan.action(i)) ? "x" : ".";
  }
  return row;
}
}  // namespace

std::string render_figure(const ResiliencePlan& plan,
                          const std::string& title) {
  std::ostringstream os;
  os << title << '\n';
  const std::string pad(20, ' ');
  os << marker_row(plan, "Disk ckpts          ",
                   [](Action a) { return has_disk_checkpoint(a); })
     << '\n';
  os << marker_row(plan, "Memory ckpts        ",
                   [](Action a) { return has_memory_checkpoint(a); })
     << '\n';
  os << marker_row(plan, "Guaranteed verifs   ",
                   [](Action a) { return has_guaranteed_verif(a); })
     << '\n';
  os << marker_row(plan, "Partial verifs      ",
                   [](Action a) { return has_partial_verif(a); })
     << '\n';
  // Axis with a tick label every 10 positions.
  std::string axis = pad;
  for (std::size_t i = 1; i <= plan.size(); ++i)
    axis += (i % 10 == 0) ? '|' : (i % 5 == 0 ? '+' : '-');
  os << axis << '\n';
  std::string labels = pad;
  for (std::size_t i = 1; i <= plan.size(); ++i) {
    if (i % 10 == 0) {
      std::string num = std::to_string(i);
      // Right-align the number under its tick.
      if (labels.size() + 1 >= num.size()) {
        labels.resize(pad.size() + i - num.size(), ' ');
        labels += num;
      }
    }
  }
  os << labels << '\n';
  return os.str();
}

std::string render_compact(const ResiliencePlan& plan) {
  std::ostringstream os;
  os << "tasks 1.." << plan.size() << ": " << plan.compact_string();
  return os.str();
}

}  // namespace chainckpt::plan
