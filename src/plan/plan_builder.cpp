#include "plan/plan_builder.hpp"

#include "util/assert.hpp"

namespace chainckpt::plan {

PlanBuilder::PlanBuilder(std::size_t n) : plan_(n) {}

PlanBuilder& PlanBuilder::place(std::size_t i, Action a) {
  const Action current = plan_.action(i);
  if (current == a) return *this;
  CHAINCKPT_REQUIRE(
      static_cast<int>(a) > static_cast<int>(current),
      "cannot downgrade an already-placed action at position " +
          std::to_string(i) + " (" + to_token(current) + " -> " +
          to_token(a) + ")");
  plan_.set_action(i, a);
  return *this;
}

PlanBuilder& PlanBuilder::partial_verif_at(std::size_t i) {
  return place(i, Action::kPartialVerif);
}

PlanBuilder& PlanBuilder::guaranteed_verif_at(std::size_t i) {
  return place(i, Action::kGuaranteedVerif);
}

PlanBuilder& PlanBuilder::memory_checkpoint_at(std::size_t i) {
  return place(i, Action::kMemoryCheckpoint);
}

PlanBuilder& PlanBuilder::disk_checkpoint_at(std::size_t i) {
  return place(i, Action::kDiskCheckpoint);
}

PlanBuilder& PlanBuilder::partial_verifs_at(
    const std::vector<std::size_t>& positions) {
  for (auto i : positions) partial_verif_at(i);
  return *this;
}

PlanBuilder& PlanBuilder::guaranteed_verifs_at(
    const std::vector<std::size_t>& positions) {
  for (auto i : positions) guaranteed_verif_at(i);
  return *this;
}

PlanBuilder& PlanBuilder::memory_checkpoints_at(
    const std::vector<std::size_t>& positions) {
  for (auto i : positions) memory_checkpoint_at(i);
  return *this;
}

PlanBuilder& PlanBuilder::disk_checkpoints_at(
    const std::vector<std::size_t>& positions) {
  for (auto i : positions) disk_checkpoint_at(i);
  return *this;
}

ResiliencePlan PlanBuilder::build() const {
  plan_.validate();
  return plan_;
}

}  // namespace chainckpt::plan
