#include "plan/plan_io.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace chainckpt::plan {

std::string to_text(const ResiliencePlan& plan) {
  std::ostringstream os;
  os << "chainckpt-plan v1 n=" << plan.size() << '\n';
  bool first = true;
  for (std::size_t i = 1; i <= plan.size(); ++i) {
    const Action a = plan.action(i);
    if (a == Action::kNone) continue;
    if (!first) os << ' ';
    os << i << ':' << to_token(a);
    first = false;
  }
  os << '\n';
  return os.str();
}

ResiliencePlan from_text(const std::string& text) {
  std::istringstream is(text);
  std::string magic, version, nfield;
  is >> magic >> version >> nfield;
  if (magic != "chainckpt-plan" || version != "v1" ||
      nfield.rfind("n=", 0) != 0) {
    throw std::invalid_argument("malformed plan header");
  }
  std::size_t n = 0;
  try {
    n = static_cast<std::size_t>(std::stoull(nfield.substr(2)));
  } catch (const std::exception&) {
    throw std::invalid_argument("malformed plan size: " + nfield);
  }
  if (n == 0) throw std::invalid_argument("plan size must be >= 1");

  ResiliencePlan plan(n);
  // The constructor pre-places the final disk checkpoint; clear it so the
  // serialized actions fully determine the result, then validate.
  plan.set_action(n, Action::kNone);
  std::string entry;
  while (is >> entry) {
    const auto colon = entry.find(':');
    if (colon == std::string::npos)
      throw std::invalid_argument("malformed plan entry: " + entry);
    std::size_t pos = 0;
    try {
      pos = static_cast<std::size_t>(std::stoull(entry.substr(0, colon)));
    } catch (const std::exception&) {
      throw std::invalid_argument("malformed plan position: " + entry);
    }
    if (pos < 1 || pos > n)
      throw std::invalid_argument("plan position out of range: " + entry);
    plan.set_action(pos, action_from_token(entry.substr(colon + 1)));
  }
  plan.validate();
  return plan;
}

std::string to_json(const ResiliencePlan& plan) {
  std::ostringstream os;
  os << "{\"n\":" << plan.size() << ",\"actions\":[";
  bool first = true;
  for (std::size_t i = 1; i <= plan.size(); ++i) {
    const Action a = plan.action(i);
    if (a == Action::kNone) continue;
    if (!first) os << ',';
    os << "{\"pos\":" << i << ",\"kind\":\"" << to_token(a) << "\"}";
    first = false;
  }
  os << "]}";
  return os.str();
}

void write_text(std::ostream& os, const ResiliencePlan& plan) {
  os << to_text(plan);
}

}  // namespace chainckpt::plan
