// Figure-6-style ASCII rendering of a plan: one row per mechanism, one
// column per task boundary.
#pragma once

#include <string>

#include "plan/plan.hpp"

namespace chainckpt::plan {

/// Renders four aligned rows (disk ckpts / memory ckpts / guaranteed
/// verifs / partial verifs) plus an axis.  `title` is printed above.
/// Memory-checkpoint markers include disk positions and guaranteed-verif
/// markers include checkpoint positions, mirroring the bundling of
/// mechanisms in the paper's Figure 6.
std::string render_figure(const ResiliencePlan& plan,
                          const std::string& title);

/// One-line rendering: position ruler + compact action string.
std::string render_compact(const ResiliencePlan& plan);

}  // namespace chainckpt::plan
