#include "plan/plan.hpp"

#include <stdexcept>

#include "util/assert.hpp"

namespace chainckpt::plan {

std::string to_token(Action a) {
  switch (a) {
    case Action::kNone:
      return "-";
    case Action::kPartialVerif:
      return "V";
    case Action::kGuaranteedVerif:
      return "V*";
    case Action::kMemoryCheckpoint:
      return "M";
    case Action::kDiskCheckpoint:
      return "D";
  }
  throw std::invalid_argument("unknown action value");
}

Action action_from_token(const std::string& token) {
  if (token == "-") return Action::kNone;
  if (token == "V") return Action::kPartialVerif;
  if (token == "V*") return Action::kGuaranteedVerif;
  if (token == "M") return Action::kMemoryCheckpoint;
  if (token == "D") return Action::kDiskCheckpoint;
  throw std::invalid_argument("unknown action token: " + token);
}

ResiliencePlan::ResiliencePlan(std::size_t n) : actions_(n, Action::kNone) {
  CHAINCKPT_REQUIRE(n >= 1, "a plan needs at least one task");
  actions_.back() = Action::kDiskCheckpoint;
}

ResiliencePlan::ResiliencePlan(std::vector<Action> actions)
    : actions_(std::move(actions)) {}

Action ResiliencePlan::action(std::size_t i) const {
  if (i == 0) return Action::kDiskCheckpoint;  // virtual T0
  CHAINCKPT_REQUIRE(i <= actions_.size(), "position out of range");
  return actions_[i - 1];
}

void ResiliencePlan::set_action(std::size_t i, Action a) {
  CHAINCKPT_REQUIRE(i >= 1 && i <= actions_.size(),
                    "position out of range (1-based)");
  actions_[i - 1] = a;
}

void ResiliencePlan::validate() const {
  CHAINCKPT_REQUIRE(!actions_.empty(), "a plan needs at least one task");
  CHAINCKPT_REQUIRE(has_disk_checkpoint(actions_.back()),
                    "the final task must be verified and checkpointed "
                    "(memory + disk)");
}

namespace {
ActionCounts count_range(const std::vector<Action>& actions,
                         std::size_t count) {
  ActionCounts c;
  for (std::size_t k = 0; k < count; ++k) {
    const Action a = actions[k];
    if (has_disk_checkpoint(a)) ++c.disk;
    if (has_memory_checkpoint(a)) ++c.memory;
    if (has_guaranteed_verif(a)) ++c.guaranteed;
    if (has_partial_verif(a)) ++c.partial;
  }
  return c;
}
}  // namespace

ActionCounts ResiliencePlan::interior_counts() const noexcept {
  return actions_.empty() ? ActionCounts{}
                          : count_range(actions_, actions_.size() - 1);
}

ActionCounts ResiliencePlan::total_counts() const noexcept {
  return count_range(actions_, actions_.size());
}

bool ResiliencePlan::uses_partial_verifications() const noexcept {
  for (Action a : actions_)
    if (has_partial_verif(a)) return true;
  return false;
}

std::size_t ResiliencePlan::last_disk_at_or_before(
    std::size_t i) const noexcept {
  for (std::size_t k = std::min(i, actions_.size()); k >= 1; --k)
    if (has_disk_checkpoint(actions_[k - 1])) return k;
  return 0;
}

std::size_t ResiliencePlan::last_memory_at_or_before(
    std::size_t i) const noexcept {
  for (std::size_t k = std::min(i, actions_.size()); k >= 1; --k)
    if (has_memory_checkpoint(actions_[k - 1])) return k;
  return 0;
}

namespace {
template <typename Pred>
std::vector<std::size_t> collect(const std::vector<Action>& actions,
                                 Pred pred) {
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < actions.size(); ++k)
    if (pred(actions[k])) out.push_back(k + 1);
  return out;
}
}  // namespace

std::vector<std::size_t> ResiliencePlan::disk_positions() const {
  return collect(actions_, [](Action a) { return has_disk_checkpoint(a); });
}

std::vector<std::size_t> ResiliencePlan::memory_positions() const {
  return collect(actions_, [](Action a) { return has_memory_checkpoint(a); });
}

std::vector<std::size_t> ResiliencePlan::guaranteed_positions() const {
  return collect(actions_, [](Action a) { return has_guaranteed_verif(a); });
}

std::vector<std::size_t> ResiliencePlan::partial_positions() const {
  return collect(actions_, [](Action a) { return has_partial_verif(a); });
}

std::string ResiliencePlan::compact_string() const {
  std::string out;
  out.reserve(actions_.size());
  for (Action a : actions_) {
    switch (a) {
      case Action::kNone:
        out += '-';
        break;
      case Action::kPartialVerif:
        out += 'v';
        break;
      case Action::kGuaranteedVerif:
        out += 'V';
        break;
      case Action::kMemoryCheckpoint:
        out += 'M';
        break;
      case Action::kDiskCheckpoint:
        out += 'D';
        break;
    }
  }
  return out;
}

}  // namespace chainckpt::plan
