// Resilience action attached to the end of a task.
//
// The paper's structural rules make the possible decorations strictly
// nested: a disk checkpoint is always preceded by a memory checkpoint,
// which is always preceded by a guaranteed verification.  A single enum
// therefore describes the complete decision at each task boundary:
//
//   kNone            : nothing
//   kPartialVerif    : V   (partial verification, recall r < 1)
//   kGuaranteedVerif : V*  (guaranteed verification)
//   kMemoryCheckpoint: V* + C_M
//   kDiskCheckpoint  : V* + C_M + C_D
#pragma once

#include <cstdint>
#include <string>

namespace chainckpt::plan {

enum class Action : std::uint8_t {
  kNone = 0,
  kPartialVerif = 1,
  kGuaranteedVerif = 2,
  kMemoryCheckpoint = 3,
  kDiskCheckpoint = 4,
};

/// True when the action includes a guaranteed verification.
constexpr bool has_guaranteed_verif(Action a) noexcept {
  return a == Action::kGuaranteedVerif || a == Action::kMemoryCheckpoint ||
         a == Action::kDiskCheckpoint;
}

/// True when the action includes a memory checkpoint.
constexpr bool has_memory_checkpoint(Action a) noexcept {
  return a == Action::kMemoryCheckpoint || a == Action::kDiskCheckpoint;
}

/// True when the action includes a disk checkpoint.
constexpr bool has_disk_checkpoint(Action a) noexcept {
  return a == Action::kDiskCheckpoint;
}

/// True when the action is exactly a partial verification.
constexpr bool has_partial_verif(Action a) noexcept {
  return a == Action::kPartialVerif;
}

/// True when the action ends with any verification (partial or guaranteed).
constexpr bool has_any_verif(Action a) noexcept {
  return a != Action::kNone;
}

/// Serialization tokens: "-", "V", "V*", "M", "D".
std::string to_token(Action a);
/// Inverse of to_token; throws std::invalid_argument on unknown tokens.
Action action_from_token(const std::string& token);

}  // namespace chainckpt::plan
