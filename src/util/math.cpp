#include "util/math.hpp"

#include <algorithm>
#include <cmath>

namespace chainckpt::util {

double expm1_over_x(double x) noexcept {
  // For |x| below ~1e-5 the 3-term Taylor series is exact to double
  // precision; above that expm1 is itself accurate.
  const double ax = std::abs(x);
  if (ax < 1e-5) {
    return 1.0 + x * (0.5 + x * (1.0 / 6.0 + x * (1.0 / 24.0)));
  }
  return std::expm1(x) / x;
}

double one_minus_exp_neg(double x) noexcept { return -std::expm1(-x); }

double error_probability(double lambda, double duration) noexcept {
  return one_minus_exp_neg(lambda * duration);
}

double expected_time_lost(double lambda, double duration) noexcept {
  if (duration <= 0.0) return 0.0;
  const double x = lambda * duration;
  // T_lost = 1/lambda - W/(e^x - 1) = (W/x) * (1 - x/(e^x - 1))
  //        = W * (expm1(x) - x) / (x * expm1(x)).
  // Small-x expansion of 1/x - 1/(e^x - 1) is 1/2 - x/12 + x^3/720 - ...
  if (x < 1e-4) {
    return duration * (0.5 - x / 12.0);
  }
  // For x beyond ~36, W/(e^x - 1) underflows against 1/lambda: the error
  // almost surely strikes long before the window closes.
  if (x > 36.0) return 1.0 / lambda;
  const double em1 = std::expm1(x);
  return duration * (em1 - x) / (x * em1);
}

double incomplete_gamma_p(double a, double x) noexcept {
  if (!(x > 0.0) || !(a > 0.0)) return 0.0;
  // Both branches share the prefactor x^a e^{-x} / Gamma(a), assembled in
  // log space so large x (deep tails) underflows gracefully to P = 1.
  const double log_prefactor = a * std::log(x) - x - std::lgamma(a);
  if (x < a + 1.0) {
    // P(a,x) = prefactor * sum_{n>=0} x^n / (a (a+1) ... (a+n)).
    double ap = a;
    double term = 1.0 / a;
    double sum = term;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (term < sum * 1e-17) break;
    }
    return sum * std::exp(log_prefactor);
  }
  // Q(a,x) via the modified Lentz continued fraction
  //   Q = prefactor * 1/(x+1-a - 1(1-a)/(x+3-a - 2(2-a)/(x+5-a - ...))).
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-16) break;
  }
  const double q = std::exp(log_prefactor) * h;
  return 1.0 - q;
}

namespace {

/// 32-point Gauss-Legendre rule on (-1, 1), nodes found once by Newton
/// iteration on P_32 (deterministic; no constant table to mistype).
struct GaussLegendre32 {
  static constexpr int kNodes = 32;
  double node[kNodes];
  double weight[kNodes];

  GaussLegendre32() noexcept {
    const double pi = std::acos(-1.0);
    for (int i = 0; i < (kNodes + 1) / 2; ++i) {
      double z = std::cos(pi * (i + 0.75) / (kNodes + 0.5));
      double pp = 0.0;
      for (int iter = 0; iter < 100; ++iter) {
        double p0 = 1.0;
        double p1 = 0.0;
        for (int j = 0; j < kNodes; ++j) {
          const double p2 = p1;
          p1 = p0;
          p0 = ((2.0 * j + 1.0) * z * p1 - j * p2) / (j + 1.0);
        }
        pp = kNodes * (z * p0 - p1) / (z * z - 1.0);
        const double z1 = z;
        z = z1 - p0 / pp;
        if (std::abs(z - z1) <= 1e-15) break;
      }
      node[i] = -z;
      node[kNodes - 1 - i] = z;
      weight[i] = weight[kNodes - 1 - i] = 2.0 / ((1.0 - z * z) * pp * pp);
    }
  }
};

const GaussLegendre32& gauss_legendre_32() noexcept {
  static const GaussLegendre32 rule;
  return rule;
}

}  // namespace

double weibull_elapsed_quadrature(double shape, double scale,
                                  double w) noexcept {
  if (!(w > 0.0) || !(shape > 0.0) || !(scale > 0.0) ||
      !std::isfinite(scale)) {
    return 0.0;
  }
  const double rho = std::pow(w / scale, shape);
  // Beyond u ~ 50 the integrand's e^{-u} factor is below 2e-22 of the
  // peak; truncating keeps the fixed rule accurate when rho is huge.
  const double upper = std::min(rho, 50.0);
  const GaussLegendre32& rule = gauss_legendre_32();
  const double half = 0.5 * upper;
  const double inv_shape = 1.0 / shape;
  double sum = 0.0;
  for (int i = 0; i < GaussLegendre32::kNodes; ++i) {
    const double u = half * (rule.node[i] + 1.0);
    sum += rule.weight[i] * std::pow(u, inv_shape) * std::exp(-u);
  }
  return scale * half * sum;
}

bool approx_equal(double a, double b, double rel_tol) noexcept {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= rel_tol * scale;
}

}  // namespace chainckpt::util
