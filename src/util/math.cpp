#include "util/math.hpp"

#include <algorithm>
#include <cmath>

namespace chainckpt::util {

double expm1_over_x(double x) noexcept {
  // For |x| below ~1e-5 the 3-term Taylor series is exact to double
  // precision; above that expm1 is itself accurate.
  const double ax = std::abs(x);
  if (ax < 1e-5) {
    return 1.0 + x * (0.5 + x * (1.0 / 6.0 + x * (1.0 / 24.0)));
  }
  return std::expm1(x) / x;
}

double one_minus_exp_neg(double x) noexcept { return -std::expm1(-x); }

double error_probability(double lambda, double duration) noexcept {
  return one_minus_exp_neg(lambda * duration);
}

double expected_time_lost(double lambda, double duration) noexcept {
  if (duration <= 0.0) return 0.0;
  const double x = lambda * duration;
  // T_lost = 1/lambda - W/(e^x - 1) = (W/x) * (1 - x/(e^x - 1))
  //        = W * (expm1(x) - x) / (x * expm1(x)).
  // Small-x expansion of 1/x - 1/(e^x - 1) is 1/2 - x/12 + x^3/720 - ...
  if (x < 1e-4) {
    return duration * (0.5 - x / 12.0);
  }
  // For x beyond ~36, W/(e^x - 1) underflows against 1/lambda: the error
  // almost surely strikes long before the window closes.
  if (x > 36.0) return 1.0 / lambda;
  const double em1 = std::expm1(x);
  return duration * (em1 - x) / (x * em1);
}

bool approx_equal(double a, double b, double rel_tol) noexcept {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= rel_tol * scale;
}

}  // namespace chainckpt::util
