// Self-contained pseudo-random number generation.
//
// The Monte-Carlo engine needs (a) reproducibility independent of thread
// count and (b) cheap construction of decorrelated per-replica streams.  We
// implement xoshiro256** (Blackman & Vigna, 2018 public-domain reference)
// seeded through SplitMix64; stream k of a given master seed is obtained by
// seeding from splitmix(seed + golden_gamma * k), which is the generator
// authors' recommended scheme and makes `stream(seed, k)` a pure function.
#pragma once

#include <cstdint>

namespace chainckpt::util {

/// SplitMix64 step: advances the state and returns a 64-bit output.
/// Used both as a seeding mixer and as a tiny standalone generator.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator.  Satisfies C++ UniformRandomBitGenerator, so it
/// can also be plugged into <random> distributions when convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from a single seed via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Deterministic, order-independent stream derivation: stream k of master
  /// seed s is the same regardless of which other streams were created.
  static Xoshiro256 stream(std::uint64_t master_seed,
                           std::uint64_t stream_index) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1): 53 random mantissa bits.
  double uniform01() noexcept;

  /// Uniform double in (0, 1]: never returns 0, safe as argument of log().
  double uniform01_open_low() noexcept;

  /// Exponential variate of the given rate.  rate == 0 yields +infinity
  /// (the event never happens), which is exactly the semantics the error
  /// injector wants for a disabled error source.
  double exponential(double rate) noexcept;

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace chainckpt::util
