// Minimal ASCII table formatter used by the bench harnesses to print the
// paper's tables and figure series in a readable, diffable form.
#pragma once

#include <string>
#include <vector>

namespace chainckpt::util {

class TextTable {
 public:
  /// Column headers fix the column count; every later row must match it.
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 4);

  /// Renders with a header rule and right-padded cells.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace chainckpt::util
