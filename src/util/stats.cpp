#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace chainckpt::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci_halfwidth(double z) const noexcept {
  return z * stderr_mean();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  CHAINCKPT_REQUIRE(hi > lo, "histogram range must be non-empty");
  CHAINCKPT_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  auto idx = static_cast<long>((x - lo_) / span *
                               static_cast<double>(counts_.size()));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  CHAINCKPT_REQUIRE(bin < counts_.size(), "bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  CHAINCKPT_REQUIRE(bin < counts_.size(), "bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = counts_[b] * width / peak;
    os << "[" << bin_lo(b) << ", " << bin_hi(b) << ") "
       << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace chainckpt::util
