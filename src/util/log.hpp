// Minimal leveled logger.  All library code logs through this so examples
// and benches can silence or redirect output; no global construction order
// issues (Meyers singleton).
#pragma once

#include <sstream>
#include <string>

namespace chainckpt::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Thread-safe write of one formatted line to stderr.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LineLogger {
 public:
  explicit LineLogger(LogLevel level) : level_(level) {}
  ~LineLogger() { log_message(level_, os_.str()); }
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;

  template <typename T>
  LineLogger& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LineLogger log_debug() {
  return detail::LineLogger(LogLevel::kDebug);
}
inline detail::LineLogger log_info() {
  return detail::LineLogger(LogLevel::kInfo);
}
inline detail::LineLogger log_warn() {
  return detail::LineLogger(LogLevel::kWarn);
}
inline detail::LineLogger log_error() {
  return detail::LineLogger(LogLevel::kError);
}

}  // namespace chainckpt::util
