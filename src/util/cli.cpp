#include "util/cli.hpp"

#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace chainckpt::util {

void CliParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  CHAINCKPT_REQUIRE(!name.empty(), "option name must be non-empty");
  options_[name] = Option{default_value, help, /*is_flag=*/false};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  CHAINCKPT_REQUIRE(!name.empty(), "flag name must be non-empty");
  options_[name] = Option{"false", help, /*is_flag=*/true};
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = options_.find(name);
    if (it == options_.end())
      throw std::invalid_argument("unknown flag: --" + name);
    if (it->second.is_flag) {
      if (inline_value)
        throw std::invalid_argument("flag --" + name + " takes no value");
      it->second.value = "true";
    } else if (inline_value) {
      it->second.value = *inline_value;
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument("missing value for --" + name);
      it->second.value = argv[++i];
    }
  }
}

std::string CliParser::help_text(const std::string& program_summary) const {
  std::ostringstream os;
  os << program_summary << "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (!opt.is_flag) os << " <value> (default: " << opt.value << ")";
    os << "\n      " << opt.help << '\n';
  }
  return os.str();
}

std::string CliParser::get(const std::string& name) const {
  auto it = options_.find(name);
  CHAINCKPT_REQUIRE(it != options_.end(), "option not registered: " + name);
  return it->second.value;
}

bool CliParser::get_flag(const std::string& name) const {
  return get(name) == "true";
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const std::int64_t out = std::stoll(v, &pos);
  if (pos != v.size())
    throw std::invalid_argument("not an integer for --" + name + ": " + v);
  return out;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  if (pos != v.size())
    throw std::invalid_argument("not a number for --" + name + ": " + v);
  return out;
}

}  // namespace chainckpt::util
