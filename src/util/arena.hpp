// Thread-local scratch arena pool.
//
// The DP solvers keep grow-only scratch buffers in thread_local storage so
// a run performs O(1) allocations per worker thread instead of O(n^3)
// mallocs per solve (see dp_partial.cpp, level_dp.hpp).  The deliberate
// tradeoff is residency: the buffers outlive the solve that grew them.
// That is fine for one-shot CLI and bench processes, but a long-lived
// server embedding (core::BatchSolver) needs a way to give the memory
// back between traffic bursts.
//
// Every scratch block therefore registers itself with this process-wide
// pool on construction; release_all_arenas() walks the pool and drops the
// backing memory of every block while leaving the blocks themselves
// registered and reusable -- the next ensure() call on a released block
// simply regrows it.  core::BatchSolver::release_scratch() is the public
// entry point (service::SolverService::release_scratch() forwards to it);
// this registry is the mechanism.  An interrupted solve (cancellation or
// deadline, core/cancellation.hpp) unwinds without touching its blocks'
// registration, so the pool reclaims a cancelled job's scratch exactly
// like a completed one's.
//
// Thread-safety contract: registration and unregistration (which happen at
// thread creation/exit) and the release/measure walks are serialized by an
// internal mutex.  The arena CONTENTS are not locked -- callers must not
// run release_all_arenas() or arena_resident_bytes() concurrently with a
// running solver.
#pragma once

#include <cstddef>
#include <vector>

namespace chainckpt::util {

/// Base class for a reusable scratch block owned by one thread.  Derived
/// classes implement resident_bytes()/release() over their buffers; the
/// base class handles pool registration.
///
/// Destruction: a concrete destructor MUST call unregister() as its first
/// statement.  A pool walk on another thread can otherwise acquire the
/// registry mutex while this block is mid-destruction and invoke a
/// virtual on a partially destroyed object; unregistering inside the
/// derived destructor body runs while the dynamic type is still the
/// derived one, so any concurrent walk either completes against the
/// fully-alive block or skips it.  (The base destructor unregisters too,
/// as a backstop -- it is idempotent.)
class ArenaBlock {
 public:
  ArenaBlock(const ArenaBlock&) = delete;
  ArenaBlock& operator=(const ArenaBlock&) = delete;

  /// Bytes of backing memory currently held by this block.
  virtual std::size_t resident_bytes() const noexcept = 0;
  /// Frees the backing memory.  The block stays registered and usable.
  virtual void release() noexcept = 0;

 protected:
  ArenaBlock();
  virtual ~ArenaBlock();
  /// Removes this block from the pool; idempotent, blocks on any walk in
  /// progress.  Call first in every concrete destructor (see above).
  void unregister() noexcept;

 private:
  friend std::size_t release_current_thread_arenas() noexcept;
  /// Set at construction; thread_local blocks are only ever constructed
  /// (and used) on their owning thread, which is what makes the
  /// per-thread release below safe against concurrent solves.
  const void* owner_;
};

/// Capacity of a vector in bytes (what release() would give back).
template <typename T>
inline std::size_t vector_bytes(const std::vector<T>& v) noexcept {
  return v.capacity() * sizeof(T);
}

/// Frees a vector's backing memory (capacity -> 0); returns bytes freed.
template <typename T>
inline std::size_t free_vector(std::vector<T>& v) noexcept {
  const std::size_t bytes = vector_bytes(v);
  std::vector<T>().swap(v);
  return bytes;
}

/// Total bytes currently held across all registered arenas.
std::size_t arena_resident_bytes() noexcept;

/// Number of scratch blocks currently registered (one per live
/// thread-local scratch per worker thread).  A gauge for leak checks and
/// service metrics; blocks persist across release_all_arenas().
std::size_t arena_block_count() noexcept;

/// Releases the backing memory of every registered arena and returns the
/// number of bytes freed.  Must not run concurrently with a solver.
std::size_t release_all_arenas() noexcept;

/// Releases only the arenas owned by the CALLING thread and returns the
/// bytes freed.  Unlike release_all_arenas() this IS safe while solves
/// run on other threads -- it touches no other thread's scratch -- which
/// makes it the right tool for giving back a dead job's memory the moment
/// its solve unwinds (an interrupted solve's scratch would otherwise stay
/// resident until the next global release; see
/// core::BatchSolver::solve_job).  The caller must not itself be mid-solve.
std::size_t release_current_thread_arenas() noexcept;

}  // namespace chainckpt::util
