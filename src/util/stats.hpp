// Streaming statistics for Monte-Carlo experiments.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace chainckpt::util {

/// Welford-style running moments: numerically stable single-pass mean and
/// variance, mergeable across threads (parallel reduction of per-thread
/// accumulators).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept;
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than 2 samples.
  double stderr_mean() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Half-width of the normal-approximation confidence interval around the
  /// mean.  `z` defaults to 1.96 (95%).
  double ci_halfwidth(double z = 1.96) const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples are clamped into
/// the first/last bin so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t bin) const;
  std::size_t total() const noexcept { return total_; }
  std::size_t bins() const noexcept { return counts_.size(); }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Multi-line ASCII rendering (one row per bin, # bars).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace chainckpt::util
