#include "util/arena.hpp"

#include <algorithm>
#include <mutex>

namespace chainckpt::util {

namespace {

struct Registry {
  std::mutex mutex;
  std::vector<ArenaBlock*> blocks;
};

/// Leaked on purpose: thread_local arenas in worker threads unregister at
/// thread exit, which can happen after static destruction has begun on the
/// main thread -- a function-local static Registry could already be gone.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

/// Stable tag identifying the calling thread for the lifetime of every
/// block it registers: thread_local storage is unique among live threads,
/// and a thread's blocks unregister at its exit, so a recycled address can
/// never alias a still-registered block of a dead thread.
const void* current_thread_tag() noexcept {
  static thread_local char tag;
  return &tag;
}

}  // namespace

ArenaBlock::ArenaBlock() : owner_(current_thread_tag()) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.blocks.push_back(this);
}

ArenaBlock::~ArenaBlock() { unregister(); }

void ArenaBlock::unregister() noexcept {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.blocks.erase(std::remove(r.blocks.begin(), r.blocks.end(), this),
                 r.blocks.end());
}

std::size_t arena_block_count() noexcept {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.blocks.size();
}

std::size_t arena_resident_bytes() noexcept {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::size_t total = 0;
  for (const ArenaBlock* block : r.blocks) total += block->resident_bytes();
  return total;
}

std::size_t release_all_arenas() noexcept {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::size_t freed = 0;
  for (ArenaBlock* block : r.blocks) {
    freed += block->resident_bytes();
    block->release();
  }
  return freed;
}

std::size_t release_current_thread_arenas() noexcept {
  const void* owner = current_thread_tag();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::size_t freed = 0;
  for (ArenaBlock* block : r.blocks) {
    if (block->owner_ != owner) continue;
    freed += block->resident_bytes();
    block->release();
  }
  return freed;
}

}  // namespace chainckpt::util
