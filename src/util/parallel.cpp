#include "util/parallel.hpp"

#include <atomic>
#include <mutex>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace chainckpt::util {

namespace {
std::atomic<int> g_forced_threads{0};
}

int hardware_parallelism() noexcept {
  const int forced = g_forced_threads.load();
  if (forced > 0) return forced;
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_parallelism(int threads) noexcept {
  g_forced_threads.store(threads < 0 ? 0 : threads);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const int threads = hardware_parallelism();
  if (threads <= 1 || count == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads)
  for (long long i = static_cast<long long>(begin);
       i < static_cast<long long>(end); ++i) {
    try {
      body(static_cast<std::size_t>(i));
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  }
#else
  for (std::size_t i = begin; i < end; ++i) {
    try {
      body(i);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
#endif
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace chainckpt::util
