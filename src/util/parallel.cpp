#include "util/parallel.hpp"

#include <atomic>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace chainckpt::util {

namespace {
std::atomic<int> g_forced_threads{0};
}

int hardware_parallelism() noexcept {
  const int forced = g_forced_threads.load();
  if (forced > 0) return forced;
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_parallelism(int threads) noexcept {
  g_forced_threads.store(threads < 0 ? 0 : threads);
}

bool in_parallel_region() noexcept {
#ifdef _OPENMP
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

int worker_index() noexcept {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  detail::parallel_for_impl(begin, end, body);
}

}  // namespace chainckpt::util
