// Tiny CSV writer (RFC-4180 quoting) so bench harnesses can export the exact
// series behind each reproduced figure for external plotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace chainckpt::util {

class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  CsvWriter(const std::string& path, std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);

  /// Quotes a field if it contains a comma, quote, or newline.
  static std::string escape(const std::string& field);

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace chainckpt::util
