// Contract-checking helpers.
//
// The library distinguishes two kinds of failures, following the C++ Core
// Guidelines (I.6, E.12):
//   * CHAINCKPT_REQUIRE  -- precondition on a public API; violations throw
//     std::invalid_argument so callers (and tests) can observe them.
//   * CHAINCKPT_ASSERT   -- internal invariant; violations throw
//     std::logic_error (they indicate a bug in this library, not in the
//     caller).
//
// Both are always on: the checks guard O(1) conditions on control paths that
// are never hot enough to matter relative to the O(n^4)-O(n^6) dynamic
// programs they protect.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace chainckpt::util {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: " << expr << " at " << file << ':'
     << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::logic_error(os.str());
}

}  // namespace chainckpt::util

#define CHAINCKPT_REQUIRE(cond, msg)                                       \
  do {                                                                     \
    if (!(cond))                                                           \
      ::chainckpt::util::throw_precondition(#cond, __FILE__, __LINE__,     \
                                            (msg));                        \
  } while (false)

#define CHAINCKPT_ASSERT(cond, msg)                                        \
  do {                                                                     \
    if (!(cond))                                                           \
      ::chainckpt::util::throw_invariant(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
