#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace chainckpt::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CHAINCKPT_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  CHAINCKPT_REQUIRE(cells.size() == headers_.size(),
                    "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << ' ';
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << "|" << std::string(widths[c] + 2, '-');
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace chainckpt::util
