#include "util/rng.hpp"

#include <cmath>
#include <limits>

namespace chainckpt::util {

namespace {
constexpr std::uint64_t kGoldenGamma = 0x9e3779b97f4a7c15ULL;

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += kGoldenGamma);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  // A xoshiro state must not be all-zero; SplitMix64 guarantees that the
  // probability of producing four zero words is negligible, but we guard
  // anyway by re-mixing.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    sm = kGoldenGamma;
    for (auto& word : s_) word = splitmix64(sm);
  }
}

Xoshiro256 Xoshiro256::stream(std::uint64_t master_seed,
                              std::uint64_t stream_index) noexcept {
  return Xoshiro256(master_seed + kGoldenGamma * (stream_index + 1));
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform01_open_low() noexcept {
  // (2^53 - mantissa) / 2^53 lies in (0, 1].
  return (static_cast<double>((*this)() >> 11) + 1.0) * 0x1.0p-53;
}

double Xoshiro256::exponential(double rate) noexcept {
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  return -std::log(uniform01_open_low()) / rate;
}

bool Xoshiro256::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

}  // namespace chainckpt::util
