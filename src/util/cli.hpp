// Small command-line flag parser for the example and bench executables.
//
// Supports `--name value`, `--name=value`, and boolean `--name` flags.
// Unknown flags are an error (typos should not silently change experiment
// parameters); positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace chainckpt::util {

class CliParser {
 public:
  /// Registers a string option with a default.  Call before parse().
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Registers a boolean switch (defaults to false).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv; throws std::invalid_argument on unknown/malformed flags.
  /// Recognizes --help by setting help_requested().
  void parse(int argc, const char* const* argv);

  bool help_requested() const noexcept { return help_; }
  std::string help_text(const std::string& program_summary) const;

  std::string get(const std::string& name) const;
  bool get_flag(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  struct Option {
    std::string value;
    std::string help;
    bool is_flag = false;
  };
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
  bool help_ = false;
};

}  // namespace chainckpt::util
