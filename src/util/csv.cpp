#include "util/csv.hpp"

#include <stdexcept>

#include "util/assert.hpp"

namespace chainckpt::util {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> headers)
    : path_(path), out_(path), columns_(headers.size()) {
  CHAINCKPT_REQUIRE(!headers.empty(), "csv needs at least one column");
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
  add_row(headers);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  CHAINCKPT_REQUIRE(cells.size() == columns_,
                    "csv row width must match header width");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace chainckpt::util
