#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace chainckpt::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(log_mutex());
  std::cerr << "[chainckpt " << level_name(level) << "] " << message << '\n';
}

}  // namespace chainckpt::util
