// Shared-memory parallelism wrapper.
//
// The dynamic programs parallelize over independent table slabs and the
// Monte-Carlo runner over replicas.  Both use this single entry point, which
// maps onto OpenMP when available and degrades to a serial loop otherwise,
// so the library has no hard dependency on a threading runtime.
//
// Determinism contract: the callable receives the iteration index and must
// derive any randomness from it (see Xoshiro256::stream), so results are
// identical for every thread count.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>

namespace chainckpt::util {

/// Number of worker threads the wrapper will use (OpenMP max threads, or 1).
int hardware_parallelism() noexcept;

/// Force the worker count for subsequent parallel_for calls; 0 restores the
/// runtime default.  Mostly used by tests and benches.
void set_parallelism(int threads) noexcept;

/// Runs body(i) for i in [begin, end) with dynamic scheduling.  Exceptions
/// thrown by the body are captured and the first one is rethrown on the
/// calling thread after the loop completes (OpenMP regions must not leak
/// exceptions).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace chainckpt::util
