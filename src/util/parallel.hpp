// Shared-memory parallelism wrapper.
//
// The dynamic programs parallelize over independent table slabs and the
// Monte-Carlo runner over replicas.  Both use this single entry point, which
// maps onto OpenMP when available and degrades to a serial loop otherwise,
// so the library has no hard dependency on a threading runtime.
//
// The primary overload is a header-only template: the body is invoked
// through its static type, so lambdas inline into the loop with zero
// type-erasure (no std::function construction, no indirect call per
// iteration).  A std::function overload is kept with the original mangled
// symbol for ABI-stable callers that hold an erased callable already.
//
// Determinism contract: the callable receives the iteration index and must
// derive any randomness from it (see Xoshiro256::stream), so results are
// identical for every thread count.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>

namespace chainckpt::util {

/// Number of worker threads the wrapper will use (OpenMP max threads, or 1).
int hardware_parallelism() noexcept;

/// Force the worker count for subsequent parallel_for calls; 0 restores the
/// runtime default.  Mostly used by tests and benches.
void set_parallelism(int threads) noexcept;

/// True when called from inside a parallel_for worker.  Nested parallel
/// regions degrade to serial execution, so solvers that size scratch by
/// worker count use this to avoid over-allocating when they are themselves
/// an item of an outer loop (e.g. one chain of a BatchSolver batch).
bool in_parallel_region() noexcept;

/// Index of the calling worker inside the current parallel_for region, in
/// [0, hardware_parallelism()); 0 outside any region.  Lets loop bodies
/// accumulate into per-worker slots without a mutex -- callers must still
/// clamp against their slot count, since a forced set_parallelism() can
/// shrink hardware_parallelism() between sizing and use.
int worker_index() noexcept;

namespace detail {

/// Shared loop skeleton for both overloads.  Exceptions thrown by the body
/// are captured and the first one is rethrown on the calling thread after
/// the loop completes (OpenMP regions must not leak exceptions).
template <typename Body>
void parallel_for_impl(std::size_t begin, std::size_t end, const Body& body) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const int threads = hardware_parallelism();
  if (threads <= 1 || count == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads)
  for (long long i = static_cast<long long>(begin);
       i < static_cast<long long>(end); ++i) {
    try {
      body(static_cast<std::size_t>(i));
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  }
#else
  for (std::size_t i = begin; i < end; ++i) {
    try {
      body(i);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
#endif
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

/// Runs body(i) for i in [begin, end) with dynamic scheduling.  The body is
/// called through its concrete type -- prefer this overload everywhere.
template <typename Body>
inline void parallel_for(std::size_t begin, std::size_t end,
                         const Body& body) {
  detail::parallel_for_impl(begin, end, body);
}

/// Type-erased overload, kept so callers that already hold a std::function
/// (and pre-built binaries linking the old symbol) keep working.  Overload
/// resolution prefers this non-template for actual std::function arguments.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace chainckpt::util
