// Numerically stable building blocks for the paper's closed forms.
//
// The expected-time formulas (paper Eqs. (2)-(4)) are combinations of
// exponentials of lambda*W where lambda*W spans many orders of magnitude
// (1e-6 .. 1e2).  Everything here is written in terms of expm1/log1p so the
// small-rate regime -- the physically relevant one for HPC platforms -- does
// not lose precision to catastrophic cancellation.
#pragma once

namespace chainckpt::util {

/// (e^x - 1) / x, continuous at x = 0 (limit 1).
/// Relative error is a few ulps across the full double range.
double expm1_over_x(double x) noexcept;

/// 1 - e^{-x}, stable for small x (probability of at least one Poisson
/// arrival of rate lambda over time t with x = lambda * t).
double one_minus_exp_neg(double x) noexcept;

/// Probability of at least one error of rate `lambda` during `duration`
/// seconds: 1 - e^{-lambda * duration}.  Requires lambda >= 0, duration >= 0.
double error_probability(double lambda, double duration) noexcept;

/// Paper Eq. (3): expected time lost to a fail-stop error of rate `lambda`
/// conditioned on it striking within a window of `duration` seconds:
///   T_lost = 1/lambda - duration / (e^{lambda * duration} - 1).
/// Continuous limits: duration/2 as lambda -> 0, and duration/2 as
/// duration -> 0.  Monotonically increasing in both arguments, bounded by
/// duration.
double expected_time_lost(double lambda, double duration) noexcept;

/// True when |a - b| <= tol * max(1, |a|, |b|).
bool approx_equal(double a, double b, double rel_tol) noexcept;

}  // namespace chainckpt::util
