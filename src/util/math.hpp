// Numerically stable building blocks for the paper's closed forms.
//
// The expected-time formulas (paper Eqs. (2)-(4)) are combinations of
// exponentials of lambda*W where lambda*W spans many orders of magnitude
// (1e-6 .. 1e2).  Everything here is written in terms of expm1/log1p so the
// small-rate regime -- the physically relevant one for HPC platforms -- does
// not lose precision to catastrophic cancellation.
#pragma once

namespace chainckpt::util {

/// (e^x - 1) / x, continuous at x = 0 (limit 1).
/// Relative error is a few ulps across the full double range.
double expm1_over_x(double x) noexcept;

/// 1 - e^{-x}, stable for small x (probability of at least one Poisson
/// arrival of rate lambda over time t with x = lambda * t).
double one_minus_exp_neg(double x) noexcept;

/// Probability of at least one error of rate `lambda` during `duration`
/// seconds: 1 - e^{-lambda * duration}.  Requires lambda >= 0, duration >= 0.
double error_probability(double lambda, double duration) noexcept;

/// Paper Eq. (3): expected time lost to a fail-stop error of rate `lambda`
/// conditioned on it striking within a window of `duration` seconds:
///   T_lost = 1/lambda - duration / (e^{lambda * duration} - 1).
/// Continuous limits: duration/2 as lambda -> 0, and duration/2 as
/// duration -> 0.  Monotonically increasing in both arguments, bounded by
/// duration.
double expected_time_lost(double lambda, double duration) noexcept;

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a) for
/// a > 0, x >= 0.  Power series for x < a + 1, modified-Lentz continued
/// fraction on the upper tail otherwise.  The planning-law build evaluates
/// it at a = 1 + 1/k for Weibull shapes k in (0, inf), where both branches
/// converge in a handful of terms; accuracy is ~1e-14 relative.
double incomplete_gamma_p(double a, double x) noexcept;

/// E[T * 1{T < w}] for T ~ Weibull(shape, scale): the expected elapsed time
/// of an attempt that fails inside a window of `w` seconds.  Evaluated by
/// fixed-node (32-point) Gauss-Legendre quadrature after the substitution
/// u = (t/scale)^shape, which removes the shape < 1 density singularity at
/// t = 0:  integral_0^rho scale * u^{1/shape} e^{-u} du, rho = (w/scale)^
/// shape.  Serves as the oracle for (and fallback of) the closed form
/// scale * Gamma(1 + 1/shape) * P(1 + 1/shape, rho).
double weibull_elapsed_quadrature(double shape, double scale,
                                  double w) noexcept;

/// True when |a - b| <= tol * max(1, |a|, |b|).
bool approx_equal(double a, double b, double rel_tol) noexcept;

}  // namespace chainckpt::util
