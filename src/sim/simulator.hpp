// Monte-Carlo execution of a resilience plan (the "simulation" substrate
// behind the paper's evaluation).
//
// Executes the chain task by task under injected errors, with the exact
// semantics of paper Section II:
//   * a fail-stop error interrupts the attempt, wipes memory, and forces a
//     rollback to the last DISK checkpoint (recovery R_D; free from the
//     virtual T0); the in-memory checkpoint is re-established from the
//     disk copy, so the last memory checkpoint becomes the disk one;
//   * silent errors corrupt the data without interrupting; each partial
//     verification detects an existing corruption with probability r
//     (independent draws), guaranteed verifications always detect; upon
//     detection the run rolls back to the last MEMORY checkpoint
//     (recovery R_M; free from T0);
//   * verifications, checkpoints and recoveries are failure-free;
//   * checkpoints only ever store verified-clean data (asserted).
#pragma once

#include <cstddef>
#include <cstdint>

#include "chain/chain.hpp"
#include "error/injector.hpp"
#include "plan/plan.hpp"
#include "platform/cost_model.hpp"
#include "sim/trace.hpp"

namespace chainckpt::sim {

/// Per-run outcome counters; all counts include re-executions.
struct SimulationStats {
  double makespan = 0.0;
  std::size_t task_attempts = 0;
  std::size_t tasks_completed = 0;
  std::size_t fail_stop_errors = 0;
  std::size_t disk_recoveries = 0;
  std::size_t silent_corruptions = 0;
  std::size_t partial_verifications = 0;
  std::size_t partial_detections = 0;
  std::size_t partial_misses = 0;
  std::size_t guaranteed_verifications = 0;
  std::size_t guaranteed_detections = 0;
  std::size_t memory_recoveries = 0;
  std::size_t memory_checkpoints = 0;
  std::size_t disk_checkpoints = 0;
};

struct SimulationLimits {
  /// Abort (throw std::runtime_error) after this many task attempts; a
  /// valid configuration terminates with probability 1, so the default is
  /// simply a guard against pathological parameter choices.
  std::size_t max_task_attempts = 500'000'000;
};

class Simulator {
 public:
  /// Copies the chain and cost model.
  Simulator(chain::TaskChain chain, platform::CostModel costs);

  /// Executes `plan` once with errors drawn from `injector`.  Optionally
  /// records events into `trace`.
  SimulationStats run(const plan::ResiliencePlan& plan,
                      error::Injector& injector,
                      TraceRecorder* trace = nullptr,
                      const SimulationLimits& limits = {}) const;

  /// Convenience: runs once with a PoissonInjector seeded from
  /// (seed, replica).
  SimulationStats run_seeded(const plan::ResiliencePlan& plan,
                             std::uint64_t seed, std::uint64_t replica = 0,
                             TraceRecorder* trace = nullptr) const;

  const chain::TaskChain& chain() const noexcept { return chain_; }
  const platform::CostModel& costs() const noexcept { return costs_; }

 private:
  chain::TaskChain chain_;
  platform::CostModel costs_;
};

}  // namespace chainckpt::sim
