// Cross-validation of the analytic expectation against Monte-Carlo
// simulation: the strongest correctness argument the library offers for
// the paper's closed forms (and for the two documented accounting nuances
// of the Section III-B framework).
#pragma once

#include <string>

#include "analysis/evaluator.hpp"
#include "sim/experiment.hpp"

namespace chainckpt::sim {

struct ValidationReport {
  double analytic = 0.0;        ///< evaluator expectation
  double simulated_mean = 0.0;  ///< Monte-Carlo mean makespan
  double sim_stderr = 0.0;      ///< standard error of the MC mean
  std::size_t replicas = 0;

  /// (simulated - analytic) / analytic.
  double relative_gap() const noexcept;
  /// |simulated - analytic| in units of the MC standard error.
  double gap_in_sigmas() const noexcept;

  std::string describe() const;
};

/// Runs `options.replicas` Monte-Carlo replicas of `plan` and compares the
/// mean makespan to the analytic expectation under `mode`.
ValidationReport validate_plan(
    const chain::TaskChain& chain, const platform::CostModel& costs,
    const plan::ResiliencePlan& plan, const ExperimentOptions& options = {},
    analysis::FormulaMode mode = analysis::FormulaMode::kAuto);

}  // namespace chainckpt::sim
