// Event vocabulary of the Monte-Carlo execution simulator.
#pragma once

#include <cstddef>
#include <string>

namespace chainckpt::sim {

enum class EventKind {
  kTaskCompleted,
  kFailStop,          ///< fail-stop error interrupted a task attempt
  kDiskRecovery,      ///< rollback to the last disk checkpoint
  kSilentCorruption,  ///< silent error struck during a completed attempt
  kPartialVerifPass,  ///< partial verification found nothing (clean data)
  kPartialVerifMiss,  ///< partial verification missed an existing error
  kPartialVerifDetect,
  kGuaranteedVerifPass,
  kGuaranteedVerifDetect,
  kMemoryRecovery,  ///< rollback to the last memory checkpoint
  kMemoryCheckpoint,
  kDiskCheckpoint,
};

const char* to_string(EventKind kind);

struct Event {
  EventKind kind;
  /// Simulated wall-clock time at which the event finished.
  double time = 0.0;
  /// Task position the event refers to (1-based; 0 = virtual T0).
  std::size_t position = 0;

  std::string describe() const;
};

}  // namespace chainckpt::sim
