#include "sim/distribution.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace chainckpt::sim {

MakespanDistribution::MakespanDistribution(std::vector<double> samples)
    : samples_(std::move(samples)) {
  CHAINCKPT_REQUIRE(!samples_.empty(),
                    "distribution needs at least one sample");
  std::sort(samples_.begin(), samples_.end());
  for (double s : samples_) stats_.add(s);
}

double MakespanDistribution::percentile(double q) const {
  CHAINCKPT_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must lie in [0, 1]");
  if (samples_.size() == 1) return samples_.front();
  const double idx = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

util::Histogram MakespanDistribution::histogram(std::size_t bins) const {
  // Pad the top edge slightly so the maximum lands inside the last bin.
  const double lo = samples_.front();
  const double hi =
      samples_.back() + 1e-9 * std::max(1.0, std::abs(samples_.back()));
  util::Histogram h(lo, hi, bins);
  for (double s : samples_) h.add(s);
  return h;
}

MakespanDistribution sample_distribution(
    const Simulator& simulator, const plan::ResiliencePlan& plan,
    const DistributionOptions& options) {
  CHAINCKPT_REQUIRE(options.replicas >= 1, "need at least one replica");
  std::vector<double> samples(options.replicas, 0.0);
  util::parallel_for(0, options.replicas, [&](std::size_t r) {
    samples[r] = simulator.run_seeded(plan, options.seed, r).makespan;
  });
  return MakespanDistribution(std::move(samples));
}

}  // namespace chainckpt::sim
