// Optional event recording for simulator runs.
//
// The recorder keeps up to `capacity` events (dropping the tail beyond it
// and counting the overflow) so tracing a pathological run cannot exhaust
// memory.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/event.hpp"

namespace chainckpt::sim {

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 100000);

  void record(EventKind kind, double time, std::size_t position);

  const std::vector<Event>& events() const noexcept { return events_; }
  std::size_t dropped() const noexcept { return dropped_; }
  void clear() noexcept;

  /// Number of recorded events of one kind.
  std::size_t count(EventKind kind) const noexcept;

  /// Multi-line human-readable dump.
  std::string render() const;

 private:
  std::size_t capacity_;
  std::vector<Event> events_;
  std::size_t dropped_ = 0;
};

}  // namespace chainckpt::sim
