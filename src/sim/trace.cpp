#include "sim/trace.hpp"

#include <sstream>

namespace chainckpt::sim {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTaskCompleted:
      return "task-completed";
    case EventKind::kFailStop:
      return "fail-stop";
    case EventKind::kDiskRecovery:
      return "disk-recovery";
    case EventKind::kSilentCorruption:
      return "silent-corruption";
    case EventKind::kPartialVerifPass:
      return "partial-verif-pass";
    case EventKind::kPartialVerifMiss:
      return "partial-verif-miss";
    case EventKind::kPartialVerifDetect:
      return "partial-verif-detect";
    case EventKind::kGuaranteedVerifPass:
      return "guaranteed-verif-pass";
    case EventKind::kGuaranteedVerifDetect:
      return "guaranteed-verif-detect";
    case EventKind::kMemoryRecovery:
      return "memory-recovery";
    case EventKind::kMemoryCheckpoint:
      return "memory-checkpoint";
    case EventKind::kDiskCheckpoint:
      return "disk-checkpoint";
  }
  return "?";
}

std::string Event::describe() const {
  std::ostringstream os;
  os << "t=" << time << "s " << to_string(kind) << " @T" << position;
  return os.str();
}

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  events_.reserve(capacity > 4096 ? 4096 : capacity);
}

void TraceRecorder::record(EventKind kind, double time,
                           std::size_t position) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{kind, time, position});
}

void TraceRecorder::clear() noexcept {
  events_.clear();
  dropped_ = 0;
}

std::size_t TraceRecorder::count(EventKind kind) const noexcept {
  std::size_t c = 0;
  for (const auto& e : events_)
    if (e.kind == kind) ++c;
  return c;
}

std::string TraceRecorder::render() const {
  std::ostringstream os;
  for (const auto& e : events_) os << e.describe() << '\n';
  if (dropped_ > 0) os << "(" << dropped_ << " events dropped)\n";
  return os.str();
}

}  // namespace chainckpt::sim
