#include "sim/validation.hpp"

#include <cmath>
#include <sstream>

namespace chainckpt::sim {

double ValidationReport::relative_gap() const noexcept {
  return analytic == 0.0 ? 0.0 : (simulated_mean - analytic) / analytic;
}

double ValidationReport::gap_in_sigmas() const noexcept {
  return sim_stderr == 0.0
             ? 0.0
             : std::abs(simulated_mean - analytic) / sim_stderr;
}

std::string ValidationReport::describe() const {
  std::ostringstream os;
  os << "analytic " << analytic << "s vs simulated " << simulated_mean
     << "s +/- " << sim_stderr << "s (" << replicas << " replicas, gap "
     << relative_gap() * 100.0 << "%, " << gap_in_sigmas() << " sigma)";
  return os.str();
}

ValidationReport validate_plan(const chain::TaskChain& chain,
                               const platform::CostModel& costs,
                               const plan::ResiliencePlan& plan,
                               const ExperimentOptions& options,
                               analysis::FormulaMode mode) {
  const analysis::PlanEvaluator evaluator(chain, costs);
  const Simulator simulator(chain, costs);
  const ExperimentResult experiment =
      run_experiment(simulator, plan, options);

  ValidationReport report;
  report.analytic = evaluator.expected_makespan(plan, mode);
  report.simulated_mean = experiment.makespan.mean();
  report.sim_stderr = experiment.makespan.stderr_mean();
  report.replicas = experiment.replicas;
  return report;
}

}  // namespace chainckpt::sim
