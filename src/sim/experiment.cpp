#include "sim/experiment.hpp"

#include <vector>

#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace chainckpt::sim {

namespace {
struct BlockAccumulator {
  util::RunningStats makespan;
  double fail_stops = 0.0;
  double silent_corruptions = 0.0;
  double partial_detections = 0.0;
  double partial_misses = 0.0;
  double guaranteed_detections = 0.0;
  double memory_recoveries = 0.0;
  double disk_recoveries = 0.0;
};
}  // namespace

ExperimentResult run_experiment(const Simulator& simulator,
                                const plan::ResiliencePlan& plan,
                                const ExperimentOptions& options) {
  // Identical to the historical in-line PoissonInjector path: run_seeded
  // constructs exactly this injector per replica.
  const double lambda_f = simulator.costs().lambda_f();
  const double lambda_s = simulator.costs().lambda_s();
  const std::uint64_t seed = options.seed;
  return run_experiment(
      simulator, plan,
      [lambda_f, lambda_s, seed](std::uint64_t replica) {
        return std::make_unique<error::PoissonInjector>(
            lambda_f, lambda_s, util::Xoshiro256::stream(seed, replica));
      },
      options);
}

ExperimentResult run_experiment(const Simulator& simulator,
                                const plan::ResiliencePlan& plan,
                                const InjectorFactory& factory,
                                const ExperimentOptions& options) {
  CHAINCKPT_REQUIRE(options.replicas >= 1, "need at least one replica");
  CHAINCKPT_REQUIRE(options.block_size >= 1, "block size must be >= 1");
  CHAINCKPT_REQUIRE(static_cast<bool>(factory),
                    "injector factory must be callable");

  const std::size_t blocks =
      (options.replicas + options.block_size - 1) / options.block_size;
  std::vector<BlockAccumulator> partial(blocks);

  util::parallel_for(0, blocks, [&](std::size_t b) {
    const std::size_t lo = b * options.block_size;
    const std::size_t hi =
        std::min(options.replicas, lo + options.block_size);
    BlockAccumulator& acc = partial[b];
    for (std::size_t r = lo; r < hi; ++r) {
      const auto injector = factory(r);
      const SimulationStats s = simulator.run(plan, *injector);
      acc.makespan.add(s.makespan);
      acc.fail_stops += static_cast<double>(s.fail_stop_errors);
      acc.silent_corruptions += static_cast<double>(s.silent_corruptions);
      acc.partial_detections += static_cast<double>(s.partial_detections);
      acc.partial_misses += static_cast<double>(s.partial_misses);
      acc.guaranteed_detections +=
          static_cast<double>(s.guaranteed_detections);
      acc.memory_recoveries += static_cast<double>(s.memory_recoveries);
      acc.disk_recoveries += static_cast<double>(s.disk_recoveries);
    }
  });

  ExperimentResult out;
  out.replicas = options.replicas;
  double fail_stops = 0.0, silents = 0.0, pdet = 0.0, pmiss = 0.0;
  double gdet = 0.0, mrec = 0.0, drec = 0.0;
  for (const auto& acc : partial) {  // fixed order: deterministic rounding
    out.makespan.merge(acc.makespan);
    fail_stops += acc.fail_stops;
    silents += acc.silent_corruptions;
    pdet += acc.partial_detections;
    pmiss += acc.partial_misses;
    gdet += acc.guaranteed_detections;
    mrec += acc.memory_recoveries;
    drec += acc.disk_recoveries;
  }
  const auto denom = static_cast<double>(options.replicas);
  out.mean_fail_stops = fail_stops / denom;
  out.mean_silent_corruptions = silents / denom;
  out.mean_partial_detections = pdet / denom;
  out.mean_partial_misses = pmiss / denom;
  out.mean_guaranteed_detections = gdet / denom;
  out.mean_memory_recoveries = mrec / denom;
  out.mean_disk_recoveries = drec / denom;
  return out;
}

}  // namespace chainckpt::sim
