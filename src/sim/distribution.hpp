// Makespan distributions, not just means.
//
// Checkpointing research usually optimizes the expectation, but the
// *tail* is what batch schedulers and users feel: a run that blows its
// wall-time allocation is lost entirely.  This module samples the full
// makespan distribution of a plan and exposes percentiles/histograms, so
// the benches can show that the two-level scheme shortens the tail even
// more than the mean.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace chainckpt::sim {

class MakespanDistribution {
 public:
  /// `samples` must be non-empty; takes ownership and sorts them.
  explicit MakespanDistribution(std::vector<double> samples);

  std::size_t size() const noexcept { return samples_.size(); }
  double mean() const noexcept { return stats_.mean(); }
  double stddev() const noexcept { return stats_.stddev(); }
  double min() const noexcept { return samples_.front(); }
  double max() const noexcept { return samples_.back(); }

  /// Empirical quantile by linear interpolation; q in [0, 1].
  double percentile(double q) const;

  /// Fixed-bin histogram over [min, max].
  util::Histogram histogram(std::size_t bins = 20) const;

 private:
  std::vector<double> samples_;  // sorted ascending
  util::RunningStats stats_;
};

struct DistributionOptions {
  std::size_t replicas = 20000;
  std::uint64_t seed = 42;
};

/// Runs the Monte-Carlo simulator and collects every makespan sample
/// (parallel, deterministic per seed).
MakespanDistribution sample_distribution(const Simulator& simulator,
                                         const plan::ResiliencePlan& plan,
                                         const DistributionOptions& options =
                                             {});

}  // namespace chainckpt::sim
