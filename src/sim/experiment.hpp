// Replicated Monte-Carlo experiments.
//
// Runs N independent replicas of a plan, in parallel, with per-replica
// RNG streams derived from (seed, replica index) so results are identical
// for every thread count.  Per-block partial statistics are merged in a
// fixed order to keep even the floating-point rounding deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace chainckpt::sim {

struct ExperimentResult {
  util::RunningStats makespan;
  /// Means over replicas of the main event counters.
  double mean_fail_stops = 0.0;
  double mean_silent_corruptions = 0.0;
  double mean_partial_detections = 0.0;
  double mean_partial_misses = 0.0;
  double mean_guaranteed_detections = 0.0;
  double mean_memory_recoveries = 0.0;
  double mean_disk_recoveries = 0.0;
  std::size_t replicas = 0;
};

struct ExperimentOptions {
  std::size_t replicas = 10000;
  std::uint64_t seed = 42;
  /// Replicas per parallel work item; only affects scheduling granularity,
  /// never results.
  std::size_t block_size = 256;
};

ExperimentResult run_experiment(const Simulator& simulator,
                                const plan::ResiliencePlan& plan,
                                const ExperimentOptions& options = {});

/// Builds the injector for one replica.  Must be a pure function of the
/// replica index (thread-safe, deterministic) so results stay identical
/// for every thread count; derive per-replica streams with
/// util::Xoshiro256::stream(seed, replica).
using InjectorFactory =
    std::function<std::unique_ptr<error::Injector>(std::uint64_t replica)>;

/// Generalized experiment: replicas draw their errors from
/// `factory(replica)` instead of the built-in PoissonInjector.  This is
/// how the scenario matrix (src/scenario/) runs heavy-tailed failure
/// laws through the unchanged simulator; the default overload above is
/// equivalent to a factory returning PoissonInjector(lambda_f, lambda_s,
/// stream(options.seed, replica)).
ExperimentResult run_experiment(const Simulator& simulator,
                                const plan::ResiliencePlan& plan,
                                const InjectorFactory& factory,
                                const ExperimentOptions& options = {});

}  // namespace chainckpt::sim
