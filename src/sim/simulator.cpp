#include "sim/simulator.hpp"

#include <stdexcept>

#include "util/assert.hpp"

namespace chainckpt::sim {

Simulator::Simulator(chain::TaskChain chain, platform::CostModel costs)
    : chain_(std::move(chain)), costs_(std::move(costs)) {
  CHAINCKPT_REQUIRE(!chain_.empty(), "simulator needs a non-empty chain");
}

SimulationStats Simulator::run(const plan::ResiliencePlan& plan,
                               error::Injector& injector,
                               TraceRecorder* trace,
                               const SimulationLimits& limits) const {
  CHAINCKPT_REQUIRE(plan.size() == chain_.size(),
                    "plan size must match chain size");
  plan.validate();

  const std::size_t n = chain_.size();
  SimulationStats stats;
  double t = 0.0;
  std::size_t next_task = 1;
  std::size_t last_disk = 0;
  std::size_t last_mem = 0;
  bool corrupted = false;

  auto emit = [&](EventKind kind, std::size_t position) {
    if (trace != nullptr) trace->record(kind, t, position);
  };

  while (next_task <= n) {
    if (++stats.task_attempts > limits.max_task_attempts) {
      throw std::runtime_error(
          "simulation exceeded the task-attempt limit; error rates are "
          "likely far outside the model's useful regime");
    }
    const std::size_t i = next_task;
    const double w = chain_.weight(i);
    const error::TaskAttemptOutcome outcome = injector.attempt(w);

    if (outcome.fail_stop_after.has_value()) {
      // Fail-stop: lose the elapsed fraction, recover from disk.  The
      // memory checkpoint is restored from the disk copy, and any silent
      // corruption dies with the wiped memory.
      t += *outcome.fail_stop_after;
      ++stats.fail_stop_errors;
      emit(EventKind::kFailStop, i);
      t += costs_.r_disk_after(last_disk);
      ++stats.disk_recoveries;
      emit(EventKind::kDiskRecovery, last_disk);
      last_mem = last_disk;
      corrupted = false;
      next_task = last_disk + 1;
      continue;
    }

    t += w;
    ++stats.tasks_completed;
    emit(EventKind::kTaskCompleted, i);
    if (outcome.silent_corruption) {
      corrupted = true;
      ++stats.silent_corruptions;
      emit(EventKind::kSilentCorruption, i);
    }

    const plan::Action action = plan.action(i);
    if (has_partial_verif(action)) {
      t += costs_.v_partial_after(i);
      ++stats.partial_verifications;
      if (corrupted) {
        if (injector.partial_verification_detects(costs_.recall())) {
          ++stats.partial_detections;
          emit(EventKind::kPartialVerifDetect, i);
          t += costs_.r_mem_after(last_mem);
          ++stats.memory_recoveries;
          emit(EventKind::kMemoryRecovery, last_mem);
          corrupted = false;
          next_task = last_mem + 1;
          continue;
        }
        ++stats.partial_misses;
        emit(EventKind::kPartialVerifMiss, i);
      } else {
        emit(EventKind::kPartialVerifPass, i);
      }
    } else if (has_guaranteed_verif(action)) {
      t += costs_.v_guaranteed_after(i);
      ++stats.guaranteed_verifications;
      if (corrupted) {
        ++stats.guaranteed_detections;
        emit(EventKind::kGuaranteedVerifDetect, i);
        t += costs_.r_mem_after(last_mem);
        ++stats.memory_recoveries;
        emit(EventKind::kMemoryRecovery, last_mem);
        corrupted = false;
        next_task = last_mem + 1;
        continue;
      }
      emit(EventKind::kGuaranteedVerifPass, i);
      if (has_memory_checkpoint(action)) {
        CHAINCKPT_ASSERT(!corrupted,
                         "checkpoints must only store verified-clean data");
        t += costs_.c_mem_after(i);
        ++stats.memory_checkpoints;
        emit(EventKind::kMemoryCheckpoint, i);
        last_mem = i;
        if (has_disk_checkpoint(action)) {
          t += costs_.c_disk_after(i);
          ++stats.disk_checkpoints;
          emit(EventKind::kDiskCheckpoint, i);
          last_disk = i;
        }
      }
    }
    ++next_task;
  }

  stats.makespan = t;
  return stats;
}

SimulationStats Simulator::run_seeded(const plan::ResiliencePlan& plan,
                                      std::uint64_t seed,
                                      std::uint64_t replica,
                                      TraceRecorder* trace) const {
  error::PoissonInjector injector(
      costs_.lambda_f(), costs_.lambda_s(),
      util::Xoshiro256::stream(seed, replica));
  return run(plan, injector, trace);
}

}  // namespace chainckpt::sim
