// Poisson error model (paper Section II).
//
// Fail-stop and silent errors are independent Poisson processes with rates
// lambda_f and lambda_s.  This module provides the per-interval
// probabilities and conditional expectations that both the dynamic programs
// and the analytic evaluator consume.
#pragma once

#include <cstddef>

#include "chain/chain.hpp"

namespace chainckpt::error {

class ErrorModel {
 public:
  ErrorModel(double lambda_f, double lambda_s);

  double lambda_f() const noexcept { return lambda_f_; }
  double lambda_s() const noexcept { return lambda_s_; }

  /// p^f over a window of `duration` seconds: probability that at least one
  /// fail-stop error strikes.
  double p_fail(double duration) const noexcept;
  /// p^s over a window of `duration` seconds.
  double p_silent(double duration) const noexcept;

  /// Paper Eq. (3): expected time lost when a fail-stop error strikes
  /// within a window of `duration` seconds (conditional expectation of the
  /// strike time).
  double expected_time_lost(double duration) const noexcept;

  /// Probability that tasks T_{i+1}..T_j of `chain` see at least one
  /// fail-stop error.
  double p_fail_between(const chain::TaskChain& chain, std::size_t i,
                        std::size_t j) const;
  double p_silent_between(const chain::TaskChain& chain, std::size_t i,
                          std::size_t j) const;

 private:
  double lambda_f_;
  double lambda_s_;
};

}  // namespace chainckpt::error
