#include "error/error_model.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace chainckpt::error {

ErrorModel::ErrorModel(double lambda_f, double lambda_s)
    : lambda_f_(lambda_f), lambda_s_(lambda_s) {
  CHAINCKPT_REQUIRE(lambda_f >= 0.0 && std::isfinite(lambda_f),
                    "lambda_f must be finite and non-negative");
  CHAINCKPT_REQUIRE(lambda_s >= 0.0 && std::isfinite(lambda_s),
                    "lambda_s must be finite and non-negative");
}

double ErrorModel::p_fail(double duration) const noexcept {
  return util::error_probability(lambda_f_, duration);
}

double ErrorModel::p_silent(double duration) const noexcept {
  return util::error_probability(lambda_s_, duration);
}

double ErrorModel::expected_time_lost(double duration) const noexcept {
  return util::expected_time_lost(lambda_f_, duration);
}

double ErrorModel::p_fail_between(const chain::TaskChain& chain,
                                  std::size_t i, std::size_t j) const {
  return p_fail(chain.weight_between(i, j));
}

double ErrorModel::p_silent_between(const chain::TaskChain& chain,
                                    std::size_t i, std::size_t j) const {
  return p_silent(chain.weight_between(i, j));
}

}  // namespace chainckpt::error
