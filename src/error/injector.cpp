#include "error/injector.hpp"

#include "util/math.hpp"

namespace chainckpt::error {

PoissonInjector::PoissonInjector(double lambda_f, double lambda_s,
                                 util::Xoshiro256 rng) noexcept
    : lambda_f_(lambda_f), lambda_s_(lambda_s), rng_(rng) {}

TaskAttemptOutcome PoissonInjector::attempt(double duration) {
  TaskAttemptOutcome out;
  const double t_fail = rng_.exponential(lambda_f_);
  if (t_fail < duration) {
    out.fail_stop_after = t_fail;
    return out;  // memory is wiped; silent corruption is moot
  }
  // Memorylessness of the Poisson process: "at least one silent strike in
  // [0, duration)" is a Bernoulli draw with p = 1 - e^{-lambda_s * W};
  // the exact strike times do not matter because silent errors never
  // interrupt execution.
  out.silent_corruption =
      rng_.bernoulli(util::error_probability(lambda_s_, duration));
  return out;
}

bool PoissonInjector::partial_verification_detects(double recall) {
  return rng_.bernoulli(recall);
}

}  // namespace chainckpt::error
