#include "error/injector.hpp"

#include <cmath>

#include "util/math.hpp"

namespace chainckpt::error {

namespace {
/// Splits one draw off `rng` to seed an independent generator.  Both
/// resulting streams are decorrelated (SplitMix64 expansion of a
/// xoshiro256** output); the split consumes exactly one draw regardless
/// of any model parameter, so the fault stream's phase never depends on
/// recall (or anything else).
util::Xoshiro256 split_stream(util::Xoshiro256& rng) noexcept {
  return util::Xoshiro256(rng());
}
}  // namespace

PoissonInjector::PoissonInjector(double lambda_f, double lambda_s,
                                 util::Xoshiro256 rng) noexcept
    : lambda_f_(lambda_f),
      lambda_s_(lambda_s),
      rng_(rng),
      recall_rng_(split_stream(rng_)) {}

TaskAttemptOutcome PoissonInjector::attempt(double duration) {
  TaskAttemptOutcome out;
  const double t_fail = rng_.exponential(lambda_f_);
  if (t_fail < duration) {
    out.fail_stop_after = t_fail;
    return out;  // memory is wiped; silent corruption is moot
  }
  // Memorylessness of the Poisson process: "at least one silent strike in
  // [0, duration)" is a Bernoulli draw with p = 1 - e^{-lambda_s * W};
  // the exact strike times do not matter because silent errors never
  // interrupt execution.
  out.silent_corruption =
      rng_.bernoulli(util::error_probability(lambda_s_, duration));
  return out;
}

bool PoissonInjector::partial_verification_detects(double recall) {
  return recall_rng_.bernoulli(recall);
}

WeibullInjector::WeibullInjector(double lambda_f, double shape,
                                 double lambda_s,
                                 util::Xoshiro256 rng) noexcept
    : lambda_f_(lambda_f),
      shape_(shape),
      scale_(lambda_f > 0.0
                 ? 1.0 / (lambda_f * std::tgamma(1.0 + 1.0 / shape))
                 : 0.0),
      lambda_s_(lambda_s),
      rng_(rng),
      recall_rng_(split_stream(rng_)) {}

TaskAttemptOutcome WeibullInjector::attempt(double duration) {
  TaskAttemptOutcome out;
  // shape == 1 IS the exponential law, so it must be DISTRIBUTION-
  // identical to PoissonInjector on the same seed: same draw count, same
  // expression tree.  The generic inverse-CDF below is mathematically
  // equal at shape 1 (scale = 1/lambda_f, pow(x, 1.0) = x) but not
  // bitwise: scale_ * (-log u) rounds differently from -log(u) / rate.
  // Delegating to the shared exponential sampler closes that seam.
  if (shape_ == 1.0) {
    const double t_fail = rng_.exponential(lambda_f_);
    if (t_fail < duration) {
      out.fail_stop_after = t_fail;
      return out;
    }
  } else if (lambda_f_ > 0.0) {
    // Inverse-CDF sample: T = scale * (-log U)^{1/shape}.  One uniform
    // draw per attempt, exactly like the exponential path, so swapping
    // laws never changes the draw count per attempt.
    const double u = rng_.uniform01_open_low();
    const double t_fail = scale_ * std::pow(-std::log(u), 1.0 / shape_);
    if (t_fail < duration) {
      out.fail_stop_after = t_fail;
      return out;
    }
  }
  out.silent_corruption =
      rng_.bernoulli(util::error_probability(lambda_s_, duration));
  return out;
}

bool WeibullInjector::partial_verification_detects(double recall) {
  return recall_rng_.bernoulli(recall);
}

}  // namespace chainckpt::error
