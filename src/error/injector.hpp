// Error injection for the Monte-Carlo simulator.
//
// The injector answers the two questions the simulator asks per task
// attempt, using the model of Section II:
//   * does a fail-stop error interrupt this attempt, and after how long?
//   * does at least one silent error corrupt the data produced?
//
// An abstract interface allows tests to substitute scripted injectors that
// force specific error sequences (failure-injection testing of the
// simulator itself), and lets the scenario matrix (src/scenario/) swap the
// exponential law of the paper for heavy-tailed alternatives that break
// the DP's memorylessness assumption on purpose.
//
// RNG stream discipline: recall draws (partial_verification_detects) come
// from a DEDICATED sub-stream, split off the injector's seed stream at
// construction.  Interleaving recall draws with attempt() draws therefore
// never perturbs the fault-arrival sequence -- two scenarios differing
// only in recall see the identical fault variate stream, which is what
// makes recall sweeps comparable (tests/error/injector_test.cpp pins
// this).
#pragma once

#include <optional>

#include "util/rng.hpp"

namespace chainckpt::error {

struct TaskAttemptOutcome {
  /// Elapsed work time before a fail-stop interrupt, if one happens within
  /// the attempted duration.  Empty when the task completes.
  std::optional<double> fail_stop_after;
  /// True when at least one silent error struck during the completed part
  /// of the attempt.  Only meaningful when the task completes: a fail-stop
  /// wipes memory anyway, so corruption of a crashed attempt is irrelevant.
  bool silent_corruption = false;
};

class Injector {
 public:
  virtual ~Injector() = default;

  /// Samples the outcome of attempting `duration` seconds of computation.
  virtual TaskAttemptOutcome attempt(double duration) = 0;

  /// Samples whether a partial verification with the given recall detects
  /// an existing corruption.
  virtual bool partial_verification_detects(double recall) = 0;
};

/// The paper's stochastic injector: exponential fail-stop arrival,
/// Bernoulli silent corruption, Bernoulli partial-verification recall.
class PoissonInjector final : public Injector {
 public:
  /// Splits `rng` into the fault-arrival stream and the recall sub-stream
  /// (one draw is consumed for the split, independent of any parameter).
  PoissonInjector(double lambda_f, double lambda_s,
                  util::Xoshiro256 rng) noexcept;

  TaskAttemptOutcome attempt(double duration) override;
  bool partial_verification_detects(double recall) override;

 private:
  double lambda_f_;
  double lambda_s_;
  util::Xoshiro256 rng_;         ///< fault arrivals + silent corruption
  util::Xoshiro256 recall_rng_;  ///< partial-verification recall only
};

/// Heavy-tailed extension: fail-stop inter-arrival times follow a Weibull
/// law with the given shape, scaled so the MEAN time between failures
/// still equals 1/lambda_f (shape == 1 recovers the exponential law;
/// shape < 1 is heavy-tailed, with failures bursting early).  Each
/// attempt() renews the clock -- the "restart" semantics of Sodre's
/// restart-vs-checkpoint analysis -- so for shape < 1 short windows see
/// MORE failures than the Poisson model with the same mean rate, which is
/// exactly the regime where the DP's exponential assumption breaks.
/// Silent errors and recall draws keep the paper's Bernoulli model (with
/// the same dedicated recall sub-stream as PoissonInjector).
class WeibullInjector final : public Injector {
 public:
  WeibullInjector(double lambda_f, double shape, double lambda_s,
                  util::Xoshiro256 rng) noexcept;

  TaskAttemptOutcome attempt(double duration) override;
  bool partial_verification_detects(double recall) override;

  double shape() const noexcept { return shape_; }
  /// Weibull scale matching mean 1/lambda_f: 1 / (lambda_f * Gamma(1+1/k)).
  double scale() const noexcept { return scale_; }

 private:
  double lambda_f_;
  double shape_;
  double scale_;
  double lambda_s_;
  util::Xoshiro256 rng_;
  util::Xoshiro256 recall_rng_;
};

}  // namespace chainckpt::error
