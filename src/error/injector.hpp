// Error injection for the Monte-Carlo simulator.
//
// The injector answers the two questions the simulator asks per task
// attempt, using the model of Section II:
//   * does a fail-stop error interrupt this attempt, and after how long?
//   * does at least one silent error corrupt the data produced?
//
// An abstract interface allows tests to substitute scripted injectors that
// force specific error sequences (failure-injection testing of the
// simulator itself).
#pragma once

#include <optional>

#include "util/rng.hpp"

namespace chainckpt::error {

struct TaskAttemptOutcome {
  /// Elapsed work time before a fail-stop interrupt, if one happens within
  /// the attempted duration.  Empty when the task completes.
  std::optional<double> fail_stop_after;
  /// True when at least one silent error struck during the completed part
  /// of the attempt.  Only meaningful when the task completes: a fail-stop
  /// wipes memory anyway, so corruption of a crashed attempt is irrelevant.
  bool silent_corruption = false;
};

class Injector {
 public:
  virtual ~Injector() = default;

  /// Samples the outcome of attempting `duration` seconds of computation.
  virtual TaskAttemptOutcome attempt(double duration) = 0;

  /// Samples whether a partial verification with the given recall detects
  /// an existing corruption.
  virtual bool partial_verification_detects(double recall) = 0;
};

/// The real stochastic injector: exponential fail-stop arrival, Bernoulli
/// silent corruption, Bernoulli partial-verification recall.
class PoissonInjector final : public Injector {
 public:
  PoissonInjector(double lambda_f, double lambda_s,
                  util::Xoshiro256 rng) noexcept;

  TaskAttemptOutcome attempt(double duration) override;
  bool partial_verification_detects(double recall) override;

 private:
  double lambda_f_;
  double lambda_s_;
  util::Xoshiro256 rng_;
};

}  // namespace chainckpt::error
