// Workload generators for the paper's evaluation (Section IV) plus a random
// extension for property testing.
//
// All patterns distribute a total computational weight W over n tasks:
//   * Uniform : every task has weight W/n (matrix multiplication, stencils);
//   * Decrease: task T_i has weight alpha * (n + 1 - i)^2 with alpha chosen
//     so the weights sum to W (~3W/n^3) -- dense LU/QR-style solvers;
//   * HighLow : the first `fraction_large` of the tasks (at least one task)
//     share `weight_large_fraction` of W, the rest share the remainder.
#pragma once

#include <cstdint>
#include <string>

#include "chain/chain.hpp"
#include "util/rng.hpp"

namespace chainckpt::chain {

enum class Pattern { kUniform, kDecrease, kHighLow };

/// Parse "uniform" / "decrease" / "highlow" (case-sensitive, as used by the
/// CLI tools); throws std::invalid_argument otherwise.
Pattern pattern_from_string(const std::string& name);
std::string to_string(Pattern pattern);

TaskChain make_uniform(std::size_t n, double total_weight);

TaskChain make_decrease(std::size_t n, double total_weight);

/// Paper setting: fraction_large = 0.1 of tasks carry
/// weight_large_fraction = 0.6 of the weight.
TaskChain make_highlow(std::size_t n, double total_weight,
                       double fraction_large = 0.1,
                       double weight_large_fraction = 0.6);

/// Dispatches on `pattern` with the paper's default HighLow parameters.
TaskChain make_pattern(Pattern pattern, std::size_t n, double total_weight);

/// Extension: i.i.d. uniform random weights in [min_factor, max_factor] x
/// (W/n), rescaled to sum exactly to W.  Used by property tests to exercise
/// the optimizers away from the three structured patterns.
TaskChain make_random(std::size_t n, double total_weight,
                      util::Xoshiro256& rng, double min_factor = 0.2,
                      double max_factor = 5.0);

}  // namespace chainckpt::chain
