// Linear task graph T1 -> T2 -> ... -> Tn (paper Section II).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "chain/task.hpp"

namespace chainckpt::chain {

class TaskChain {
 public:
  TaskChain() = default;

  /// Builds a chain from explicit weights; every weight must be positive
  /// and finite.  Task names default to "T<i>".
  explicit TaskChain(const std::vector<double>& weights);
  explicit TaskChain(std::vector<Task> tasks);

  /// Number of real tasks n (the virtual T0 is not stored).
  std::size_t size() const noexcept { return tasks_.size(); }
  bool empty() const noexcept { return tasks_.empty(); }

  /// 1-based access mirroring the paper's indexing: task(i) is T_i for
  /// i in [1, n].
  const Task& task(std::size_t i) const;
  /// Weight w_i of task T_i (1-based).
  double weight(std::size_t i) const;

  /// Sum of all weights (the error-free makespan with no resilience).
  double total_weight() const noexcept { return total_weight_; }

  /// W_{i,j} = sum_{k=i+1..j} w_k, the error-free time to execute tasks
  /// T_{i+1}..T_j; requires 0 <= i <= j <= n.  W_{i,i} = 0.
  double weight_between(std::size_t i, std::size_t j) const;

  const std::vector<Task>& tasks() const noexcept { return tasks_; }

  /// One-line description, e.g. "n=50, W=25000".
  std::string describe() const;

 private:
  std::vector<Task> tasks_;
  /// prefix_[k] = w_1 + ... + w_k, prefix_[0] = 0.
  std::vector<double> prefix_;
  double total_weight_ = 0.0;

  void build_prefix();
};

}  // namespace chainckpt::chain
