#include "chain/chain.hpp"

#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace chainckpt::chain {

namespace {
// Built without `"T" + std::to_string(...)`: that expression trips a
// GCC 12 -Wrestrict false positive (PR105651) when inlined.
std::string default_name(std::size_t position) {
  std::string name = std::to_string(position);
  name.insert(name.begin(), 'T');
  return name;
}
}  // namespace

TaskChain::TaskChain(const std::vector<double>& weights) {
  tasks_.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    tasks_.push_back(Task{weights[i], default_name(i + 1)});
  }
  build_prefix();
}

TaskChain::TaskChain(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].name.empty()) tasks_[i].name = default_name(i + 1);
  }
  build_prefix();
}

void TaskChain::build_prefix() {
  prefix_.assign(tasks_.size() + 1, 0.0);
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const double w = tasks_[i].weight;
    CHAINCKPT_REQUIRE(std::isfinite(w) && w > 0.0,
                      "task weights must be positive and finite");
    prefix_[i + 1] = prefix_[i] + w;
  }
  total_weight_ = prefix_.back();
}

const Task& TaskChain::task(std::size_t i) const {
  CHAINCKPT_REQUIRE(i >= 1 && i <= tasks_.size(), "task index is 1-based");
  return tasks_[i - 1];
}

double TaskChain::weight(std::size_t i) const { return task(i).weight; }

double TaskChain::weight_between(std::size_t i, std::size_t j) const {
  CHAINCKPT_REQUIRE(i <= j && j <= tasks_.size(),
                    "weight_between requires 0 <= i <= j <= n");
  return prefix_[j] - prefix_[i];
}

std::string TaskChain::describe() const {
  std::ostringstream os;
  os << "n=" << tasks_.size() << ", W=" << total_weight_;
  return os.str();
}

}  // namespace chainckpt::chain
