#include "chain/chain_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace chainckpt::chain {

namespace {

std::string strip_comment(const std::string& line) {
  const auto hash = line.find('#');
  return hash == std::string::npos ? line : line.substr(0, hash);
}

double parse_weight(const std::string& token, std::size_t line_no) {
  std::size_t pos = 0;
  double w = 0.0;
  try {
    w = std::stod(token, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != token.size()) {
    throw std::invalid_argument("chain file line " +
                                std::to_string(line_no) +
                                ": not a weight: " + token);
  }
  return w;
}

}  // namespace

TaskChain chain_from_text(const std::string& text) {
  std::istringstream is(text);
  std::vector<Task> tasks;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream fields(strip_comment(line));
    std::string first, second, extra;
    if (!(fields >> first)) continue;  // blank or comment-only line
    Task task;
    if (fields >> second) {
      if (fields >> extra) {
        throw std::invalid_argument("chain file line " +
                                    std::to_string(line_no) +
                                    ": too many fields");
      }
      task.name = first;
      task.weight = parse_weight(second, line_no);
    } else {
      task.weight = parse_weight(first, line_no);
    }
    tasks.push_back(std::move(task));
  }
  if (tasks.empty())
    throw std::invalid_argument("chain file contains no tasks");
  return TaskChain(std::move(tasks));  // validates weights
}

std::string chain_to_text(const TaskChain& chain) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "# chainckpt chain file: " << chain.describe() << '\n';
  for (std::size_t i = 1; i <= chain.size(); ++i) {
    os << chain.task(i).name << ' ' << chain.weight(i) << '\n';
  }
  return os.str();
}

TaskChain chain_from_csv(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line))
    throw std::invalid_argument("empty chain CSV");
  // Header is mandatory but its exact spelling is not enforced beyond
  // having two columns.
  std::vector<Task> tasks;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos) {
      throw std::invalid_argument("chain CSV line " +
                                  std::to_string(line_no) +
                                  ": expected name,weight");
    }
    Task task;
    task.name = line.substr(0, comma);
    task.weight = parse_weight(line.substr(comma + 1), line_no);
    tasks.push_back(std::move(task));
  }
  if (tasks.empty())
    throw std::invalid_argument("chain CSV contains no tasks");
  return TaskChain(std::move(tasks));
}

std::string chain_to_csv(const TaskChain& chain) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "name,weight\n";
  for (std::size_t i = 1; i <= chain.size(); ++i) {
    os << util::CsvWriter::escape(chain.task(i).name) << ','
       << chain.weight(i) << '\n';
  }
  return os.str();
}

namespace {
std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open chain file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool has_csv_extension(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}
}  // namespace

TaskChain load_chain(const std::string& path) {
  const std::string text = read_file(path);
  return has_csv_extension(path) ? chain_from_csv(text)
                                 : chain_from_text(text);
}

void save_chain(const std::string& path, const TaskChain& chain) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write chain file: " + path);
  out << (has_csv_extension(path) ? chain_to_csv(chain)
                                  : chain_to_text(chain));
}

}  // namespace chainckpt::chain
