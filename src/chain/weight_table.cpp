#include "chain/weight_table.hpp"

#include <cmath>
#include <cstring>

#include "util/assert.hpp"

namespace chainckpt::chain {

WeightTable::WeightTable(const TaskChain& chain, double lambda_f,
                         double lambda_s)
    : n_(chain.size()), lambda_f_(lambda_f), lambda_s_(lambda_s) {
  CHAINCKPT_REQUIRE(lambda_f >= 0.0 && lambda_s >= 0.0,
                    "error rates must be non-negative");
  prefix_.assign(n_ + 1, 0.0);
  for (std::size_t i = 1; i <= n_; ++i)
    prefix_[i] = prefix_[i - 1] + chain.weight(i);

  em1_f_.assign((n_ + 1) * (n_ + 1), 0.0);
  em1_s_.assign((n_ + 1) * (n_ + 1), 0.0);
  for (std::size_t i = 0; i <= n_; ++i) {
    for (std::size_t j = i; j <= n_; ++j) {
      const double w = prefix_[j] - prefix_[i];
      em1_f_[idx(i, j)] = std::expm1(lambda_f * w);
      em1_s_[idx(i, j)] = std::expm1(lambda_s * w);
    }
  }
}

WeightTable::WeightTable(const WeightTable& base, double lambda_f,
                         double lambda_s)
    : n_(base.n_),
      lambda_f_(lambda_f),
      lambda_s_(lambda_s),
      prefix_(base.prefix_) {
  CHAINCKPT_REQUIRE(lambda_f >= 0.0 && lambda_s >= 0.0,
                    "error rates must be non-negative");
  const auto same_bits = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  };
  const bool keep_f = same_bits(lambda_f, base.lambda_f_);
  const bool keep_s = same_bits(lambda_s, base.lambda_s_);
  if (keep_f) {
    em1_f_ = base.em1_f_;
  } else {
    em1_f_.assign((n_ + 1) * (n_ + 1), 0.0);
  }
  if (keep_s) {
    em1_s_ = base.em1_s_;
  } else {
    em1_s_.assign((n_ + 1) * (n_ + 1), 0.0);
  }
  if (keep_f && keep_s) return;
  for (std::size_t i = 0; i <= n_; ++i) {
    for (std::size_t j = i; j <= n_; ++j) {
      const double w = prefix_[j] - prefix_[i];
      if (!keep_f) em1_f_[idx(i, j)] = std::expm1(lambda_f * w);
      if (!keep_s) em1_s_[idx(i, j)] = std::expm1(lambda_s * w);
    }
  }
}

}  // namespace chainckpt::chain
