// A single task of a linear workflow.
#pragma once

#include <string>

namespace chainckpt::chain {

/// Tasks are identified by their 1-based position in the chain; position 0
/// is the virtual task T0 of the paper (always disk+memory checkpointed at
/// zero recovery cost).
struct Task {
  /// Computational weight in seconds of error-free execution (w_i > 0).
  double weight = 0.0;
  /// Optional human-readable label (used by examples and traces).
  std::string name;
};

}  // namespace chainckpt::chain
