// Task-chain file I/O.
//
// Text format ("chain file"), one task per line, comments with '#':
//
//     # genomics pipeline, times in seconds
//     align      5200
//     dedup       800
//     call-snv   9400
//
// The name column is optional (lines may contain just a weight); names
// must not contain whitespace.  A CSV flavour (`name,weight` with header)
// is supported for interop with spreadsheet-managed workflows.
#pragma once

#include <iosfwd>
#include <string>

#include "chain/chain.hpp"

namespace chainckpt::chain {

/// Parses the chain-file format; throws std::invalid_argument on
/// malformed lines or non-positive weights.
TaskChain chain_from_text(const std::string& text);

/// Serializes to the chain-file format (always with names).
std::string chain_to_text(const TaskChain& chain);

/// Parses "name,weight" CSV with a mandatory header line.
TaskChain chain_from_csv(const std::string& text);
std::string chain_to_csv(const TaskChain& chain);

/// Reads a file, dispatching on extension: ".csv" -> CSV, anything else
/// -> chain-file format.  Throws std::runtime_error when unreadable.
TaskChain load_chain(const std::string& path);
void save_chain(const std::string& path, const TaskChain& chain);

}  // namespace chainckpt::chain
