// Precomputed interval quantities for the dynamic programs.
//
// Every DP transition evaluates exponentials of lambda * W_{i,j} where
// lambda * W spans 1e-6..1e2.  Computing exp() inside the O(n^4)/O(n^6)
// loops would dominate the runtime, so this table materializes the O(n^2)
// triangular matrices once per (chain, rates) pair.
//
// The stored quantity is expm1(lambda * W) rather than exp(lambda * W):
// the closed forms of the paper multiply (e^{lambda W} - 1) by recovery
// costs, and subtracting 1 from a stored exponential would lose most
// significant bits precisely in the realistic small-rate regime.
#pragma once

#include <cstddef>
#include <vector>

#include "chain/chain.hpp"

namespace chainckpt::chain {

class WeightTable {
 public:
  WeightTable(const TaskChain& chain, double lambda_f, double lambda_s);

  /// Patch constructor: rebuilds only the streams the new rates actually
  /// change, copying the rest from `base`.  The prefix sums depend on the
  /// weights alone and are always reused; each em1 matrix is recomputed
  /// with the exact expression tree of the full build only when its rate's
  /// bit pattern differs, so the result is byte-identical to
  /// WeightTable(chain, lambda_f, lambda_s) for the same chain
  /// (tests/analysis/segment_tables_patch_test.cpp memcmp-pins this).
  /// The caller asserts the chain is unchanged; only the rates may drift.
  WeightTable(const WeightTable& base, double lambda_f, double lambda_s);

  std::size_t n() const noexcept { return n_; }
  double lambda_f() const noexcept { return lambda_f_; }
  double lambda_s() const noexcept { return lambda_s_; }

  /// W_{i,j} for 0 <= i <= j <= n.
  double weight(std::size_t i, std::size_t j) const noexcept {
    return prefix_[j] - prefix_[i];
  }
  /// expm1(lambda_f * W_{i,j}) = e^{lambda_f W} - 1, full precision.
  double em1_f(std::size_t i, std::size_t j) const noexcept {
    return em1_f_[idx(i, j)];
  }
  /// expm1(lambda_s * W_{i,j}).
  double em1_s(std::size_t i, std::size_t j) const noexcept {
    return em1_s_[idx(i, j)];
  }
  /// e^{lambda_f * W_{i,j}}.
  double exp_f(std::size_t i, std::size_t j) const noexcept {
    return 1.0 + em1_f_[idx(i, j)];
  }
  /// e^{lambda_s * W_{i,j}}.
  double exp_s(std::size_t i, std::size_t j) const noexcept {
    return 1.0 + em1_s_[idx(i, j)];
  }
  /// expm1((lambda_f + lambda_s) * W_{i,j}), assembled without cancellation
  /// as em1_f + em1_s + em1_f * em1_s.
  double em1_fs(std::size_t i, std::size_t j) const noexcept {
    const double a = em1_f_[idx(i, j)];
    const double b = em1_s_[idx(i, j)];
    return a + b + a * b;
  }
  /// e^{(lambda_f + lambda_s) * W_{i,j}}.
  double exp_fs(std::size_t i, std::size_t j) const noexcept {
    return 1.0 + em1_fs(i, j);
  }

  /// Bytes held by the triangular matrices (BatchSolver cache accounting).
  std::size_t resident_bytes() const noexcept {
    return (prefix_.capacity() + em1_f_.capacity() + em1_s_.capacity()) *
           sizeof(double);
  }

 private:
  std::size_t idx(std::size_t i, std::size_t j) const noexcept {
    return i * (n_ + 1) + j;
  }

  std::size_t n_;
  double lambda_f_;
  double lambda_s_;
  std::vector<double> prefix_;
  std::vector<double> em1_f_;
  std::vector<double> em1_s_;
};

}  // namespace chainckpt::chain
