#include "chain/patterns.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/assert.hpp"

namespace chainckpt::chain {

namespace {
void check_args(std::size_t n, double total_weight) {
  CHAINCKPT_REQUIRE(n >= 1, "a chain needs at least one task");
  CHAINCKPT_REQUIRE(std::isfinite(total_weight) && total_weight > 0.0,
                    "total weight must be positive and finite");
}
}  // namespace

Pattern pattern_from_string(const std::string& name) {
  if (name == "uniform") return Pattern::kUniform;
  if (name == "decrease") return Pattern::kDecrease;
  if (name == "highlow") return Pattern::kHighLow;
  throw std::invalid_argument("unknown pattern: " + name +
                              " (expected uniform|decrease|highlow)");
}

std::string to_string(Pattern pattern) {
  switch (pattern) {
    case Pattern::kUniform:
      return "uniform";
    case Pattern::kDecrease:
      return "decrease";
    case Pattern::kHighLow:
      return "highlow";
  }
  return "?";
}

TaskChain make_uniform(std::size_t n, double total_weight) {
  check_args(n, total_weight);
  return TaskChain(
      std::vector<double>(n, total_weight / static_cast<double>(n)));
}

TaskChain make_decrease(std::size_t n, double total_weight) {
  check_args(n, total_weight);
  // w_i = alpha * (n + 1 - i)^2; choose alpha so the sum is exactly W
  // (the paper's alpha ~ 3W/n^3 is the large-n approximation of the same
  // normalization).
  double sum_sq = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    const double k = static_cast<double>(n + 1 - i);
    sum_sq += k * k;
  }
  const double alpha = total_weight / sum_sq;
  std::vector<double> weights(n);
  for (std::size_t i = 1; i <= n; ++i) {
    const double k = static_cast<double>(n + 1 - i);
    weights[i - 1] = alpha * k * k;
  }
  return TaskChain(weights);
}

TaskChain make_highlow(std::size_t n, double total_weight,
                       double fraction_large, double weight_large_fraction) {
  check_args(n, total_weight);
  CHAINCKPT_REQUIRE(fraction_large > 0.0 && fraction_large < 1.0,
                    "fraction_large must lie in (0, 1)");
  CHAINCKPT_REQUIRE(
      weight_large_fraction > 0.0 && weight_large_fraction < 1.0,
      "weight_large_fraction must lie in (0, 1)");
  // At least one large task; for n == 1 the pattern degenerates to uniform.
  if (n == 1) return make_uniform(n, total_weight);
  const std::size_t n_large = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(fraction_large * static_cast<double>(n))));
  const std::size_t n_small = n - n_large;
  CHAINCKPT_ASSERT(n_small >= 1, "HighLow needs at least one small task");
  std::vector<double> weights(n);
  const double w_large = total_weight * weight_large_fraction /
                         static_cast<double>(n_large);
  const double w_small = total_weight * (1.0 - weight_large_fraction) /
                         static_cast<double>(n_small);
  for (std::size_t i = 0; i < n_large; ++i) weights[i] = w_large;
  for (std::size_t i = n_large; i < n; ++i) weights[i] = w_small;
  return TaskChain(weights);
}

TaskChain make_pattern(Pattern pattern, std::size_t n, double total_weight) {
  switch (pattern) {
    case Pattern::kUniform:
      return make_uniform(n, total_weight);
    case Pattern::kDecrease:
      return make_decrease(n, total_weight);
    case Pattern::kHighLow:
      return make_highlow(n, total_weight);
  }
  throw std::invalid_argument("unknown pattern enum value");
}

TaskChain make_random(std::size_t n, double total_weight,
                      util::Xoshiro256& rng, double min_factor,
                      double max_factor) {
  check_args(n, total_weight);
  CHAINCKPT_REQUIRE(0.0 < min_factor && min_factor <= max_factor,
                    "need 0 < min_factor <= max_factor");
  std::vector<double> weights(n);
  double sum = 0.0;
  for (auto& w : weights) {
    w = min_factor + (max_factor - min_factor) * rng.uniform01();
    sum += w;
  }
  for (auto& w : weights) w *= total_weight / sum;
  return TaskChain(weights);
}

}  // namespace chainckpt::chain
