// ScenarioSpec: one cell of the scenario matrix, fully described by data.
//
// The paper evaluates on four Table I platforms with perfect
// verifications and exponential failures; production traffic is none of
// those things.  A spec names everything one adversarial cell needs --
// the chain shape, the platform (exact or perturbed), the failure regime
// (law + recall, modeled vs actual), the service traffic shape -- plus a
// single seed from which every random choice in the cell is derived.
// Specs are value types, serializable to JSON (scenario/spec_io.hpp) so
// golden corpora can be checked in, and materializable into the concrete
// chain/cost-model objects the solvers, the simulator, and the service
// consume (materialize() below).
//
// Determinism contract: materialization is a pure function of the spec --
// same spec bytes, same chain weights, same platform parameters, same
// arrival trace -- independent of thread count, cell order, or process
// history.  All sub-streams are derived from `seed` via
// util::Xoshiro256::stream with fixed stream indices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "chain/chain.hpp"
#include "core/optimizer.hpp"
#include "platform/cost_model.hpp"
#include "platform/platform.hpp"

namespace chainckpt::scenario {

/// How the cell's chain distributes weight over its tasks.  The first
/// three are the paper's patterns (chain::patterns); the rest are the
/// production-shaped extensions the matrix exists for.
enum class ChainShape {
  kUniform,   ///< equal weights (stencils, matrix products)
  kDecrease,  ///< quadratic decrease (dense LU/QR solvers)
  kHighLow,   ///< few heavy tasks up front (paper's HighLow)
  kPareto,    ///< i.i.d. heavy-tailed (Pareto) weights, seeded
  kRamp,      ///< correlated ramp up then down (bursty pipelines)
  kTraced,    ///< named real-workflow replay (see trace_names())
};

std::string to_string(ChainShape shape);
ChainShape chain_shape_from_string(const std::string& name);

/// Names accepted by ChainShape::kTraced (small embedded stage traces of
/// real workflow classes: "genomics", "seismic", "climate").
std::vector<std::string> trace_names();

struct ChainSpec {
  ChainShape shape = ChainShape::kUniform;
  std::size_t n = 24;
  double total_weight = 25000.0;
  /// Pareto tail index for kPareto (smaller = heavier tail; > 1).
  double pareto_alpha = 1.5;
  /// Peak-to-edge weight ratio for kRamp (>= 1).
  double ramp_factor = 4.0;
  /// Trace name for kTraced.
  std::string trace = "genomics";
  /// Jitter every per-position verification/checkpoint cost by a seeded
  /// uniform factor in [0.25, 1.75] (the per-position cost extension).
  bool per_position_costs = false;
};

struct PlatformSpec {
  /// Table I base platform name ("Hera", "Atlas", "Coastal", "CoastalSSD").
  std::string base = "Hera";
  /// Relative perturbation magnitude: every rate/cost is multiplied by a
  /// seeded uniform factor in [1/(1+perturb), 1+perturb].  0 = exact.
  double perturb = 0.0;
};

/// The failure law driving the Monte-Carlo lane.
enum class FailureLaw {
  kExponential,  ///< the paper's Poisson model (the DP's assumption)
  kWeibull,      ///< heavy-tailed inter-arrivals (breaks memorylessness)
};

std::string to_string(FailureLaw law);
FailureLaw failure_law_from_string(const std::string& name);

struct FailureSpec {
  FailureLaw law = FailureLaw::kExponential;
  /// Weibull shape for kWeibull; < 1 is heavy-tailed, 1 reduces to the
  /// exponential law.
  double weibull_shape = 0.7;
  /// Multiplies both platform error rates (lambda_f, lambda_s) before
  /// anything runs -- seen by the DP and the simulator alike.  The
  /// matrix amplifies the Table I rates so rollbacks actually happen
  /// within cheap replica counts.
  double rate_scale = 1.0;
  /// Partial-verification recall the OPTIMIZER plans with; < 0 keeps the
  /// platform default (Table I convention: 0.8).
  double modeled_recall = -1.0;
  /// Recall the SIMULATED system actually delivers; < 0 mirrors
  /// modeled_recall.  A mismatch is a deliberate model-assumption break:
  /// the DP prices detection at one recall while reality pays another.
  double actual_recall = -1.0;
  /// Plan under the cell's ACTUAL failure law: materialization stamps a
  /// matching platform::PlanningLaw on the modeled cost model, so the DP
  /// optimizes Weibull-integrated segment expectations instead of the
  /// paper's exponential closed forms.  No effect under kExponential.
  /// Defaults to false -- the PR 7 behavior (and golden digests) exactly.
  bool plan_under_law = false;

  /// True when the DP's assumptions hold in this regime: the planning law
  /// matches the actual law (exponential, or Weibull with plan_under_law)
  /// and actual recall == modeled recall.  Cells where this is false are
  /// DIVERGENCE-LANE cells -- the runner measures the sim-vs-DP gap and
  /// flags it instead of asserting agreement.
  bool assumptions_hold() const noexcept;
};

/// Service-lane traffic shape (arrival process replayed through
/// service::SolverService).  kNone skips the lane for the cell.
enum class TrafficKind { kNone, kPoisson, kBursty };

std::string to_string(TrafficKind kind);
TrafficKind traffic_kind_from_string(const std::string& name);

struct TrafficSpec {
  TrafficKind kind = TrafficKind::kNone;
  std::size_t jobs = 48;
  /// Mean arrival rate in jobs per second of trace time (kPoisson), or
  /// the burst cadence (kBursty: bursts of `burst_size` every
  /// 1/rate seconds).
  double rate = 200.0;
  std::size_t burst_size = 8;
  /// Fraction of jobs carrying a deadline (generous by construction in
  /// the matrix lane; the stress battery tightens them separately).
  double deadline_fraction = 0.25;
  /// Fraction of jobs per priority class {batch, normal, interactive,
  /// urgent}; normalized at materialization.
  double priority_mix[4] = {0.25, 0.5, 0.15, 0.1};
};

/// Cache-replay lane: re-submit the cell's solves through a plan-cached
/// core::BatchSolver, first verbatim (exact hits) and then under seeded
/// parameter drift (epsilon-hits or certified re-solves), and oracle
/// every served result against a cache-disabled fresh solve.  Disabled
/// by default so pre-cache fixtures round-trip byte-identically.
struct CacheReplaySpec {
  bool enabled = false;
  /// Replayed requests after the populating solves.
  std::size_t requests = 16;
  /// Relative drift magnitude: each drifted request scales every
  /// parameter group by a seeded factor in [1/(1+drift), 1+drift].
  double drift = 0.05;
  /// Epsilon handed to the cached solver (BatchJob::cache_epsilon);
  /// 0 = exact hits only.
  double epsilon = 0.02;
};

/// Expected result pin for golden fixtures: one algorithm's plan/objective
/// digest (scenario/report.hpp defines the digest).
struct ExpectedDigest {
  std::string algorithm;       ///< display name, e.g. "ADMV*"
  std::string digest;          ///< 16-hex-digit FNV-1a over plan+objective
  std::string makespan_bits;   ///< "0x" + 16 hex digits of the double bits
};

struct ScenarioSpec {
  std::string name;
  std::uint64_t seed = 1;
  ChainSpec chain;
  PlatformSpec platform;
  FailureSpec failure;
  TrafficSpec traffic;
  CacheReplaySpec cache;
  /// Algorithms solved (and simulated) in the cell, paper display names.
  std::vector<core::Algorithm> algorithms = {core::Algorithm::kADVstar,
                                             core::Algorithm::kADMVstar};
  /// Monte-Carlo replicas per algorithm in the sim lane.
  std::size_t replicas = 1500;
  /// Golden-corpus pins; empty for ordinary matrix cells.
  std::vector<ExpectedDigest> expected;

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
};

/// Everything a cell's three lanes consume, materialized from a spec.
struct MaterializedCell {
  chain::TaskChain chain;
  /// Platform after perturbation + rate scaling + modeled recall: what
  /// the OPTIMIZER and the analytic evaluator see.
  platform::Platform modeled_platform;
  /// Same platform with the ACTUAL recall: what the simulator's
  /// verification draws obey.  Identical to modeled_platform when the
  /// regime is honest.
  platform::Platform actual_platform;
  platform::CostModel modeled_costs;
  platform::CostModel actual_costs;
};

/// Pure function of the spec (see the determinism contract above).
MaterializedCell materialize(const ScenarioSpec& spec);

}  // namespace chainckpt::scenario
