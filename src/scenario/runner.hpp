// ScenarioRunner: drives one cell (or the whole matrix) through the three
// lanes the battery checks:
//
//   DP lane       -- every algorithm in the spec solved under several
//                    (scan mode x SIMD tier x table layout) configurations;
//                    all must be bit-identical (plan bytes + objective
//                    bits), pinning the determinism contract per cell.
//   Sim lane      -- Monte-Carlo replicas of the reference plan under the
//                    cell's ACTUAL failure regime (law + recall), with the
//                    mean makespan compared against the DP prediction.
//                    In-model cells must agree within the flagging
//                    interval; assumption-breaking cells record the gap
//                    and are FLAGGED, never silently averaged.
//   Service lane  -- cells with traffic replay their seeded arrival trace
//                    through a live service::SolverService: results must
//                    be bitwise equal to synchronous reference solves,
//                    every job must succeed, and no priority inversions
//                    may occur (unlimited admission budget, generous
//                    deadlines -- the stress battery tightens both).
//
// run_matrix() parallelizes ACROSS cells (util::parallel_for); each
// cell's own experiment parallelism degrades to serial inside the region,
// so per-cell results are independent of the outer schedule and the
// report keeps its byte-determinism contract (scenario/report.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "scenario/report.hpp"
#include "scenario/spec.hpp"

namespace chainckpt::scenario {

struct RunnerOptions {
  /// Divergence threshold in MC standard errors.  In-model cells must
  /// satisfy |sim_mean - dp| <= z_flag * stderr + rel_floor * dp; 4.5
  /// sigmas puts a per-lane false-flag probability around 7e-6, far
  /// below the matrix size, and the relative floor absorbs stderr
  /// collapse on near-deterministic cells.
  double z_flag = 4.5;
  double rel_floor = 0.005;
  /// Parallelize run_matrix across cells.  Results are identical either
  /// way (per-cell determinism).
  bool parallel = true;
  /// Record wall-clock latency metrics in the service lane.  Opts the
  /// report OUT of byte determinism -- leave false for golden/CI runs.
  bool include_timing = false;
  /// Service-lane worker-pool width.
  std::size_t service_workers = 4;
  /// Stamped into ScenarioReport::master_seed (provenance only).
  std::uint64_t master_seed = 0;
};

/// Runs one cell through all applicable lanes.
CellReport run_cell(const ScenarioSpec& spec, const RunnerOptions& options = {});

/// Runs every cell and finalizes the summary.  Cell order in the report
/// matches the spec order regardless of scheduling.
ScenarioReport run_matrix(const std::vector<ScenarioSpec>& specs,
                          const RunnerOptions& options = {});

}  // namespace chainckpt::scenario
