#include "scenario/spec_io.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace chainckpt::scenario {

namespace {

// ------------------------------------------------------------- JSON value
struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<JsonArray> array;
  std::shared_ptr<JsonObject> object;
};

// ------------------------------------------------------------ JSON parser
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t len = 0;
    while (lit[len] != '\0') ++len;
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue value() {
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default:
        return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    v.object = std::make_shared<JsonObject>();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = string();
      expect(':');
      (*v.object)[std::move(key)] = value();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    v.array = std::make_shared<JsonArray>();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array->push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':  out += '"'; break;
          case '\\': out += '\\'; break;
          case '/':  out += '/'; break;
          case 'n':  out += '\n'; break;
          case 't':  out += '\t'; break;
          case 'r':  out += '\r'; break;
          default:   fail("unsupported escape sequence");
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
          c == '+' || c == '.' || c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------- field accessors
const JsonValue* find(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

double get_number(const JsonObject& obj, const std::string& key,
                  double fallback) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr) return fallback;
  if (v->kind != JsonValue::Kind::kNumber) {
    throw std::invalid_argument("field '" + key + "' must be a number");
  }
  return v->number;
}

std::string get_string(const JsonObject& obj, const std::string& key,
                       const std::string& fallback) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr) return fallback;
  if (v->kind != JsonValue::Kind::kString) {
    throw std::invalid_argument("field '" + key + "' must be a string");
  }
  return v->string;
}

bool get_bool(const JsonObject& obj, const std::string& key, bool fallback) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr) return fallback;
  if (v->kind != JsonValue::Kind::kBool) {
    throw std::invalid_argument("field '" + key + "' must be a boolean");
  }
  return v->boolean;
}

const JsonObject& get_object(const JsonValue& v, const std::string& what) {
  if (v.kind != JsonValue::Kind::kObject || !v.object) {
    throw std::invalid_argument(what + " must be a JSON object");
  }
  return *v.object;
}

// ---------------------------------------------------------------- writer
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string spec_to_json(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"name\": \"" << escape(spec.name) << "\",\n";
  os << "  \"seed\": " << spec.seed << ",\n";
  os << "  \"chain\": {\"shape\": \"" << to_string(spec.chain.shape)
     << "\", \"n\": " << spec.chain.n
     << ", \"total_weight\": " << fmt_double(spec.chain.total_weight)
     << ", \"pareto_alpha\": " << fmt_double(spec.chain.pareto_alpha)
     << ", \"ramp_factor\": " << fmt_double(spec.chain.ramp_factor)
     << ", \"trace\": \"" << escape(spec.chain.trace) << "\""
     << ", \"per_position_costs\": "
     << (spec.chain.per_position_costs ? "true" : "false") << "},\n";
  os << "  \"platform\": {\"base\": \"" << escape(spec.platform.base)
     << "\", \"perturb\": " << fmt_double(spec.platform.perturb) << "},\n";
  os << "  \"failure\": {\"law\": \"" << to_string(spec.failure.law)
     << "\", \"weibull_shape\": " << fmt_double(spec.failure.weibull_shape)
     << ", \"rate_scale\": " << fmt_double(spec.failure.rate_scale)
     << ", \"modeled_recall\": " << fmt_double(spec.failure.modeled_recall)
     << ", \"actual_recall\": " << fmt_double(spec.failure.actual_recall)
     << ", \"plan_under_law\": "
     << (spec.failure.plan_under_law ? "true" : "false") << "},\n";
  os << "  \"traffic\": {\"kind\": \"" << to_string(spec.traffic.kind)
     << "\", \"jobs\": " << spec.traffic.jobs
     << ", \"rate\": " << fmt_double(spec.traffic.rate)
     << ", \"burst_size\": " << spec.traffic.burst_size
     << ", \"deadline_fraction\": "
     << fmt_double(spec.traffic.deadline_fraction)
     << ", \"priority_mix\": [" << fmt_double(spec.traffic.priority_mix[0])
     << ", " << fmt_double(spec.traffic.priority_mix[1]) << ", "
     << fmt_double(spec.traffic.priority_mix[2]) << ", "
     << fmt_double(spec.traffic.priority_mix[3]) << "]},\n";
  // Emitted only when the lane is on: pre-cache fixtures keep their exact
  // bytes across a load/save round trip.
  if (spec.cache.enabled) {
    os << "  \"cache\": {\"enabled\": true"
       << ", \"requests\": " << spec.cache.requests
       << ", \"drift\": " << fmt_double(spec.cache.drift)
       << ", \"epsilon\": " << fmt_double(spec.cache.epsilon) << "},\n";
  }
  os << "  \"algorithms\": [";
  for (std::size_t i = 0; i < spec.algorithms.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << core::to_string(spec.algorithms[i]) << "\"";
  }
  os << "],\n";
  os << "  \"replicas\": " << spec.replicas;
  if (!spec.expected.empty()) {
    os << ",\n  \"expected\": [";
    for (std::size_t i = 0; i < spec.expected.size(); ++i) {
      const ExpectedDigest& e = spec.expected[i];
      if (i) os << ", ";
      os << "{\"algorithm\": \"" << escape(e.algorithm) << "\", \"digest\": \""
         << e.digest << "\", \"makespan_bits\": \"" << e.makespan_bits
         << "\"}";
    }
    os << "]";
  }
  os << "\n}\n";
  return os.str();
}

ScenarioSpec spec_from_json(const std::string& json) {
  const JsonValue root = Parser(json).parse();
  const JsonObject& obj = get_object(root, "spec");

  ScenarioSpec spec;
  spec.name = get_string(obj, "name", "");
  spec.seed = static_cast<std::uint64_t>(get_number(obj, "seed", 1));

  if (const JsonValue* v = find(obj, "chain")) {
    const JsonObject& c = get_object(*v, "chain");
    spec.chain.shape =
        chain_shape_from_string(get_string(c, "shape", "uniform"));
    spec.chain.n = static_cast<std::size_t>(get_number(c, "n", 24));
    spec.chain.total_weight = get_number(c, "total_weight", 25000.0);
    spec.chain.pareto_alpha = get_number(c, "pareto_alpha", 1.5);
    spec.chain.ramp_factor = get_number(c, "ramp_factor", 4.0);
    spec.chain.trace = get_string(c, "trace", "genomics");
    spec.chain.per_position_costs =
        get_bool(c, "per_position_costs", false);
  }
  if (const JsonValue* v = find(obj, "platform")) {
    const JsonObject& p = get_object(*v, "platform");
    spec.platform.base = get_string(p, "base", "Hera");
    spec.platform.perturb = get_number(p, "perturb", 0.0);
  }
  if (const JsonValue* v = find(obj, "failure")) {
    const JsonObject& f = get_object(*v, "failure");
    spec.failure.law =
        failure_law_from_string(get_string(f, "law", "exponential"));
    spec.failure.weibull_shape = get_number(f, "weibull_shape", 0.7);
    spec.failure.rate_scale = get_number(f, "rate_scale", 1.0);
    spec.failure.modeled_recall = get_number(f, "modeled_recall", -1.0);
    spec.failure.actual_recall = get_number(f, "actual_recall", -1.0);
    // Absent in pre-planning-law fixtures: default keeps their exponential
    // planning (and golden digests) untouched.
    spec.failure.plan_under_law = get_bool(f, "plan_under_law", false);
  }
  if (const JsonValue* v = find(obj, "traffic")) {
    const JsonObject& t = get_object(*v, "traffic");
    spec.traffic.kind = traffic_kind_from_string(get_string(t, "kind", "none"));
    spec.traffic.jobs = static_cast<std::size_t>(get_number(t, "jobs", 48));
    spec.traffic.rate = get_number(t, "rate", 200.0);
    spec.traffic.burst_size =
        static_cast<std::size_t>(get_number(t, "burst_size", 8));
    spec.traffic.deadline_fraction = get_number(t, "deadline_fraction", 0.25);
    if (const JsonValue* mix = find(t, "priority_mix")) {
      if (mix->kind != JsonValue::Kind::kArray || mix->array->size() != 4) {
        throw std::invalid_argument("priority_mix must be an array of 4");
      }
      for (std::size_t i = 0; i < 4; ++i) {
        const JsonValue& m = (*mix->array)[i];
        if (m.kind != JsonValue::Kind::kNumber) {
          throw std::invalid_argument("priority_mix entries must be numbers");
        }
        spec.traffic.priority_mix[i] = m.number;
      }
    }
  }
  if (const JsonValue* v = find(obj, "cache")) {
    const JsonObject& c = get_object(*v, "cache");
    spec.cache.enabled = get_bool(c, "enabled", false);
    spec.cache.requests =
        static_cast<std::size_t>(get_number(c, "requests", 16));
    spec.cache.drift = get_number(c, "drift", 0.05);
    spec.cache.epsilon = get_number(c, "epsilon", 0.02);
  }
  if (const JsonValue* v = find(obj, "algorithms")) {
    if (v->kind != JsonValue::Kind::kArray) {
      throw std::invalid_argument("algorithms must be an array");
    }
    spec.algorithms.clear();
    for (const JsonValue& a : *v->array) {
      if (a.kind != JsonValue::Kind::kString) {
        throw std::invalid_argument("algorithm entries must be strings");
      }
      spec.algorithms.push_back(core::algorithm_from_string(a.string));
    }
  }
  spec.replicas =
      static_cast<std::size_t>(get_number(obj, "replicas", 1500));
  if (const JsonValue* v = find(obj, "expected")) {
    if (v->kind != JsonValue::Kind::kArray) {
      throw std::invalid_argument("expected must be an array");
    }
    for (const JsonValue& e : *v->array) {
      const JsonObject& eo = get_object(e, "expected entry");
      ExpectedDigest pin;
      pin.algorithm = get_string(eo, "algorithm", "");
      pin.digest = get_string(eo, "digest", "");
      pin.makespan_bits = get_string(eo, "makespan_bits", "");
      spec.expected.push_back(std::move(pin));
    }
  }

  spec.validate();
  return spec;
}

ScenarioSpec load_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read scenario spec: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return spec_from_json(buffer.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

void save_spec(const std::string& path, const ScenarioSpec& spec) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write scenario spec: " + path);
  out << spec_to_json(spec);
}

std::vector<ScenarioSpec> load_spec_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    throw std::runtime_error("scenario spec directory not found: " + dir);
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<ScenarioSpec> specs;
  specs.reserve(paths.size());
  for (const std::string& path : paths) specs.push_back(load_spec(path));
  return specs;
}

}  // namespace chainckpt::scenario
