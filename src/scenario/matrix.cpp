#include "scenario/matrix.hpp"

#include <algorithm>
#include <string>

#include "scenario/report.hpp"
#include "scenario/spec_io.hpp"

namespace chainckpt::scenario {

namespace {

/// One failure-regime axis value, pre-tagged for cell names.
struct Regime {
  const char* tag;
  FailureSpec failure;
};

FailureSpec exp_recall(double recall) {
  FailureSpec f;
  f.law = FailureLaw::kExponential;
  f.modeled_recall = recall;
  f.actual_recall = recall;
  return f;
}

FailureSpec exp_mismatch(double modeled, double actual) {
  FailureSpec f;
  f.law = FailureLaw::kExponential;
  f.modeled_recall = modeled;
  f.actual_recall = actual;
  return f;
}

FailureSpec weibull(double shape, double modeled, double actual) {
  FailureSpec f;
  f.law = FailureLaw::kWeibull;
  f.weibull_shape = shape;
  f.modeled_recall = modeled;
  f.actual_recall = actual;
  return f;
}

FailureSpec weibull_planned(double shape, double recall) {
  FailureSpec f = weibull(shape, recall, recall);
  f.plan_under_law = true;
  return f;
}

/// The honest regimes: everything the DP assumes holds, so the sim lane
/// must agree within its CI.  Recall sweep per the imperfect-verification
/// axis (Table I default is 0.8).
std::vector<Regime> honest_regimes(bool smoke) {
  if (smoke) {
    return {{"exp-r1.0", exp_recall(1.0)}, {"exp-r0.8", exp_recall(0.8)}};
  }
  return {{"exp-r1.0", exp_recall(1.0)},
          {"exp-r0.95", exp_recall(0.95)},
          {"exp-r0.8", exp_recall(0.8)},
          {"exp-r0.5", exp_recall(0.5)}};
}

/// Heavy-tail regimes planned under their ACTUAL law: honest-recall
/// Weibull cells whose DP integrates the Weibull segment expectations, so
/// the sim lane asserts CI agreement (in-model) instead of flagging.  The
/// "weib0.7"/"weib0.5" tags are the PR 7 divergence-lane names on purpose:
/// the same cells (same name-keyed seeds) flipped from flagged to
/// in-model.
std::vector<Regime> planned_regimes(bool smoke) {
  if (smoke) {
    return {{"weib0.7", weibull_planned(0.7, 0.8)}};
  }
  return {{"weib0.7", weibull_planned(0.7, 0.8)},
          {"weib0.5", weibull_planned(0.5, 0.8)}};
}

/// The divergence-lane regimes: each breaks a DP assumption on purpose.
/// "weib0.7-expplan" keeps the old exponential-planned heavy-tail row as
/// the divergence detector (and the restart-vs-checkpoint comparison
/// column makes the cost of planning under the wrong law visible).
std::vector<Regime> broken_regimes(bool smoke) {
  if (smoke) {
    return {{"exp-mis0.95a0.5", exp_mismatch(0.95, 0.5)}};
  }
  return {{"exp-mis0.95a0.5", exp_mismatch(0.95, 0.5)},
          {"weib0.7-expplan", weibull(0.7, 0.8, 0.8)},
          {"weib0.5-mis", weibull(0.5, 0.95, 0.5)}};
}

struct ShapeAxis {
  const char* tag;
  ChainSpec chain;  ///< n filled in per size
};

ChainSpec shaped(ChainShape shape) {
  ChainSpec c;
  c.shape = shape;
  return c;
}

ChainSpec traced(const char* name) {
  ChainSpec c;
  c.shape = ChainShape::kTraced;
  c.trace = name;
  return c;
}

std::vector<ShapeAxis> shape_axis(bool smoke) {
  if (smoke) {
    return {{"uniform", shaped(ChainShape::kUniform)},
            {"pareto", shaped(ChainShape::kPareto)},
            {"genomics", traced("genomics")}};
  }
  return {{"uniform", shaped(ChainShape::kUniform)},
          {"decrease", shaped(ChainShape::kDecrease)},
          {"highlow", shaped(ChainShape::kHighLow)},
          {"pareto", shaped(ChainShape::kPareto)},
          {"ramp", shaped(ChainShape::kRamp)},
          {"genomics", traced("genomics")}};
}

}  // namespace

std::uint64_t derive_cell_seed(std::uint64_t master_seed,
                               const std::string& cell_name) {
  // Name-keyed, not index-keyed: adding or removing an axis value leaves
  // every other cell's stream untouched.
  const std::uint64_t mixed =
      fnv1a(cell_name.data(), cell_name.size(),
            master_seed ^ 0x9E3779B97F4A7C15ULL);
  return mixed == 0 ? 0x1234567ULL : mixed;
}

std::vector<ScenarioSpec> build_matrix(const MatrixOptions& options) {
  if (!options.spec_dir.empty()) {
    // User-supplied corpus: every *.json in the directory, sorted by
    // filename; the generated cross is skipped entirely.
    return load_spec_dir(options.spec_dir);
  }

  std::vector<ScenarioSpec> cells;

  const std::vector<ShapeAxis> shapes = shape_axis(options.smoke);
  const std::vector<Regime> honest = honest_regimes(options.smoke);
  const std::vector<Regime> planned = planned_regimes(options.smoke);
  const std::vector<Regime> broken = broken_regimes(options.smoke);
  const std::vector<std::size_t> sizes =
      options.smoke ? std::vector<std::size_t>{24} : options.sizes;
  const std::vector<std::string> platforms =
      options.smoke
          ? std::vector<std::string>(
                options.platforms.begin(),
                options.platforms.begin() +
                    std::min<std::size_t>(2, options.platforms.size()))
          : options.platforms;
  const std::size_t replicas = options.smoke
                                   ? std::min<std::size_t>(400, options.replicas)
                                   : options.replicas;

  auto push = [&](const std::string& name, const ChainSpec& chain,
                  const PlatformSpec& platform, const Regime& regime,
                  std::size_t n) {
    ScenarioSpec spec;
    spec.name = name;
    spec.seed = derive_cell_seed(options.master_seed, name);
    spec.chain = chain;
    spec.chain.n = n;
    spec.platform = platform;
    spec.failure = regime.failure;
    spec.failure.rate_scale = options.rate_scale;
    spec.replicas = replicas;
    cells.push_back(std::move(spec));
  };

  auto cell_name = [](const char* shape_tag, std::size_t n,
                      const std::string& platform, bool perturbed,
                      const char* regime_tag) {
    std::string name = shape_tag;
    name += "-n" + std::to_string(n);
    name += "-" + platform;
    if (perturbed) name += "~";
    name += "-";
    name += regime_tag;
    return name;
  };

  // Main cross: every shape x size x base platform x honest regime.
  for (const ShapeAxis& shape : shapes) {
    for (std::size_t n : sizes) {
      for (const std::string& platform : platforms) {
        PlatformSpec p;
        p.base = platform;
        for (const Regime& regime : honest) {
          push(cell_name(shape.tag, n, platform, false, regime.tag),
               shape.chain, p, regime, n);
        }
      }
    }
  }

  // Heavy-tail planned cross + divergence cross: every shape x base
  // platform at the small size (heavy-tail replicas are slow; one size
  // suffices to exercise each regime).  Planned regimes are in-model;
  // broken regimes are measured and flagged.
  const std::size_t small_n = sizes.front();
  for (const ShapeAxis& shape : shapes) {
    for (const std::string& platform : platforms) {
      PlatformSpec p;
      p.base = platform;
      for (const Regime& regime : planned) {
        push(cell_name(shape.tag, small_n, platform, false, regime.tag),
             shape.chain, p, regime, small_n);
      }
      for (const Regime& regime : broken) {
        push(cell_name(shape.tag, small_n, platform, false, regime.tag),
             shape.chain, p, regime, small_n);
      }
    }
  }

  // Per-position-cost rider: uniform weights, jittered verification and
  // checkpoint costs, across sizes and platforms at the Table I recall.
  {
    ChainSpec ppc = shaped(ChainShape::kUniform);
    ppc.per_position_costs = true;
    const Regime regime{"exp-r0.8", exp_recall(0.8)};
    for (std::size_t n : sizes) {
      for (const std::string& platform : platforms) {
        PlatformSpec p;
        p.base = platform;
        push(cell_name("uniform-ppc", n, platform, false, regime.tag), ppc, p,
             regime, n);
      }
    }
  }

  // Perturbed-platform rider: seeded Table I jitter on two shapes.
  if (options.perturbed_per_platform > 0 && !options.smoke) {
    const Regime regime{"exp-r0.8", exp_recall(0.8)};
    const ShapeAxis perturb_shapes[] = {
        {"uniform", shaped(ChainShape::kUniform)},
        {"pareto", shaped(ChainShape::kPareto)},
    };
    for (const ShapeAxis& shape : perturb_shapes) {
      for (const std::string& platform : platforms) {
        PlatformSpec p;
        p.base = platform;
        p.perturb = options.perturb_magnitude;
        push(cell_name(shape.tag, small_n, platform, true, regime.tag),
             shape.chain, p, regime, small_n);
      }
    }
  }

  // ADMV rider: the heavyweight per-segment-verification-count DP joins
  // the paper's three patterns on the reference platform.
  if (!options.smoke) {
    for (ScenarioSpec& spec : cells) {
      const bool paper_shape = spec.chain.shape == ChainShape::kUniform ||
                               spec.chain.shape == ChainShape::kDecrease ||
                               spec.chain.shape == ChainShape::kHighLow;
      if (paper_shape && !spec.chain.per_position_costs &&
          spec.chain.n <= options.admv_max_n && spec.platform.base == "Hera" &&
          spec.platform.perturb == 0.0 &&
          spec.failure.law == FailureLaw::kExponential &&
          spec.failure.modeled_recall == 0.8 &&
          spec.failure.actual_recall == 0.8) {
        spec.algorithms.push_back(core::Algorithm::kADMV);
      }
    }
  }

  // Traffic cells: Poisson and bursty arrival traces replayed through the
  // service on the reference shape/regime.
  if (options.traffic_cells) {
    const Regime regime{"exp-r0.8", exp_recall(0.8)};
    const ChainSpec chain = shaped(ChainShape::kUniform);
    const std::size_t traffic_platforms =
        std::min<std::size_t>(2, platforms.size());
    for (std::size_t pi = 0; pi < traffic_platforms; ++pi) {
      for (TrafficKind kind : {TrafficKind::kPoisson, TrafficKind::kBursty}) {
        PlatformSpec p;
        p.base = platforms[pi];
        const std::string name =
            cell_name("uniform", small_n, platforms[pi], false, regime.tag) +
            "-" + to_string(kind);
        ScenarioSpec spec;
        spec.name = name;
        spec.seed = derive_cell_seed(options.master_seed, name);
        spec.chain = chain;
        spec.chain.n = small_n;
        spec.platform = p;
        spec.failure = regime.failure;
        spec.failure.rate_scale = options.rate_scale;
        spec.replicas = replicas;
        spec.traffic.kind = kind;
        if (options.smoke) spec.traffic.jobs = 16;
        cells.push_back(std::move(spec));
      }
    }
  }

  return cells;
}

}  // namespace chainckpt::scenario
