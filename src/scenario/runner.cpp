#include "scenario/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

#include "analysis/evaluator.hpp"
#include "core/batch_solver.hpp"
#include "core/optimizer.hpp"
#include "error/injector.hpp"
#include "scenario/traffic.hpp"
#include "service/solver_service.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace chainckpt::scenario {

namespace {

/// One DP-lane configuration.  The first entry is the reference solve
/// (dense scan, scalar kernels, row-major tables) whose plan feeds the
/// sim and service lanes; the rest must reproduce it bit for bit.
struct SolveConfig {
  core::ScanMode scan;
  core::simd::SimdTier tier;
  core::TableLayout layout;
};

const SolveConfig kConfigs[] = {
    {core::ScanMode::kDense, core::simd::SimdTier::kScalar,
     core::TableLayout::kRowMajor},
    {core::ScanMode::kMonotonePruned, core::simd::SimdTier::kScalar,
     core::TableLayout::kRowMajor},
    // kAvx512 clamps to the best tier this CPU/build supports -- on a
    // scalar-only host these repeat the scalar kernels, keeping the
    // config COUNT (and hence the report bytes) machine-independent.
    {core::ScanMode::kDense, core::simd::SimdTier::kAvx512,
     core::TableLayout::kTiled},
    {core::ScanMode::kMonotonePruned, core::simd::SimdTier::kAvx512,
     core::TableLayout::kRowMajor},
};

std::string double_bits_hex(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

/// Seed for the sim lane's replica streams, decorrelated from the
/// materialization streams (which use stream(spec.seed, 1..4) -- replica
/// indices would collide with them).
std::uint64_t sim_lane_seed(const ScenarioSpec& spec) {
  static const char kTag[] = "sim-lane";
  return fnv1a(kTag, sizeof(kTag) - 1, spec.seed);
}

sim::InjectorFactory make_injector_factory(const ScenarioSpec& spec,
                                           const MaterializedCell& cell) {
  const double lambda_f = cell.actual_platform.lambda_f;
  const double lambda_s = cell.actual_platform.lambda_s;
  const std::uint64_t seed = sim_lane_seed(spec);
  if (spec.failure.law == FailureLaw::kWeibull) {
    const double shape = spec.failure.weibull_shape;
    return [lambda_f, lambda_s, shape, seed](std::uint64_t replica) {
      return std::unique_ptr<error::Injector>(new error::WeibullInjector(
          lambda_f, shape, lambda_s, util::Xoshiro256::stream(seed, replica)));
    };
  }
  return [lambda_f, lambda_s, seed](std::uint64_t replica) {
    return std::unique_ptr<error::Injector>(new error::PoissonInjector(
        lambda_f, lambda_s, util::Xoshiro256::stream(seed, replica)));
  };
}

/// Human-readable planning-law tag for the report column.
std::string planning_law_name(const platform::CostModel& costs) {
  const platform::PlanningLaw& law = costs.planning_law();
  if (law.is_exponential()) return "exponential";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "weibull k=%g", law.weibull_shape);
  return buf;
}

/// Reference solves + cross-configuration equivalence for one cell.
/// Returns the reference OptimizationResults (spec.algorithms order) for
/// the other lanes.
std::vector<core::OptimizationResult> run_dp_lane(const ScenarioSpec& spec,
                                                  const MaterializedCell& cell,
                                                  CellReport& out) {
  // Restart-vs-checkpoint comparison (Sodre et al.): score the
  // restart-only plan -- no intermediate actions, just the mandatory
  // final disk checkpoint -- under the SAME planning law the DP used.
  // One number per cell; the per-algorithm ratio lands in each DP lane.
  const double restart_makespan =
      analysis::PlanEvaluator(cell.chain, cell.modeled_costs)
          .expected_makespan(plan::ResiliencePlan(cell.chain.size()));

  std::vector<core::OptimizationResult> references;
  references.reserve(spec.algorithms.size());
  for (core::Algorithm algorithm : spec.algorithms) {
    DpLaneResult lane;
    lane.algorithm = core::to_string(algorithm);
    lane.configs_identical = true;
    std::uint64_t reference_digest = 0;
    for (const SolveConfig& config : kConfigs) {
      core::DpContext ctx(cell.chain, cell.modeled_costs);
      ctx.set_scan_mode(config.scan);
      ctx.set_simd_tier(config.tier);
      core::OptimizationResult result =
          core::optimize(algorithm, ctx, config.layout);
      const std::uint64_t digest =
          result_digest(result.plan, result.expected_makespan);
      ++lane.configs;
      if (lane.configs == 1) {
        reference_digest = digest;
        lane.digest = hex64(digest);
        lane.expected_makespan = result.expected_makespan;
        lane.makespan_bits = double_bits_hex(result.expected_makespan);
        lane.plan_compact = result.plan.compact_string();
        lane.restart_makespan = restart_makespan;
        lane.restart_ratio = result.expected_makespan != 0.0
                                 ? restart_makespan / result.expected_makespan
                                 : 0.0;
        references.push_back(std::move(result));
      } else if (digest != reference_digest) {
        lane.configs_identical = false;
      }
    }
    out.dp.push_back(std::move(lane));
  }
  return references;
}

void run_sim_lane(const ScenarioSpec& spec, const MaterializedCell& cell,
                  const std::vector<core::OptimizationResult>& references,
                  const RunnerOptions& options, CellReport& out) {
  const sim::Simulator simulator(cell.chain, cell.actual_costs);
  const sim::InjectorFactory factory = make_injector_factory(spec, cell);
  sim::ExperimentOptions eopts;
  eopts.replicas = spec.replicas;
  eopts.seed = sim_lane_seed(spec);
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    const sim::ExperimentResult experiment =
        sim::run_experiment(simulator, references[a].plan, factory, eopts);
    SimLaneResult lane;
    lane.algorithm = core::to_string(spec.algorithms[a]);
    lane.dp_prediction = references[a].expected_makespan;
    lane.sim_mean = experiment.makespan.mean();
    lane.sim_stderr = experiment.makespan.stderr_mean();
    lane.replicas = experiment.replicas;
    const double gap = lane.sim_mean - lane.dp_prediction;
    lane.gap_sigmas =
        lane.sim_stderr > 0.0 ? std::abs(gap) / lane.sim_stderr : 0.0;
    lane.relative_gap =
        lane.dp_prediction != 0.0 ? gap / lane.dp_prediction : 0.0;
    const double interval = options.z_flag * lane.sim_stderr +
                            options.rel_floor * std::abs(lane.dp_prediction);
    lane.within_ci = std::abs(gap) <= interval;
    out.sim.push_back(std::move(lane));
  }
}

void run_service_lane(const ScenarioSpec& spec, const MaterializedCell& cell,
                      const std::vector<core::OptimizationResult>& references,
                      const RunnerOptions& options, CellReport& out) {
  const ArrivalTrace trace = make_trace(spec);

  std::vector<std::uint64_t> reference_digests;
  reference_digests.reserve(references.size());
  for (const core::OptimizationResult& reference : references) {
    reference_digests.push_back(
        result_digest(reference.plan, reference.expected_makespan));
  }

  service::ServiceOptions sopts;
  sopts.workers = options.service_workers;
  sopts.admission.budget_units = 0.0;  // unlimited: inversion-free dispatch
  sopts.admission.max_job_units = 0.0;
  sopts.admission.queue_capacity = trace.arrivals.size() + 8;

  ServiceLaneResult lane;
  lane.jobs = trace.arrivals.size();
  lane.trace_digest = hex64(trace.digest());

  using Clock = std::chrono::steady_clock;
  struct Completion {
    service::JobId id;
    double latency_ms;
  };
  std::vector<Completion> completions;
  std::mutex completions_mutex;
  std::vector<Clock::time_point> submit_times(trace.arrivals.size());

  std::vector<service::JobHandle> handles;
  handles.reserve(trace.arrivals.size());
  std::uint64_t preempted = 0;
  {
    service::SolverService svc(sopts);
    if (options.include_timing) {
      svc.on_completion([&](const service::JobStatus& status) {
        std::lock_guard<std::mutex> lock(completions_mutex);
        completions.push_back({status.id, 0.0});
      });
    }
    const Clock::time_point start = Clock::now();
    for (std::size_t i = 0; i < trace.arrivals.size(); ++i) {
      const Arrival& arrival = trace.arrivals[i];
      const Clock::time_point due =
          start + std::chrono::microseconds(arrival.offset_us);
      std::this_thread::sleep_until(due);
      service::JobRequest request{
          core::BatchJob{spec.algorithms[arrival.algorithm_index], cell.chain,
                         cell.modeled_costs},
          service::SubmitOptions(
              arrival.priority,
              std::chrono::milliseconds(arrival.deadline_ms))};
      submit_times[i] = Clock::now();
      handles.push_back(svc.submit(std::move(request)));
    }

    lane.all_succeeded = true;
    lane.bitwise_ok = true;
    std::vector<service::JobStatus> statuses;
    statuses.reserve(handles.size());
    for (std::size_t i = 0; i < handles.size(); ++i) {
      service::JobStatus status = svc.wait(handles[i]);
      if (status.state != service::JobState::kSucceeded) {
        lane.all_succeeded = false;
      } else {
        const std::uint64_t digest = result_digest(
            status.result.plan, status.result.expected_makespan);
        if (digest != reference_digests[trace.arrivals[i].algorithm_index]) {
          lane.bitwise_ok = false;
        }
      }
      statuses.push_back(std::move(status));
    }

    // Priority inversions, by the stress battery's rule: a higher-class
    // job queued before a lower-class job started, yet dispatched after
    // it.  Jobs that never started or were preempted (their start_seq is
    // the LAST dispatch) are excluded.
    for (const service::JobStatus& high : statuses) {
      if (high.start_seq == 0 || high.preemptions > 0) continue;
      for (const service::JobStatus& low : statuses) {
        if (low.start_seq == 0 || low.preemptions > 0) continue;
        if (static_cast<int>(high.priority) <= static_cast<int>(low.priority)) {
          continue;
        }
        if (high.submit_seq < low.start_seq &&
            low.start_seq < high.start_seq) {
          ++lane.priority_inversions;
        }
      }
    }

    // Exact counter reconciliation: every arrival must be accounted for
    // as a success (folded into all_succeeded so the deterministic
    // report carries it).
    const service::ServiceStats stats = svc.stats();
    if (stats.submitted != trace.arrivals.size() ||
        stats.succeeded != trace.arrivals.size() || stats.rejected != 0) {
      lane.all_succeeded = false;
    }
    preempted = stats.preempted;

    if (options.include_timing) {
      svc.drain();
      const double replay_seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      std::vector<double> latencies;
      {
        std::lock_guard<std::mutex> lock(completions_mutex);
        for (Completion& c : completions) {
          // Job ids are issued in submit order starting at the service's
          // first id; map back through the handles.
          for (std::size_t i = 0; i < handles.size(); ++i) {
            if (handles[i].id() == c.id) {
              c.latency_ms = std::chrono::duration<double, std::milli>(
                                 Clock::now() - submit_times[i])
                                 .count();
              break;
            }
          }
          latencies.push_back(c.latency_ms);
        }
      }
      std::sort(latencies.begin(), latencies.end());
      const auto pct = [&latencies](double q) {
        if (latencies.empty()) return 0.0;
        const std::size_t idx = static_cast<std::size_t>(
            q * static_cast<double>(latencies.size() - 1));
        return latencies[idx];
      };
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "{\"replay_seconds\": %.3f, \"latency_ms_p50\": %.3f, "
                    "\"latency_ms_p95\": %.3f, \"preempted\": %llu}",
                    replay_seconds, pct(0.5), pct(0.95),
                    static_cast<unsigned long long>(preempted));
      lane.timing_json = buf;
    }
  }

  out.service.push_back(std::move(lane));
}

/// Seeded per-parameter-group drift of a cost model: every group (rates,
/// checkpoint/recovery/verification costs) is scaled by an independent
/// exp-symmetric factor in [1/(1+drift), 1+drift].  Per-position models
/// keep their position structure (each stream scaled by its group
/// factor); the planning law is carried over unchanged.
platform::CostModel drift_costs(const platform::CostModel& base,
                                std::size_t n, double drift,
                                util::Xoshiro256& rng) {
  const auto jitter = [&rng, drift] {
    return std::exp((2.0 * rng.uniform01() - 1.0) * std::log1p(drift));
  };
  const double f_lf = jitter(), f_ls = jitter(), f_cd = jitter(),
               f_cm = jitter(), f_rd = jitter(), f_rm = jitter(),
               f_vg = jitter(), f_vp = jitter();
  platform::Platform p = base.platform();
  p.lambda_f *= f_lf;
  p.lambda_s *= f_ls;
  p.c_disk *= f_cd;
  p.c_mem *= f_cm;
  p.r_disk *= f_rd;
  p.r_mem *= f_rm;
  p.v_guaranteed *= f_vg;
  p.v_partial *= f_vp;
  platform::CostModel out = [&] {
    if (base.is_uniform()) return platform::CostModel(p);
    std::vector<double> c_disk(n), c_mem(n), v_g(n), v_p(n), r_disk(n),
        r_mem(n);
    for (std::size_t i = 1; i <= n; ++i) {
      c_disk[i - 1] = base.c_disk_after(i) * f_cd;
      c_mem[i - 1] = base.c_mem_after(i) * f_cm;
      v_g[i - 1] = base.v_guaranteed_after(i) * f_vg;
      v_p[i - 1] = base.v_partial_after(i) * f_vp;
      r_disk[i - 1] = base.r_disk_after(i) * f_rd;
      r_mem[i - 1] = base.r_mem_after(i) * f_rm;
    }
    return platform::CostModel(p, std::move(c_disk), std::move(c_mem),
                               std::move(v_g), std::move(v_p),
                               std::move(r_disk), std::move(r_mem));
  }();
  out.set_planning_law(base.planning_law());
  return out;
}

/// Cache-replay lane: populate a plan-cached BatchSolver with the cell's
/// solves, replay `requests` seeded submissions (a quarter verbatim, the
/// rest parameter-drifted), classify each via PlanCacheStats deltas
/// (serial loop, so the deltas are exact), and oracle every served
/// result against a cache-disabled fresh solve of the SAME request.
void run_cache_lane(const ScenarioSpec& spec, const MaterializedCell& cell,
                    CellReport& out) {
  core::BatchOptions cached_opts;
  cached_opts.plan_cache_epsilon = spec.cache.epsilon;
  core::BatchSolver cached(cached_opts);
  core::BatchOptions fresh_opts;
  fresh_opts.enable_plan_cache = false;
  core::BatchSolver fresh(fresh_opts);

  CacheLaneResult lane;
  lane.requests = spec.cache.requests;
  lane.epsilon = spec.cache.epsilon;
  lane.oracle_ok = true;

  for (core::Algorithm algorithm : spec.algorithms) {
    cached.solve_job(
        core::BatchJob{algorithm, cell.chain, cell.modeled_costs});
  }

  static const char kTag[] = "cache-lane";
  util::Xoshiro256 rng = util::Xoshiro256::stream(
      fnv1a(kTag, sizeof(kTag) - 1, spec.seed), 0);
  const std::size_t n = cell.chain.size();
  for (std::size_t r = 0; r < spec.cache.requests; ++r) {
    const auto pick = static_cast<std::size_t>(
        rng.uniform01() * static_cast<double>(spec.algorithms.size()));
    const core::Algorithm algorithm =
        spec.algorithms[std::min(pick, spec.algorithms.size() - 1)];
    const bool verbatim = rng.uniform01() < 0.25;
    const platform::CostModel request_costs =
        verbatim ? cell.modeled_costs
                 : drift_costs(cell.modeled_costs, n, spec.cache.drift, rng);

    const core::PlanCacheStats before = cached.plan_cache_stats();
    const core::OptimizationResult served = cached.solve_job(
        core::BatchJob{algorithm, cell.chain, request_costs});
    const core::PlanCacheStats after = cached.plan_cache_stats();
    const core::OptimizationResult oracle = fresh.solve_job(
        core::BatchJob{algorithm, cell.chain, request_costs});

    const std::uint64_t served_digest =
        result_digest(served.plan, served.expected_makespan);
    const std::uint64_t oracle_digest =
        result_digest(oracle.plan, oracle.expected_makespan);
    if (after.exact_hits > before.exact_hits) {
      ++lane.exact_hits;
      // A certified exact hit must be indistinguishable from solving.
      if (served_digest != oracle_digest) lane.oracle_ok = false;
    } else if (after.epsilon_hits > before.epsilon_hits) {
      ++lane.epsilon_hits;
      // The epsilon contract is against the TRUE drifted optimum, which
      // the oracle solve computes.
      if (!(served.expected_makespan <=
            (1.0 + spec.cache.epsilon) * oracle.expected_makespan *
                (1.0 + 1e-12))) {
        lane.oracle_ok = false;
      }
    } else {
      ++lane.resolves;
      // A rejected certificate must fall through to a REAL solve.
      if (served_digest != oracle_digest) lane.oracle_ok = false;
    }
  }
  out.cache.push_back(std::move(lane));
}

}  // namespace

CellReport run_cell(const ScenarioSpec& spec, const RunnerOptions& options) {
  const MaterializedCell cell = materialize(spec);

  CellReport report;
  report.name = spec.name;
  report.seed = spec.seed;
  report.planning_law = planning_law_name(cell.modeled_costs);
  report.assumptions_hold = spec.failure.assumptions_hold();
  report.flagged = !report.assumptions_hold;

  const std::vector<core::OptimizationResult> references =
      run_dp_lane(spec, cell, report);
  run_sim_lane(spec, cell, references, options, report);
  if (spec.traffic.kind != TrafficKind::kNone) {
    run_service_lane(spec, cell, references, options, report);
  }
  if (spec.cache.enabled) {
    run_cache_lane(spec, cell, report);
  }

  bool configs_ok = true;
  for (const DpLaneResult& dp : report.dp) {
    configs_ok = configs_ok && dp.configs_identical;
  }
  for (const SimLaneResult& sim : report.sim) {
    if (!sim.within_ci) report.diverged = true;
  }
  bool service_ok = true;
  for (const ServiceLaneResult& svc : report.service) {
    service_ok = service_ok && svc.all_succeeded && svc.bitwise_ok &&
                 svc.priority_inversions == 0;
  }
  bool cache_ok = true;
  for (const CacheLaneResult& c : report.cache) {
    cache_ok = cache_ok && c.oracle_ok;
  }
  report.ok = configs_ok && service_ok && cache_ok &&
              (report.assumptions_hold ? !report.diverged : true);
  return report;
}

ScenarioReport run_matrix(const std::vector<ScenarioSpec>& specs,
                          const RunnerOptions& options) {
  ScenarioReport report;
  report.master_seed = options.master_seed;
  report.cells.resize(specs.size());
  const auto body = [&](std::size_t i) {
    report.cells[i] = run_cell(specs[i], options);
  };
  if (options.parallel) {
    util::parallel_for(0, specs.size(), body);
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) body(i);
  }
  report.finalize();
  return report;
}

}  // namespace chainckpt::scenario
