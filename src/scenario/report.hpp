// Machine-readable per-cell results of a scenario-matrix run.
//
// The report is the regression artifact future PRs diff against, so its
// JSON form carries a byte-determinism contract: the same spec list +
// seed produces the IDENTICAL byte stream on the same build, regardless
// of thread count or cell execution order.  Everything in the canonical
// report is therefore derived from deterministic quantities (bitwise DP
// results, seeded Monte-Carlo streams, seeded traces); wall-clock timing
// metrics only appear when RunnerOptions::include_timing opts out of the
// contract (tools/run_scenarios.py does, CI determinism tests do not).
//
// Divergence-flag semantics (see docs/SCENARIOS.md):
//   * assumptions_hold -- the regime satisfies what the DP assumes
//     (exponential failures, honest recall).  False marks a cell whose
//     DP prediction is UNTRUSTED by construction.
//   * within_ci / diverged -- per-algorithm: is the Monte-Carlo mean
//     makespan inside the flagging interval around the DP prediction
//     (z_flag sigmas + a relative floor)?
//   * ok -- the cell-level verdict: all DP configurations bit-identical,
//     and IF assumptions hold, no divergence.  A broken-assumption cell
//     is ok even when diverged -- but the divergence is recorded and
//     counted, never silently averaged away.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace chainckpt::scenario {

/// FNV-1a 64 over arbitrary bytes; the digest primitive for plans,
/// objectives, and traces.
std::uint64_t fnv1a(const void* data, std::size_t size,
                    std::uint64_t seed = 1469598103934665603ULL) noexcept;

/// 16-hex-digit lowercase rendering of a 64-bit digest.
std::string hex64(std::uint64_t v);

/// Digest of one solve: FNV-1a over the canonical plan text plus the raw
/// IEEE-754 bits of the objective.  Bitwise solver changes -- kernels,
/// pruning, layouts -- show up here immediately.
std::uint64_t result_digest(const plan::ResiliencePlan& plan,
                            double expected_makespan);

/// One algorithm's DP lane in one cell.
struct DpLaneResult {
  std::string algorithm;     ///< display name
  std::string digest;        ///< hex64(result_digest(...))
  double expected_makespan = 0.0;
  std::string makespan_bits;  ///< "0x" + 16 hex digits of the double bits
  std::string plan_compact;   ///< ResiliencePlan::compact_string()
  /// All solved configurations (scan modes x SIMD tiers) produced
  /// bit-identical plans and objectives.
  bool configs_identical = false;
  std::size_t configs = 0;    ///< configurations cross-checked
  /// Restart-vs-checkpoint comparison (Sodre et al.): the restart-only
  /// plan (no intermediate actions, mandatory final disk checkpoint)
  /// scored under the SAME planning law as the DP, and its makespan
  /// relative to the optimized plan.  A ratio well above 1 quantifies
  /// what checkpointing buys on this cell; heavy-tail cells planned
  /// under Weibull show it growing with 1/shape.
  double restart_makespan = 0.0;
  double restart_ratio = 0.0;  ///< restart_makespan / expected_makespan
};

/// One algorithm's Monte-Carlo lane in one cell.
struct SimLaneResult {
  std::string algorithm;
  double dp_prediction = 0.0;   ///< DP objective (modeled platform)
  double sim_mean = 0.0;        ///< MC mean makespan (actual regime)
  double sim_stderr = 0.0;      ///< standard error of the MC mean
  double gap_sigmas = 0.0;      ///< |sim - dp| / stderr (0 when stderr=0)
  double relative_gap = 0.0;    ///< (sim - dp) / dp
  std::size_t replicas = 0;
  bool within_ci = false;       ///< inside z_flag * stderr + rel floor
};

/// The service lane of one traffic-carrying cell.  Only deterministic
/// outcomes live here; latency percentiles ride in `timing_json` when
/// enabled.
struct ServiceLaneResult {
  std::size_t jobs = 0;
  std::string trace_digest;     ///< hex64(ArrivalTrace::digest())
  bool all_succeeded = false;
  bool bitwise_ok = false;      ///< every result == sync reference solve
  std::uint64_t priority_inversions = 0;  ///< must be 0 (unlimited budget)
  /// Optional non-deterministic block (include_timing): raw JSON object
  /// text with latency/preemption metrics, or empty.
  std::string timing_json;
};

/// The cache-replay lane of one cache-enabled cell.  Counters come from
/// serial PlanCacheStats deltas around each replayed request, so
/// requests == exact_hits + epsilon_hits + resolves holds by
/// construction; `oracle_ok` folds the per-request fresh-solve oracle:
/// exact hits bitwise-identical to the fresh solve, epsilon-hits within
/// (1 + epsilon) of the fresh objective, re-solves bitwise-identical to
/// the fresh solve.
struct CacheLaneResult {
  std::size_t requests = 0;
  std::size_t exact_hits = 0;
  std::size_t epsilon_hits = 0;
  std::size_t resolves = 0;      ///< misses + certificate rejections
  double epsilon = 0.0;          ///< tolerance the lane replayed under
  bool oracle_ok = false;
};

struct CellReport {
  std::string name;
  std::uint64_t seed = 0;
  /// Planning-law column: "exponential" or "weibull k=<shape>" -- the law
  /// the modeled cost model's DP integrated segment expectations under.
  std::string planning_law;
  bool assumptions_hold = true;
  bool diverged = false;        ///< any sim lane outside the interval
  bool flagged = false;         ///< !assumptions_hold (divergence lane)
  bool ok = false;              ///< see header comment
  std::vector<DpLaneResult> dp;
  std::vector<SimLaneResult> sim;
  std::vector<ServiceLaneResult> service;  ///< empty or one entry
  std::vector<CacheLaneResult> cache;      ///< empty or one entry
};

struct MatrixSummary {
  std::size_t cells = 0;
  std::size_t ok_cells = 0;
  std::size_t flagged_cells = 0;       ///< assumption-breaking cells
  std::size_t diverged_flagged = 0;    ///< ...of which measurably diverged
  std::size_t diverged_in_model = 0;   ///< divergences where assumptions
                                       ///< hold -- must be 0
  std::size_t dp_config_mismatches = 0;  ///< must be 0
  std::size_t service_cells = 0;
};

struct ScenarioReport {
  std::uint64_t master_seed = 0;
  std::vector<CellReport> cells;
  MatrixSummary summary;       ///< recomputed by finalize()

  /// Recomputes `summary` from `cells`.
  void finalize();
};

/// Canonical JSON rendering (byte-deterministic; see header comment).
std::string report_to_json(const ScenarioReport& report);

/// Digest over the canonical JSON bytes -- the one-line fingerprint CI
/// logs print.
std::string report_digest(const ScenarioReport& report);

}  // namespace chainckpt::scenario
