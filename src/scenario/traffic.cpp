#include "scenario/traffic.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace chainckpt::scenario {

namespace {
constexpr std::uint64_t kTrafficStream = 4;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_u64(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xFF;
    h *= kFnvPrime;
  }
}

service::Priority draw_priority(const TrafficSpec& t,
                                util::Xoshiro256& rng) {
  double total = 0.0;
  for (double p : t.priority_mix) total += p;
  double u = rng.uniform01() * total;
  for (int c = 0; c < 4; ++c) {
    u -= t.priority_mix[c];
    if (u < 0.0) return static_cast<service::Priority>(c);
  }
  return service::Priority::kUrgent;
}
}  // namespace

std::uint64_t ArrivalTrace::digest() const noexcept {
  std::uint64_t h = kFnvOffset;
  for (const Arrival& a : arrivals) {
    fnv_u64(h, a.offset_us);
    fnv_u64(h, static_cast<std::uint64_t>(a.priority));
    fnv_u64(h, a.deadline_ms);
    fnv_u64(h, a.algorithm_index);
  }
  return h;
}

ArrivalTrace make_trace(const ScenarioSpec& spec,
                        std::uint64_t deadline_scale_ms) {
  const TrafficSpec& t = spec.traffic;
  ArrivalTrace trace;
  if (t.kind == TrafficKind::kNone) return trace;
  CHAINCKPT_REQUIRE(!spec.algorithms.empty(),
                    "traffic needs at least one job kind");

  util::Xoshiro256 rng = util::Xoshiro256::stream(spec.seed, kTrafficStream);
  trace.arrivals.reserve(t.jobs);
  const double mean_gap_us = 1e6 / t.rate;

  double clock_us = 0.0;
  std::size_t emitted = 0;
  while (emitted < t.jobs) {
    std::size_t batch = 1;
    if (t.kind == TrafficKind::kPoisson) {
      clock_us += rng.exponential(1.0 / mean_gap_us);
    } else {  // kBursty: a full burst lands at one instant, then a gap
      clock_us += mean_gap_us;
      batch = t.burst_size;
    }
    for (std::size_t b = 0; b < batch && emitted < t.jobs; ++b, ++emitted) {
      Arrival a;
      a.offset_us = static_cast<std::uint64_t>(clock_us);
      a.priority = draw_priority(t, rng);
      if (rng.uniform01() < t.deadline_fraction) {
        // Generous by construction: scale +/- 50%, never tight enough to
        // expire under CI load (the stress battery tightens separately).
        a.deadline_ms = deadline_scale_ms / 2 +
                        rng() % (deadline_scale_ms > 0 ? deadline_scale_ms : 1);
      }
      a.algorithm_index = emitted % spec.algorithms.size();
      trace.arrivals.push_back(a);
    }
  }
  trace.span_us = trace.arrivals.empty() ? 0 : trace.arrivals.back().offset_us;
  return trace;
}

}  // namespace chainckpt::scenario
