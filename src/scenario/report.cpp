#include "scenario/report.hpp"

#include <cstdio>
#include <cstring>

#include "plan/plan_io.hpp"

namespace chainckpt::scenario {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Shortest-round-trip double rendering ("%.17g" preserves the exact
/// value; the fixed format keeps the byte-determinism contract).
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:   out += c; break;
    }
  }
  return out;
}

const char* json_bool(bool b) { return b ? "true" : "false"; }
}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size,
                    std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t result_digest(const plan::ResiliencePlan& plan,
                            double expected_makespan) {
  const std::string text = plan::to_text(plan);
  std::uint64_t h = fnv1a(text.data(), text.size());
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(expected_makespan), "double is 64-bit");
  std::memcpy(&bits, &expected_makespan, sizeof(bits));
  return fnv1a(&bits, sizeof(bits), h);
}

void ScenarioReport::finalize() {
  summary = MatrixSummary{};
  summary.cells = cells.size();
  for (const CellReport& cell : cells) {
    if (cell.ok) ++summary.ok_cells;
    if (cell.flagged) {
      ++summary.flagged_cells;
      if (cell.diverged) ++summary.diverged_flagged;
    } else if (cell.diverged) {
      ++summary.diverged_in_model;
    }
    for (const DpLaneResult& dp : cell.dp) {
      if (!dp.configs_identical) ++summary.dp_config_mismatches;
    }
    if (!cell.service.empty()) ++summary.service_cells;
  }
}

std::string report_to_json(const ScenarioReport& report) {
  std::string out;
  out.reserve(4096 + 1024 * report.cells.size());
  out += "{\n  \"schema\": \"chainckpt-scenario-report-v1\",\n";
  out += "  \"master_seed\": " + std::to_string(report.master_seed) + ",\n";
  const MatrixSummary& s = report.summary;
  out += "  \"summary\": {";
  out += "\"cells\": " + std::to_string(s.cells);
  out += ", \"ok_cells\": " + std::to_string(s.ok_cells);
  out += ", \"flagged_cells\": " + std::to_string(s.flagged_cells);
  out += ", \"diverged_flagged\": " + std::to_string(s.diverged_flagged);
  out += ", \"diverged_in_model\": " + std::to_string(s.diverged_in_model);
  out += ", \"dp_config_mismatches\": " +
         std::to_string(s.dp_config_mismatches);
  out += ", \"service_cells\": " + std::to_string(s.service_cells);
  out += "},\n  \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const CellReport& cell = report.cells[i];
    out += "    {\"name\": \"" + json_escape(cell.name) + "\"";
    out += ", \"seed\": " + std::to_string(cell.seed);
    out += ", \"planning_law\": \"" + json_escape(cell.planning_law) + "\"";
    out += ", \"assumptions_hold\": ";
    out += json_bool(cell.assumptions_hold);
    out += ", \"flagged\": ";
    out += json_bool(cell.flagged);
    out += ", \"diverged\": ";
    out += json_bool(cell.diverged);
    out += ", \"ok\": ";
    out += json_bool(cell.ok);
    out += ",\n     \"dp\": [";
    for (std::size_t j = 0; j < cell.dp.size(); ++j) {
      const DpLaneResult& dp = cell.dp[j];
      if (j) out += ", ";
      out += "{\"algorithm\": \"" + json_escape(dp.algorithm) + "\"";
      out += ", \"digest\": \"" + dp.digest + "\"";
      out += ", \"expected_makespan\": " + fmt_double(dp.expected_makespan);
      out += ", \"makespan_bits\": \"" + dp.makespan_bits + "\"";
      out += ", \"configs\": " + std::to_string(dp.configs);
      out += ", \"configs_identical\": ";
      out += json_bool(dp.configs_identical);
      out += ", \"restart_makespan\": " + fmt_double(dp.restart_makespan);
      out += ", \"restart_ratio\": " + fmt_double(dp.restart_ratio);
      out += ", \"plan\": \"" + json_escape(dp.plan_compact) + "\"}";
    }
    out += "],\n     \"sim\": [";
    for (std::size_t j = 0; j < cell.sim.size(); ++j) {
      const SimLaneResult& sim = cell.sim[j];
      if (j) out += ", ";
      out += "{\"algorithm\": \"" + json_escape(sim.algorithm) + "\"";
      out += ", \"dp_prediction\": " + fmt_double(sim.dp_prediction);
      out += ", \"sim_mean\": " + fmt_double(sim.sim_mean);
      out += ", \"sim_stderr\": " + fmt_double(sim.sim_stderr);
      out += ", \"gap_sigmas\": " + fmt_double(sim.gap_sigmas);
      out += ", \"relative_gap\": " + fmt_double(sim.relative_gap);
      out += ", \"replicas\": " + std::to_string(sim.replicas);
      out += ", \"within_ci\": ";
      out += json_bool(sim.within_ci);
      out += "}";
    }
    out += "]";
    if (!cell.service.empty()) {
      out += ",\n     \"service\": [";
      for (std::size_t j = 0; j < cell.service.size(); ++j) {
        const ServiceLaneResult& svc = cell.service[j];
        if (j) out += ", ";
        out += "{\"jobs\": " + std::to_string(svc.jobs);
        out += ", \"trace_digest\": \"" + svc.trace_digest + "\"";
        out += ", \"all_succeeded\": ";
        out += json_bool(svc.all_succeeded);
        out += ", \"bitwise_ok\": ";
        out += json_bool(svc.bitwise_ok);
        out += ", \"priority_inversions\": " +
               std::to_string(svc.priority_inversions);
        if (!svc.timing_json.empty()) {
          out += ", \"timing\": " + svc.timing_json;
        }
        out += "}";
      }
      out += "]";
    }
    if (!cell.cache.empty()) {
      out += ",\n     \"cache\": [";
      for (std::size_t j = 0; j < cell.cache.size(); ++j) {
        const CacheLaneResult& c = cell.cache[j];
        if (j) out += ", ";
        out += "{\"requests\": " + std::to_string(c.requests);
        out += ", \"exact_hits\": " + std::to_string(c.exact_hits);
        out += ", \"epsilon_hits\": " + std::to_string(c.epsilon_hits);
        out += ", \"resolves\": " + std::to_string(c.resolves);
        out += ", \"epsilon\": " + fmt_double(c.epsilon);
        out += ", \"oracle_ok\": ";
        out += json_bool(c.oracle_ok);
        out += "}";
      }
      out += "]";
    }
    out += "}";
    if (i + 1 < report.cells.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string report_digest(const ScenarioReport& report) {
  const std::string json = report_to_json(report);
  return hex64(fnv1a(json.data(), json.size()));
}

}  // namespace chainckpt::scenario
