// ScenarioSpec JSON (de)serialization.
//
// The golden corpus (tests/scenario/golden/) checks specs in as JSON, so
// unlike the plan writer (plan/plan_io.hpp, write-only JSON) this module
// carries a real -- deliberately minimal -- JSON parser: objects, arrays,
// strings (with the escapes the writer emits), numbers, booleans, null.
// It exists for scenario fixtures, not as a general-purpose JSON library.
//
// Round-trip contract: spec_from_json(spec_to_json(s)) reproduces `s`
// field-for-field (doubles via %.17g, hence bit-exact).
#pragma once

#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace chainckpt::scenario {

/// Serializes a spec (including any golden `expected` pins).
std::string spec_to_json(const ScenarioSpec& spec);

/// Parses and validates a spec; throws std::invalid_argument on malformed
/// JSON, unknown fields' types, or out-of-range parameters.
ScenarioSpec spec_from_json(const std::string& json);

/// File helpers; throw std::runtime_error when the path is unreadable.
ScenarioSpec load_spec(const std::string& path);
void save_spec(const std::string& path, const ScenarioSpec& spec);

/// Loads every *.json spec in `dir`, sorted by filename so matrix runs
/// over user-supplied corpora are order-deterministic.  Throws
/// std::runtime_error on a missing directory and propagates per-file
/// parse errors (each prefixed with its path).
std::vector<ScenarioSpec> load_spec_dir(const std::string& dir);

}  // namespace chainckpt::scenario
