// The scenario matrix: a deterministic cross-product of chain shapes,
// platform grids, failure regimes, and traffic shapes.
//
// build_matrix() expands MatrixOptions into the full cell list --
// the default options produce 200+ cells (test-pinned) covering:
//   * chain shapes: the paper's three patterns plus Pareto heavy-tailed
//     weights, correlated ramps, and traced-workflow replays, at two
//     sizes (the larger size drops ADMV, whose inner DP dominates cell
//     cost), with a per-position-cost variant riding the uniform shape;
//   * platforms: a Table I subset plus seeded random perturbations;
//   * failure regimes: exponential with matched recall in {1.0, 0.8,
//     0.5}; Weibull heavy tails PLANNED under the Weibull law (shape 0.7
//     and 0.5, honest recall -- in-model since the planning-law work, so
//     the sim lane asserts agreement); and the divergence-lane breaks
//     (exponential recall mismatch, Weibull planned exponentially, and
//     Weibull shape 0.5 + recall mismatch) where a DP assumption is
//     violated by construction;
//   * traffic: a Poisson and a bursty arrival lane through
//     service::SolverService on a platform/shape subset.
//
// Every cell's seed derives from (master_seed, cell name) so inserting
// or removing an axis value never reshuffles other cells' randomness.
#pragma once

#include <cstdint>
#include <vector>

#include "scenario/spec.hpp"

namespace chainckpt::scenario {

struct MatrixOptions {
  std::uint64_t master_seed = 0x5CE7A210ULL;
  /// Chain sizes; ADMV rides only on sizes <= admv_max_n.
  std::vector<std::size_t> sizes = {24, 40};
  std::size_t admv_max_n = 24;
  /// Table I platform names included exactly.
  std::vector<std::string> platforms = {"Hera", "Atlas", "Coastal"};
  /// Seeded perturbed variants added per base platform.
  std::size_t perturbed_per_platform = 1;
  double perturb_magnitude = 0.35;
  /// Monte-Carlo replicas per (cell, algorithm).
  std::size_t replicas = 1200;
  /// Error-rate amplification so Table I rates produce actual rollbacks
  /// at matrix replica counts (Table I MTBFs are days; the chains are
  /// hours).
  double rate_scale = 25.0;
  /// Include the Poisson/bursty service-traffic cells.
  bool traffic_cells = true;
  /// Reduced axes for smoke runs (CI matrix lane on every push).
  bool smoke = false;
  /// When non-empty, build_matrix() ignores the generated cross and
  /// returns the specs loaded from this directory (every *.json, sorted
  /// by filename) -- external corpora sweep without recompiling.
  std::string spec_dir;
};

/// Expands the options into the deterministic cell list.  Pure function.
std::vector<ScenarioSpec> build_matrix(const MatrixOptions& options = {});

/// Per-cell seed derivation (exposed for tests): FNV-1a of the cell name
/// mixed into the master seed.
std::uint64_t derive_cell_seed(std::uint64_t master_seed,
                               const std::string& cell_name);

}  // namespace chainckpt::scenario
