#include "scenario/spec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "chain/patterns.hpp"
#include "platform/registry.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace chainckpt::scenario {

namespace {

/// Fixed sub-stream indices off ScenarioSpec::seed.  Each consumer owns
/// one index so adding a consumer never shifts another's stream.
constexpr std::uint64_t kChainStream = 1;
constexpr std::uint64_t kCostStream = 2;
constexpr std::uint64_t kPlatformStream = 3;

/// Embedded stage traces: relative per-stage weights of real workflow
/// classes, tiled cyclically to the requested chain length and rescaled
/// to the requested total weight.  Shapes, not absolute times, matter --
/// they exercise the DPs on irregular, positively correlated weights that
/// none of the paper's three patterns produce.
struct NamedTrace {
  const char* name;
  std::vector<double> stages;
};

const std::vector<NamedTrace>& traces() {
  static const std::vector<NamedTrace> kTraces = {
      // Alignment-heavy genomics pipeline: long align/call stages
      // separated by cheap bookkeeping.
      {"genomics", {5200, 800, 9400, 2400, 1200, 6800, 350, 4100}},
      // Seismic imaging sweep: repeated migrate/stack pairs with a heavy
      // final inversion.
      {"seismic", {1800, 1800, 2600, 900, 2600, 900, 3400, 7200}},
      // Climate ensemble step: balanced dynamics with periodic heavy I/O
      // analysis stages.
      {"climate", {1100, 1100, 1100, 1100, 5200, 1100, 1100, 2600}},
  };
  return kTraces;
}

chain::TaskChain scaled_chain(std::vector<double> raw, double total_weight) {
  double sum = 0.0;
  for (double w : raw) sum += w;
  CHAINCKPT_REQUIRE(sum > 0.0, "chain weights must have positive mass");
  for (double& w : raw) w *= total_weight / sum;
  return chain::TaskChain(raw);
}

chain::TaskChain make_pareto(std::size_t n, double total_weight,
                             double alpha, util::Xoshiro256& rng) {
  std::vector<double> raw(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Inverse-CDF Pareto sample with x_m = 1; heavy right tail for small
    // alpha.  uniform01_open_low keeps the pow argument positive.
    raw[i] = std::pow(rng.uniform01_open_low(), -1.0 / alpha);
  }
  return scaled_chain(std::move(raw), total_weight);
}

chain::TaskChain make_ramp(std::size_t n, double total_weight,
                           double ramp_factor) {
  std::vector<double> raw(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Triangular profile peaking mid-chain: neighbouring tasks have
    // strongly correlated weights (the anti-i.i.d. case).
    const double x = n > 1 ? static_cast<double>(i) / (n - 1) : 0.5;
    const double tri = 1.0 - std::abs(2.0 * x - 1.0);
    raw[i] = 1.0 + (ramp_factor - 1.0) * tri;
  }
  return scaled_chain(std::move(raw), total_weight);
}

chain::TaskChain make_traced(std::size_t n, double total_weight,
                             const std::string& trace) {
  for (const NamedTrace& t : traces()) {
    if (trace == t.name) {
      std::vector<double> raw(n);
      for (std::size_t i = 0; i < n; ++i) {
        raw[i] = t.stages[i % t.stages.size()];
      }
      return scaled_chain(std::move(raw), total_weight);
    }
  }
  throw std::invalid_argument("unknown workflow trace: " + trace);
}

platform::Platform perturbed(platform::Platform p, double perturb,
                             util::Xoshiro256& rng) {
  if (perturb <= 0.0) return p;
  const auto jitter = [&rng, perturb] {
    // Multiplicative factor in [1/(1+perturb), 1+perturb], log-symmetric
    // around 1 so perturbation never drifts the regime on average.
    const double hi = 1.0 + perturb;
    return std::exp((2.0 * rng.uniform01() - 1.0) * std::log(hi));
  };
  p.lambda_f *= jitter();
  p.lambda_s *= jitter();
  p.c_disk *= jitter();
  p.c_mem *= jitter();
  p.r_disk *= jitter();
  p.r_mem *= jitter();
  p.v_guaranteed *= jitter();
  p.v_partial *= jitter();
  p.name += "~";
  return p;
}

platform::CostModel build_costs(const platform::Platform& p,
                                const ChainSpec& chain_spec,
                                std::uint64_t seed) {
  if (!chain_spec.per_position_costs) return platform::CostModel(p);
  util::Xoshiro256 rng = util::Xoshiro256::stream(seed, kCostStream);
  const std::size_t n = chain_spec.n;
  std::vector<double> c_disk(n), c_mem(n), v_g(n), v_p(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto jitter = [&rng] { return 0.25 + 1.5 * rng.uniform01(); };
    c_disk[i] = p.c_disk * jitter();
    c_mem[i] = p.c_mem * jitter();
    v_g[i] = p.v_guaranteed * jitter();
    v_p[i] = p.v_partial * jitter();
  }
  return platform::CostModel(p, std::move(c_disk), std::move(c_mem),
                             std::move(v_g), std::move(v_p));
}

}  // namespace

std::string to_string(ChainShape shape) {
  switch (shape) {
    case ChainShape::kUniform:  return "uniform";
    case ChainShape::kDecrease: return "decrease";
    case ChainShape::kHighLow:  return "highlow";
    case ChainShape::kPareto:   return "pareto";
    case ChainShape::kRamp:     return "ramp";
    case ChainShape::kTraced:   return "traced";
  }
  throw std::invalid_argument("bad ChainShape");
}

ChainShape chain_shape_from_string(const std::string& name) {
  if (name == "uniform") return ChainShape::kUniform;
  if (name == "decrease") return ChainShape::kDecrease;
  if (name == "highlow") return ChainShape::kHighLow;
  if (name == "pareto") return ChainShape::kPareto;
  if (name == "ramp") return ChainShape::kRamp;
  if (name == "traced") return ChainShape::kTraced;
  throw std::invalid_argument("unknown chain shape: " + name);
}

std::vector<std::string> trace_names() {
  std::vector<std::string> names;
  for (const NamedTrace& t : traces()) names.emplace_back(t.name);
  return names;
}

std::string to_string(FailureLaw law) {
  switch (law) {
    case FailureLaw::kExponential: return "exponential";
    case FailureLaw::kWeibull:     return "weibull";
  }
  throw std::invalid_argument("bad FailureLaw");
}

FailureLaw failure_law_from_string(const std::string& name) {
  if (name == "exponential") return FailureLaw::kExponential;
  if (name == "weibull") return FailureLaw::kWeibull;
  throw std::invalid_argument("unknown failure law: " + name);
}

std::string to_string(TrafficKind kind) {
  switch (kind) {
    case TrafficKind::kNone:    return "none";
    case TrafficKind::kPoisson: return "poisson";
    case TrafficKind::kBursty:  return "bursty";
  }
  throw std::invalid_argument("bad TrafficKind");
}

TrafficKind traffic_kind_from_string(const std::string& name) {
  if (name == "none") return TrafficKind::kNone;
  if (name == "poisson") return TrafficKind::kPoisson;
  if (name == "bursty") return TrafficKind::kBursty;
  throw std::invalid_argument("unknown traffic kind: " + name);
}

bool FailureSpec::assumptions_hold() const noexcept {
  // A Weibull cell planned under the Weibull law is in-model: the DP
  // integrates the same per-attempt renewal law the injector samples.
  if (law != FailureLaw::kExponential && !plan_under_law) return false;
  // actual < 0 mirrors modeled: always honest.  An explicit actual
  // against an implicit (platform-default) modeled recall is treated as
  // a mismatch -- conservative: the cell goes to the divergence lane.
  if (actual_recall < 0.0) return true;
  return modeled_recall >= 0.0 && actual_recall == modeled_recall;
}

void ScenarioSpec::validate() const {
  if (name.empty()) throw std::invalid_argument("spec needs a name");
  if (chain.n < 2) throw std::invalid_argument("chain.n must be >= 2");
  if (!(chain.total_weight > 0.0)) {
    throw std::invalid_argument("chain.total_weight must be positive");
  }
  if (chain.shape == ChainShape::kPareto && !(chain.pareto_alpha > 1.0)) {
    throw std::invalid_argument("pareto_alpha must be > 1");
  }
  if (chain.shape == ChainShape::kRamp && !(chain.ramp_factor >= 1.0)) {
    throw std::invalid_argument("ramp_factor must be >= 1");
  }
  if (chain.shape == ChainShape::kTraced) {
    const auto names = trace_names();
    if (std::find(names.begin(), names.end(), chain.trace) == names.end()) {
      throw std::invalid_argument("unknown workflow trace: " + chain.trace);
    }
  }
  platform::by_name(platform.base);  // throws on unknown base
  if (platform.perturb < 0.0) {
    throw std::invalid_argument("platform.perturb must be >= 0");
  }
  if (failure.law == FailureLaw::kWeibull &&
      !(failure.weibull_shape > 0.0)) {
    throw std::invalid_argument("weibull_shape must be positive");
  }
  if (!(failure.rate_scale > 0.0)) {
    throw std::invalid_argument("rate_scale must be positive");
  }
  for (double r : {failure.modeled_recall, failure.actual_recall}) {
    if (r > 1.0) {
      throw std::invalid_argument(
          "recall must be in [0,1] (or negative for the platform default)");
    }
  }
  if (algorithms.empty()) {
    throw std::invalid_argument("spec needs at least one algorithm");
  }
  if (replicas < 1) throw std::invalid_argument("replicas must be >= 1");
  if (traffic.kind != TrafficKind::kNone) {
    if (traffic.jobs < 1 || !(traffic.rate > 0.0) ||
        traffic.burst_size < 1) {
      throw std::invalid_argument("bad traffic parameters");
    }
    double mix = 0.0;
    for (double p : traffic.priority_mix) {
      if (p < 0.0) throw std::invalid_argument("negative priority mix");
      mix += p;
    }
    if (!(mix > 0.0)) throw std::invalid_argument("empty priority mix");
  }
  if (cache.enabled) {
    if (cache.requests < 1) {
      throw std::invalid_argument("cache.requests must be >= 1");
    }
    if (!(cache.drift >= 0.0)) {
      throw std::invalid_argument("cache.drift must be >= 0");
    }
    if (!(cache.epsilon >= 0.0)) {
      throw std::invalid_argument("cache.epsilon must be >= 0");
    }
  }
}

MaterializedCell materialize(const ScenarioSpec& spec) {
  spec.validate();

  // Chain.
  chain::TaskChain chain;
  switch (spec.chain.shape) {
    case ChainShape::kUniform:
      chain = chain::make_uniform(spec.chain.n, spec.chain.total_weight);
      break;
    case ChainShape::kDecrease:
      chain = chain::make_decrease(spec.chain.n, spec.chain.total_weight);
      break;
    case ChainShape::kHighLow:
      chain = chain::make_highlow(spec.chain.n, spec.chain.total_weight);
      break;
    case ChainShape::kPareto: {
      util::Xoshiro256 rng = util::Xoshiro256::stream(spec.seed, kChainStream);
      chain = make_pareto(spec.chain.n, spec.chain.total_weight,
                          spec.chain.pareto_alpha, rng);
      break;
    }
    case ChainShape::kRamp:
      chain = make_ramp(spec.chain.n, spec.chain.total_weight,
                        spec.chain.ramp_factor);
      break;
    case ChainShape::kTraced:
      chain = make_traced(spec.chain.n, spec.chain.total_weight,
                          spec.chain.trace);
      break;
  }

  // Platform: base -> seeded perturbation -> rate scaling -> recalls.
  util::Xoshiro256 prng = util::Xoshiro256::stream(spec.seed, kPlatformStream);
  platform::Platform base =
      perturbed(platform::by_name(spec.platform.base), spec.platform.perturb,
                prng);
  base.lambda_f *= spec.failure.rate_scale;
  base.lambda_s *= spec.failure.rate_scale;

  platform::Platform modeled = base;
  if (spec.failure.modeled_recall >= 0.0) {
    modeled.recall = spec.failure.modeled_recall;
  }
  platform::Platform actual = modeled;
  if (spec.failure.actual_recall >= 0.0) {
    actual.recall = spec.failure.actual_recall;
  }
  modeled.validate();
  actual.validate();

  platform::CostModel modeled_costs =
      build_costs(modeled, spec.chain, spec.seed);
  // Identical cost vectors (same kCostStream draw), different recall.
  platform::CostModel actual_costs =
      build_costs(actual, spec.chain, spec.seed);
  if (spec.failure.plan_under_law &&
      spec.failure.law == FailureLaw::kWeibull) {
    // The DP plans under the injector's law: Weibull, mean-matched scale,
    // renewed per task attempt (see platform::PlanningLaw).
    modeled_costs.set_planning_law({platform::FailureLaw::kWeibull,
                                    spec.failure.weibull_shape});
  }

  return MaterializedCell{std::move(chain), std::move(modeled),
                          std::move(actual), std::move(modeled_costs),
                          std::move(actual_costs)};
}

}  // namespace chainckpt::scenario
