// Arrival-trace generation for the service lane.
//
// A TrafficSpec (scenario/spec.hpp) describes the SHAPE of the traffic --
// Poisson or bursty arrivals, priority mix, deadline fraction; this
// module turns it into a concrete, replayable trace: a deterministic,
// seeded sequence of (arrival offset, priority, deadline, job kind)
// records.  The same trace drives both the matrix lane (generous
// deadlines, byte-deterministic outcome counts) and the stress battery
// (tightened deadlines, chaos assertions), so behaviour differences are
// attributable to the service, never to the workload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "scenario/spec.hpp"
#include "service/job.hpp"

namespace chainckpt::scenario {

struct Arrival {
  /// Offset from trace start, in microseconds of replay time.
  std::uint64_t offset_us = 0;
  service::Priority priority = service::Priority::kNormal;
  /// 0 = no deadline, else milliseconds from submission.
  std::uint64_t deadline_ms = 0;
  /// Index into the cell's algorithm list (round-robin over job kinds).
  std::size_t algorithm_index = 0;
};

struct ArrivalTrace {
  std::vector<Arrival> arrivals;  ///< sorted by offset_us
  std::uint64_t span_us = 0;      ///< offset of the last arrival

  /// FNV-1a digest over the full record sequence; pins trace determinism
  /// in the scenario report.
  std::uint64_t digest() const noexcept;
};

/// Deterministic materialization of the spec's traffic shape; pure
/// function of (spec.traffic, spec.seed, algorithm count).
/// `deadline_scale_ms` sets the generous baseline deadline the matrix
/// lane uses (the stress battery passes its own, tighter value).
ArrivalTrace make_trace(const ScenarioSpec& spec,
                        std::uint64_t deadline_scale_ms = 30000);

}  // namespace chainckpt::scenario
