// Resilience-cost model seen by the optimizers and the evaluator.
//
// The paper uses position-independent costs (C_D, C_M, R_D, R_M, V*, V are
// scalars).  The dynamic programs however only ever query "the cost of a
// disk checkpoint AFTER task i", so we expose costs as functions of the
// position at no extra complexity.  This enables the per-task-cost
// extension (e.g. checkpoint size proportional to a task's live data set)
// that the paper hints at ("all these choices ... can easily be modified").
//
// Recovery-cost convention (paper Section III): rolling back to the virtual
// task T0 is free, so r_disk_after(0) == 0 and r_mem_after(0) == 0 for
// every model.
#pragma once

#include <cstddef>
#include <vector>

#include "platform/platform.hpp"

namespace chainckpt::platform {

/// Failure law the *planner* integrates the Eq. (4)-style expectations
/// under.  kExponential is the paper's memoryless law; kWeibull renews per
/// task attempt with shape k and the mean-matched scale
/// theta = 1 / (lambda_f * Gamma(1 + 1/k)), matching error::WeibullInjector.
/// The knob changes only what analysis::SegmentTables / the evaluator
/// build -- the DP kernels consume the resulting coefficient streams
/// unchanged.
enum class FailureLaw { kExponential, kWeibull };

struct PlanningLaw {
  FailureLaw law = FailureLaw::kExponential;
  /// Weibull shape k (> 0); ignored under kExponential.
  double weibull_shape = 1.0;

  /// True when the law collapses to the paper's memoryless case.  Shape
  /// exactly 1 takes the exponential build verbatim, so its coefficient
  /// streams are bitwise-identical to today's (see segment_tables.cpp).
  bool is_exponential() const noexcept {
    return law == FailureLaw::kExponential || weibull_shape == 1.0;
  }
};

class CostModel {
 public:
  /// Placeholder: a uniform all-zero-cost model on an "unconfigured"
  /// platform.  Exists so request-shaped aggregates (core::BatchJob,
  /// service::JobRequest) are default-constructible -- wire decoders
  /// fill them field by field -- and is always overwritten before a
  /// solve reads it.
  CostModel();

  /// Constant costs taken from a Platform record (the paper's setting).
  explicit CostModel(const Platform& platform);

  /// Per-position extension: vectors indexed by task position 1..n give the
  /// cost of the action taken AFTER that task.  All vectors must have the
  /// same length n.  Recall and rates still come from `platform`.
  /// Recovery costs default to mirroring the checkpoint costs.
  CostModel(const Platform& platform, std::vector<double> c_disk,
            std::vector<double> c_mem, std::vector<double> v_guaranteed,
            std::vector<double> v_partial);

  /// Fully explicit per-position model with independent recovery costs --
  /// needed e.g. by the Lagrangian budget optimizer, which perturbs
  /// checkpoint prices without touching recovery semantics.
  CostModel(const Platform& platform, std::vector<double> c_disk,
            std::vector<double> c_mem, std::vector<double> v_guaranteed,
            std::vector<double> v_partial, std::vector<double> r_disk,
            std::vector<double> r_mem);

  const Platform& platform() const noexcept { return platform_; }

  double lambda_f() const noexcept { return platform_.lambda_f; }
  double lambda_s() const noexcept { return platform_.lambda_s; }
  double recall() const noexcept { return platform_.recall; }
  /// g = 1 - recall.
  double miss() const noexcept { return platform_.miss_probability(); }

  /// Planning law (defaults to the paper's exponential; see FailureLaw).
  const PlanningLaw& planning_law() const noexcept { return planning_law_; }
  /// Requires weibull_shape > 0 when the law is kWeibull.
  void set_planning_law(PlanningLaw law);

  /// Cost of taking a disk checkpoint after task i (i >= 1).
  double c_disk_after(std::size_t i) const;
  /// Cost of taking a memory checkpoint after task i (i >= 1).
  double c_mem_after(std::size_t i) const;
  /// Cost of a guaranteed verification after task i (i >= 1).
  double v_guaranteed_after(std::size_t i) const;
  /// Cost of a partial verification after task i (i >= 1).
  double v_partial_after(std::size_t i) const;

  /// Cost of recovering from the disk checkpoint taken after task i;
  /// position 0 is the virtual task T0 and is free.
  double r_disk_after(std::size_t i) const;
  /// Cost of recovering from the memory checkpoint taken after task i;
  /// position 0 is free.
  double r_mem_after(std::size_t i) const;

  /// True when all costs are position-independent (fast paths and
  /// paper-exact reproduction).
  bool is_uniform() const noexcept { return uniform_; }

  /// Serialization accessors (net/payload.hpp): the raw per-position
  /// streams exactly as constructed -- all empty for a uniform model, and
  /// the recovery streams empty when they mirror the checkpoint costs
  /// (the paper convention).  Reconstructing a model from these via the
  /// matching constructor reproduces every accessor bit-for-bit,
  /// including the mirror semantics, so wire round trips cannot perturb
  /// a solve.
  const std::vector<double>& raw_c_disk() const noexcept { return c_disk_; }
  const std::vector<double>& raw_c_mem() const noexcept { return c_mem_; }
  const std::vector<double>& raw_v_guaranteed() const noexcept {
    return v_guaranteed_;
  }
  const std::vector<double>& raw_v_partial() const noexcept {
    return v_partial_;
  }
  const std::vector<double>& raw_r_disk() const noexcept { return r_disk_; }
  const std::vector<double>& raw_r_mem() const noexcept { return r_mem_; }

 private:
  Platform platform_;
  PlanningLaw planning_law_{};
  bool uniform_ = true;
  std::vector<double> c_disk_;
  std::vector<double> c_mem_;
  std::vector<double> v_guaranteed_;
  std::vector<double> v_partial_;
  /// Empty means "mirror the checkpoint cost" (paper convention).
  std::vector<double> r_disk_;
  std::vector<double> r_mem_;

  void check_position(std::size_t i) const;
};

}  // namespace chainckpt::platform
