#include "platform/registry.hpp"

#include <stdexcept>

namespace chainckpt::platform {

Platform hera() {
  return make_paper_platform("Hera", 256, 9.46e-7, 3.38e-6, 300.0, 15.4);
}

Platform atlas() {
  return make_paper_platform("Atlas", 512, 5.19e-7, 7.78e-6, 439.0, 9.1);
}

Platform coastal() {
  return make_paper_platform("Coastal", 1024, 4.02e-7, 2.01e-6, 1051.0, 4.5);
}

Platform coastal_ssd() {
  return make_paper_platform("CoastalSSD", 1024, 4.02e-7, 2.01e-6, 2500.0,
                             180.0);
}

std::vector<Platform> table1_platforms() {
  return {hera(), atlas(), coastal(), coastal_ssd()};
}

Platform by_name(const std::string& name) {
  if (name == "Hera" || name == "hera") return hera();
  if (name == "Atlas" || name == "atlas") return atlas();
  if (name == "Coastal" || name == "coastal") return coastal();
  if (name == "CoastalSSD" || name == "Coastal SSD" || name == "coastal_ssd")
    return coastal_ssd();
  throw std::invalid_argument(
      "unknown platform: " + name +
      " (expected Hera|Atlas|Coastal|CoastalSSD)");
}

}  // namespace chainckpt::platform
