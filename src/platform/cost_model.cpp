#include "platform/cost_model.hpp"

#include "util/assert.hpp"

namespace chainckpt::platform {

namespace {
Platform unconfigured_platform() {
  Platform platform;
  platform.name = "unconfigured";
  return platform;
}
}  // namespace

CostModel::CostModel() : CostModel(unconfigured_platform()) {}

CostModel::CostModel(const Platform& platform) : platform_(platform) {
  platform_.validate();
}

CostModel::CostModel(const Platform& platform, std::vector<double> c_disk,
                     std::vector<double> c_mem,
                     std::vector<double> v_guaranteed,
                     std::vector<double> v_partial)
    : CostModel(platform, std::move(c_disk), std::move(c_mem),
                std::move(v_guaranteed), std::move(v_partial), {}, {}) {}

CostModel::CostModel(const Platform& platform, std::vector<double> c_disk,
                     std::vector<double> c_mem,
                     std::vector<double> v_guaranteed,
                     std::vector<double> v_partial,
                     std::vector<double> r_disk, std::vector<double> r_mem)
    : platform_(platform),
      uniform_(false),
      c_disk_(std::move(c_disk)),
      c_mem_(std::move(c_mem)),
      v_guaranteed_(std::move(v_guaranteed)),
      v_partial_(std::move(v_partial)),
      r_disk_(std::move(r_disk)),
      r_mem_(std::move(r_mem)) {
  platform_.validate();
  CHAINCKPT_REQUIRE(!c_disk_.empty(), "per-position costs need n >= 1");
  CHAINCKPT_REQUIRE(c_disk_.size() == c_mem_.size() &&
                        c_disk_.size() == v_guaranteed_.size() &&
                        c_disk_.size() == v_partial_.size(),
                    "per-position cost vectors must have equal length");
  CHAINCKPT_REQUIRE(r_disk_.empty() || r_disk_.size() == c_disk_.size(),
                    "per-position recovery vectors must match cost length");
  CHAINCKPT_REQUIRE(r_mem_.empty() || r_mem_.size() == c_disk_.size(),
                    "per-position recovery vectors must match cost length");
  for (std::size_t i = 0; i < c_disk_.size(); ++i) {
    CHAINCKPT_REQUIRE(c_disk_[i] >= 0.0 && c_mem_[i] >= 0.0 &&
                          v_guaranteed_[i] >= 0.0 && v_partial_[i] >= 0.0,
                      "per-position costs must be non-negative");
    CHAINCKPT_REQUIRE((r_disk_.empty() || r_disk_[i] >= 0.0) &&
                          (r_mem_.empty() || r_mem_[i] >= 0.0),
                      "per-position recovery costs must be non-negative");
  }
}

void CostModel::set_planning_law(PlanningLaw law) {
  CHAINCKPT_REQUIRE(law.law == FailureLaw::kExponential ||
                        (law.weibull_shape > 0.0 &&
                         law.weibull_shape == law.weibull_shape),
                    "Weibull planning law needs a positive shape");
  planning_law_ = law;
}

void CostModel::check_position(std::size_t i) const {
  CHAINCKPT_REQUIRE(i >= 1, "action positions are 1-based task indices");
  if (!uniform_) {
    CHAINCKPT_REQUIRE(i <= c_disk_.size(),
                      "position exceeds per-position cost table");
  }
}

double CostModel::c_disk_after(std::size_t i) const {
  check_position(i);
  return uniform_ ? platform_.c_disk : c_disk_[i - 1];
}

double CostModel::c_mem_after(std::size_t i) const {
  check_position(i);
  return uniform_ ? platform_.c_mem : c_mem_[i - 1];
}

double CostModel::v_guaranteed_after(std::size_t i) const {
  check_position(i);
  return uniform_ ? platform_.v_guaranteed : v_guaranteed_[i - 1];
}

double CostModel::v_partial_after(std::size_t i) const {
  check_position(i);
  return uniform_ ? platform_.v_partial : v_partial_[i - 1];
}

double CostModel::r_disk_after(std::size_t i) const {
  if (i == 0) return 0.0;  // virtual task T0: restart from scratch is free
  check_position(i);
  if (uniform_) return platform_.r_disk;
  // Default convention (paper Section IV): recovery mirrors the checkpoint
  // cost (recover what was written).  R_D includes restoring the memory
  // state (Section II).
  return r_disk_.empty() ? c_disk_[i - 1] : r_disk_[i - 1];
}

double CostModel::r_mem_after(std::size_t i) const {
  if (i == 0) return 0.0;
  check_position(i);
  if (uniform_) return platform_.r_mem;
  return r_mem_.empty() ? c_mem_[i - 1] : r_mem_[i - 1];
}

}  // namespace chainckpt::platform
