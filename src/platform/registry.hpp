// Table I of the paper: the four platforms evaluated with the SCR library
// by Moody et al. (SC'10), with error rates and checkpoint costs measured on
// real applications.
#pragma once

#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace chainckpt::platform {

Platform hera();         ///< 256 nodes, RAM-based memory checkpoints.
Platform atlas();        ///< 512 nodes.
Platform coastal();      ///< 1024 nodes.
Platform coastal_ssd();  ///< 1024 nodes, SSD-based memory checkpoints.

/// All four platforms in Table I order.
std::vector<Platform> table1_platforms();

/// Lookup by name ("Hera", "Atlas", "Coastal", "CoastalSSD"; also accepts
/// "Coastal SSD").  Throws std::invalid_argument for unknown names.
Platform by_name(const std::string& name);

}  // namespace chainckpt::platform
