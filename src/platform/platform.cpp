#include "platform/platform.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace chainckpt::platform {

double Platform::mtbf_fail_stop() const noexcept {
  return lambda_f > 0.0 ? 1.0 / lambda_f
                        : std::numeric_limits<double>::infinity();
}

double Platform::mtbf_silent() const noexcept {
  return lambda_s > 0.0 ? 1.0 / lambda_s
                        : std::numeric_limits<double>::infinity();
}

void Platform::validate() const {
  CHAINCKPT_REQUIRE(!name.empty(), "platform needs a name");
  CHAINCKPT_REQUIRE(lambda_f >= 0.0 && std::isfinite(lambda_f),
                    "lambda_f must be finite and non-negative");
  CHAINCKPT_REQUIRE(lambda_s >= 0.0 && std::isfinite(lambda_s),
                    "lambda_s must be finite and non-negative");
  for (double cost : {c_disk, c_mem, r_disk, r_mem, v_guaranteed, v_partial}) {
    CHAINCKPT_REQUIRE(cost >= 0.0 && std::isfinite(cost),
                      "costs must be finite and non-negative");
  }
  CHAINCKPT_REQUIRE(recall >= 0.0 && recall <= 1.0,
                    "recall must lie in [0, 1]");
}

std::string Platform::describe() const {
  std::ostringstream os;
  os << name << " (" << nodes << " nodes): lambda_f=" << lambda_f
     << "/s, lambda_s=" << lambda_s << "/s, C_D=" << c_disk
     << "s, C_M=" << c_mem << "s, V*=" << v_guaranteed << "s, V=" << v_partial
     << "s, r=" << recall;
  return os.str();
}

Platform make_paper_platform(std::string name, std::size_t nodes,
                             double lambda_f, double lambda_s, double c_disk,
                             double c_mem) {
  Platform p;
  p.name = std::move(name);
  p.nodes = nodes;
  p.lambda_f = lambda_f;
  p.lambda_s = lambda_s;
  p.c_disk = c_disk;
  p.c_mem = c_mem;
  // Section IV conventions: recovery costs equal checkpoint costs
  // (following Moody et al. / Quaglia), a guaranteed verification touches
  // all data in memory so V* = C_M, and partial verifications are 100x
  // cheaper with recall 0.8 (Bautista-Gomez & Cappello detectors).
  p.r_disk = c_disk;
  p.r_mem = c_mem;
  p.v_guaranteed = c_mem;
  p.v_partial = p.v_guaranteed / 100.0;
  p.recall = 0.8;
  p.validate();
  return p;
}

}  // namespace chainckpt::platform
