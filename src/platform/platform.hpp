// Platform and resilience-cost parameters (paper Section II and Table I).
#pragma once

#include <cstddef>
#include <string>

namespace chainckpt::platform {

/// All times are in seconds, rates in errors per second (per platform, i.e.
/// already aggregated over nodes, as in the SCR measurements of Moody et
/// al. that Table I reproduces).
struct Platform {
  std::string name;
  std::size_t nodes = 0;

  double lambda_f = 0.0;  ///< fail-stop error rate
  double lambda_s = 0.0;  ///< silent error rate

  double c_disk = 0.0;    ///< C_D: disk checkpoint cost
  double c_mem = 0.0;     ///< C_M: memory checkpoint cost
  double r_disk = 0.0;    ///< R_D: disk recovery cost (includes R_M)
  double r_mem = 0.0;     ///< R_M: memory recovery cost

  double v_guaranteed = 0.0;  ///< V*: guaranteed verification cost
  double v_partial = 0.0;     ///< V : partial verification cost
  double recall = 1.0;        ///< r : fraction of silent errors V detects

  /// g = 1 - r, the miss probability of a partial verification.
  double miss_probability() const noexcept { return 1.0 - recall; }

  /// Platform mean time between fail-stop errors, 1/lambda_f (seconds).
  double mtbf_fail_stop() const noexcept;
  /// Platform mean time between silent errors, 1/lambda_s (seconds).
  double mtbf_silent() const noexcept;

  /// Throws std::invalid_argument if any parameter is out of range
  /// (negative costs, rates, recall outside [0,1], ...).
  void validate() const;

  std::string describe() const;
};

/// Applies the paper's simulation conventions to raw (lambda_f, lambda_s,
/// C_D, C_M) measurements: R_D = C_D, R_M = C_M, V* = C_M, V = V*/100,
/// r = 0.8.
Platform make_paper_platform(std::string name, std::size_t nodes,
                             double lambda_f, double lambda_s, double c_disk,
                             double c_mem);

constexpr double kSecondsPerDay = 86400.0;

}  // namespace chainckpt::platform
