// Budget-constrained optimization (extension beyond the paper).
//
// Real deployments often cap the number of checkpoints: burst-buffer
// space bounds the in-memory copies, PFS quotas and I/O contention bound
// the disk ones.  This module solves
//
//     minimize   E[makespan]
//     subject to #interior disk checkpoints   <= K_D
//                #interior memory checkpoints <= K_M
//
// by Lagrangian relaxation: a per-placement penalty is added to the
// (per-position) checkpoint costs -- recovery costs are left untouched --
// and bisected until the unconstrained optimizer respects the budget.
// The returned plan is re-scored under the TRUE cost model, so the
// reported expected makespan is honest.
//
// Guarantees: the returned plan is feasible (penalties can always push
// counts to zero), and by standard Lagrangian duality it is *optimal
// among plans with its own checkpoint counts*.  When no plan with
// exactly K checkpoints is on the lower convex envelope of the
// count-vs-cost tradeoff, the method may return a plan using fewer
// checkpoints than allowed; the gap to the true constrained optimum is
// then bounded by the envelope's local curvature (documented
// approximation).
#pragma once

#include <cstddef>
#include <optional>

#include "core/optimizer.hpp"

namespace chainckpt::core {

struct BudgetConstraint {
  /// Maximum number of interior disk checkpoints (positions 1..n-1); the
  /// mandatory final bundle is never counted.  nullopt = unconstrained.
  std::optional<std::size_t> max_interior_disk;
  /// Maximum number of interior memory checkpoints (including those
  /// bundled under interior disk checkpoints).
  std::optional<std::size_t> max_interior_memory;
};

struct BudgetResult {
  plan::ResiliencePlan plan;
  /// Expected makespan under the true (unpenalized) cost model.
  double expected_makespan = 0.0;
  /// Final Lagrange multipliers (seconds per placement).
  double disk_penalty = 0.0;
  double memory_penalty = 0.0;
  /// Always true on return (kept for API symmetry / future constraints).
  bool feasible = false;
};

/// Runs `algorithm` under the budget.  Throws std::invalid_argument for
/// the brute-force-only algorithms (use the DP ones).
BudgetResult optimize_with_budget(Algorithm algorithm,
                                  const chain::TaskChain& chain,
                                  const platform::CostModel& costs,
                                  const BudgetConstraint& budget);

}  // namespace chainckpt::core
