// Batched multi-chain solver: the server-shaped front end of the library.
//
// A production embedding does not optimize one chain at a time -- a request
// carries many independent chains (different lengths, platforms, and
// algorithms), and a long-lived process serves many requests.  BatchSolver
// drives such a workload through one engine:
//
//   * a shared work-queue: jobs are solved through util::parallel_for with
//     dynamic scheduling, so heterogeneous chains load-balance across
//     workers (an n = 400 ADMV* job does not serialize behind twenty
//     n = 50 ones);
//   * a coefficient-table cache: the O(n^2) analysis::SegmentTables +
//     chain::WeightTable pair -- the dominant per-solve setup cost -- is
//     built once per distinct (chain weights, cost model) key and shared
//     by every job that matches, within a batch and across batches;
//   * LRU eviction: an optional byte budget on that cache
//     (BatchOptions::cache_budget_bytes) evicts least-recently-used
//     entries after each solve instead of the all-or-nothing
//     release_scratch(), so a long-lived service bounds table residency
//     while hot keys stay cached;
//   * one thread-local arena pool: the solvers' grow-only scratch
//     (util::ArenaBlock) is reused across the whole batch, so steady-state
//     solving performs no per-job scratch allocation;
//   * an explicit lifecycle: release_scratch() drops the cache and every
//     arena, returning the memory between traffic bursts; the next solve
//     simply rebuilds what it needs.
//
// Determinism: every job's result (plan and objective) is bit-identical to
// a standalone core::optimize() call with the same inputs, whether the
// batch runs serially or in parallel, cached or cold, and whether the
// entry survived eviction or was rebuilt.
//
// Thread-safety: the batch entry point solve() is NOT internally
// synchronized -- it IS the parallelism; use it from one thread at a time.
// The per-job entry point solve_job() IS thread-safe against other
// solve_job() calls on the same instance (the table cache, LRU state, and
// stats sit behind an internal mutex; the DP itself runs outside it) --
// it is the entry the async service::SolverService workers use.  Do not
// interleave solve() with concurrent solve_job() calls.  The arena pool
// behind release_scratch() / resident_bytes() is PROCESS-WIDE (every
// solver's thread-local scratch registers with it), so release_scratch()
// must not overlap a running solve on ANY instance in the process, and
// the arena byte counts cover all instances, not just this one.  A
// multi-solver embedding should treat scratch release as a global
// quiescent-point operation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/cancellation.hpp"
#include "core/optimizer.hpp"
#include "core/plan_cache.hpp"
#include "core/solve_checkpoint.hpp"

namespace chainckpt::core {

/// One chain to solve: which algorithm, over which chain, under which cost
/// model.  Jobs are self-contained so a batch can mix platforms and
/// per-position cost models freely.
struct BatchJob {
  Algorithm algorithm = Algorithm::kADMVstar;
  chain::TaskChain chain;
  platform::CostModel costs;
  /// Per-job relative-error tolerance for plan-cache epsilon-hits (see
  /// core/plan_cache.hpp): the job accepts a cached plan certified within
  /// (1 + cache_epsilon) of the drifted optimum.  Negative (the default)
  /// defers to BatchOptions::plan_cache_epsilon; 0 restricts this job to
  /// exact hits.
  double cache_epsilon = -1.0;
};

struct BatchOptions {
  /// Solve jobs through the shared work-queue (dynamic scheduling over
  /// util::parallel_for).  false runs an in-order serial loop; results are
  /// identical either way (determinism contract).
  bool parallel = true;
  /// Storage layout of the dense level-DP tables (ADMV*/ADMV jobs).
  TableLayout layout = TableLayout::kRowMajor;
  /// Inner argmin scan mode for the DP jobs (see
  /// core/monotone_scanner.hpp).  kMonotonePruned is bit-compatible with
  /// kDense under the QI gate + boundary guard and reports its pruning
  /// counters through stats().scan.
  ScanMode scan_mode = ScanMode::kDense;
  /// Upper bound on chain length, guarding the dense O(n^3) DP tables
  /// (see DpContext::kDefaultMaxN).
  std::size_t max_n = DpContext::kDefaultMaxN;
  /// Byte budget for the coefficient-table cache; 0 keeps it unbounded.
  /// After every solve()/solve_job(), least-recently-used entries are
  /// evicted until the cache fits (an entry larger than the whole budget
  /// is evicted right after its solve).  Evicted keys simply rebuild on
  /// their next use -- results are unaffected.  Runtime-adjustable via
  /// set_cache_budget().
  std::size_t cache_budget_bytes = 0;
  /// Retain a resumable core::SolveCheckpoint when a solve_job() for a
  /// multi-level DP (kADMVstar/kADMV) is interrupted: a later solve_job()
  /// of the same workload (same tables key, algorithm, layout, and scan
  /// mode) resumes it, re-executing only the slabs the interrupted run
  /// did not finish, with bit-identical results.  The retained state is
  /// the job's O(n^2)-O(n^3) argmin/value tables, so a service that
  /// interrupts large solves should bound it with
  /// checkpoint_budget_bytes; release_scratch() always drops it.
  bool keep_checkpoints = true;
  /// LRU byte budget over retained checkpoints; 0 keeps them unbounded.
  /// Oldest-interrupted first; a dropped checkpoint just means the job
  /// starts from scratch on its next submission.
  std::size_t checkpoint_budget_bytes = 0;
  /// Memoize final plans in a core::PlanCache and serve repeat solve_job()
  /// submissions from it: exact key matches return the stored result
  /// bitwise; near-misses may be served under an epsilon tolerance (see
  /// plan_cache_epsilon).  The batch solve() entry bypasses the plan
  /// cache (its phases pre-build tables for every job) but results are
  /// identical either way.
  bool enable_plan_cache = true;
  /// LRU byte budget for the plan cache; 0 keeps it unbounded (plans are
  /// a few hundred bytes each).  Runtime-adjustable via
  /// set_plan_cache_budget().
  std::size_t plan_cache_budget_bytes = 0;
  /// Default epsilon for jobs that leave BatchJob::cache_epsilon
  /// negative.  0 (the default) serves exact hits only.
  double plan_cache_epsilon = 0.0;
};

/// Counters accumulated over the solver's lifetime.
struct BatchStats {
  std::size_t jobs_solved = 0;
  /// Distinct (WeightTable, SegmentTables) pairs constructed.
  std::size_t tables_built = 0;
  /// DP jobs served by a previously built pair (same batch or earlier).
  std::size_t tables_reused = 0;
  /// Cache entries dropped by the LRU budget, and their bytes.
  std::size_t tables_evicted = 0;
  std::size_t evicted_bytes = 0;
  /// Total bytes given back so far: release_scratch() calls plus the
  /// eager per-thread releases of interrupted solves (the latter are
  /// also broken out in interrupted_released_bytes).
  std::size_t released_bytes = 0;
  /// solve_job() calls that ended in SolveInterrupted (cancellation,
  /// deadline, or preemption) instead of a result.
  std::size_t jobs_interrupted = 0;
  /// Scratch bytes released eagerly on the interrupting thread the moment
  /// those solves unwound (also folded into released_bytes).
  std::size_t interrupted_released_bytes = 0;
  /// Interrupted solves whose partial progress was retained for resume,
  /// and retained checkpoints dropped by the checkpoint budget (or
  /// superseded by a concurrent solve of the same workload).
  std::size_t checkpoints_saved = 0;
  std::size_t checkpoints_dropped = 0;
  /// Solves that started from a retained checkpoint, and the slabs those
  /// resumes skipped instead of re-executing.
  std::size_t checkpoints_resumed = 0;
  std::size_t checkpoint_slabs_skipped = 0;
  /// Table builds served by the incremental patch path: a same-shape
  /// donor entry (same chain weights, different rates/costs) was found
  /// and only the invalidated coefficient streams were recomputed.
  /// Counted inside tables_built.
  std::size_t tables_patched = 0;
  /// Coefficient streams the patch builds copied instead of recomputing.
  std::size_t patched_streams_reused = 0;
  /// Fresh solves whose objective exceeded the plan cache's warm upper
  /// bound (the evaluator re-score of a stale plan) beyond rounding: a
  /// certificate or solver bug.  Must stay 0.
  std::size_t warm_bound_violations = 0;
  /// Aggregated prune/fallback counters of every DP job's inner scans
  /// (all-zero while scan_mode is kDense).
  ScanStats scan;
};

class BatchSolver {
 public:
  explicit BatchSolver(BatchOptions options = {});

  /// Solves every job; results[i] corresponds to jobs[i].  Safe to call
  /// repeatedly -- the table cache persists and warms across calls.
  std::vector<OptimizationResult> solve(const std::vector<BatchJob>& jobs);

  /// Solves one job through the shared cache.  Unlike solve(), this entry
  /// is thread-safe against concurrent solve_job() calls on the same
  /// instance: workers serving an async queue call it directly (see
  /// service::SolverService).  Concurrent callers missing the same key
  /// build its tables once (the first claims the build, the rest wait).
  /// `cancel`, when non-null, is threaded to the DP's cooperative
  /// checkpoints; a fired token makes this call throw SolveInterrupted
  /// (counted in stats().jobs_interrupted) with the cache intact.
  /// Results are bit-identical to solve() and to standalone optimize().
  OptimizationResult solve_job(const BatchJob& job,
                               const CancelToken* cancel = nullptr);

  /// Drops this solver's coefficient-table cache, its retained solve
  /// checkpoints, and the backing memory of every thread-local solver
  /// arena IN THE PROCESS (the arena pool is global -- see the header
  /// comment); returns the number of bytes freed.  The solver stays
  /// fully usable -- the next solve() rebuilds on demand and reproduces
  /// identical results.  Must not overlap a running solve on any
  /// BatchSolver or standalone optimizer call.
  std::size_t release_scratch();

  /// Drops every retained interruption checkpoint (jobs restart from
  /// scratch on their next submission); returns the bytes freed.  Safe
  /// against concurrent solve_job() calls.
  std::size_t discard_checkpoints();

  /// Bytes held by the retained interruption checkpoints.
  std::size_t checkpoint_resident_bytes() const;

  /// Evicts least-recently-used cache entries until the table cache holds
  /// at most `budget_bytes`; returns the bytes freed.  Entries mid-build
  /// by a concurrent solve_job() are skipped.  The LRU counterpart of
  /// release_scratch() (which also drops the arenas).
  std::size_t evict_to(std::size_t budget_bytes);

  /// Replaces BatchOptions::cache_budget_bytes at runtime and applies it
  /// immediately; 0 removes the bound.
  void set_cache_budget(std::size_t budget_bytes);

  /// Replaces BatchOptions::plan_cache_budget_bytes at runtime and
  /// applies it immediately; 0 removes the bound.
  void set_plan_cache_budget(std::size_t budget_bytes);

  /// Cheap probe for admission pricing: would solve_job(job) probably be
  /// served from the plan cache without running the DP?  (See
  /// PlanCache::probable_hit -- a probed epsilon-hit can still re-solve
  /// if its re-score fails the epsilon test.)  Always false while
  /// enable_plan_cache is off or for non-DP algorithms.
  bool probable_plan_cache_hit(const BatchJob& job) const;

  /// Plan-cache counters (hits/misses/evictions reconcile with
  /// stats().jobs_solved; see PlanCacheStats).
  PlanCacheStats plan_cache_stats() const;
  /// Bytes held by the memoized plans.
  std::size_t plan_cache_resident_bytes() const;
  /// Memoized plans currently resident.
  std::size_t plan_cache_size() const;

  /// Bytes currently held by this solver's table cache, its retained
  /// checkpoints, and all solver arenas in the process.
  std::size_t resident_bytes() const;

  /// Bytes held by the table cache alone (the pool the LRU budget
  /// governs), excluding the process-wide arenas.
  std::size_t cache_resident_bytes() const;

  const BatchOptions& options() const noexcept { return options_; }
  /// Borrowing accessor for the exclusive-use batch path; while
  /// concurrent solve_job() calls are in flight, use stats_snapshot().
  const BatchStats& stats() const noexcept { return stats_; }
  /// Consistent copy of the counters, taken under the cache lock.
  BatchStats stats_snapshot() const;

 private:
  /// Cache key: the exact bit patterns of everything a WeightTable /
  /// SegmentTables build reads -- chain length and weights, the two error
  /// rates, and the two per-position verification-cost streams.  The
  /// remaining cost streams (checkpoint/recovery costs, recall) are read
  /// per job at solve time, never baked into the tables, so jobs
  /// differing only in those -- e.g. a checkpoint-price sweep -- share
  /// one table pair.  Bitwise comparison (not double ==) keeps hash and
  /// equality consistent for every value including -0.0 and NaN.
  struct TableKey {
    std::vector<std::uint64_t> bits;
    bool operator==(const TableKey& other) const noexcept {
      return bits == other.bits;
    }
  };
  struct TableKeyHash {
    std::size_t operator()(const TableKey& key) const noexcept;
  };
  struct TableEntry {
    std::shared_ptr<const chain::WeightTable> table;
    std::shared_ptr<const analysis::SegmentTables> seg;
    /// LRU stamp: value of use_tick_ at the entry's last touch.  The
    /// cache is small (one entry per distinct workload shape), so
    /// eviction scans for the minimum stamp instead of maintaining an
    /// intrusive list.
    std::uint64_t last_used = 0;
    /// A solve_job() worker is building (or row-upgrading) this entry;
    /// other workers wait on build_done_ and eviction skips it.
    bool building = false;
  };

  /// A retained interruption checkpoint: the partial progress of one
  /// (workload, algorithm, layout, scan mode), checked OUT of the store
  /// for the duration of a solve (exclusive ownership) and checked back
  /// in only if the solve is interrupted again.  Keyed by the TableKey
  /// bits extended with one metadata word, so a checkpoint can never be
  /// resumed by a solve it would not be bit-identical for.
  struct CheckpointEntry {
    std::shared_ptr<SolveCheckpoint> checkpoint;
    std::uint64_t last_used = 0;
  };

  static TableKey make_key(const chain::TaskChain& chain,
                           const platform::CostModel& costs);
  static TableKey make_checkpoint_key(const TableKey& tables_key,
                                      Algorithm algorithm, TableLayout layout,
                                      ScanMode scan_mode);
  static std::size_t entry_bytes(const TableEntry& entry) noexcept;

  /// The following helpers require mutex_ to be held.
  std::size_t cache_bytes_locked() const noexcept;
  std::size_t evict_locked(std::size_t budget_bytes);
  std::size_t checkpoint_bytes_locked() const noexcept;
  std::size_t evict_checkpoints_locked(std::size_t budget_bytes);

  BatchOptions options_;
  BatchStats stats_;
  /// Memoized final plans (own internal lock; never held together with
  /// mutex_).
  PlanCache plan_cache_;
  std::unordered_map<TableKey, TableEntry, TableKeyHash> cache_;
  std::unordered_map<TableKey, CheckpointEntry, TableKeyHash> checkpoints_;
  std::uint64_t use_tick_ = 0;
  /// Guards cache_, stats_, use_tick_, and the cache-budget option for
  /// the solve_job() path; solve() relies on its exclusive contract and
  /// takes it only around shared bookkeeping.
  mutable std::mutex mutex_;
  std::condition_variable build_done_;
};

}  // namespace chainckpt::core
