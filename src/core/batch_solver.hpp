// Batched multi-chain solver: the server-shaped front end of the library.
//
// A production embedding does not optimize one chain at a time -- a request
// carries many independent chains (different lengths, platforms, and
// algorithms), and a long-lived process serves many requests.  BatchSolver
// drives such a workload through one engine:
//
//   * a shared work-queue: jobs are solved through util::parallel_for with
//     dynamic scheduling, so heterogeneous chains load-balance across
//     workers (an n = 400 ADMV* job does not serialize behind twenty
//     n = 50 ones);
//   * a coefficient-table cache: the O(n^2) analysis::SegmentTables +
//     chain::WeightTable pair -- the dominant per-solve setup cost -- is
//     built once per distinct (chain weights, cost model) key and shared
//     by every job that matches, within a batch and across batches;
//   * one thread-local arena pool: the solvers' grow-only scratch
//     (util::ArenaBlock) is reused across the whole batch, so steady-state
//     solving performs no per-job scratch allocation;
//   * an explicit lifecycle: release_scratch() drops the cache and every
//     arena, returning the memory between traffic bursts; the next solve
//     simply rebuilds what it needs.
//
// Determinism: every job's result (plan and objective) is bit-identical to
// a standalone core::optimize() call with the same inputs, whether the
// batch runs serially or in parallel, cached or cold.
//
// Thread-safety: a BatchSolver instance is NOT internally synchronized --
// it IS the parallelism.  Use one instance per serving thread, or fence
// calls externally.  The arena pool behind release_scratch() /
// resident_bytes() is PROCESS-WIDE (every solver's thread-local scratch
// registers with it), so release_scratch() must not overlap a running
// solve() on ANY instance in the process, and the byte counts cover all
// instances, not just this one.  A multi-solver embedding should treat
// scratch release as a global quiescent-point operation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/optimizer.hpp"

namespace chainckpt::core {

/// One chain to solve: which algorithm, over which chain, under which cost
/// model.  Jobs are self-contained so a batch can mix platforms and
/// per-position cost models freely.
struct BatchJob {
  Algorithm algorithm = Algorithm::kADMVstar;
  chain::TaskChain chain;
  platform::CostModel costs;
};

struct BatchOptions {
  /// Solve jobs through the shared work-queue (dynamic scheduling over
  /// util::parallel_for).  false runs an in-order serial loop; results are
  /// identical either way (determinism contract).
  bool parallel = true;
  /// Storage layout of the dense level-DP tables (ADMV*/ADMV jobs).
  TableLayout layout = TableLayout::kRowMajor;
  /// Inner argmin scan mode for the DP jobs (see
  /// core/monotone_scanner.hpp).  kMonotonePruned is bit-compatible with
  /// kDense under the QI gate + boundary guard and reports its pruning
  /// counters through stats().scan.
  ScanMode scan_mode = ScanMode::kDense;
  /// Upper bound on chain length, guarding the dense O(n^3) DP tables
  /// (see DpContext::kDefaultMaxN).
  std::size_t max_n = DpContext::kDefaultMaxN;
};

/// Counters accumulated over the solver's lifetime.
struct BatchStats {
  std::size_t jobs_solved = 0;
  /// Distinct (WeightTable, SegmentTables) pairs constructed.
  std::size_t tables_built = 0;
  /// DP jobs served by a previously built pair (same batch or earlier).
  std::size_t tables_reused = 0;
  /// Total bytes returned by release_scratch() calls so far.
  std::size_t released_bytes = 0;
  /// Aggregated prune/fallback counters of every DP job's inner scans
  /// (all-zero while scan_mode is kDense).
  ScanStats scan;
};

class BatchSolver {
 public:
  explicit BatchSolver(BatchOptions options = {});

  /// Solves every job; results[i] corresponds to jobs[i].  Safe to call
  /// repeatedly -- the table cache persists and warms across calls.
  std::vector<OptimizationResult> solve(const std::vector<BatchJob>& jobs);

  /// Drops this solver's coefficient-table cache and the backing memory
  /// of every thread-local solver arena IN THE PROCESS (the arena pool is
  /// global -- see the header comment); returns the number of bytes
  /// freed.  The solver stays fully usable -- the next solve() rebuilds
  /// on demand and reproduces identical results.  Must not overlap a
  /// running solve() on any BatchSolver or standalone optimizer call.
  std::size_t release_scratch();

  /// Bytes currently held by this solver's table cache plus all solver
  /// arenas in the process.
  std::size_t resident_bytes() const;

  const BatchOptions& options() const noexcept { return options_; }
  const BatchStats& stats() const noexcept { return stats_; }

 private:
  /// Cache key: the exact bit patterns of everything a WeightTable /
  /// SegmentTables build reads -- chain length and weights, the two error
  /// rates, and the two per-position verification-cost streams.  The
  /// remaining cost streams (checkpoint/recovery costs, recall) are read
  /// per job at solve time, never baked into the tables, so jobs
  /// differing only in those -- e.g. a checkpoint-price sweep -- share
  /// one table pair.  Bitwise comparison (not double ==) keeps hash and
  /// equality consistent for every value including -0.0 and NaN.
  struct TableKey {
    std::vector<std::uint64_t> bits;
    bool operator==(const TableKey& other) const noexcept {
      return bits == other.bits;
    }
  };
  struct TableKeyHash {
    std::size_t operator()(const TableKey& key) const noexcept;
  };
  struct TableEntry {
    std::shared_ptr<const chain::WeightTable> table;
    std::shared_ptr<const analysis::SegmentTables> seg;
  };

  static TableKey make_key(const chain::TaskChain& chain,
                           const platform::CostModel& costs);

  BatchOptions options_;
  BatchStats stats_;
  std::unordered_map<TableKey, TableEntry, TableKeyHash> cache_;
};

}  // namespace chainckpt::core
