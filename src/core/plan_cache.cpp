#include "core/plan_cache.hpp"

#include <cstring>
#include <utility>

#include "analysis/evaluator.hpp"
#include "util/assert.hpp"

namespace chainckpt::core {

namespace {

std::uint64_t to_bits(double value) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

/// Only the ADMV partial-verification engine reads V and the recall; the
/// other DPs are invariant under them (grep the kernels: exv_r / vp are
/// consumed by dp_partial alone), so keying them for every algorithm
/// would only forfeit sound exact hits.
bool reads_partial_stream(Algorithm algorithm) noexcept {
  return algorithm == Algorithm::kADMV;
}

}  // namespace

PlanCache::PlanCache(PlanCacheConfig config) : config_(config) {}

std::size_t PlanCache::PlanKeyHash::operator()(
    const PlanKey& key) const noexcept {
  // FNV-1a over the 64-bit words, byte by byte (same scheme as the
  // BatchSolver table key).
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t word : key.bits) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (word >> shift) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return static_cast<std::size_t>(h);
}

PlanCache::PlanKey PlanCache::make_exact_key(Algorithm algorithm,
                                             const chain::TaskChain& chain,
                                             const platform::CostModel& costs) {
  PlanKey key;
  const std::size_t n = chain.size();
  const bool partial = reads_partial_stream(algorithm);
  key.bits.reserve(6 + n * (partial ? 7 : 6) + (partial ? 1 : 0));
  key.bits.push_back(static_cast<std::uint64_t>(algorithm));
  key.bits.push_back(static_cast<std::uint64_t>(n));
  key.bits.push_back(to_bits(costs.lambda_f()));
  key.bits.push_back(to_bits(costs.lambda_s()));
  // Laws that reduce to the exponential build share a key, mirroring the
  // table cache: their coefficient streams -- and hence their plans --
  // are bitwise identical.
  const platform::PlanningLaw& law = costs.planning_law();
  if (law.is_exponential()) {
    key.bits.push_back(0);
    key.bits.push_back(to_bits(1.0));
  } else {
    key.bits.push_back(static_cast<std::uint64_t>(law.law));
    key.bits.push_back(to_bits(law.weibull_shape));
  }
  for (std::size_t i = 1; i <= n; ++i) {
    key.bits.push_back(to_bits(chain.weight(i)));
  }
  for (std::size_t i = 1; i <= n; ++i) {
    key.bits.push_back(to_bits(costs.v_guaranteed_after(i)));
    key.bits.push_back(to_bits(costs.c_disk_after(i)));
    key.bits.push_back(to_bits(costs.c_mem_after(i)));
    key.bits.push_back(to_bits(costs.r_disk_after(i)));
    key.bits.push_back(to_bits(costs.r_mem_after(i)));
  }
  if (partial) {
    for (std::size_t i = 1; i <= n; ++i) {
      key.bits.push_back(to_bits(costs.v_partial_after(i)));
    }
    key.bits.push_back(to_bits(costs.recall()));
  }
  return key;
}

PlanCache::PlanKey PlanCache::make_shape_key(Algorithm algorithm,
                                             const chain::TaskChain& chain) {
  PlanKey key;
  const std::size_t n = chain.size();
  key.bits.reserve(2 + n);
  key.bits.push_back(static_cast<std::uint64_t>(algorithm));
  key.bits.push_back(static_cast<std::uint64_t>(n));
  for (std::size_t i = 1; i <= n; ++i) {
    key.bits.push_back(to_bits(chain.weight(i)));
  }
  return key;
}

std::size_t PlanCache::entry_bytes(const Entry& entry) noexcept {
  // Deterministic estimate: the two keys, the plan's action vector, the
  // cost model's per-position streams (uniform models store none), and
  // the fixed-size bookkeeping.
  std::size_t bytes = sizeof(Entry);
  bytes += (entry.exact_key.bits.size() + entry.shape_key.bits.size()) *
           sizeof(std::uint64_t);
  bytes += entry.result.plan.size() * sizeof(plan::Action);
  if (!entry.costs.is_uniform()) {
    bytes += entry.result.plan.size() * 6 * sizeof(double);
  }
  return bytes;
}

CacheLookup PlanCache::lookup(Algorithm algorithm,
                              const chain::TaskChain& chain,
                              const platform::CostModel& costs,
                              double epsilon) {
  CacheLookup out;
  const PlanKey exact_key = make_exact_key(algorithm, chain, costs);
  std::shared_ptr<Entry> candidate;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lookups;
    const auto it = entries_.find(exact_key);
    if (it != entries_.end()) {
      it->second->last_used = ++use_tick_;
      ++stats_.exact_hits;
      out.outcome = CacheOutcome::kExactHit;
      out.result = it->second->result;
      return out;
    }
    const auto shape_it = shape_index_.find(make_shape_key(algorithm, chain));
    if (shape_it != shape_index_.end()) {
      const auto entry_it = entries_.find(shape_it->second);
      if (entry_it != entries_.end()) candidate = entry_it->second;
    }
    if (candidate == nullptr) {
      ++stats_.misses;
      return out;  // kMiss
    }
  }

  // Near-miss path, outside the lock: certificate screen, then the
  // law-aware re-score of the cached plan under the REQUESTED model.
  const DriftCheck check =
      check_certificate(candidate->cert, candidate->costs, costs,
                        chain.size());
  out.lower_bound = check.lower_bound;
  // Score under the formula framework the algorithm's DP optimizes: the
  // kADMV engine prices every segment with the Section III-B accounting
  // even when the optimal plan ends up partial-free, and the two
  // frameworks differ by a small but real margin (see DESIGN.md) -- a
  // kAuto re-score of a partial-free plan would undercut the DP objective
  // and break the warm bound's upper-bound contract.
  const analysis::PlanEvaluator evaluator(chain, costs);
  const double score = evaluator.expected_makespan(
      candidate->result.plan,
      algorithm == Algorithm::kADMV
          ? analysis::FormulaMode::kPartialFramework
          : analysis::FormulaMode::kAuto);
  out.warm_upper_bound = score;
  out.has_warm_bound = true;
  const bool servable = check.outcome != DriftOutcome::kBeyondRadius &&
                        epsilon > 0.0 && check.lower_bound > 0.0 &&
                        score <= (1.0 + epsilon) * check.lower_bound;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (servable) {
    candidate->last_used = ++use_tick_;
    ++stats_.epsilon_hits;
    out.outcome = CacheOutcome::kEpsilonHit;
    out.result.plan = candidate->result.plan;
    out.result.expected_makespan = score;
    out.result.scan = ScanStats{};
    out.error_bound = score / check.lower_bound - 1.0;
  } else {
    ++stats_.cert_rejections;
    out.outcome = CacheOutcome::kCertRejected;
  }
  return out;
}

void PlanCache::insert(Algorithm algorithm, const chain::TaskChain& chain,
                       const platform::CostModel& costs,
                       const OptimizationResult& result) {
  PlanKey exact_key = make_exact_key(algorithm, chain, costs);
  PlanKey shape_key = make_shape_key(algorithm, chain);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(exact_key);
    if (it != entries_.end()) {
      it->second->last_used = ++use_tick_;
      shape_index_[shape_key] = exact_key;
      return;
    }
  }
  // Certificate construction (a first_order pass plus plan counts) stays
  // outside the lock.
  auto entry = std::make_shared<Entry>(Entry{
      result,
      make_validity_certificate(result.plan, costs.platform(),
                                result.expected_makespan,
                                chain.total_weight()),
      costs, std::move(exact_key), std::move(shape_key), 0, 0});
  // The kADMV engine prices even partial-free optima under the III-B
  // framework; the certificate's gamma fold must know (see sensitivity.hpp).
  if (algorithm == Algorithm::kADMV) entry->cert.partial_framework = true;
  entry->bytes = entry_bytes(*entry);
  const std::lock_guard<std::mutex> lock(mutex_);
  entry->last_used = ++use_tick_;
  const auto [it, inserted] = entries_.emplace(entry->exact_key, entry);
  if (!inserted) {
    // Raced another insert of the same key; the results are identical by
    // the determinism contract, keep the incumbent.
    it->second->last_used = use_tick_;
  } else {
    ++stats_.inserts;
  }
  shape_index_[entry->shape_key] = entry->exact_key;
  if (config_.budget_bytes != 0) evict_locked(config_.budget_bytes);
}

bool PlanCache::probable_hit(Algorithm algorithm,
                             const chain::TaskChain& chain,
                             const platform::CostModel& costs,
                             double epsilon) const {
  std::shared_ptr<Entry> candidate;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.count(make_exact_key(algorithm, chain, costs)) != 0) {
      return true;
    }
    if (epsilon <= 0.0) return false;
    const auto shape_it =
        shape_index_.find(make_shape_key(algorithm, chain));
    if (shape_it == shape_index_.end()) return false;
    const auto entry_it = entries_.find(shape_it->second);
    if (entry_it == entries_.end()) return false;
    candidate = entry_it->second;
  }
  const DriftCheck check =
      check_certificate(candidate->cert, candidate->costs, costs,
                        chain.size());
  return check.outcome != DriftOutcome::kBeyondRadius;
}

std::size_t PlanCache::evict_to(std::size_t budget_bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evict_locked(budget_bytes);
}

void PlanCache::set_budget(std::size_t budget_bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  config_.budget_bytes = budget_bytes;
  if (budget_bytes != 0) evict_locked(budget_bytes);
}

std::size_t PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t freed = resident_bytes_locked();
  entries_.clear();
  shape_index_.clear();
  return freed;
}

std::size_t PlanCache::resident_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_locked();
}

std::size_t PlanCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

PlanCacheStats PlanCache::stats_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t PlanCache::resident_bytes_locked() const noexcept {
  std::size_t total = 0;
  for (const auto& [key, entry] : entries_) total += entry->bytes;
  return total;
}

std::size_t PlanCache::evict_locked(std::size_t budget_bytes) {
  std::size_t freed = 0;
  std::size_t resident = resident_bytes_locked();
  while (resident > budget_bytes && !entries_.empty()) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second->last_used < victim->second->last_used) victim = it;
    }
    const Entry& entry = *victim->second;
    // Unhook the shape index if it points at the victim, so near-miss
    // lookups never chase a dangling exact key.
    const auto shape_it = shape_index_.find(entry.shape_key);
    if (shape_it != shape_index_.end() &&
        shape_it->second == entry.exact_key) {
      shape_index_.erase(shape_it);
    }
    resident -= entry.bytes;
    freed += entry.bytes;
    stats_.evicted_bytes += entry.bytes;
    ++stats_.evictions;
    entries_.erase(victim);
  }
  return freed;
}

}  // namespace chainckpt::core
