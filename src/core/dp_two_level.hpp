// ADMV*: the two-level dynamic program of paper Section III-A.
//
// Places disk checkpoints, additional memory checkpoints, and guaranteed
// verifications to minimize the expected makespan of a linear task chain
// under fail-stop + silent errors.  O(n^4) time, O(n^3) memory.
#pragma once

#include "core/dp_context.hpp"

namespace chainckpt::core {

/// Returns the optimal ADMV* plan and its expected makespan.  `layout`
/// selects the storage layout of the dense DP tables (values and plans are
/// identical under both; see core::TableLayout).
OptimizationResult optimize_two_level(
    const chain::TaskChain& chain, const platform::CostModel& costs,
    TableLayout layout = TableLayout::kRowMajor);

/// Same solver on a prebuilt context -- the shared-SegmentTables path used
/// by core::BatchSolver.  Only the column tables are read, so a context
/// built with `build_row_tables = false` suffices.
OptimizationResult optimize_two_level(
    const DpContext& ctx, TableLayout layout = TableLayout::kRowMajor);

}  // namespace chainckpt::core
