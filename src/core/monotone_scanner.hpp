// Monotonicity-pruned argmin scans for the level DPs.
//
// Every inner loop of the three dynamic programs is the same shape: for a
// row identified by (d1, m1) and a right endpoint j that only grows, find
// the leftmost strict-less argmin of a candidate function over v1 in
// [m1, j).  Empirically (and provably for Knuth/Yao quadrangle-inequality
// cost functions) the argmin is non-decreasing in j, so the scan can start
// at the previous argmin instead of m1 -- on the paper's platforms this
// cuts the O(n^4)/O(n^6) v1/m1 scans to 25-45% of their dense cell count.
//
// Eq. (4)'s cost structure has no written QI proof (the E_verif * c cross
// term has indefinite sign), so the pruned mode is fenced by three runtime
// safeguards, each of which falls back to the dense scan when it fires:
//
//   1. QI gate (per row): analysis::SegmentTables::verify_quadrangle()
//      checks the quadrangle inequality on every coefficient stream the
//      Eq. (4) kernel reads; rows whose coefficient suffix violates it
//      are scanned densely from the start (ScanStats::gated_rows).  For
//      scans over derived values rather than those streams (the E_mem
//      m1 chain -- see detail::LevelScanProfile) the certificate is a
//      structural proxy and the remaining fences carry the weight.
//   2. Boundary guard (per step): the window starts one cell LEFT of the
//      previous argmin; if the leftmost argmin lands on that boundary
//      cell, it tied or beat everything to its right -- the argmin moved
//      left, and the step is rescanned densely, keeping the exact dense
//      result (ScanStats::guard_fallbacks).  The guard is adjacent-only
//      by design: a dip further left behind a barrier cell would escape
//      it, which is why the QI gate and the oracle/property batteries
//      exist.
//   3. Value-order check (per step): the row values E(m1, j) must be
//      non-decreasing in j (they are expected completion times); a
//      decrease voids the monotonicity rationale and the rest of the row
//      runs dense (ScanStats::order_fallback_rows).
//
// Under gate+guard the scanner reproduced the dense leftmost argmin
// bitwise on every oracle and property configuration (see
// tests/core/oracle_pruning_test.cpp and random_property_test.cpp); the
// guard machinery itself is unit-tested against fabricated non-monotone
// candidate matrices in tests/core/monotone_scanner_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace chainckpt::core {

/// How the level DPs run their inner argmin scans.  kDense is the
/// reference formulation; kMonotonePruned is bit-compatible on every
/// configuration covered by the QI gate + boundary guard (see above) and
/// is validated against kDense by the oracle and property suites.
enum class ScanMode { kDense, kMonotonePruned };

/// Counters describing one solve's scan behaviour.  All counts are in
/// candidate evaluations ("cells") or rows/steps of the inner DP; a dense
/// solve reports zeros.  Aggregated across solves by
/// core::BatchSolver::stats().
struct ScanStats {
  /// Candidate evaluations the dense formulation would have performed.
  std::uint64_t dense_cells = 0;
  /// Candidate evaluations actually performed (window + guards + rescans).
  std::uint64_t cells_scanned = 0;
  /// Scan steps driven through the scanner.
  std::uint64_t steps = 0;
  /// Steps whose window was extended one cell left of the previous
  /// argmin to watch the boundary.
  std::uint64_t guard_checks = 0;
  /// Steps the boundary guard rescanned densely.
  std::uint64_t guard_fallbacks = 0;
  /// Rows the QI gate forced dense from the start.
  std::uint64_t gated_rows = 0;
  /// Rows that switched to dense mid-way on a value-order violation.
  std::uint64_t order_fallback_rows = 0;
  /// Rows that ran (at least partially) windowed.
  std::uint64_t windowed_rows = 0;

  ScanStats& operator+=(const ScanStats& other) noexcept {
    dense_cells += other.dense_cells;
    cells_scanned += other.cells_scanned;
    steps += other.steps;
    guard_checks += other.guard_checks;
    guard_fallbacks += other.guard_fallbacks;
    gated_rows += other.gated_rows;
    order_fallback_rows += other.order_fallback_rows;
    windowed_rows += other.windowed_rows;
    return *this;
  }

  /// Fraction of dense candidate evaluations avoided, in [0, 1].
  double prune_fraction() const noexcept {
    if (dense_cells == 0 || cells_scanned >= dense_cells) return 0.0;
    return 1.0 - static_cast<double>(cells_scanned) /
                     static_cast<double>(dense_cells);
  }
};

/// Drives the windowed scans of one slab (a set of rows m1 in [d1, n]
/// sharing a d1) or one streamed single-level row.  Not thread-safe; each
/// worker owns its scanner and merges stats() out at slab end.
///
/// The scan kernel is injected per step as a callable
///   scan(lo, hi, best, best_arg)
/// that folds the candidates for v1 in [lo, hi) into (best, best_arg)
/// with the strict-less leftmost-argmin rule, exactly like the dense
/// ColumnScanner contract (see core/level_dp.hpp).
class MonotoneScanner {
 public:
  explicit MonotoneScanner(std::size_t n) : rows_(n + 1) {}

  /// Frozen per-row scan state, captured by snapshot_row() at a sub-slab
  /// checkpoint granule and re-installed by restore_row() when the slab
  /// resumes (see core::SolveCheckpoint).  Restoring does NOT re-count
  /// the row in windowed_rows/gated_rows -- begin_row() counted it in the
  /// interrupted run and the granule carries those totals -- so resumed
  /// counters match an uninterrupted solve exactly.
  struct RowSnapshot {
    bool windowed = false;
    std::int32_t last_arg = -1;
    double last_value = 0.0;
  };

  RowSnapshot snapshot_row(std::size_t m1) const noexcept {
    const RowState& row = rows_[m1];
    return RowSnapshot{row.windowed, row.last_arg, row.last_value};
  }

  void restore_row(std::size_t m1, const RowSnapshot& snap) noexcept {
    RowState& row = rows_[m1];
    row.windowed = snap.windowed;
    row.last_arg = snap.last_arg;
    row.last_value = snap.last_value;
  }

  /// Starts row m1.  `qi_ok` is the per-row verdict of the QI gate
  /// (analysis::QiCertificate::row_ok(m1)); a false verdict pins the row
  /// to the dense scan.
  void begin_row(std::size_t m1, bool qi_ok) {
    RowState& row = rows_[m1];
    row.windowed = qi_ok;
    row.last_arg = -1;
    row.last_value = -std::numeric_limits<double>::infinity();
    if (qi_ok) {
      ++stats_.windowed_rows;
    } else {
      ++stats_.gated_rows;
    }
  }

  /// One scan step: leftmost strict-less argmin over v1 in [m1, j) for
  /// the current right endpoint j, bit-identical to the dense scan under
  /// the safeguards documented above.  begin_row(m1, ...) must have run,
  /// and steps of a row must arrive with strictly increasing j.
  ///
  /// The boundary guard is folded into the window: the scan starts one
  /// cell LEFT of the previous argmin, and because the kernel applies the
  /// leftmost strict-less rule, the argmin landing on that boundary cell
  /// is exactly the "ties or beats everything to its right" condition --
  /// the signal that the argmin moved left and the step must rescan
  /// densely.  Folding matters for performance, not just elegance: the
  /// kernel is invoked from a single call site, so the heavy fused DP
  /// loops are inlined once per instantiation (three call sites
  /// measurably deoptimized the ADMV inner solver).
  template <typename ScanFn>
  void step(std::size_t m1, std::size_t j, ScanFn&& scan, double& best,
            std::int32_t& best_arg) {
    RowState& row = rows_[m1];
    ++stats_.steps;
    stats_.dense_cells += j - m1;
    std::size_t start = m1;
    if (row.windowed && row.last_arg >= 0 &&
        static_cast<std::size_t>(row.last_arg) > m1) {
      start = static_cast<std::size_t>(row.last_arg) - 1;
      ++stats_.guard_checks;
    }
    for (;;) {
      best = std::numeric_limits<double>::infinity();
      best_arg = -1;
      scan(start, j, best, best_arg);
      stats_.cells_scanned += j - start;
      if (start == m1 || static_cast<std::size_t>(best_arg) != start) break;
      // The boundary cell won (or tied leftmost): monotonicity violated
      // for this step; redo it densely and keep the exact dense result.
      ++stats_.guard_fallbacks;
      start = m1;
    }
    if (row.windowed && best < row.last_value) {
      // Row values stopped being non-decreasing: void the monotonicity
      // rationale and finish the row densely.
      row.windowed = false;
      ++stats_.order_fallback_rows;
    }
    row.last_value = best;
    row.last_arg = best_arg;
  }

  const ScanStats& stats() const noexcept { return stats_; }

 private:
  struct RowState {
    bool windowed = false;
    std::int32_t last_arg = -1;
    double last_value = 0.0;
  };
  std::vector<RowState> rows_;
  ScanStats stats_;
};

}  // namespace chainckpt::core
