#include "core/result_io.hpp"

#include <cstring>

namespace chainckpt::core {

namespace {

/// Plans serialized by this build: guards read_result against action
/// bytes outside the enum.
constexpr std::uint8_t kMaxAction =
    static_cast<std::uint8_t>(plan::Action::kDiskCheckpoint);

std::uint64_t f64_bits(double value) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double bits_f64(std::uint64_t bits) noexcept {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t value) {
  out.push_back(value);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double value) {
  put_u64(out, f64_bits(value));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& value) {
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

bool get_u8(const std::uint8_t* data, std::size_t size, std::size_t& offset,
            std::uint8_t& value) {
  if (offset >= size) return false;
  value = data[offset++];
  return true;
}

bool get_u16(const std::uint8_t* data, std::size_t size, std::size_t& offset,
             std::uint16_t& value) {
  if (offset > size || size - offset < 2) return false;
  value = static_cast<std::uint16_t>(data[offset] |
                                     (std::uint16_t{data[offset + 1]} << 8));
  offset += 2;
  return true;
}

bool get_u32(const std::uint8_t* data, std::size_t size, std::size_t& offset,
             std::uint32_t& value) {
  if (offset > size || size - offset < 4) return false;
  value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= std::uint32_t{data[offset + i]} << (8 * i);
  }
  offset += 4;
  return true;
}

bool get_u64(const std::uint8_t* data, std::size_t size, std::size_t& offset,
             std::uint64_t& value) {
  if (offset > size || size - offset < 8) return false;
  value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= std::uint64_t{data[offset + i]} << (8 * i);
  }
  offset += 8;
  return true;
}

bool get_f64(const std::uint8_t* data, std::size_t size, std::size_t& offset,
             double& value) {
  std::uint64_t bits;
  if (!get_u64(data, size, offset, bits)) return false;
  value = bits_f64(bits);
  return true;
}

bool get_string(const std::uint8_t* data, std::size_t size,
                std::size_t& offset, std::string& value) {
  std::uint32_t length;
  if (!get_u32(data, size, offset, length)) return false;
  if (offset > size || size - offset < length) return false;
  value.assign(reinterpret_cast<const char*>(data) + offset, length);
  offset += length;
  return true;
}

void append_result(std::vector<std::uint8_t>& out,
                   const OptimizationResult& result) {
  put_f64(out, result.expected_makespan);
  const std::size_t n = result.plan.size();
  put_u32(out, static_cast<std::uint32_t>(n));
  for (std::size_t i = 1; i <= n; ++i) {
    put_u8(out, static_cast<std::uint8_t>(result.plan.action(i)));
  }
  put_u64(out, result.scan.dense_cells);
  put_u64(out, result.scan.cells_scanned);
  put_u64(out, result.scan.steps);
  put_u64(out, result.scan.guard_checks);
  put_u64(out, result.scan.guard_fallbacks);
  put_u64(out, result.scan.gated_rows);
  put_u64(out, result.scan.order_fallback_rows);
  put_u64(out, result.scan.windowed_rows);
}

bool read_result(const std::uint8_t* data, std::size_t size,
                 std::size_t& offset, OptimizationResult& result) {
  if (!get_f64(data, size, offset, result.expected_makespan)) return false;
  std::uint32_t n;
  if (!get_u32(data, size, offset, n)) return false;
  // Every action is one byte, so a plan longer than the remaining buffer
  // is malformed -- reject before allocating n actions.
  if (offset > size || size - offset < n) return false;
  std::vector<plan::Action> actions;
  actions.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint8_t raw;
    if (!get_u8(data, size, offset, raw) || raw > kMaxAction) return false;
    actions.push_back(static_cast<plan::Action>(raw));
  }
  // A decoded plan may legitimately be empty (a rejected job's default
  // result); ResiliencePlan(vector) would be fine with it too.
  result.plan = n == 0 ? plan::ResiliencePlan()
                       : plan::ResiliencePlan(std::move(actions));
  return get_u64(data, size, offset, result.scan.dense_cells) &&
         get_u64(data, size, offset, result.scan.cells_scanned) &&
         get_u64(data, size, offset, result.scan.steps) &&
         get_u64(data, size, offset, result.scan.guard_checks) &&
         get_u64(data, size, offset, result.scan.guard_fallbacks) &&
         get_u64(data, size, offset, result.scan.gated_rows) &&
         get_u64(data, size, offset, result.scan.order_fallback_rows) &&
         get_u64(data, size, offset, result.scan.windowed_rows);
}

bool results_bitwise_equal(const OptimizationResult& a,
                           const OptimizationResult& b) noexcept {
  return a.plan == b.plan &&
         f64_bits(a.expected_makespan) == f64_bits(b.expected_makespan) &&
         a.scan.dense_cells == b.scan.dense_cells &&
         a.scan.cells_scanned == b.scan.cells_scanned &&
         a.scan.steps == b.scan.steps &&
         a.scan.guard_checks == b.scan.guard_checks &&
         a.scan.guard_fallbacks == b.scan.guard_fallbacks &&
         a.scan.gated_rows == b.scan.gated_rows &&
         a.scan.order_fallback_rows == b.scan.order_fallback_rows &&
         a.scan.windowed_rows == b.scan.windowed_rows;
}

}  // namespace chainckpt::core
