// Single-level baselines.
//
// ADV* (paper Section IV): disk checkpoints only -- each still bundled with
// its memory checkpoint and guaranteed verification -- plus additional
// guaranteed verifications.  Obtained from the Section III-A dynamic
// program by pinning m1 = d1 (no interior memory checkpoints); silent
// errors roll back to the memory copy co-located with the last disk
// checkpoint.  O(n^3) time; the E_verif slabs are STREAMED, so peak DP
// memory is a block of O(n) rows plus the O(n) E_disk arrays rather than
// the dense (n+1)^2 value/argmin tables (see dp_single_level.cpp).
//
// AD (classical Toueg-Babaoglu-style baseline, extension): additionally
// forbids interior verifications, so silent errors are only caught by the
// guaranteed verification bundled with each checkpoint.  O(n^2) time,
// same streamed memory profile.
#pragma once

#include "core/dp_context.hpp"

namespace chainckpt::core {

struct SingleLevelOptions {
  /// When false, no verifications besides those bundled with checkpoints
  /// are placed (the AD baseline).
  bool allow_extra_verifications = true;
};

OptimizationResult optimize_single_level(const chain::TaskChain& chain,
                                         const platform::CostModel& costs,
                                         SingleLevelOptions options = {});

/// Same solver on a prebuilt context -- the shared-SegmentTables path used
/// by core::BatchSolver.  Only the column tables are read, so a context
/// built with `build_row_tables = false` suffices.
OptimizationResult optimize_single_level(const DpContext& ctx,
                                         SingleLevelOptions options = {});

}  // namespace chainckpt::core
