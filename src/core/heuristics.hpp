// Baseline heuristics.
//
// The paper's companion work (Benoit et al., IPDPS'16) derives *periodic
// patterns* for divisible-load applications from first-order
// approximations.  Linear task graphs cannot place mechanisms mid-task, so
// the natural adaptations are:
//   * periodic plans: a verification every pv tasks, a memory checkpoint
//     every pm tasks, a disk checkpoint every pd tasks (grid-searched);
//   * a Young/Daly-style plan: continuous first-order periods
//       W_D ~ sqrt(2 C_D / lambda_f)  (disk interval vs fail-stop errors)
//       W_M ~ sqrt(2 (C_M + V*) / lambda_s)  (memory interval vs silent)
//       W_V ~ sqrt(2 V* / lambda_s)  (verification interval vs silent)
//     rounded to task boundaries by accumulating weights.
//
// Both score their candidates with the exact analytic evaluator, so they
// are honest baselines: same objective, cheaper placement policy.
#pragma once

#include <cstddef>

#include "core/dp_context.hpp"

namespace chainckpt::core {

/// Builds the plan with a guaranteed verification every `pv` tasks, a
/// memory checkpoint every `pm` tasks, and a disk checkpoint every `pd`
/// tasks (0 disables a level; stronger actions subsume weaker ones; the
/// final bundle is implicit).  Throws if pv/pm/pd are inconsistent with
/// n == 0 chains.
plan::ResiliencePlan make_periodic_plan(std::size_t n, std::size_t pv,
                                        std::size_t pm, std::size_t pd);

/// Grid-searches periodic plans (pv | pm | pd nesting) and returns the best
/// one under the analytic evaluator.
OptimizationResult optimize_periodic(const chain::TaskChain& chain,
                                     const platform::CostModel& costs);

/// First-order Young/Daly-style plan (see header comment).
OptimizationResult optimize_daly(const chain::TaskChain& chain,
                                 const platform::CostModel& costs);

}  // namespace chainckpt::core
