// Cooperative cancellation and deadlines for the DP solvers.
//
// A long ADMV solve is O(n^6); a service cannot afford to let one run to
// completion after its client hung up or its deadline passed.  The
// solvers therefore accept an optional CancelToken through DpContext and
// poll it at coarse-grained checkpoints -- once per right-endpoint step of
// a slab, once per streamed row, never inside the fused inner kernels
// (whose codegen is measurably sensitive to extra call structure; see
// core/level_dp.hpp).  When the token fires, the polling worker throws
// SolveInterrupted; util::parallel_for rethrows it on the calling thread
// after the remaining workers observe the same token and unwind too.
//
// The contract is cooperative and coarse: cancellation latency is one
// checkpoint interval (microseconds for the single-level DP, up to a few
// milliseconds for a large ADMV slab step), and an interrupted solve
// produces no result -- the thread-local scratch arenas remain registered,
// grow-only, and reusable, so a later util::release_all_arenas() (or
// core::BatchSolver::release_scratch()) still reclaims every byte.
//
// Thread-safety: request_cancel() / set_deadline() may race freely with
// polls from any number of worker threads (relaxed atomics -- a poll may
// observe the request one checkpoint late, which the latency contract
// already allows).  set_deadline() should be called before the solve
// starts.  The cancel flag and deadline are single-use per job (there is
// deliberately no reset); the PREEMPT flag is the exception -- a
// scheduler that cooperatively displaces a job intends to run it again,
// so request_preempt() is paired with clear_preempt() and the same token
// (with its original deadline) drives every attempt of the job.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace chainckpt::core {

/// Why an interrupted solve stopped.
enum class InterruptReason {
  kCancelled,  ///< CancelToken::request_cancel() was called
  kDeadline,   ///< the token's deadline passed mid-solve
  kPreempted,  ///< a scheduler displaced the job; it is expected to rerun
};

/// Thrown from a solver checkpoint when its CancelToken fires.  Escapes
/// through optimize() to the caller; core::BatchSolver::solve_job lets it
/// propagate after updating its interruption counter.
class SolveInterrupted : public std::runtime_error {
 public:
  explicit SolveInterrupted(InterruptReason reason)
      : std::runtime_error(reason == InterruptReason::kDeadline
                               ? "solve interrupted: deadline expired"
                               : reason == InterruptReason::kPreempted
                                     ? "solve interrupted: preempted"
                                     : "solve interrupted: cancelled"),
        reason_(reason) {}

  InterruptReason reason() const noexcept { return reason_; }

 private:
  InterruptReason reason_;
};

/// Shared flag + optional deadline, owned by the submitter, polled by the
/// solver.  The deadline is stored as steady-clock nanoseconds so polls
/// stay lock-free.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  /// Cooperative displacement: the next checkpoint throws
  /// SolveInterrupted(kPreempted).  Unlike cancel, the flag is clearable
  /// (clear_preempt()) -- the scheduler reruns the job on the same token,
  /// and a checkpoint-aware solver resumes from its completed slabs (see
  /// core/solve_checkpoint.hpp).
  void request_preempt() noexcept {
    preempted_.store(true, std::memory_order_relaxed);
  }

  void clear_preempt() noexcept {
    preempted_.store(false, std::memory_order_relaxed);
  }

  void set_deadline(Clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Test/chaos hook: fires the cancel flag from inside the poll after
  /// `polls` further checkpoints (0 fires on the very next poll).  Gives
  /// the interruption batteries a deterministic way to stop a solve at an
  /// exact checkpoint without racing a second thread; negative disables
  /// (the default).  Counts polls across all workers of the solve.
  void trip_after_polls(std::int64_t polls) noexcept {
    trip_remaining_.store(polls, std::memory_order_relaxed);
  }

  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool preempt_requested() const noexcept {
    return preempted_.load(std::memory_order_relaxed);
  }

  bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  bool deadline_passed() const noexcept {
    const std::int64_t ns = deadline_ns_.load(std::memory_order_relaxed);
    return ns != 0 && Clock::now().time_since_epoch().count() >= ns;
  }

  /// Solver checkpoint: throws SolveInterrupted when the token fired.
  /// The cancel/preempt flags are checked on every poll (relaxed loads);
  /// the deadline clock read is strided (every 64th poll per thread) to
  /// keep checkpoints cheap enough for per-step placement.
  void poll() const {
    maybe_trip();
    if (cancel_requested()) {
      throw SolveInterrupted(InterruptReason::kCancelled);
    }
    if (preempt_requested()) {
      throw SolveInterrupted(InterruptReason::kPreempted);
    }
    if (!has_deadline()) return;
    static thread_local std::uint32_t ticker = 0;
    if ((ticker++ & 63u) == 0 && deadline_passed()) {
      throw SolveInterrupted(InterruptReason::kDeadline);
    }
  }

  /// Unstrided checkpoint for solve entry and other coarse placements:
  /// always reads the clock when a deadline is set, so an already-expired
  /// deadline fires before any DP work starts.
  void poll_now() const {
    maybe_trip();
    if (cancel_requested()) {
      throw SolveInterrupted(InterruptReason::kCancelled);
    }
    if (preempt_requested()) {
      throw SolveInterrupted(InterruptReason::kPreempted);
    }
    if (deadline_passed()) {
      throw SolveInterrupted(InterruptReason::kDeadline);
    }
  }

 private:
  /// Counts down the trip hook; sticks the cancel flag when it reaches
  /// zero so every worker of the solve unwinds, not just the poller that
  /// hit the boundary.  One relaxed load on the untripped fast path.
  void maybe_trip() const noexcept {
    if (trip_remaining_.load(std::memory_order_relaxed) < 0) return;
    if (trip_remaining_.fetch_sub(1, std::memory_order_relaxed) == 0) {
      cancelled_.store(true, std::memory_order_relaxed);
    }
  }

  /// `mutable`: poll() is const for the solvers, but the trip hook counts
  /// down inside it and latches the cancel flag when it fires.
  mutable std::atomic<bool> cancelled_{false};
  std::atomic<bool> preempted_{false};
  /// Deadline as steady-clock nanoseconds since the clock epoch; 0 means
  /// no deadline (the epoch itself is unreachable for a running process).
  std::atomic<std::int64_t> deadline_ns_{0};
  /// Test/chaos poll-trip countdown; negative = disabled.
  mutable std::atomic<std::int64_t> trip_remaining_{-1};
};

/// Null-tolerant checkpoint used by the DP drivers: a solve without a
/// token pays one predictable branch per checkpoint.
inline void poll_cancellation(const CancelToken* token) {
  if (token != nullptr) token->poll();
}

}  // namespace chainckpt::core
