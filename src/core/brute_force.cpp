#include "core/brute_force.hpp"

#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace chainckpt::core {

BruteForceResult brute_force_optimize(const chain::TaskChain& chain,
                                      const platform::CostModel& costs,
                                      const BruteForceOptions& options) {
  const std::size_t n = chain.size();
  CHAINCKPT_REQUIRE(n >= 1, "brute force needs a non-empty chain");
  CHAINCKPT_REQUIRE(n <= options.max_n,
                    "chain too long for exhaustive search");

  std::vector<plan::Action> allowed{plan::Action::kNone};
  if (options.allow_partial) allowed.push_back(plan::Action::kPartialVerif);
  if (options.allow_guaranteed)
    allowed.push_back(plan::Action::kGuaranteedVerif);
  if (options.allow_memory)
    allowed.push_back(plan::Action::kMemoryCheckpoint);
  if (options.allow_disk) allowed.push_back(plan::Action::kDiskCheckpoint);

  const analysis::PlanEvaluator evaluator(chain, costs);

  plan::ResiliencePlan current(n);
  BruteForceResult best{current, std::numeric_limits<double>::infinity(), 0};

  // Odometer over the n-1 interior positions (the final position is always
  // the mandatory V* + C_M + C_D bundle).
  std::vector<std::size_t> digits(n >= 1 ? n - 1 : 0, 0);
  while (true) {
    for (std::size_t i = 0; i < digits.size(); ++i)
      current.set_action(i + 1, allowed[digits[i]]);
    const double value = evaluator.expected_makespan(current, options.mode);
    ++best.plans_evaluated;
    if (value < best.expected_makespan) {
      best.expected_makespan = value;
      best.plan = current;
    }
    // Advance the odometer.
    std::size_t pos = 0;
    while (pos < digits.size() && ++digits[pos] == allowed.size()) {
      digits[pos] = 0;
      ++pos;
    }
    if (pos == digits.size()) break;
  }
  return best;
}

}  // namespace chainckpt::core
