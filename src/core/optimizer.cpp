#include "core/optimizer.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "core/dp_partial.hpp"
#include "core/dp_single_level.hpp"
#include "core/dp_two_level.hpp"
#include "core/heuristics.hpp"

namespace chainckpt::core {

std::string to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kAD:
      return "AD";
    case Algorithm::kADVstar:
      return "ADV*";
    case Algorithm::kADMVstar:
      return "ADMV*";
    case Algorithm::kADMV:
      return "ADMV";
    case Algorithm::kPeriodic:
      return "Periodic";
    case Algorithm::kDaly:
      return "Daly";
  }
  throw std::invalid_argument("unknown algorithm enum value");
}

Algorithm algorithm_from_string(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "ad") return Algorithm::kAD;
  if (lower == "adv*" || lower == "adv") return Algorithm::kADVstar;
  if (lower == "admv*" || lower == "admv_star")
    return Algorithm::kADMVstar;
  if (lower == "admv") return Algorithm::kADMV;
  if (lower == "periodic") return Algorithm::kPeriodic;
  if (lower == "daly") return Algorithm::kDaly;
  throw std::invalid_argument("unknown algorithm: " + name);
}

OptimizationResult optimize(Algorithm algorithm,
                            const chain::TaskChain& chain,
                            const platform::CostModel& costs) {
  switch (algorithm) {
    case Algorithm::kAD:
      return optimize_single_level(chain, costs,
                                   {.allow_extra_verifications = false});
    case Algorithm::kADVstar:
      return optimize_single_level(chain, costs);
    case Algorithm::kADMVstar:
      return optimize_two_level(chain, costs);
    case Algorithm::kADMV:
      return optimize_with_partial(chain, costs);
    case Algorithm::kPeriodic:
      return optimize_periodic(chain, costs);
    case Algorithm::kDaly:
      return optimize_daly(chain, costs);
  }
  throw std::invalid_argument("unknown algorithm enum value");
}

OptimizationResult optimize(Algorithm algorithm, const DpContext& ctx,
                            TableLayout layout) {
  switch (algorithm) {
    case Algorithm::kAD:
      return optimize_single_level(ctx,
                                   {.allow_extra_verifications = false});
    case Algorithm::kADVstar:
      return optimize_single_level(ctx);
    case Algorithm::kADMVstar:
      return optimize_two_level(ctx, layout);
    case Algorithm::kADMV:
      return optimize_with_partial(ctx, layout);
    case Algorithm::kPeriodic:
      return optimize_periodic(ctx.chain(), ctx.costs());
    case Algorithm::kDaly:
      return optimize_daly(ctx.chain(), ctx.costs());
  }
  throw std::invalid_argument("unknown algorithm enum value");
}

std::vector<Algorithm> paper_algorithms() {
  return {Algorithm::kADVstar, Algorithm::kADMVstar, Algorithm::kADMV};
}

}  // namespace chainckpt::core
