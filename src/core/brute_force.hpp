// Exhaustive-search reference optimizer.
//
// Enumerates every plan over the allowed action set and scores it with the
// analytic evaluator.  Exponential (up to 5^(n-1) plans), so usable only
// for small n -- which is exactly its purpose: an independent optimality
// oracle for the dynamic programs in the test suite, and a sanity tool for
// users extending the cost model.
#pragma once

#include <cstddef>

#include "analysis/evaluator.hpp"
#include "core/dp_context.hpp"

namespace chainckpt::core {

struct BruteForceOptions {
  bool allow_guaranteed = true;  ///< interior V* allowed
  bool allow_memory = true;      ///< interior V*+C_M allowed
  bool allow_disk = true;        ///< interior V*+C_M+C_D allowed
  bool allow_partial = false;    ///< interior V allowed
  /// Formula mode for scoring.  To compare against ADMV use
  /// kPartialFramework (the DP scores partial-free segments with the
  /// Section III-B terminal rule); to compare against ADV*/ADMV* use
  /// kTwoLevel.
  analysis::FormulaMode mode = analysis::FormulaMode::kAuto;
  /// Hard cap on n; the search visits (#actions)^(n-1) plans.
  std::size_t max_n = 14;
};

struct BruteForceResult {
  plan::ResiliencePlan plan;
  double expected_makespan = 0.0;
  std::size_t plans_evaluated = 0;
};

BruteForceResult brute_force_optimize(const chain::TaskChain& chain,
                                      const platform::CostModel& costs,
                                      const BruteForceOptions& options = {});

}  // namespace chainckpt::core
