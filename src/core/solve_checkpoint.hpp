// Resumable partial progress for the multi-level DP solves.
//
// The paper's thesis -- two-level checkpointing lets a long computation
// survive interruption at bounded re-execution cost -- applies to the
// solver itself: an ADMV solve is O(n^6), and a service that cancels,
// preempts, or deadline-expires one should not pay the whole solve again
// when the job comes back.  SolveCheckpoint is the solver's own
// checkpoint: the level-DP engine (detail::run_level_dp_impl) works in
// independent d1 slabs, and every slab that completes its full
// (d1, j)-frontier commits its rows of the E_verif/E_mem tables.  When a
// CancelToken fires mid-run, the completed slabs stay committed here; a
// later run on the same checkpoint skips them and re-executes only the
// unfinished ones.  The cheap sequential tail (the O(n^2) E_disk pass and
// plan extraction) always reruns.
//
// Determinism: slabs are fully independent (each writes only its own
// rows), so a resumed solve's tables -- and therefore its plan and
// objective -- are bit-identical to an uninterrupted solve's.  The
// per-slab ScanStats of the pruned scan mode are committed with the slab,
// so the final counters are identical too.  tests/core/
// solve_checkpoint_test.cpp pins both by interrupting at every checkpoint
// boundary.
//
// Ownership: a checkpoint belongs to exactly one solve at a time (the DP
// mutates it without internal locking beyond the slab-commit mutex).
// core::BatchSolver keeps interrupted checkpoints keyed alongside its
// cached tables and checks one out per solve_job(); standalone callers
// attach one through DpContext::set_checkpoint().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/monotone_scanner.hpp"

namespace chainckpt::core {

enum class TableLayout;

namespace detail {
struct LevelTables;
}

class SolveCheckpoint {
 public:
  /// Mid-slab progress of ONE split slab (intra-slab parallelism, see
  /// run_level_dp_impl): slabs tall enough to be row-split across workers
  /// can dominate a run's critical path, so the driver commits a granule
  /// every few j-steps instead of only at slab exit.  A granule freezes
  /// everything the j-loop carries between steps: the frontier j_done,
  /// the slab scratch plane prefix (the E_verif(d1, m1, v1) rows the
  /// later steps re-read), the MonotoneScanner row states, and the
  /// running scan totals.  The E_mem/argmin entries for j <= j_done
  /// already live in the checkpoint's tables.  Split slabs run one at a
  /// time, so a single slot suffices; commit_slab() drops it.
  ///
  /// Validity is independent of worker count, chunking, and SIMD tier
  /// (all bitwise-identical by contract): a resumed run may use any of
  /// them.  A resumed run that does not split slab d1 simply ignores the
  /// granule and recomputes the slab -- same bits either way.
  struct SlabGranule {
    std::size_t d1 = 0;
    /// Every j <= j_done of the slab is fully computed (tables + plane).
    std::size_t j_done = 0;
    /// Scratch plane rows m1 in [d1, j_done), stride n + 1, copied from
    /// offset d1 * stride of the live plane.
    std::vector<double> plane_rows;
    /// Per-row v1-scan states for m1 in [d1, j_done), index 0 = row d1;
    /// empty when the run didn't window the v1 scans.
    std::vector<MonotoneScanner::RowSnapshot> v1_rows;
    /// E_mem chain row state; meaningful only under a windowed mem chain.
    MonotoneScanner::RowSnapshot mem_row;
    /// Whether mem_row was captured (the run windowed the mem chain).
    bool has_mem_row = false;
    /// Slab scan totals accumulated up to j_done -- running totals, not
    /// a delta; the resumed slab seeds its counters from this.
    ScanStats scan;
  };

  SolveCheckpoint();
  ~SolveCheckpoint();

  SolveCheckpoint(const SolveCheckpoint&) = delete;
  SolveCheckpoint& operator=(const SolveCheckpoint&) = delete;

  /// Called by the DP driver at solve entry.  Reuses the stored tables
  /// and slab flags when the run shape matches the stored progress;
  /// otherwise discards the progress and allocates fresh tables.  Resets
  /// the per-run counters either way.
  void begin_run(std::size_t n, TableLayout layout, bool keep_verif_values,
                 ScanMode scan_mode);

  /// The level tables the run writes into; valid after begin_run().
  detail::LevelTables& tables() noexcept { return *tables_; }

  bool slab_done(std::size_t d1) const noexcept {
    return slab_done_[d1] != 0;
  }

  /// Commits slab d1: its table rows are final and a future run may skip
  /// it.  `slab_scan` carries the slab's pruning counters (zeros in dense
  /// mode) so resumed totals match uninterrupted ones.  Thread-safe
  /// against concurrent commits from other slabs.
  void commit_slab(std::size_t d1, const ScanStats& slab_scan);

  /// Counts a slab skipped because an earlier run already committed it.
  /// Thread-safe.
  void note_skipped_slab();

  /// Stores mid-slab progress for a split slab (replacing any earlier
  /// granule -- the new one strictly supersedes it).  Thread-safe, though
  /// split slabs run sequentially by construction.
  void commit_granule(SlabGranule granule);

  /// The stored granule for slab d1, or nullptr when none matches.
  /// A hit marks the current run as granule-resumed
  /// (last_run_resumed_from_granule()).  The granule stays stored -- and
  /// keeps protecting progress up to its j_done -- until commit_slab(d1)
  /// retires it.
  const SlabGranule* take_granule(std::size_t d1) noexcept;

  /// Granule commits accumulated across every run of this solve shape.
  std::size_t granules_committed() const noexcept {
    return granules_committed_;
  }
  /// True when the most recent run resumed a slab mid-way from a granule.
  bool last_run_resumed_from_granule() const noexcept {
    return last_run_resumed_from_granule_;
  }

  /// ScanStats accumulated over every committed slab (all runs).
  const ScanStats& scan() const noexcept { return scan_; }

  std::size_t slabs_total() const noexcept { return slab_done_.size(); }
  std::size_t slabs_completed() const noexcept;
  /// True once at least one slab is committed -- the threshold for a
  /// checkpoint being worth storing.
  bool has_progress() const noexcept { return slabs_completed() > 0; }

  /// Slabs executed / skipped by the most recent run (begin_run resets).
  std::size_t last_run_slabs_executed() const noexcept {
    return last_run_executed_;
  }
  std::size_t last_run_slabs_skipped() const noexcept {
    return last_run_skipped_;
  }
  /// True when the most recent begin_run() found matching stored
  /// progress to resume from (even if zero slabs had completed).
  bool last_run_resumed() const noexcept { return last_run_resumed_; }

  /// Bytes held by the stored tables + flags (what a store budget
  /// meters).
  std::size_t resident_bytes() const noexcept;

 private:
  std::shared_ptr<detail::LevelTables> tables_;
  std::vector<std::uint8_t> slab_done_;
  ScanStats scan_;
  SlabGranule granule_;
  bool granule_valid_ = false;
  std::size_t granules_committed_ = 0;
  bool last_run_resumed_from_granule_ = false;
  /// Shape of the stored progress; a mismatch on begin_run() resets.
  std::size_t n_ = 0;
  TableLayout layout_;
  bool keep_verif_values_ = false;
  ScanMode scan_mode_;
  bool valid_ = false;

  std::size_t last_run_executed_ = 0;
  std::size_t last_run_skipped_ = 0;
  bool last_run_resumed_ = false;

  /// Serializes commit_slab()/note_skipped_slab() across slab workers.
  std::mutex commit_mutex_;
};

}  // namespace chainckpt::core
