#include "core/solve_checkpoint.hpp"

#include <numeric>

#include "core/level_dp.hpp"

namespace chainckpt::core {

SolveCheckpoint::SolveCheckpoint()
    : layout_(TableLayout::kRowMajor), scan_mode_(ScanMode::kDense) {}

SolveCheckpoint::~SolveCheckpoint() = default;

void SolveCheckpoint::begin_run(std::size_t n, TableLayout layout,
                                bool keep_verif_values, ScanMode scan_mode) {
  const bool matches = valid_ && n_ == n && layout_ == layout &&
                       keep_verif_values_ == keep_verif_values &&
                       scan_mode_ == scan_mode;
  last_run_executed_ = 0;
  last_run_skipped_ = 0;
  last_run_resumed_ = matches;
  last_run_resumed_from_granule_ = false;
  if (matches) return;
  // Shape change (or first run): any stored progress is for a different
  // solve -- drop it.  Callers keying checkpoints by workload (see
  // core::BatchSolver) never hit this reset on a resume.
  tables_ = std::make_shared<detail::LevelTables>(n, layout,
                                                  keep_verif_values);
  slab_done_.assign(n, 0);
  scan_ = ScanStats{};
  granule_ = SlabGranule{};
  granule_valid_ = false;
  granules_committed_ = 0;
  n_ = n;
  layout_ = layout;
  keep_verif_values_ = keep_verif_values;
  scan_mode_ = scan_mode;
  valid_ = true;
}

void SolveCheckpoint::commit_slab(std::size_t d1,
                                  const ScanStats& slab_scan) {
  const std::lock_guard<std::mutex> lock(commit_mutex_);
  slab_done_[d1] = 1;
  scan_ += slab_scan;
  ++last_run_executed_;
  if (granule_valid_ && granule_.d1 == d1) {
    // The slab this granule protected is fully committed; retire it.
    granule_ = SlabGranule{};
    granule_valid_ = false;
  }
}

void SolveCheckpoint::commit_granule(SlabGranule granule) {
  const std::lock_guard<std::mutex> lock(commit_mutex_);
  granule_ = std::move(granule);
  granule_valid_ = true;
  ++granules_committed_;
}

const SolveCheckpoint::SlabGranule* SolveCheckpoint::take_granule(
    std::size_t d1) noexcept {
  if (!granule_valid_ || granule_.d1 != d1) return nullptr;
  last_run_resumed_from_granule_ = true;
  return &granule_;
}

void SolveCheckpoint::note_skipped_slab() {
  const std::lock_guard<std::mutex> lock(commit_mutex_);
  ++last_run_skipped_;
}

std::size_t SolveCheckpoint::slabs_completed() const noexcept {
  return static_cast<std::size_t>(
      std::accumulate(slab_done_.begin(), slab_done_.end(), std::size_t{0}));
}

std::size_t SolveCheckpoint::resident_bytes() const noexcept {
  std::size_t bytes = util::vector_bytes(slab_done_) +
                      util::vector_bytes(granule_.plane_rows) +
                      util::vector_bytes(granule_.v1_rows);
  if (tables_ != nullptr) {
    const detail::LevelTables& t = *tables_;
    bytes += util::vector_bytes(t.everif) + util::vector_bytes(t.best_v1) +
             util::vector_bytes(t.emem) + util::vector_bytes(t.best_m1) +
             util::vector_bytes(t.edisk) + util::vector_bytes(t.best_d1);
  }
  return bytes;
}

}  // namespace chainckpt::core
