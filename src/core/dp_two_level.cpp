#include "core/dp_two_level.hpp"

#include <cstdint>
#include <memory>
#include <vector>

#include "core/level_dp.hpp"

namespace chainckpt::core {

OptimizationResult optimize_two_level(const chain::TaskChain& chain,
                                      const platform::CostModel& costs,
                                      TableLayout layout) {
  const DpContext ctx(chain, costs, DpContext::kDefaultMaxN,
                      /*build_row_tables=*/false);
  return optimize_two_level(ctx, layout);
}

OptimizationResult optimize_two_level(const DpContext& ctx,
                                      TableLayout layout) {
  // Entry checkpoint: a token that fired while the job sat in a queue
  // aborts before the O(n^3) tables are even allocated.  The per-step
  // checkpoints live in run_level_dp_impl.
  if (const CancelToken* token = ctx.cancel_token()) token->poll_now();
  // ADMV* never re-reads E_verif values (plan extraction needs only the
  // argmin tables), so skip the O(n^3) value table entirely.  With a
  // checkpoint attached the tables live inside it so committed slabs
  // survive an interruption; otherwise they are plain solve-local state.
  SolveCheckpoint* ckpt = ctx.checkpoint();
  std::unique_ptr<detail::LevelTables> local;
  if (ckpt != nullptr) {
    ckpt->begin_run(ctx.n(), layout, /*keep_verif_values=*/false,
                    ctx.scan_mode());
  } else {
    local = std::make_unique<detail::LevelTables>(
        ctx.n(), layout, /*keep_verif_values=*/false);
  }
  detail::LevelTables& tables = ckpt != nullptr ? ckpt->tables() : *local;

  const auto& seg = ctx.seg_tables();
  const auto& cm = ctx.costs();
  // Paper Eq. (4) fused over the hoisted SoA columns: for the verified
  // segment (v1, j] in context (d1, m1),
  //   E = es*(x + V*) + b*(R_D + E_mem) + c*E_verif + d*R_M
  // where exvg = es*(x + V*) and b/c/d depend only on (v1, j) and are read
  // at unit stride.
  const auto scan = [&](std::size_t d1, std::size_t m1, std::size_t lo,
                        std::size_t hi, std::size_t j, double emem_at_m1,
                        const double* everif_row, double& best,
                        std::int32_t& best_arg) {
    const double* exvg = seg.exvg_col(j);
    const double* b = seg.b_col(j);
    const double* c = seg.c_col(j);
    const double* d = seg.d_col(j);
    const double k1 = cm.r_disk_after(d1) + emem_at_m1;
    const double k2 = cm.r_mem_after(m1);
    for (std::size_t v1 = lo; v1 < hi; ++v1) {
      const double ev = everif_row[v1];
      const double candidate =
          ev + (exvg[v1] + b[v1] * k1 + c[v1] * ev + d[v1] * k2);
      if (candidate < best) {
        best = candidate;
        best_arg = static_cast<std::int32_t>(v1);
      }
    }
  };

  ScanStats scan_stats;
  detail::run_level_dp(ctx, tables, scan, &scan_stats);

  const auto no_partials = [](std::size_t, std::size_t, std::size_t,
                              std::size_t) {
    return std::vector<std::size_t>{};
  };
  return OptimizationResult{detail::extract_plan(ctx, tables, no_partials),
                            tables.edisk[ctx.n()], scan_stats};
}

}  // namespace chainckpt::core
