#include "core/dp_two_level.hpp"

#include <cstdint>
#include <memory>
#include <vector>

#include "core/level_dp.hpp"

namespace chainckpt::core {

OptimizationResult optimize_two_level(const chain::TaskChain& chain,
                                      const platform::CostModel& costs,
                                      TableLayout layout) {
  const DpContext ctx(chain, costs, DpContext::kDefaultMaxN,
                      /*build_row_tables=*/false);
  return optimize_two_level(ctx, layout);
}

namespace {

/// The solve body, instantiated once per SIMD kernel tier K so the fused
/// Eq. (4) scan compiles straight onto K::affine with no dispatch inside
/// the step (see run_level_dp_impl's codegen note).  K = ScalarKernels
/// reproduces the historic loop token for token; the vector tiers are
/// bitwise identical to it by the kernel determinism contract.
template <typename K>
OptimizationResult optimize_two_level_impl(const DpContext& ctx,
                                           TableLayout layout) {
  // ADMV* never re-reads E_verif values (plan extraction needs only the
  // argmin tables), so skip the O(n^3) value table entirely.  With a
  // checkpoint attached the tables live inside it so committed slabs
  // survive an interruption; otherwise they are plain solve-local state.
  SolveCheckpoint* ckpt = ctx.checkpoint();
  std::unique_ptr<detail::LevelTables> local;
  if (ckpt != nullptr) {
    ckpt->begin_run(ctx.n(), layout, /*keep_verif_values=*/false,
                    ctx.scan_mode());
  } else {
    local = std::make_unique<detail::LevelTables>(
        ctx.n(), layout, /*keep_verif_values=*/false);
  }
  detail::LevelTables& tables = ckpt != nullptr ? ckpt->tables() : *local;

  const auto& seg = ctx.seg_tables();
  const auto& cm = ctx.costs();
  // Paper Eq. (4) fused over the hoisted SoA columns: for the verified
  // segment (v1, j] in context (d1, m1),
  //   E = es*(x + V*) + b*(R_D + E_mem) + c*E_verif + d*R_M
  // where exvg = es*(x + V*) and b/c/d depend only on (v1, j) and are read
  // at unit stride -- exactly the argmin_affine kernel shape.
  const auto scan = [&](std::size_t d1, std::size_t m1, std::size_t lo,
                        std::size_t hi, std::size_t j, double emem_at_m1,
                        const double* everif_row, double& best,
                        std::int32_t& best_arg) {
    const double k1 = cm.r_disk_after(d1) + emem_at_m1;
    const double k2 = cm.r_mem_after(m1);
    K::affine(everif_row, seg.exvg_col(j), seg.b_col(j), seg.c_col(j),
              seg.d_col(j), k1, k2, lo, hi, best, best_arg);
  };

  ScanStats scan_stats;
  detail::run_level_dp<K>(ctx, tables, scan, &scan_stats);

  const auto no_partials = [](std::size_t, std::size_t, std::size_t,
                              std::size_t) {
    return std::vector<std::size_t>{};
  };
  return OptimizationResult{detail::extract_plan(ctx, tables, no_partials),
                            tables.edisk[ctx.n()], scan_stats};
}

}  // namespace

OptimizationResult optimize_two_level(const DpContext& ctx,
                                      TableLayout layout) {
  // Entry checkpoint: a token that fired while the job sat in a queue
  // aborts before the O(n^3) tables are even allocated.  The per-step
  // checkpoints live in run_level_dp_impl.
  if (const CancelToken* token = ctx.cancel_token()) token->poll_now();
  switch (ctx.simd_tier()) {
    case simd::SimdTier::kAvx512:
      return optimize_two_level_impl<simd::Avx512Kernels>(ctx, layout);
    case simd::SimdTier::kAvx2:
      return optimize_two_level_impl<simd::Avx2Kernels>(ctx, layout);
    default:
      return optimize_two_level_impl<simd::ScalarKernels>(ctx, layout);
  }
}

}  // namespace chainckpt::core
