#include "core/dp_two_level.hpp"

#include <vector>

#include "core/level_dp.hpp"

namespace chainckpt::core {

OptimizationResult optimize_two_level(const chain::TaskChain& chain,
                                      const platform::CostModel& costs) {
  const DpContext ctx(chain, costs);
  detail::LevelTables tables(ctx.n());

  const double lambda_f = ctx.lambda_f();
  const auto& cm = ctx.costs();
  // Paper Eq. (4): the verified segment (v1, v2] in context (d1, m1).
  const auto segment = [&](std::size_t d1, std::size_t m1, std::size_t v1,
                           std::size_t v2, double everif_at_v1,
                           double emem_at_m1) {
    const analysis::LeftContext left{cm.r_disk_after(d1), cm.r_mem_after(m1),
                                     emem_at_m1, everif_at_v1};
    return analysis::expected_verified_segment(
        ctx.interval(v1, v2), lambda_f, cm.v_guaranteed_after(v2), left);
  };

  detail::run_level_dp(ctx, tables, segment);

  const auto no_partials = [](std::size_t, std::size_t, std::size_t,
                              std::size_t) {
    return std::vector<std::size_t>{};
  };
  return OptimizationResult{detail::extract_plan(ctx, tables, no_partials),
                            tables.edisk[ctx.n()]};
}

}  // namespace chainckpt::core
