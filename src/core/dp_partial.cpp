#include "core/dp_partial.hpp"

#include <cstdint>
#include <limits>
#include <vector>

#include "core/level_dp.hpp"

namespace chainckpt::core {

namespace {

/// The right-to-left inner DP over one verified segment (v1, v2].
/// Fills ep[p] = E_partial(d1,m1,v1,p,v2) and next[p] = argmin p2 for
/// p in [v1, v2); er[p] tracks E_right along the optimal chain.
/// Buffers are indexed by absolute position and must span [0, v2].
struct PartialSegmentSolver {
  const DpContext& ctx;

  void solve(std::size_t v1, std::size_t v2,
             const analysis::LeftContext& left, std::vector<double>& ep,
             std::vector<double>& er, std::vector<std::int32_t>& next) const {
    const auto& cm = ctx.costs();
    const double lf = ctx.lambda_f();
    const double g = cm.miss();
    const double v_at_v2 = cm.v_partial_after(v2);
    const double vstar_at_v2 = cm.v_guaranteed_after(v2);

    er[v2] = left.r_mem;  // E_right(..., v2, v2) = R_M
    for (std::size_t p1 = v2; p1-- > v1;) {
      // Terminal choice p2 = v2: the guaranteed verification closes the
      // segment; upgrade the verification cost by e^{(lf+ls)W}(V* - V).
      const analysis::Interval tail = ctx.interval(p1, v2);
      double best = analysis::e_partial_terminal(tail, lf, v_at_v2,
                                                 vstar_at_v2, g, left);
      std::size_t best_p2 = v2;
      for (std::size_t p2 = p1 + 1; p2 < v2; ++p2) {
        const analysis::Interval seg = ctx.interval(p1, p2);
        const double candidate =
            analysis::e_minus_segment(seg, lf, cm.v_partial_after(p2), g,
                                      left, er[p2]) *
                ctx.table().exp_fs(p2, v2) +
            ep[p2];
        if (candidate < best) {
          best = candidate;
          best_p2 = p2;
        }
      }
      ep[p1] = best;
      next[p1] = static_cast<std::int32_t>(best_p2);
      // E_right along the chosen chain: the error that slipped past the
      // partial verification at p1 is next screened at best_p2.
      const analysis::Interval seg = ctx.interval(p1, best_p2);
      const double v_at_next =
          best_p2 == v2 ? v_at_v2 : cm.v_partial_after(best_p2);
      er[p1] = analysis::e_right_step(seg, lf, v_at_next, g, left.r_disk,
                                      left.r_mem, left.e_mem, er[best_p2]);
    }
  }
};

}  // namespace

OptimizationResult optimize_with_partial(const chain::TaskChain& chain,
                                         const platform::CostModel& costs) {
  const DpContext ctx(chain, costs);
  const std::size_t n = ctx.n();
  detail::LevelTables tables(ctx.n());
  const PartialSegmentSolver solver{ctx};
  const auto& cm = ctx.costs();

  // Per-thread scratch would need thread-local storage; allocating the
  // three O(n) buffers per segment call is cheap relative to the O(n^2)
  // work each call performs.
  const auto segment = [&](std::size_t d1, std::size_t m1, std::size_t v1,
                           std::size_t v2, double everif_at_v1,
                           double emem_at_m1) {
    const analysis::LeftContext left{cm.r_disk_after(d1), cm.r_mem_after(m1),
                                     emem_at_m1, everif_at_v1};
    std::vector<double> ep(v2 + 1, 0.0);
    std::vector<double> er(v2 + 1, 0.0);
    std::vector<std::int32_t> next(v2 + 1, -1);
    solver.solve(v1, v2, left, ep, er, next);
    return ep[v1];
  };

  detail::run_level_dp(ctx, tables, segment);

  // Partial positions of a winning segment are re-derived from the (now
  // final) E_verif / E_mem tables: same inputs, same deterministic inner
  // DP, same argmin chain.
  const auto partials = [&](std::size_t d1, std::size_t m1, std::size_t v1,
                            std::size_t v2) {
    const analysis::LeftContext left{
        cm.r_disk_after(d1), cm.r_mem_after(m1), tables.emem_at(d1, m1),
        tables.everif_at(d1, m1, v1)};
    std::vector<double> ep(v2 + 1, 0.0);
    std::vector<double> er(v2 + 1, 0.0);
    std::vector<std::int32_t> next(v2 + 1, -1);
    solver.solve(v1, v2, left, ep, er, next);
    std::vector<std::size_t> positions;
    for (std::size_t p = static_cast<std::size_t>(next[v1]); p < v2;
         p = static_cast<std::size_t>(next[p])) {
      positions.push_back(p);
    }
    return positions;
  };

  return OptimizationResult{detail::extract_plan(ctx, tables, partials),
                            tables.edisk[n]};
}

}  // namespace chainckpt::core
