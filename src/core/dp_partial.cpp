#include "core/dp_partial.hpp"

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/cancellation.hpp"
#include "core/level_dp.hpp"
#include "util/arena.hpp"

namespace chainckpt::core {

namespace {

/// Scratch arenas for the inner DP, sized once per worker thread.  The
/// solver used to heap-allocate its buffers per segment call -- O(n^3)
/// allocations per run -- which dominated the malloc profile.  Deliberate
/// tradeoff: the arenas live in thread_local storage and are only ever
/// grown, so the O(n^2)-per-thread footprint of the largest chain stays
/// resident between solves.  Long-lived embeddings reclaim it through the
/// arena pool (util::release_all_arenas, reached via
/// core::BatchSolver::release_scratch).
struct PartialScratch final : util::ArenaBlock {
  ~PartialScratch() override { unregister(); }

  // O(n) buffers of the right-to-left recursion.
  std::vector<double> ep;
  std::vector<double> er;
  std::vector<double> cand;
  std::vector<std::int32_t> next;
  // O(n^2) fused coefficient planes, rebuilt once per (d1, m1, j) scan and
  // shared by all of its v1 solves (see build_planes).
  std::vector<double> pp;
  std::vector<double> qq;
  std::vector<double> rr;
  std::vector<double> t0;

  void ensure(std::size_t n) {
    if (ep.size() < n + 1) {
      ep.resize(n + 1);
      er.resize(n + 1);
      cand.resize(n + 1);
      next.resize(n + 1);
      t0.resize(n + 1);
      pp.resize((n + 1) * (n + 1));
      qq.resize((n + 1) * (n + 1));
      rr.resize((n + 1) * (n + 1));
    }
  }

  std::size_t resident_bytes() const noexcept override {
    return util::vector_bytes(ep) + util::vector_bytes(er) +
           util::vector_bytes(cand) + util::vector_bytes(next) +
           util::vector_bytes(pp) + util::vector_bytes(qq) +
           util::vector_bytes(rr) + util::vector_bytes(t0);
  }
  void release() noexcept override {
    util::free_vector(ep);
    util::free_vector(er);
    util::free_vector(cand);
    util::free_vector(next);
    util::free_vector(pp);
    util::free_vector(qq);
    util::free_vector(rr);
    util::free_vector(t0);
  }
};

PartialScratch& partial_scratch() {
  static thread_local PartialScratch scratch;
  return scratch;
}

/// The right-to-left inner DP over one verified segment (v1, v2].
///
/// For a fixed scan context (d1, m1, v2) the candidate score of a hop
/// (p1, p2] decomposes as
///
///   E^-(p1,p2) * e^{(lf+ls) W_{p2,v2}}
///     = [es*(x+V) + b*K1 + d*RMh] * fs   (left-context terms, fixed)
///     + [c * fs] * E_verif               (varies with v1)
///     + [d*g * fs] * E_right(p2)         (varies along the recursion)
///
/// with K1 = R_D + E_mem and RMh = (1-g) R_M.  build_planes materializes
/// the three bracketed planes P/Q/R (plus the terminal base T0) once per
/// scan; each of the scan's v1 solves then runs its O(len^2) hot loop over
/// just five unit-stride streams:
///
///   cand[p2] = P[p2] + Q[p2]*E_verif + R[p2]*er[p2] + ep[p2]
///
/// The planes are amortized: a scan costs O((j-m1)^2) to prepare and
/// O((j-m1)^3) to solve.
struct PartialSegmentSolver {
  const DpContext& ctx;

  /// Fills the scratch planes for the scan context (k1, rm_hit, r_mem)
  /// with right endpoint j, covering hop rows p1 in [lo, j).
  void build_planes(std::size_t lo, std::size_t j, double k1, double rm_hit,
                    double r_mem, PartialScratch& s) const {
    const auto& seg = ctx.seg_tables();
    const double g = ctx.costs().miss();
    const double vg_j = seg.vg_after(j);
    const double vp_j = seg.vp_after(j);
    const double* fs_to_j = seg.fs_col(j);
    const std::size_t stride = seg.n() + 1;
    for (std::size_t p1 = lo; p1 < j; ++p1) {
      const double* exv = seg.exv_row(p1);
      const double* b = seg.b_row(p1);
      const double* c = seg.c_row(p1);
      const double* d = seg.d_row(p1);
      double* pp = s.pp.data() + p1 * stride;
      double* qq = s.qq.data() + p1 * stride;
      double* rr = s.rr.data() + p1 * stride;
#ifdef _OPENMP
#pragma omp simd
#endif
      for (std::size_t p2 = p1 + 1; p2 < j; ++p2) {
        const double fs = fs_to_j[p2];
        pp[p2] = (exv[p2] + b[p2] * k1 + d[p2] * rm_hit) * fs;
        qq[p2] = c[p2] * fs;
        rr[p2] = d[p2] * (g * fs);
      }
      // Terminal choice p2 = j: the guaranteed verification closes the
      // segment; upgrade the verification cost by e^{(lf+ls)W}(V* - V).
      s.t0[p1] = exv[j] + b[j] * k1 + d[j] * (rm_hit + g * r_mem) +
                 fs_to_j[p1] * (vg_j - vp_j);
    }
  }

  /// Fills s.ep[p] = E_partial(d1,m1,v1,p,v2) and s.next[p] = argmin p2
  /// for p in [v1, v2); s.er[p] tracks E_right along the optimal chain.
  /// Requires build_planes for the same (scan context, v2) first.
  void solve(std::size_t v1, std::size_t v2,
             const analysis::LeftContext& left, PartialScratch& s) const {
    const auto& seg = ctx.seg_tables();
    const double g = ctx.costs().miss();
    const double* vp = seg.vp_data();
    const double* c_to_v2 = seg.c_col(v2);
    const double k1 = left.r_disk + left.e_mem;
    const double rm_hit = (1.0 - g) * left.r_mem;
    const double ev = left.e_verif;
    const std::size_t stride = seg.n() + 1;
    double* ep = s.ep.data();
    double* er = s.er.data();
    double* cand = s.cand.data();
    std::int32_t* next = s.next.data();

    er[v2] = left.r_mem;  // E_right(..., v2, v2) = R_M
    for (std::size_t p1 = v2; p1-- > v1;) {
      const double* pp = s.pp.data() + p1 * stride;
      const double* qq = s.qq.data() + p1 * stride;
      const double* rr = s.rr.data() + p1 * stride;
      // Candidate pass, elementwise over p2 so it vectorizes.  The simd
      // pragma asserts the scratch buffers don't alias (too many streams
      // for GCC's runtime alias checks).
#ifdef _OPENMP
#pragma omp simd
#endif
      for (std::size_t p2 = p1 + 1; p2 < v2; ++p2) {
        cand[p2] = pp[p2] + qq[p2] * ev + rr[p2] * er[p2] + ep[p2];
      }
      double best = s.t0[p1] + c_to_v2[p1] * ev;
      std::size_t best_p2 = v2;
      for (std::size_t p2 = p1 + 1; p2 < v2; ++p2) {
        if (cand[p2] < best) {
          best = cand[p2];
          best_p2 = p2;
        }
      }
      ep[p1] = best;
      next[p1] = static_cast<std::int32_t>(best_p2);
      // E_right along the chosen chain: the error that slipped past the
      // partial verification at p1 is next screened at best_p2 -- one
      // table-driven step, no expm1 (see SegmentTables).
      const double v_at_next = vp[best_p2];
      const double pf = seg.pf_row(p1)[best_p2];
      const double tl = seg.tl_row(p1)[best_p2];
      const double ef = seg.ef_row(p1)[best_p2];
      const double w = seg.w_row(p1)[best_p2];
      er[p1] = pf * (tl + k1) + (w + v_at_next + rm_hit + g * er[best_p2]) / ef;
    }
  }
};

}  // namespace

OptimizationResult optimize_with_partial(const chain::TaskChain& chain,
                                         const platform::CostModel& costs,
                                         TableLayout layout) {
  const DpContext ctx(chain, costs);
  return optimize_with_partial(ctx, layout);
}

OptimizationResult optimize_with_partial(const DpContext& ctx,
                                         TableLayout layout) {
  CHAINCKPT_REQUIRE(ctx.seg_tables().has_rows(),
                    "ADMV needs a context built with row tables");
  // Entry checkpoint; the per-(d1, j) checkpoints of the O(n^6) engine
  // run live in run_level_dp_impl, outside this solver's fused kernels
  // (whose call structure must not change -- see the scan note below).
  if (const CancelToken* token = ctx.cancel_token()) token->poll_now();
  const std::size_t n = ctx.n();
  // ADMV keeps the E_verif value table (its partial reconstruction reads
  // it), so a checkpoint holds everything a resumed run needs; without
  // one the tables are plain solve-local state.
  SolveCheckpoint* ckpt = ctx.checkpoint();
  std::unique_ptr<detail::LevelTables> local;
  if (ckpt != nullptr) {
    ckpt->begin_run(n, layout, /*keep_verif_values=*/true, ctx.scan_mode());
  } else {
    local = std::make_unique<detail::LevelTables>(n, layout);
  }
  detail::LevelTables& tables = ckpt != nullptr ? ckpt->tables() : *local;
  const PartialSegmentSolver solver{ctx};
  const auto& cm = ctx.costs();
  const double g = cm.miss();

  // Under kMemChainOnly (below) this kernel is invoked exactly once per
  // (d1, m1, j) step with [lo, hi) = [m1, j), so the planes are built
  // once per scan, exactly as the PartialScratch contract describes.  A
  // profile that windowed the v1 scans would re-enter the kernel per
  // step and would need to key the plane builds.
  const auto scan = [&](std::size_t d1, std::size_t m1, std::size_t lo,
                        std::size_t hi, std::size_t j, double emem_at_m1,
                        const double* everif_row, double& best,
                        std::int32_t& best_arg) {
    PartialScratch& scratch = partial_scratch();
    scratch.ensure(n);
    analysis::LeftContext left{cm.r_disk_after(d1), cm.r_mem_after(m1),
                               emem_at_m1, 0.0};
    solver.build_planes(m1, j, left.r_disk + left.e_mem,
                        (1.0 - g) * left.r_mem, left.r_mem, scratch);
    for (std::size_t v1 = lo; v1 < hi; ++v1) {
      left.e_verif = everif_row[v1];
      solver.solve(v1, j, left, scratch);
      const double candidate = everif_row[v1] + scratch.ep[v1];
      if (candidate < best) {
        best = candidate;
        best_arg = static_cast<std::int32_t>(v1);
      }
    }
  };

  // ADMV windows only its E_mem m1 chain: measured on the partial
  // segment costs, the v1 argmin stays pinned to m1 (nothing to prune)
  // and the fused inner solver's codegen is sensitive to the v1-scan
  // call structure (see LevelScanProfile).  K is pinned to ScalarKernels
  // for the same reason: each of its "candidates" is a full O(len^2)
  // inner DP, not a stream element, so there is nothing for the vector
  // argmin tiers to vectorize -- and re-instantiating the engine around
  // the fused solver for each tier would only risk its codegen.
  ScanStats scan_stats;
  detail::run_level_dp<simd::ScalarKernels>(
      ctx, tables, scan, &scan_stats,
      detail::LevelScanProfile::kMemChainOnly);

  // Partial positions of a winning segment are re-derived from the (now
  // final) E_verif / E_mem tables: same inputs, same deterministic inner
  // DP, same argmin chain.
  const auto partials = [&](std::size_t d1, std::size_t m1, std::size_t v1,
                            std::size_t v2) {
    poll_cancellation(ctx.cancel_token());  // one inner solve per segment
    PartialScratch& scratch = partial_scratch();
    scratch.ensure(n);
    const analysis::LeftContext left{
        cm.r_disk_after(d1), cm.r_mem_after(m1), tables.emem_at(d1, m1),
        tables.everif_at(d1, m1, v1)};
    solver.build_planes(v1, v2, left.r_disk + left.e_mem,
                        (1.0 - g) * left.r_mem, left.r_mem, scratch);
    solver.solve(v1, v2, left, scratch);
    std::vector<std::size_t> positions;
    for (std::size_t p = static_cast<std::size_t>(scratch.next[v1]); p < v2;
         p = static_cast<std::size_t>(scratch.next[p])) {
      positions.push_back(p);
    }
    return positions;
  };

  return OptimizationResult{detail::extract_plan(ctx, tables, partials),
                            tables.edisk[n], scan_stats};
}

}  // namespace chainckpt::core
