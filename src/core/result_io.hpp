// Byte-stream (de)serialization helpers for solver results.
//
// The network edge (src/net/) ships jobs and results between processes
// under a bitwise contract: a result decoded from the wire must compare
// bit-for-bit equal to the in-process OptimizationResult it came from --
// the same discipline scenario/spec_io.hpp applies to its %.17g JSON
// round trips, realized here the binary way: every double travels as its
// IEEE-754 bit pattern (no formatting, no rounding), every integer as
// fixed-width little-endian.  The helpers live in core (not net) because
// they serialize core types and because checkpoint/cluster serialization
// (the next ROADMAP item) will reuse the same primitives.
//
// Readers are hardened for untrusted input: every get_* bounds-checks
// against the buffer and returns false instead of reading past the end,
// and read_result() validates counts before allocating, so a hostile
// length field cannot drive an oversized allocation or an out-of-bounds
// read (the wire fuzz battery, tests/net/wire_fuzz_test.cpp, leans on
// this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dp_context.hpp"

namespace chainckpt::core {

// ----------------------------------------------------------- primitives
// Appenders: fixed-width little-endian, doubles as bit patterns.
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t value);
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value);
void put_f64(std::vector<std::uint8_t>& out, double value);
/// Length-prefixed (u32) byte string.
void put_string(std::vector<std::uint8_t>& out, const std::string& value);

// Readers: advance `offset` and return true only when the full value fit
// inside [data, data + size).  On false the offset is unspecified and the
// caller must abandon the buffer.
bool get_u8(const std::uint8_t* data, std::size_t size, std::size_t& offset,
            std::uint8_t& value);
bool get_u16(const std::uint8_t* data, std::size_t size, std::size_t& offset,
             std::uint16_t& value);
bool get_u32(const std::uint8_t* data, std::size_t size, std::size_t& offset,
             std::uint32_t& value);
bool get_u64(const std::uint8_t* data, std::size_t size, std::size_t& offset,
             std::uint64_t& value);
bool get_f64(const std::uint8_t* data, std::size_t size, std::size_t& offset,
             double& value);
/// Rejects declared lengths that exceed the bytes actually present, so a
/// hostile prefix cannot trigger a large allocation.
bool get_string(const std::uint8_t* data, std::size_t size,
                std::size_t& offset, std::string& value);

// ------------------------------------------------------------- results
/// Appends plan + objective + scan counters.  Field-complete: two results
/// that serialize identically are bitwise-equal OptimizationResults.
void append_result(std::vector<std::uint8_t>& out,
                   const OptimizationResult& result);

/// Inverse of append_result(); false on truncated or malformed bytes
/// (including a plan whose declared size exceeds the remaining buffer or
/// whose action bytes are out of the enum's range).
bool read_result(const std::uint8_t* data, std::size_t size,
                 std::size_t& offset, OptimizationResult& result);

/// Bitwise equality of two results: plans equal, objective and every scan
/// counter identical at the bit level (the loopback equivalence tests'
/// comparison; NaN-safe unlike operator== on doubles).
bool results_bitwise_equal(const OptimizationResult& a,
                           const OptimizationResult& b) noexcept;

}  // namespace chainckpt::core
