// Unified entry point over the paper's algorithms and the baselines.
#pragma once

#include <string>
#include <vector>

#include "core/dp_context.hpp"

namespace chainckpt::core {

enum class Algorithm {
  kAD,        ///< disk checkpoints only, no extra verifications (baseline)
  kADVstar,   ///< single-level + guaranteed verifications (paper "ADV*")
  kADMVstar,  ///< two-level + guaranteed verifications (paper "ADMV*")
  kADMV,      ///< two-level + partial verifications (paper "ADMV")
  kPeriodic,  ///< best periodic plan (heuristic baseline)
  kDaly,      ///< Young/Daly-style first-order plan (heuristic baseline)
};

/// Paper display names: "AD", "ADV*", "ADMV*", "ADMV", "Periodic", "Daly".
std::string to_string(Algorithm algorithm);
/// Accepts the display names (case-insensitive, '*' optional for the
/// starred algorithms is NOT accepted -- "ADV*" and "ADV" are different
/// only in the paper's naming; we require the exact starred spelling or
/// the lowercase aliases "ad", "adv", "admv_star", "admv", "periodic",
/// "daly").
Algorithm algorithm_from_string(const std::string& name);

/// Runs the requested optimizer.
OptimizationResult optimize(Algorithm algorithm,
                            const chain::TaskChain& chain,
                            const platform::CostModel& costs);

/// Runs the requested optimizer on a prebuilt context -- the
/// shared-SegmentTables path used by core::BatchSolver.  Results are
/// identical to the (chain, costs) overload.  kADMV requires a context
/// built with row tables (throws std::invalid_argument otherwise); the
/// heuristic baselines ignore the context's tables and read only its
/// chain and cost model.
OptimizationResult optimize(Algorithm algorithm, const DpContext& ctx,
                            TableLayout layout = TableLayout::kRowMajor);

/// The three algorithms compared in the paper's evaluation, in paper
/// order: { kADVstar, kADMVstar, kADMV }.
std::vector<Algorithm> paper_algorithms();

}  // namespace chainckpt::core
