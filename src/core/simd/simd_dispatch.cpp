#include "core/simd/simd_dispatch.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "core/simd/argmin_kernels.hpp"
#include "util/log.hpp"

namespace chainckpt::core::simd {

const char* tier_name(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kAvx512:
      return "avx512";
    case SimdTier::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

bool tier_compiled(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kAvx512:
      return detail::avx512_kernels_compiled();
    case SimdTier::kAvx2:
      return detail::avx2_kernels_compiled();
    default:
      return true;
  }
}

bool tier_supported(SimdTier tier) noexcept {
  if (!tier_compiled(tier)) return false;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  switch (tier) {
    case SimdTier::kAvx512:
      // The kernels use F (doubles, masks) and VL (256-bit int32 masked
      // blends in the fold kernel).
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512vl");
    case SimdTier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    default:
      return true;
  }
#else
  return tier == SimdTier::kScalar;
#endif
}

SimdTier detected_tier() noexcept {
  if (tier_supported(SimdTier::kAvx512)) return SimdTier::kAvx512;
  if (tier_supported(SimdTier::kAvx2)) return SimdTier::kAvx2;
  return SimdTier::kScalar;
}

bool parse_tier(const char* text, SimdTier& out) noexcept {
  if (text == nullptr) return false;
  if (std::strcmp(text, "auto") == 0) {
    out = detected_tier();
    return true;
  }
  if (std::strcmp(text, "avx512") == 0) {
    out = SimdTier::kAvx512;
    return true;
  }
  if (std::strcmp(text, "avx2") == 0) {
    out = SimdTier::kAvx2;
    return true;
  }
  if (std::strcmp(text, "scalar") == 0) {
    out = SimdTier::kScalar;
    return true;
  }
  return false;
}

SimdTier clamp_tier(SimdTier requested) noexcept {
  for (int t = static_cast<int>(requested);
       t > static_cast<int>(SimdTier::kScalar); --t) {
    if (tier_supported(static_cast<SimdTier>(t))) {
      return static_cast<SimdTier>(t);
    }
  }
  return SimdTier::kScalar;
}

namespace {

/// Resolves detected tier + CHAINCKPT_SIMD once, logging the outcome.
SimdTier resolve_active_tier() {
  const SimdTier detected = detected_tier();
  SimdTier tier = detected;
  const char* source = "detected";
  if (const char* env = std::getenv("CHAINCKPT_SIMD")) {
    SimdTier requested;
    if (parse_tier(env, requested)) {
      const SimdTier clamped = clamp_tier(requested);
      if (clamped != requested) {
        util::log_warn() << "simd: CHAINCKPT_SIMD=" << env
                         << " not supported on this CPU/build; clamping to "
                         << tier_name(clamped);
      }
      tier = clamped;
      source = "CHAINCKPT_SIMD";
    } else {
      util::log_warn() << "simd: unrecognized CHAINCKPT_SIMD=\"" << env
                       << "\" (want auto|avx512|avx2|scalar); using "
                       << tier_name(detected);
    }
  }
  util::log_info() << "simd: dispatching " << tier_name(tier)
                   << " argmin kernels (" << source << "; cpu best "
                   << tier_name(detected) << ")";
  return tier;
}

}  // namespace

SimdTier active_tier() noexcept {
  static const SimdTier tier = resolve_active_tier();
  return tier;
}

}  // namespace chainckpt::core::simd
