// Vectorized argmin primitives for the level-DP inner scans.
//
// Three fold shapes cover every SIMD-able scan of the engine (the ADMV
// partial inner solver is excluded by design -- each of its candidates is
// a full O(len^2) DP, not a stream element):
//
//   argmin_affine -- the fused Eq. (4) v1 scan of dp_two_level /
//     dp_single_level:  cand[v1] = ev + (exvg + b*k1 + c*ev + d*k2)
//     with ev = everif_row[v1], folded with min+index.
//   argmin_sum    -- the E_mem m1 chain and the E_disk d2 pass:
//     cand[i] = a[i] + c[i], folded with min+index.
//   fold_min_update -- the streamed single-level E_disk fold:
//     elementwise run_best[i] = min(run_best[i], base + row[i]) with the
//     argmin row recorded where the update wins.
//
// Determinism contract (shared with the scalar engine, pinned by
// tests/core/simd_kernels_test.cpp):
//   * strict-less LEFTMOST argmin -- among equal minima the lowest index
//     wins, including ties that straddle vector lanes or the scalar tail;
//   * candidates are evaluated in the scalar association order
//     (((exvg + b*k1) + c*ev) + d*k2, then ev + ...), with separate
//     mul/add (never FMA) so every lane rounds exactly like the scalar
//     loop -- the library builds with -ffp-contract=off to keep the
//     scalar instantiations from contracting either;
//   * an incoming (best, best_arg) seed is only displaced by a strictly
//     smaller candidate, exactly like the scalar fold.
//
// The Kernels<Tier> facades below are what the drivers template over:
// ScalarKernels inlines the reference loops (the dense instantiations
// keep their PR 1-3 codegen), Avx2Kernels/Avx512Kernels forward to the
// out-of-line per-ISA translation units (argmin_avx2.cpp /
// argmin_avx512.cpp), which are compiled with the matching -m flags and
// must only be CALLED when core::simd::tier_supported() says so --
// core::DpContext::simd_tier() guarantees that.
#pragma once

#include <cstddef>
#include <cstdint>

namespace chainckpt::core::simd {

namespace detail {

/// Whether the per-ISA translation units were built with real intrinsics
/// (false when the toolchain lacked the -m flags; the symbols then
/// forward to the scalar loops and dispatch never selects the tier).
bool avx2_kernels_compiled() noexcept;
bool avx512_kernels_compiled() noexcept;

void argmin_affine_avx2(const double* ev_row, const double* exvg,
                        const double* b, const double* c, const double* d,
                        double k1, double k2, std::size_t lo, std::size_t hi,
                        double& best, std::int32_t& best_arg) noexcept;
void argmin_sum_avx2(const double* a, const double* c, std::size_t lo,
                     std::size_t hi, double& best,
                     std::int32_t& best_arg) noexcept;
void fold_min_update_avx2(const double* row, double base, std::int32_t arg,
                          double* run_best, std::int32_t* run_arg,
                          std::size_t lo, std::size_t hi) noexcept;

void argmin_affine_avx512(const double* ev_row, const double* exvg,
                          const double* b, const double* c, const double* d,
                          double k1, double k2, std::size_t lo,
                          std::size_t hi, double& best,
                          std::int32_t& best_arg) noexcept;
void argmin_sum_avx512(const double* a, const double* c, std::size_t lo,
                       std::size_t hi, double& best,
                       std::int32_t& best_arg) noexcept;
void fold_min_update_avx512(const double* row, double base, std::int32_t arg,
                            double* run_best, std::int32_t* run_arg,
                            std::size_t lo, std::size_t hi) noexcept;

}  // namespace detail

/// Reference scalar kernels.  These loops ARE the historic inner loops of
/// dp_two_level / level_dp / dp_single_level, factored here verbatim so
/// (a) the ScalarKernels instantiations of the drivers keep their fused
/// codegen (single call site, trivially inlined) and (b) the vector tiers
/// have an in-crate oracle to be bit-compared against.
struct ScalarKernels {
  static constexpr bool kVector = false;

  static inline void affine(const double* ev_row, const double* exvg,
                            const double* b, const double* c,
                            const double* d, double k1, double k2,
                            std::size_t lo, std::size_t hi, double& best,
                            std::int32_t& best_arg) {
    for (std::size_t v1 = lo; v1 < hi; ++v1) {
      const double ev = ev_row[v1];
      const double candidate =
          ev + (exvg[v1] + b[v1] * k1 + c[v1] * ev + d[v1] * k2);
      if (candidate < best) {
        best = candidate;
        best_arg = static_cast<std::int32_t>(v1);
      }
    }
  }

  static inline void sum(const double* a, const double* c, std::size_t lo,
                         std::size_t hi, double& best,
                         std::int32_t& best_arg) {
    for (std::size_t i = lo; i < hi; ++i) {
      const double candidate = a[i] + c[i];
      if (candidate < best) {
        best = candidate;
        best_arg = static_cast<std::int32_t>(i);
      }
    }
  }

  static inline void fold(const double* row, double base, std::int32_t arg,
                          double* run_best, std::int32_t* run_arg,
                          std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const double candidate = base + row[i];
      if (candidate < run_best[i]) {
        run_best[i] = candidate;
        run_arg[i] = arg;
      }
    }
  }
};

/// 4-lane AVX2 kernels (out-of-line; see argmin_avx2.cpp).
struct Avx2Kernels {
  static constexpr bool kVector = true;

  static inline void affine(const double* ev_row, const double* exvg,
                            const double* b, const double* c,
                            const double* d, double k1, double k2,
                            std::size_t lo, std::size_t hi, double& best,
                            std::int32_t& best_arg) {
    detail::argmin_affine_avx2(ev_row, exvg, b, c, d, k1, k2, lo, hi, best,
                               best_arg);
  }
  static inline void sum(const double* a, const double* c, std::size_t lo,
                         std::size_t hi, double& best,
                         std::int32_t& best_arg) {
    detail::argmin_sum_avx2(a, c, lo, hi, best, best_arg);
  }
  static inline void fold(const double* row, double base, std::int32_t arg,
                          double* run_best, std::int32_t* run_arg,
                          std::size_t lo, std::size_t hi) {
    detail::fold_min_update_avx2(row, base, arg, run_best, run_arg, lo, hi);
  }
};

/// 8-lane AVX-512F/VL kernels (out-of-line; see argmin_avx512.cpp).
struct Avx512Kernels {
  static constexpr bool kVector = true;

  static inline void affine(const double* ev_row, const double* exvg,
                            const double* b, const double* c,
                            const double* d, double k1, double k2,
                            std::size_t lo, std::size_t hi, double& best,
                            std::int32_t& best_arg) {
    detail::argmin_affine_avx512(ev_row, exvg, b, c, d, k1, k2, lo, hi,
                                 best, best_arg);
  }
  static inline void sum(const double* a, const double* c, std::size_t lo,
                         std::size_t hi, double& best,
                         std::int32_t& best_arg) {
    detail::argmin_sum_avx512(a, c, lo, hi, best, best_arg);
  }
  static inline void fold(const double* row, double base, std::int32_t arg,
                          double* run_best, std::int32_t* run_arg,
                          std::size_t lo, std::size_t hi) {
    detail::fold_min_update_avx512(row, base, arg, run_best, run_arg, lo,
                                   hi);
  }
};

}  // namespace chainckpt::core::simd
