// Runtime SIMD dispatch for the DP argmin kernels.
//
// The level-DP inner scans are unit-stride folds over flat coefficient
// streams (see core/simd/argmin_kernels.hpp); this header decides, once
// per process, which instruction-set tier those folds run on:
//
//   kAvx512  -- 8-lane AVX-512F/VL min+index kernels
//   kAvx2    -- 4-lane AVX2 kernels
//   kScalar  -- the reference formulation (always available)
//
// A tier is eligible only when (a) the kernel translation unit for it was
// compiled with the matching -m flags (tier_compiled), and (b) the CPU
// reports the feature at runtime (__builtin_cpu_supports).  On top of the
// detected tier, two overrides narrow the choice -- they can only select
// an ELIGIBLE tier, never force an unsupported one:
//
//   * the CHAINCKPT_SIMD environment variable ("auto", "avx512", "avx2",
//     "scalar"), read once at first dispatch;
//   * DpContext::set_simd_tier(), a per-solve override for benches and
//     the equivalence batteries (see core/dp_context.hpp).
//
// The first call to active_tier() logs one line reporting the dispatched
// tier and why, so benches and bug reports pin the code path.
//
// Every tier obeys the same determinism contract: strict-less LEFTMOST
// argmin, candidates evaluated with the scalar association order and no
// FMA contraction (the library builds with -ffp-contract=off), so plans,
// objectives, and scan counters are bitwise identical across tiers.
#pragma once

namespace chainckpt::core::simd {

/// Kernel instruction-set tiers, ordered by preference.
enum class SimdTier : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Human-readable tier name ("scalar" / "avx2" / "avx512").
const char* tier_name(SimdTier tier) noexcept;

/// True when the kernels for `tier` were compiled into this binary
/// (the build had the -m flags for it); kScalar is always true.
bool tier_compiled(SimdTier tier) noexcept;

/// True when `tier` is compiled in AND the running CPU supports it.
bool tier_supported(SimdTier tier) noexcept;

/// Best supported tier on this CPU/binary, ignoring overrides.
SimdTier detected_tier() noexcept;

/// The tier solves dispatch to: detected_tier() clamped by the
/// CHAINCKPT_SIMD environment override.  Resolved and logged once per
/// process (thread-safe); later env changes are not observed.
SimdTier active_tier() noexcept;

/// Parses "auto"/"avx512"/"avx2"/"scalar" (case-sensitive).  Returns
/// true and writes `out` on success; "auto" maps to detected_tier().
/// Unrecognized strings leave `out` untouched and return false.
bool parse_tier(const char* text, SimdTier& out) noexcept;

/// Clamps a requested tier to the best supported one at or below it
/// (e.g. avx512 requested on an avx2-only CPU resolves to avx2).
SimdTier clamp_tier(SimdTier requested) noexcept;

}  // namespace chainckpt::core::simd
