// AVX2 (4-lane) argmin kernels.  Compiled with -mavx2 when the toolchain
// accepts it (see CMakeLists); the library builds with -ffp-contract=off,
// and the kernels use separate mul/add intrinsics in the scalar
// association order, so every lane rounds exactly like the reference
// loop.  Min+index idiom: per-lane running (value, index) pairs updated
// under a strict-less _CMP_LT_OQ mask -- each lane therefore keeps the
// EARLIEST index of its own lane-min -- then a lane reduction that
// breaks value ties by lowest index, which together reproduce the global
// leftmost strict-less argmin bit for bit (tests/core/
// simd_kernels_test.cpp pins this on fabricated tie-dense streams).
//
// Must only be called when core::simd::tier_supported(kAvx2) is true;
// when the toolchain lacks AVX2 support the symbols degrade to the
// scalar loops and avx2_kernels_compiled() reports false so dispatch
// never selects the tier.
#include "core/simd/argmin_kernels.hpp"

#if defined(__AVX2__)
#include <immintrin.h>

#include <limits>
#endif

namespace chainckpt::core::simd::detail {

#if defined(__AVX2__)

bool avx2_kernels_compiled() noexcept { return true; }

namespace {

/// Folds 4 lane-local (value, first-index) pairs into (best, best_arg):
/// lowest value wins, ties by lowest index, and the incoming seed is only
/// displaced by a strictly smaller value -- the scalar fold's semantics.
inline void merge_lanes(__m256d vbest, __m256i vidx, double& best,
                        std::int32_t& best_arg) noexcept {
  alignas(32) double vals[4];
  alignas(32) long long idxs[4];
  _mm256_store_pd(vals, vbest);
  _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), vidx);
  double m = vals[0];
  long long mi = idxs[0];
  for (int l = 1; l < 4; ++l) {
    if (vals[l] < m || (vals[l] == m && idxs[l] < mi)) {
      m = vals[l];
      mi = idxs[l];
    }
  }
  if (m < best) {
    best = m;
    best_arg = static_cast<std::int32_t>(mi);
  }
}

}  // namespace

void argmin_affine_avx2(const double* ev_row, const double* exvg,
                        const double* b, const double* c, const double* d,
                        double k1, double k2, std::size_t lo, std::size_t hi,
                        double& best, std::int32_t& best_arg) noexcept {
  std::size_t v1 = lo;
  if (hi - lo >= 8) {
    const __m256d vk1 = _mm256_set1_pd(k1);
    const __m256d vk2 = _mm256_set1_pd(k2);
    __m256d vbest = _mm256_set1_pd(std::numeric_limits<double>::infinity());
    __m256i vidx = _mm256_set1_epi64x(-1);
    __m256i cur = _mm256_setr_epi64x(
        static_cast<long long>(lo), static_cast<long long>(lo + 1),
        static_cast<long long>(lo + 2), static_cast<long long>(lo + 3));
    const __m256i step = _mm256_set1_epi64x(4);
    for (; v1 + 4 <= hi; v1 += 4) {
      const __m256d ev = _mm256_loadu_pd(ev_row + v1);
      // ((exvg + b*k1) + c*ev) + d*k2, then ev + ... -- the scalar order.
      __m256d t = _mm256_add_pd(_mm256_loadu_pd(exvg + v1),
                                _mm256_mul_pd(_mm256_loadu_pd(b + v1), vk1));
      t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_loadu_pd(c + v1), ev));
      t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_loadu_pd(d + v1), vk2));
      const __m256d cand = _mm256_add_pd(ev, t);
      const __m256d lt = _mm256_cmp_pd(cand, vbest, _CMP_LT_OQ);
      vbest = _mm256_blendv_pd(vbest, cand, lt);
      vidx = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(vidx), _mm256_castsi256_pd(cur), lt));
      cur = _mm256_add_epi64(cur, step);
    }
    merge_lanes(vbest, vidx, best, best_arg);
  }
  for (; v1 < hi; ++v1) {
    const double ev = ev_row[v1];
    const double candidate =
        ev + (exvg[v1] + b[v1] * k1 + c[v1] * ev + d[v1] * k2);
    if (candidate < best) {
      best = candidate;
      best_arg = static_cast<std::int32_t>(v1);
    }
  }
}

void argmin_sum_avx2(const double* a, const double* c, std::size_t lo,
                     std::size_t hi, double& best,
                     std::int32_t& best_arg) noexcept {
  std::size_t i = lo;
  if (hi - lo >= 8) {
    __m256d vbest = _mm256_set1_pd(std::numeric_limits<double>::infinity());
    __m256i vidx = _mm256_set1_epi64x(-1);
    __m256i cur = _mm256_setr_epi64x(
        static_cast<long long>(lo), static_cast<long long>(lo + 1),
        static_cast<long long>(lo + 2), static_cast<long long>(lo + 3));
    const __m256i step = _mm256_set1_epi64x(4);
    for (; i + 4 <= hi; i += 4) {
      const __m256d cand =
          _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(c + i));
      const __m256d lt = _mm256_cmp_pd(cand, vbest, _CMP_LT_OQ);
      vbest = _mm256_blendv_pd(vbest, cand, lt);
      vidx = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(vidx), _mm256_castsi256_pd(cur), lt));
      cur = _mm256_add_epi64(cur, step);
    }
    merge_lanes(vbest, vidx, best, best_arg);
  }
  for (; i < hi; ++i) {
    const double candidate = a[i] + c[i];
    if (candidate < best) {
      best = candidate;
      best_arg = static_cast<std::int32_t>(i);
    }
  }
}

void fold_min_update_avx2(const double* row, double base, std::int32_t arg,
                          double* run_best, std::int32_t* run_arg,
                          std::size_t lo, std::size_t hi) noexcept {
  std::size_t i = lo;
  if (hi - lo >= 8) {
    const __m256d vbase = _mm256_set1_pd(base);
    const __m128i varg = _mm_set1_epi32(arg);
    for (; i + 4 <= hi; i += 4) {
      const __m256d cand = _mm256_add_pd(vbase, _mm256_loadu_pd(row + i));
      const __m256d rb = _mm256_loadu_pd(run_best + i);
      const __m256d lt = _mm256_cmp_pd(cand, rb, _CMP_LT_OQ);
      _mm256_storeu_pd(run_best + i, _mm256_blendv_pd(rb, cand, lt));
      // Narrow the four 64-bit lane masks to 32-bit (each half of a
      // 64-bit all-ones/all-zeros mask is already the 32-bit mask).
      const __m256i ltq = _mm256_castpd_si256(lt);
      const __m128i m32 = _mm_castps_si128(_mm_shuffle_ps(
          _mm_castsi128_ps(_mm256_castsi256_si128(ltq)),
          _mm_castsi128_ps(_mm256_extracti128_si256(ltq, 1)),
          _MM_SHUFFLE(2, 0, 2, 0)));
      const __m128i old_args =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(run_arg + i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(run_arg + i),
                       _mm_blendv_epi8(old_args, varg, m32));
    }
  }
  for (; i < hi; ++i) {
    const double candidate = base + row[i];
    if (candidate < run_best[i]) {
      run_best[i] = candidate;
      run_arg[i] = arg;
    }
  }
}

#else  // !defined(__AVX2__): scalar forwarding stubs.

bool avx2_kernels_compiled() noexcept { return false; }

void argmin_affine_avx2(const double* ev_row, const double* exvg,
                        const double* b, const double* c, const double* d,
                        double k1, double k2, std::size_t lo, std::size_t hi,
                        double& best, std::int32_t& best_arg) noexcept {
  ScalarKernels::affine(ev_row, exvg, b, c, d, k1, k2, lo, hi, best,
                        best_arg);
}
void argmin_sum_avx2(const double* a, const double* c, std::size_t lo,
                     std::size_t hi, double& best,
                     std::int32_t& best_arg) noexcept {
  ScalarKernels::sum(a, c, lo, hi, best, best_arg);
}
void fold_min_update_avx2(const double* row, double base, std::int32_t arg,
                          double* run_best, std::int32_t* run_arg,
                          std::size_t lo, std::size_t hi) noexcept {
  ScalarKernels::fold(row, base, arg, run_best, run_arg, lo, hi);
}

#endif

}  // namespace chainckpt::core::simd::detail
