// AVX-512 (8-lane) argmin kernels.  Compiled with -mavx512f -mavx512vl
// when the toolchain accepts them (see CMakeLists).  Same determinism
// contract as argmin_avx2.cpp: separate mul/add in the scalar
// association order (no FMA; the library builds with -ffp-contract=off),
// strict-less _CMP_LT_OQ lane updates so each lane keeps the EARLIEST
// index of its lane-min, and a lowest-index tie-breaking lane reduction,
// which together reproduce the global leftmost strict-less argmin bit
// for bit.  VL is required for the 256-bit int32 masked store in the
// fold kernel.
//
// Must only be called when core::simd::tier_supported(kAvx512) is true;
// without the -m flags the symbols degrade to the scalar loops and
// avx512_kernels_compiled() reports false so dispatch never selects the
// tier.
#include "core/simd/argmin_kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512VL__)
#include <immintrin.h>

#include <limits>
#endif

namespace chainckpt::core::simd::detail {

#if defined(__AVX512F__) && defined(__AVX512VL__)

bool avx512_kernels_compiled() noexcept { return true; }

namespace {

/// Folds 8 lane-local (value, first-index) pairs into (best, best_arg):
/// lowest value wins, ties by lowest index, and the incoming seed is only
/// displaced by a strictly smaller value -- the scalar fold's semantics.
inline void merge_lanes(__m512d vbest, __m512i vidx, double& best,
                        std::int32_t& best_arg) noexcept {
  alignas(64) double vals[8];
  alignas(64) long long idxs[8];
  _mm512_store_pd(vals, vbest);
  _mm512_store_si512(reinterpret_cast<__m512i*>(idxs), vidx);
  double m = vals[0];
  long long mi = idxs[0];
  for (int l = 1; l < 8; ++l) {
    if (vals[l] < m || (vals[l] == m && idxs[l] < mi)) {
      m = vals[l];
      mi = idxs[l];
    }
  }
  if (m < best) {
    best = m;
    best_arg = static_cast<std::int32_t>(mi);
  }
}

}  // namespace

void argmin_affine_avx512(const double* ev_row, const double* exvg,
                          const double* b, const double* c, const double* d,
                          double k1, double k2, std::size_t lo,
                          std::size_t hi, double& best,
                          std::int32_t& best_arg) noexcept {
  std::size_t v1 = lo;
  if (hi - lo >= 16) {
    const __m512d vk1 = _mm512_set1_pd(k1);
    const __m512d vk2 = _mm512_set1_pd(k2);
    __m512d vbest = _mm512_set1_pd(std::numeric_limits<double>::infinity());
    __m512i vidx = _mm512_set1_epi64(-1);
    __m512i cur = _mm512_add_epi64(
        _mm512_set1_epi64(static_cast<long long>(lo)),
        _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
    const __m512i step = _mm512_set1_epi64(8);
    for (; v1 + 8 <= hi; v1 += 8) {
      const __m512d ev = _mm512_loadu_pd(ev_row + v1);
      // ((exvg + b*k1) + c*ev) + d*k2, then ev + ... -- the scalar order.
      __m512d t = _mm512_add_pd(_mm512_loadu_pd(exvg + v1),
                                _mm512_mul_pd(_mm512_loadu_pd(b + v1), vk1));
      t = _mm512_add_pd(t, _mm512_mul_pd(_mm512_loadu_pd(c + v1), ev));
      t = _mm512_add_pd(t, _mm512_mul_pd(_mm512_loadu_pd(d + v1), vk2));
      const __m512d cand = _mm512_add_pd(ev, t);
      const __mmask8 lt = _mm512_cmp_pd_mask(cand, vbest, _CMP_LT_OQ);
      vbest = _mm512_mask_blend_pd(lt, vbest, cand);
      vidx = _mm512_mask_blend_epi64(lt, vidx, cur);
      cur = _mm512_add_epi64(cur, step);
    }
    merge_lanes(vbest, vidx, best, best_arg);
  }
  for (; v1 < hi; ++v1) {
    const double ev = ev_row[v1];
    const double candidate =
        ev + (exvg[v1] + b[v1] * k1 + c[v1] * ev + d[v1] * k2);
    if (candidate < best) {
      best = candidate;
      best_arg = static_cast<std::int32_t>(v1);
    }
  }
}

void argmin_sum_avx512(const double* a, const double* c, std::size_t lo,
                       std::size_t hi, double& best,
                       std::int32_t& best_arg) noexcept {
  std::size_t i = lo;
  if (hi - lo >= 16) {
    __m512d vbest = _mm512_set1_pd(std::numeric_limits<double>::infinity());
    __m512i vidx = _mm512_set1_epi64(-1);
    __m512i cur = _mm512_add_epi64(
        _mm512_set1_epi64(static_cast<long long>(lo)),
        _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
    const __m512i step = _mm512_set1_epi64(8);
    for (; i + 8 <= hi; i += 8) {
      const __m512d cand =
          _mm512_add_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(c + i));
      const __mmask8 lt = _mm512_cmp_pd_mask(cand, vbest, _CMP_LT_OQ);
      vbest = _mm512_mask_blend_pd(lt, vbest, cand);
      vidx = _mm512_mask_blend_epi64(lt, vidx, cur);
      cur = _mm512_add_epi64(cur, step);
    }
    merge_lanes(vbest, vidx, best, best_arg);
  }
  for (; i < hi; ++i) {
    const double candidate = a[i] + c[i];
    if (candidate < best) {
      best = candidate;
      best_arg = static_cast<std::int32_t>(i);
    }
  }
}

void fold_min_update_avx512(const double* row, double base, std::int32_t arg,
                            double* run_best, std::int32_t* run_arg,
                            std::size_t lo, std::size_t hi) noexcept {
  std::size_t i = lo;
  if (hi - lo >= 16) {
    const __m512d vbase = _mm512_set1_pd(base);
    const __m256i varg = _mm256_set1_epi32(arg);
    for (; i + 8 <= hi; i += 8) {
      const __m512d cand = _mm512_add_pd(vbase, _mm512_loadu_pd(row + i));
      const __m512d rb = _mm512_loadu_pd(run_best + i);
      const __mmask8 lt = _mm512_cmp_pd_mask(cand, rb, _CMP_LT_OQ);
      _mm512_storeu_pd(run_best + i, _mm512_mask_blend_pd(lt, rb, cand));
      _mm256_mask_storeu_epi32(run_arg + i, lt, varg);
    }
  }
  for (; i < hi; ++i) {
    const double candidate = base + row[i];
    if (candidate < run_best[i]) {
      run_best[i] = candidate;
      run_arg[i] = arg;
    }
  }
}

#else  // no AVX-512F/VL toolchain support: scalar forwarding stubs.

bool avx512_kernels_compiled() noexcept { return false; }

void argmin_affine_avx512(const double* ev_row, const double* exvg,
                          const double* b, const double* c, const double* d,
                          double k1, double k2, std::size_t lo,
                          std::size_t hi, double& best,
                          std::int32_t& best_arg) noexcept {
  ScalarKernels::affine(ev_row, exvg, b, c, d, k1, k2, lo, hi, best,
                        best_arg);
}
void argmin_sum_avx512(const double* a, const double* c, std::size_t lo,
                       std::size_t hi, double& best,
                       std::int32_t& best_arg) noexcept {
  ScalarKernels::sum(a, c, lo, hi, best, best_arg);
}
void fold_min_update_avx512(const double* row, double base, std::int32_t arg,
                            double* run_best, std::int32_t* run_arg,
                            std::size_t lo, std::size_t hi) noexcept {
  ScalarKernels::fold(row, base, arg, run_best, run_arg, lo, hi);
}

#endif

}  // namespace chainckpt::core::simd::detail
