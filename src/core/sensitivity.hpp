// Parameter sensitivity of the optimized expected makespan.
//
// For each model parameter p, reports the elasticity
//
//     d log E*(p) / d log p   (central difference, re-optimizing at each
//                              perturbed value)
//
// where E* is the expected makespan of the *re-optimized* plan -- i.e.
// the sensitivity a capacity planner cares about, envelope effects
// included.  An elasticity of 0.1 means a 10% parameter increase costs
// about 1% makespan.
#pragma once

#include <string>
#include <vector>

#include "chain/chain.hpp"
#include "core/optimizer.hpp"
#include "plan/plan.hpp"
#include "platform/cost_model.hpp"
#include "platform/platform.hpp"

namespace chainckpt::core {

struct SensitivityRow {
  std::string parameter;
  double base_value = 0.0;
  double elasticity = 0.0;
};

struct SensitivityOptions {
  /// Relative perturbation for the central difference.
  double relative_step = 0.10;
  Algorithm algorithm = Algorithm::kADMV;
};

/// Elasticities for lambda_f, lambda_s, C_D, C_M, V*, V and the miss
/// probability g = 1 - r (g rather than r so zero-crossing recall does
/// not break the log-scale perturbation).
std::vector<SensitivityRow> parameter_sensitivity(
    const chain::TaskChain& chain, const platform::Platform& platform,
    const SensitivityOptions& options = {});

/// ASCII table of the rows.
std::string render_sensitivity(const std::vector<SensitivityRow>& rows);

// ---------------------------------------------------------------------------
// Validity certificates for cached plans (core::PlanCache).
//
// A certificate answers two different questions about serving a cached
// plan under a drifted cost model, with two very different strengths:
//
//  1. "Is the cached plan worth re-scoring at all?"  -- the ADVISORY
//     screen.  Per parameter group it stores a drift radius derived from
//     analysis::stability_radius (Young/Daly period scaling applied to
//     the plan's own mechanism counts and the first-order predicted
//     counts, whichever is denser).  Drift beyond a radius means the
//     optimal plan has likely changed shape; the cache re-solves
//     immediately instead of wasting an evaluator pass.  The radii are
//     heuristic and carry NO optimality claim -- a drift inside every
//     radius may still change the optimal plan (the adversarial case in
//     tests/core/plan_cache_test.cpp constructs exactly that).
//
//  2. "If re-scored, how good must the score be?"  -- the SOUND bound.
//     The expected makespan E(P, theta) of any fixed plan is affine in
//     a cost basis with non-negative coefficients and a constant term
//     >= total chain weight, and is monotone non-decreasing in
//     lambda_f, lambda_s and the miss probability g.  The basis depends
//     on the pricing framework: (C_D, C_M, R_D, R_M, V*) for Eq. (4)
//     entries (V is never read), and (C_D, C_M, R_D, R_M, V, V* - V)
//     for Section III-B entries -- V* and V individually carry mixed
//     signs there (the (V* - V) nuance terms subtract V), but the
//     transformed pair is non-negative again whenever V* >= V.  Hence,
//     when no rate decreased and the law is unchanged,
//
//         E*(theta_req) >= gamma * E*(theta_base),
//         gamma = min(1, min over basis entries of req/base),
//
//     and unconditionally E*(theta_req) >= total chain weight (every
//     task executes at least once).  check_certificate returns the max
//     of the applicable bounds in `lower_bound`; the cache serves an
//     epsilon-hit only when the evaluator's re-score of the cached plan
//     is <= (1 + epsilon) * lower_bound, which implies true relative
//     error <= epsilon against the unknown optimum.
//
// See docs/CACHING.md for the full contract.
// ---------------------------------------------------------------------------

struct ValidityCertificate {
  /// Advisory radii (relative drift) per parameter group.
  double radius_lambda_f = 0.5;
  double radius_lambda_s = 0.5;
  /// Checkpoint/recovery costs (C_D, C_M, R_D, R_M).
  double radius_cost = 0.5;
  /// Verification costs (V*, V).
  double radius_verif = 0.5;
  /// Miss probability g = 1 - recall.
  double radius_miss = 0.5;
  /// E*(theta_base): the optimized objective the plan was cached with.
  double base_objective = 0.0;
  /// Sum of chain weights -- the unconditional lower bound on any E*.
  double total_weight = 0.0;
  /// True when the entry was priced under the Section III-B partial
  /// framework (the kADMV engine -- even for partial-free optima).  That
  /// objective carries (V* - V) nuance terms, i.e. a NEGATIVE coefficient
  /// on the partial-verification cost, so the gamma scaling must fold the
  /// transformed basis (C_D, C_M, R_D, R_M, V, V* - V) -- in which every
  /// coefficient is non-negative again -- instead of (.., V*, V).
  bool partial_framework = false;
};

enum class DriftOutcome {
  /// Every compared parameter is bitwise-identical.  (PlanCache normally
  /// catches this earlier via key equality on the algorithm's read set.)
  kExactMatch,
  /// Drift present but inside every advisory radius: worth re-scoring
  /// against `lower_bound` for an epsilon-hit.
  kWithinRadius,
  /// Some group drifted beyond its radius (or the planning-law family
  /// changed): re-solve, do not re-score.
  kBeyondRadius,
};

struct DriftCheck {
  DriftOutcome outcome = DriftOutcome::kBeyondRadius;
  /// Largest relative drift observed across all parameter groups.
  double max_drift = 0.0;
  /// Sound lower bound on E*(theta_req) -- see the block comment.  At
  /// least `total_weight` always; tightened to gamma * base_objective
  /// when no rate decreased and the law is bitwise-unchanged.
  double lower_bound = 0.0;
  /// True when the gamma-scaled bound applied (not just the weight floor).
  bool scaled_bound = false;
};

/// Builds the certificate for a freshly optimized plan.  `total_weight`
/// is the chain's weight sum; `base_objective` the optimized makespan.
ValidityCertificate make_validity_certificate(const plan::ResiliencePlan& plan,
                                              const platform::Platform& platform,
                                              double base_objective,
                                              double total_weight);

/// Evaluates parameter drift from `base` to `request` against the
/// certificate.  `n` is the chain length (positions 1..n are compared;
/// uniform models are compared at one position).  Both models must
/// describe the same chain -- the caller (PlanCache) guarantees this by
/// keying on the weight vector.
DriftCheck check_certificate(const ValidityCertificate& cert,
                             const platform::CostModel& base,
                             const platform::CostModel& request,
                             std::size_t n);

}  // namespace chainckpt::core
