// Parameter sensitivity of the optimized expected makespan.
//
// For each model parameter p, reports the elasticity
//
//     d log E*(p) / d log p   (central difference, re-optimizing at each
//                              perturbed value)
//
// where E* is the expected makespan of the *re-optimized* plan -- i.e.
// the sensitivity a capacity planner cares about, envelope effects
// included.  An elasticity of 0.1 means a 10% parameter increase costs
// about 1% makespan.
#pragma once

#include <string>
#include <vector>

#include "chain/chain.hpp"
#include "core/optimizer.hpp"
#include "platform/platform.hpp"

namespace chainckpt::core {

struct SensitivityRow {
  std::string parameter;
  double base_value = 0.0;
  double elasticity = 0.0;
};

struct SensitivityOptions {
  /// Relative perturbation for the central difference.
  double relative_step = 0.10;
  Algorithm algorithm = Algorithm::kADMV;
};

/// Elasticities for lambda_f, lambda_s, C_D, C_M, V*, V and the miss
/// probability g = 1 - r (g rather than r so zero-crossing recall does
/// not break the log-scale perturbation).
std::vector<SensitivityRow> parameter_sensitivity(
    const chain::TaskChain& chain, const platform::Platform& platform,
    const SensitivityOptions& options = {});

/// ASCII table of the rows.
std::string render_sensitivity(const std::vector<SensitivityRow>& rows);

}  // namespace chainckpt::core
