// Internal: the three-level dynamic program shared by ADMV* and ADMV.
//
// Both algorithms share the disk / memory / guaranteed-verification levels
// (paper Figures 1-3):
//
//   E_disk(d2)    = min_{0 <= d1 < d2} E_disk(d1) + E_mem(d1, d2) + C_D
//   E_mem(d1,m2)  = min_{d1 <= m1 < m2} E_mem(d1,m1)
//                                       + E_verif(d1,m1,m2) + C_M
//   E_verif(d1,m1,v2) = min_{m1 <= v1 < v2} E_verif(d1,m1,v1)
//                                           + <segment>(d1,m1,v1,v2)
//
// and differ only in <segment>: Eq. (4) for ADMV*, the E_partial inner DP
// for ADMV.  The inner v1 scan is injected as a template parameter (see
// the ColumnScanner contract below) so there is zero dispatch cost in the
// innermost loop and each algorithm can fuse its segment formula into a
// branch-light kernel over flat SoA arrays (analysis::SegmentTables).
//
// Hot-path structure (per fixed d1, increasing right endpoint j):
// E_verif(d1, m1, j) consumes E_mem(d1, m1) and E_verif(d1, m1, v1 < j),
// both finalized at earlier j; different d1 slabs are fully independent,
// which is what the parallelization exploits.  Each slab runs on a
// contiguous thread-local scratch plane (SlabScratch) so the v1 scans read
// unit-stride rows and the m1-scan of the E_mem pass reads a gathered
// contiguous column, independent of the global LevelTables layout.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/cancellation.hpp"
#include "core/dp_context.hpp"
#include "core/monotone_scanner.hpp"
#include "core/simd/argmin_kernels.hpp"
#include "core/solve_checkpoint.hpp"
#include "util/arena.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace chainckpt::core::detail {

struct LevelTables {
  std::size_t n = 0;
  /// E_verif(d1, m1, v2); valid for d1<=m1<=v2.  Flattened per idx3(),
  /// whose mapping depends on the layout (see core::TableLayout).  Empty
  /// when constructed with keep_verif_values = false: the DP itself reads
  /// E_verif only from its slab scratch plane, so the O(n^3) value table
  /// is needed solely by consumers that re-derive segment interiors after
  /// the fact (ADMV's partial reconstruction) -- ADMV* skips it, which
  /// removes roughly two-thirds of its peak memory and a hot-loop store
  /// stream.
  std::vector<double> everif;
  std::vector<std::int32_t> best_v1;
  /// E_mem(d1, m2), flattened over (n+1)^2; valid for d1<=m2.
  std::vector<double> emem;
  std::vector<std::int32_t> best_m1;
  /// E_disk(d2) over n+1 entries.
  std::vector<double> edisk;
  std::vector<std::int32_t> best_d1;

  explicit LevelTables(std::size_t n_in,
                       TableLayout layout = TableLayout::kRowMajor,
                       bool keep_verif_values = true)
      : n(n_in),
        emem((n + 1) * (n + 1), std::numeric_limits<double>::quiet_NaN()),
        best_m1((n + 1) * (n + 1), -1),
        edisk(n + 1, std::numeric_limits<double>::quiet_NaN()),
        best_d1(n + 1, -1),
        tiled_(layout == TableLayout::kTiled) {
    if (tiled_) {
      // Pad the (m1, v2) plane to whole 8x8 tiles; tile rows are
      // contiguous, so both m1-walks and v2-walks use full cache lines.
      tdim_ = (n + 8) & ~std::size_t{7};
      plane_ = tdim_ * tdim_;
    } else {
      plane_ = (n + 1) * (n + 1);
    }
    if (keep_verif_values) {
      everif.assign((n + 1) * plane_,
                    std::numeric_limits<double>::quiet_NaN());
    }
    best_v1.assign((n + 1) * plane_, -1);
  }

  std::size_t idx3(std::size_t d1, std::size_t m1, std::size_t v2) const {
    if (tiled_) {
      return d1 * plane_ + ((m1 >> 3) * (tdim_ >> 3) + (v2 >> 3)) * 64 +
             ((m1 & 7) << 3) + (v2 & 7);
    }
    return d1 * plane_ + m1 * (n + 1) + v2;
  }
  std::size_t idx2(std::size_t d1, std::size_t m2) const {
    return d1 * (n + 1) + m2;
  }

  double everif_at(std::size_t d1, std::size_t m1, std::size_t v2) const {
    return everif[idx3(d1, m1, v2)];
  }
  double emem_at(std::size_t d1, std::size_t m2) const {
    return emem[idx2(d1, m2)];
  }

 private:
  bool tiled_ = false;
  std::size_t tdim_ = 0;
  std::size_t plane_ = 0;
};

/// Per-slab scratch: the (m1, v1) plane of E_verif values for the current
/// d1 kept contiguous and cache-hot, plus the E_verif(d1, ·, j) column
/// gathered for the E_mem scan.  thread_local so each worker allocates the
/// O(n^2) plane once, not once per slab; registered with the arena pool so
/// a long-lived embedding can drop it (util::release_all_arenas, reached
/// through core::BatchSolver::release_scratch).
struct SlabScratch final : util::ArenaBlock {
  std::vector<double> plane;
  std::vector<double> column;

  ~SlabScratch() override { unregister(); }

  void ensure(std::size_t n) {
    const std::size_t cells = (n + 1) * (n + 1);
    if (plane.size() < cells) plane.resize(cells);
    if (column.size() < n + 1) column.resize(n + 1);
  }

  std::size_t resident_bytes() const noexcept override {
    return util::vector_bytes(plane) + util::vector_bytes(column);
  }
  void release() noexcept override {
    util::free_vector(plane);
    util::free_vector(column);
  }
};

inline SlabScratch& slab_scratch() {
  static thread_local SlabScratch scratch;
  return scratch;
}

/// ColumnScanner contract:
///   void operator()(std::size_t d1, std::size_t m1, std::size_t lo,
///                   std::size_t hi, std::size_t j, double emem_at_m1,
///                   const double* everif_row, double& best,
///                   std::int32_t& best_arg) const;
/// where everif_row[v1] = E_verif(d1, m1, v1) for v1 in [m1, j), unit
/// stride.  The scanner must fold the candidates
///   E_verif(d1, m1, v1) + <segment>(d1, m1, v1, j)
/// for v1 in [lo, hi) into `best`/`best_arg` with the strict-less
/// leftmost-argmin rule (matching the determinism contract); callers seed
/// best = +inf, best_arg = -1.  The dense formulation passes
/// [lo, hi) = [m1, j); ScanMode::kMonotonePruned drives sub-ranges
/// through core::MonotoneScanner, whose gate + guard keep the combined
/// result bit-identical to the dense scan.  It must be safe to call
/// concurrently for different d1.
///
/// Which inner scans of the engine the pruned mode windows.  kFull
/// windows both the v1 scans and the E_mem m1 chain (the Eq. (4) DPs,
/// whose v1 argmin drifts right with j).  kMemChainOnly windows only the
/// m1 chain: measured on the ADMV segment costs, the v1 argmin is
/// degenerate (pinned to m1, nothing to prune) and its heavy fused inner
/// solver is acutely sensitive to the extra v1-scan call structure, so
/// the partial DP keeps its v1 scans dense by construction.
///
/// Gate honesty: the QI certificate probes the Eq. (4) column streams.
/// For the v1 scans of the Eq. (4) DPs that is the cost function being
/// scanned; for the E_mem chain (whose candidates are derived
/// E_verif/E_mem values, and under kMemChainOnly come from the
/// partial-framework solver entirely) the certificate is a structural
/// proxy, not a check of the scanned function -- there the per-step
/// boundary guard plus the oracle/property batteries carry the safety
/// argument.
enum class LevelScanProfile { kFull, kMemChainOnly };

/// One row-split slab of the level DP (intra-slab parallelism).  The
/// tallest slabs (small d1) dominate a run's critical path under the
/// classic slab-per-worker schedule: slab d1 = 0 alone carries O(n^2)
/// scan steps while the workers that drew short slabs idle.  Here the
/// per-j row work (m1 in [d1, j)) is chunked into fixed kSplitChunkRows
/// blocks and spread across workers; the E_mem fold and the j-frontier
/// stay sequential (the fold consumes every row of the step).
///
/// Determinism: within one j step the rows are independent -- each reads
/// only its own plane row, its own scanner row state, and E_mem entries
/// finalized at earlier j -- and the parallel_for barrier orders steps,
/// so results are bitwise identical for every worker count and chunk
/// assignment.  Each chunk owns a private MonotoneScanner (row states are
/// per-row, so the per-chunk partition is exact; the additive counters
/// merge to the single-scanner totals).
///
/// Sub-slab granules: with a checkpoint attached, every
/// ctx.checkpoint_granule() j-steps the slab freezes its loop-carried
/// state into the checkpoint (SolveCheckpoint::SlabGranule) so an
/// interrupted solve re-executes at most one granule of a tall slab
/// instead of the whole slab.  The per-(m1, j) step body must stay in
/// lock-step with the classic body in run_level_dp_impl below -- same
/// kernels, same order -- which the tier/worker-sweep batteries pin.
template <bool kWindowV1, bool kWindowMem, typename K, typename ColumnScanner>
void run_split_slab(const DpContext& ctx, LevelTables& t,
                    const ColumnScanner& scan, std::size_t d1,
                    const analysis::QiCertificate* cert,
                    SolveCheckpoint* ckpt, ScanStats& slab_stats_out) {
  constexpr std::size_t kSplitChunkRows = 64;
  const std::size_t n = ctx.n();
  const auto& costs = ctx.costs();
  const CancelToken* cancel = ctx.cancel_token();
  const bool keep_values = !t.everif.empty();
  SlabScratch& scratch = slab_scratch();
  scratch.ensure(n);
  double* plane = scratch.plane.data();
  double* column = scratch.column.data();
  const std::size_t stride = n + 1;
  const double* emem_row = t.emem.data() + t.idx2(d1, 0);

  const std::size_t max_chunks =
      (n - d1 + kSplitChunkRows - 1) / kSplitChunkRows;
  std::vector<MonotoneScanner> chunk_scanners;
  if constexpr (kWindowV1) {
    chunk_scanners.reserve(max_chunks);
    for (std::size_t ci = 0; ci < max_chunks; ++ci) {
      chunk_scanners.emplace_back(n);
    }
  }
  MonotoneScanner mem_scanner(kWindowMem ? n : 0);
  ScanStats granule_seed;

  std::size_t j_start = d1 + 1;
  if (ckpt != nullptr) {
    if (const SolveCheckpoint::SlabGranule* g = ckpt->take_granule(d1)) {
      // Re-install the frozen loop-carried state: the plane rows the
      // later steps re-read, the scanner row states, and the running
      // counters.  Table entries for j <= j_done already live in the
      // checkpoint's tables.
      const std::size_t rows = g->j_done - d1;
      std::copy(g->plane_rows.begin(),
                g->plane_rows.begin() +
                    static_cast<std::ptrdiff_t>(rows * stride),
                plane + d1 * stride);
      if constexpr (kWindowV1) {
        for (std::size_t m1 = d1; m1 < g->j_done; ++m1) {
          chunk_scanners[(m1 - d1) / kSplitChunkRows].restore_row(
              m1, g->v1_rows[m1 - d1]);
        }
      }
      if constexpr (kWindowMem) {
        if (g->has_mem_row) mem_scanner.restore_row(d1, g->mem_row);
      }
      granule_seed = g->scan;
      j_start = g->j_done + 1;
    }
  }
  if (j_start == d1 + 1) {
    if constexpr (kWindowMem) mem_scanner.begin_row(d1, cert->row_ok(d1));
    t.emem[t.idx2(d1, d1)] = 0.0;  // E_mem(d1, d1) = 0
    t.best_m1[t.idx2(d1, d1)] = static_cast<std::int32_t>(d1);
  }

  constexpr std::size_t kDefaultGranuleSteps = 64;
  const std::size_t granule_every = ctx.checkpoint_granule() > 0
                                        ? ctx.checkpoint_granule()
                                        : kDefaultGranuleSteps;
  for (std::size_t j = j_start; j <= n; ++j) {
    poll_cancellation(cancel);
    const std::size_t nchunks =
        (j - d1 + kSplitChunkRows - 1) / kSplitChunkRows;
    util::parallel_for(0, nchunks, [&](std::size_t ci) {
      const std::size_t m_lo = d1 + ci * kSplitChunkRows;
      const std::size_t m_hi = std::min(j, m_lo + kSplitChunkRows);
      for (std::size_t m1 = m_lo; m1 < m_hi; ++m1) {
        // -- lock-step with the classic per-(m1, j) body below --
        double* row = plane + m1 * stride;
        if (m1 + 1 == j) {
          row[m1] = 0.0;  // E_verif(d1, m1, m1) = 0
          if (keep_values) t.everif[t.idx3(d1, m1, m1)] = 0.0;
          if constexpr (kWindowV1) {
            chunk_scanners[ci].begin_row(m1, cert->row_ok(m1));
          }
        }
        const double emem_at_m1 = emem_row[m1];
        CHAINCKPT_ASSERT(emem_at_m1 == emem_at_m1,
                         "E_mem(d1, m1) must be finalized before use");
        double best = std::numeric_limits<double>::infinity();
        std::int32_t best_arg = -1;
        if constexpr (kWindowV1) {
          chunk_scanners[ci].step(
              m1, j,
              [&](std::size_t lo, std::size_t hi, double& b,
                  std::int32_t& a) {
                scan(d1, m1, lo, hi, j, emem_at_m1, row, b, a);
              },
              best, best_arg);
        } else {
          scan(d1, m1, m1, j, j, emem_at_m1, row, best, best_arg);
        }
        row[j] = best;
        column[m1] = best;
        if (keep_values) t.everif[t.idx3(d1, m1, j)] = best;
        t.best_v1[t.idx3(d1, m1, j)] = best_arg;
      }
    });
    // E_mem(d1, j): sequential fold over the gathered column, after the
    // barrier -- every row of this step has landed.
    double best = std::numeric_limits<double>::infinity();
    std::int32_t best_arg = -1;
    if constexpr (kWindowMem) {
      mem_scanner.step(
          d1, j,
          [&](std::size_t lo, std::size_t hi, double& b, std::int32_t& a) {
            K::sum(emem_row, column, lo, hi, b, a);
          },
          best, best_arg);
    } else {
      K::sum(emem_row, column, d1, j, best, best_arg);
    }
    t.emem[t.idx2(d1, j)] = best + costs.c_mem_after(j);
    t.best_m1[t.idx2(d1, j)] = best_arg;

    if (ckpt != nullptr && j < n && (j - d1) % granule_every == 0) {
      SolveCheckpoint::SlabGranule g;
      g.d1 = d1;
      g.j_done = j;
      const std::size_t rows = j - d1;
      g.plane_rows.assign(plane + d1 * stride,
                          plane + (d1 + rows) * stride);
      if constexpr (kWindowV1) {
        g.v1_rows.resize(rows);
        for (std::size_t m1 = d1; m1 < j; ++m1) {
          g.v1_rows[m1 - d1] =
              chunk_scanners[(m1 - d1) / kSplitChunkRows].snapshot_row(m1);
        }
      }
      if constexpr (kWindowMem) {
        g.mem_row = mem_scanner.snapshot_row(d1);
        g.has_mem_row = true;
      }
      // Running totals up to j_done, so a resume seeds (not re-adds).
      g.scan = granule_seed;
      if constexpr (kWindowV1) {
        for (const MonotoneScanner& sc : chunk_scanners) g.scan += sc.stats();
      }
      if constexpr (kWindowMem) g.scan += mem_scanner.stats();
      ckpt->commit_granule(std::move(g));
    }
  }
  slab_stats_out = granule_seed;
  if constexpr (kWindowV1) {
    for (const MonotoneScanner& sc : chunk_scanners) {
      slab_stats_out += sc.stats();
    }
  }
  if constexpr (kWindowMem) slab_stats_out += mem_scanner.stats();
}

/// `scan_stats`, when non-null, accumulates the pruning counters of every
/// slab (plus zeros in dense mode).
///
/// When ctx.checkpoint() is set, `t` must be the checkpoint's own tables
/// (the drivers arrange this): every slab whose (d1, j)-frontier reaches
/// j = n commits into the checkpoint at slab exit, slabs an earlier run
/// already committed are skipped at slab entry, and a CancelToken firing
/// mid-run leaves the committed slabs resumable.  Both branches sit
/// OUTSIDE the per-(d1, j) step body, which stays byte-for-byte the
/// uncheckpointed loop.
///
/// Both window modes are compile-time parameters of the implementation:
/// the dense instantiation must stay token-identical to the
/// scanner-free engine -- even a dead runtime branch or an out-of-line
/// call in the step body measurably deoptimizes the fused kernels GCC
/// inlines into the slab (2x swings on the ADMV inner solver) -- so
/// run_level_dp dispatches once on ctx.scan_mode() and the profile.
/// The SIMD tier K follows the same discipline: a compile-time kernel
/// facade (core/simd/argmin_kernels.hpp), dispatched once at driver
/// entry, never a runtime branch in the step body.
template <bool kWindowV1, bool kWindowMem, typename K,
          typename ColumnScanner>
void run_level_dp_impl(const DpContext& ctx, LevelTables& t,
                       const ColumnScanner& scan, ScanStats* scan_stats) {
  const std::size_t n = ctx.n();
  const auto& costs = ctx.costs();
  const CancelToken* cancel = ctx.cancel_token();
  SolveCheckpoint* ckpt = ctx.checkpoint();
  const analysis::QiCertificate* cert =
      (kWindowV1 || kWindowMem) ? &ctx.seg_tables().verify_quadrangle()
                                : nullptr;

  // Per-worker scan accumulators, folded once after the region -- the
  // old per-slab mutex serialized every slab exit through one lock.
  // Sized before the region; worker_index() is clamped on use in case a
  // forced set_parallelism() shrank the count in between.
  struct alignas(64) WorkerStats {
    ScanStats scan;
  };
  const bool fold_local_stats =
      (kWindowV1 || kWindowMem) && ckpt == nullptr && scan_stats != nullptr;
  std::vector<WorkerStats> worker_stats(
      fold_local_stats
          ? static_cast<std::size_t>(std::max(1, util::hardware_parallelism()))
          : 0);

  // Intra-slab parallelism: the tallest slabs (smallest d1) carry the
  // critical path, so they run FIRST, sequentially at the slab level,
  // each with its per-j row work split across the workers (nested
  // regions would serialize, hence not inside the parallel_for).  The
  // split set is capped -- past ~2 slabs per worker the classic schedule
  // balances fine and per-j regions only add overhead.
  std::size_t split_end = 0;
  const std::size_t threshold = ctx.intra_slab_threshold();
  const int workers = util::hardware_parallelism();
  if (threshold > 0 && workers > 1 && !util::in_parallel_region() &&
      n >= threshold) {
    split_end = std::min({n + 1 - threshold,
                          static_cast<std::size_t>(2 * workers), n});
  }
  for (std::size_t d1 = 0; d1 < split_end; ++d1) {
    if (ckpt != nullptr && ckpt->slab_done(d1)) {
      ckpt->note_skipped_slab();
      continue;
    }
    ScanStats slab_stats;
    run_split_slab<kWindowV1, kWindowMem, K>(ctx, t, scan, d1, cert, ckpt,
                                             slab_stats);
    if (ckpt != nullptr) {
      ckpt->commit_slab(d1, slab_stats);
    } else if (fold_local_stats) {
      worker_stats[0].scan += slab_stats;
    }
  }

  // Independent d1 slabs: E_verif(d1, *, *) and E_mem(d1, *).
  const bool keep_values = !t.everif.empty();
  util::parallel_for(split_end, n, [&](std::size_t d1) {
    if (ckpt != nullptr && ckpt->slab_done(d1)) {
      // An earlier (interrupted) run already committed this slab's rows
      // of the tables; they are final -- skip the whole frontier.
      ckpt->note_skipped_slab();
      return;
    }
    SlabScratch& scratch = slab_scratch();
    scratch.ensure(n);
    double* plane = scratch.plane.data();
    double* column = scratch.column.data();
    const std::size_t stride = n + 1;
    const double* emem_row = t.emem.data() + t.idx2(d1, 0);
    MonotoneScanner scanner(kWindowV1 ? n : 0);
    MonotoneScanner mem_scanner(kWindowMem ? n : 0);
    if constexpr (kWindowMem) mem_scanner.begin_row(d1, cert->row_ok(d1));

    t.emem[t.idx2(d1, d1)] = 0.0;  // E_mem(d1, d1) = 0
    t.best_m1[t.idx2(d1, d1)] = static_cast<std::int32_t>(d1);
    for (std::size_t j = d1 + 1; j <= n; ++j) {
      // Cancellation checkpoint: per (d1, j) step, OUTSIDE the fused m1/v1
      // kernels whose codegen must stay untouched (see the dispatch note
      // above).  A fired token unwinds this slab; the other slabs poll the
      // same token and unwind too, and parallel_for rethrows the first
      // SolveInterrupted on the calling thread.
      poll_cancellation(cancel);
      // E_verif(d1, m1, j) for all m1 in [d1, j).
      for (std::size_t m1 = d1; m1 < j; ++m1) {
        double* row = plane + m1 * stride;
        if (m1 + 1 == j) {
          row[m1] = 0.0;  // E_verif(d1, m1, m1) = 0
          if (keep_values) t.everif[t.idx3(d1, m1, m1)] = 0.0;
          if constexpr (kWindowV1) scanner.begin_row(m1, cert->row_ok(m1));
        }
        const double emem_at_m1 = emem_row[m1];
        CHAINCKPT_ASSERT(emem_at_m1 == emem_at_m1,
                         "E_mem(d1, m1) must be finalized before use");
        double best = std::numeric_limits<double>::infinity();
        std::int32_t best_arg = -1;
        if constexpr (kWindowV1) {
          scanner.step(
              m1, j,
              [&](std::size_t lo, std::size_t hi, double& b,
                  std::int32_t& a) {
                scan(d1, m1, lo, hi, j, emem_at_m1, row, b, a);
              },
              best, best_arg);
        } else {
          scan(d1, m1, m1, j, j, emem_at_m1, row, best, best_arg);
        }
        row[j] = best;
        column[m1] = best;
        if (keep_values) t.everif[t.idx3(d1, m1, j)] = best;
        t.best_v1[t.idx3(d1, m1, j)] = best_arg;
      }
      // E_mem(d1, j): contiguous scan over the gathered E_verif column.
      double best = std::numeric_limits<double>::infinity();
      std::int32_t best_arg = -1;
      if constexpr (kWindowMem) {
        mem_scanner.step(
            d1, j,
            [&](std::size_t lo, std::size_t hi, double& b,
                std::int32_t& a) {
              K::sum(emem_row, column, lo, hi, b, a);
            },
            best, best_arg);
      } else {
        K::sum(emem_row, column, d1, j, best, best_arg);
      }
      t.emem[t.idx2(d1, j)] = best + costs.c_mem_after(j);
      t.best_m1[t.idx2(d1, j)] = best_arg;
    }
    // Slab exit: fold this slab's scan counters out, and commit the slab
    // to the checkpoint -- its table rows are final from here on.
    ScanStats slab_stats;
    if constexpr (kWindowV1) slab_stats += scanner.stats();
    if constexpr (kWindowMem) slab_stats += mem_scanner.stats();
    if (ckpt != nullptr) {
      ckpt->commit_slab(d1, slab_stats);
    } else if constexpr (kWindowV1 || kWindowMem) {
      if (fold_local_stats) {
        const std::size_t slot =
            std::min(static_cast<std::size_t>(util::worker_index()),
                     worker_stats.size() - 1);
        worker_stats[slot].scan += slab_stats;
      }
    }
  });
  if (fold_local_stats) {
    for (const WorkerStats& ws : worker_stats) *scan_stats += ws.scan;
  }
  if (ckpt != nullptr && scan_stats != nullptr) {
    // Committed totals across every run of this solve, so an interrupted
    // and resumed solve reports the same counters as an uninterrupted
    // one.
    *scan_stats += ckpt->scan();
  }

  // E_disk: sequential over d2 (cheap O(n^2) pass).
  t.edisk[0] = 0.0;
  t.best_d1[0] = 0;
  if constexpr (K::kVector) {
    // The E_mem column emem_at(·, d2) strides by n + 1; gather it into
    // the contiguous scratch column so the vector argmin_sum runs unit
    // stride.  Same candidates in the same order => same bits.
    SlabScratch& scratch = slab_scratch();
    scratch.ensure(n);
    double* col = scratch.column.data();
    for (std::size_t d2 = 1; d2 <= n; ++d2) {
      for (std::size_t d1 = 0; d1 < d2; ++d1) col[d1] = t.emem_at(d1, d2);
      double best = std::numeric_limits<double>::infinity();
      std::int32_t best_arg = -1;
      K::sum(t.edisk.data(), col, 0, d2, best, best_arg);
      t.edisk[d2] = best + costs.c_disk_after(d2);
      t.best_d1[d2] = best_arg;
    }
  } else {
    for (std::size_t d2 = 1; d2 <= n; ++d2) {
      double best = std::numeric_limits<double>::infinity();
      std::int32_t best_arg = -1;
      for (std::size_t d1 = 0; d1 < d2; ++d1) {
        const double candidate = t.edisk[d1] + t.emem_at(d1, d2);
        if (candidate < best) {
          best = candidate;
          best_arg = static_cast<std::int32_t>(d1);
        }
      }
      t.edisk[d2] = best + costs.c_disk_after(d2);
      t.best_d1[d2] = best_arg;
    }
  }
}

/// K is the SIMD kernel facade the engine's unit-stride folds run on
/// (core/simd/argmin_kernels.hpp); callers dispatch once on
/// ctx.simd_tier() and pass the matching facade explicitly -- the tier
/// must be supported (DpContext clamps) and every tier is bitwise
/// identical.
template <typename K, typename ColumnScanner>
void run_level_dp(const DpContext& ctx, LevelTables& t,
                  const ColumnScanner& scan,
                  ScanStats* scan_stats = nullptr,
                  LevelScanProfile profile = LevelScanProfile::kFull) {
  if (ctx.scan_mode() == ScanMode::kMonotonePruned) {
    if (profile == LevelScanProfile::kFull) {
      run_level_dp_impl<true, true, K>(ctx, t, scan, scan_stats);
    } else {
      run_level_dp_impl<false, true, K>(ctx, t, scan, scan_stats);
    }
  } else {
    run_level_dp_impl<false, false, K>(ctx, t, scan, scan_stats);
  }
}

/// Reconstructs the optimal plan from the argmin tables.
/// `partials(d1, m1, v1, v2)` is called for every chosen verified segment
/// and must return the partial-verification positions strictly inside
/// (v1, v2); pass a lambda returning {} for the partial-free algorithms.
template <typename PartialReconstructor>
plan::ResiliencePlan extract_plan(const DpContext& ctx, const LevelTables& t,
                                  const PartialReconstructor& partials) {
  const std::size_t n = ctx.n();
  plan::ResiliencePlan plan(n);
  std::size_t d2 = n;
  while (d2 > 0) {
    const auto d1 = static_cast<std::size_t>(t.best_d1[d2]);
    CHAINCKPT_ASSERT(t.best_d1[d2] >= 0 && d1 < d2, "broken E_disk argmin");
    plan.set_action(d2, plan::Action::kDiskCheckpoint);
    std::size_t m2 = d2;
    while (m2 > d1) {
      const auto m1 = static_cast<std::size_t>(t.best_m1[t.idx2(d1, m2)]);
      CHAINCKPT_ASSERT(t.best_m1[t.idx2(d1, m2)] >= 0 && m1 >= d1 && m1 < m2,
                       "broken E_mem argmin");
      if (m2 != d2) plan.set_action(m2, plan::Action::kMemoryCheckpoint);
      std::size_t v2 = m2;
      while (v2 > m1) {
        const auto v1 =
            static_cast<std::size_t>(t.best_v1[t.idx3(d1, m1, v2)]);
        CHAINCKPT_ASSERT(
            t.best_v1[t.idx3(d1, m1, v2)] >= 0 && v1 >= m1 && v1 < v2,
            "broken E_verif argmin");
        if (v2 != m2) plan.set_action(v2, plan::Action::kGuaranteedVerif);
        for (std::size_t p : partials(d1, m1, v1, v2)) {
          CHAINCKPT_ASSERT(p > v1 && p < v2,
                           "partial verification outside its segment");
          plan.set_action(p, plan::Action::kPartialVerif);
        }
        v2 = v1;
      }
      m2 = m1;
    }
    d2 = d1;
  }
  plan.validate();
  return plan;
}

}  // namespace chainckpt::core::detail
