// Memoization of final plans, with certified serving under drift.
//
// A fleet-scale embedding sees mostly near-duplicate requests: the same
// chain resubmitted with identical parameters (telemetry re-publishes),
// or with slightly drifted rates and costs (the monitoring pipeline
// refreshed its lambda estimates).  PlanCache turns both into sub-DP
// work:
//
//   * EXACT HIT -- the request's bit-key over everything the requested
//     algorithm's DP reads (chain weights, rates, planning law, and the
//     cost streams; the partial-verification stream and recall only for
//     kADMV, the one engine that reads them) matches a cached entry.
//     The stored OptimizationResult is returned as-is, so an exact hit
//     is bitwise-identical to a fresh solve BY CONSTRUCTION -- the DP is
//     deterministic in exactly the keyed inputs.  No certificate is
//     involved; key equality is the proof.
//
//   * EPSILON HIT -- the key misses but a cached entry exists for the
//     same (algorithm, chain weights).  The entry's
//     core::ValidityCertificate screens the parameter drift (advisory
//     Young/Daly radii) and supplies a *sound* lower bound on the
//     drifted optimum; the cached plan is re-scored by the law-aware
//     analysis::PlanEvaluator under the REQUESTED model, and served only
//     when that score is within (1 + epsilon) of the lower bound --
//     which certifies relative error <= epsilon against the unknown
//     optimum.  The served objective is the evaluator's re-score (the
//     honest expectation under the requested model), not the stale one.
//
//   * CERT REJECTION -- the candidate exists but drifted beyond a radius
//     or failed the epsilon test.  The caller must re-solve; the lookup
//     hands back the candidate's evaluator re-score as a warm upper
//     bound (any plan's score bounds the optimum from above), which
//     BatchSolver uses as a post-solve oracle check.
//
// Eviction is LRU by bytes, mirroring the table cache.  Thread-safety:
// all entry points are safe against each other; the evaluator re-score
// runs outside the lock (entries are immutable after insert except for
// their LRU stamp).
//
// See docs/CACHING.md for the full contract and tuning guidance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "chain/chain.hpp"
#include "core/optimizer.hpp"
#include "core/sensitivity.hpp"
#include "platform/cost_model.hpp"

namespace chainckpt::core {

struct PlanCacheConfig {
  /// LRU byte budget; 0 keeps the cache unbounded.
  std::size_t budget_bytes = 0;
};

/// Monotone counters; every lookup() lands in exactly one of
/// {exact_hits, epsilon_hits, cert_rejections, misses}, so
/// lookups == exact_hits + epsilon_hits + cert_rejections + misses.
struct PlanCacheStats {
  std::size_t lookups = 0;
  std::size_t exact_hits = 0;
  std::size_t epsilon_hits = 0;
  /// A same-shape candidate existed but could not be served: drift beyond
  /// an advisory radius, epsilon disabled, or the re-score failed the
  /// epsilon test.  The caller re-solved.
  std::size_t cert_rejections = 0;
  /// No cached plan for the (algorithm, chain weights) shape at all.
  std::size_t misses = 0;
  std::size_t inserts = 0;
  std::size_t evictions = 0;
  std::size_t evicted_bytes = 0;
};

enum class CacheOutcome {
  kMiss,
  kExactHit,
  kEpsilonHit,
  kCertRejected,
};

struct CacheLookup {
  CacheOutcome outcome = CacheOutcome::kMiss;
  /// Valid for kExactHit (the stored result, bitwise) and kEpsilonHit
  /// (the cached plan with the evaluator's re-score as objective and
  /// zeroed scan counters -- no DP ran).
  OptimizationResult result;
  /// For kEpsilonHit and kCertRejected: the cached plan's expected
  /// makespan under the REQUESTED model -- a sound upper bound on the
  /// drifted optimum (pass it to the re-solve as a warm bound).
  double warm_upper_bound = 0.0;
  bool has_warm_bound = false;
  /// The certificate's sound lower bound on the drifted optimum (0 when
  /// no candidate was found).
  double lower_bound = 0.0;
  /// For kEpsilonHit: the certified relative-error bound
  /// (re-score / lower_bound - 1), always <= the requested epsilon.
  double error_bound = 0.0;
};

class PlanCache {
 public:
  explicit PlanCache(PlanCacheConfig config = {});

  /// Looks the request up.  `epsilon` is the caller's relative-error
  /// tolerance for serving a drifted plan; <= 0 restricts the cache to
  /// exact hits (near-miss candidates still yield kCertRejected with a
  /// warm bound).  Runs the evaluator re-score for near-miss candidates
  /// outside the internal lock.
  CacheLookup lookup(Algorithm algorithm, const chain::TaskChain& chain,
                     const platform::CostModel& costs, double epsilon);

  /// Memoizes a freshly solved result.  Builds the validity certificate
  /// (advisory radii + the base objective for the gamma bound) and
  /// registers the entry as the (algorithm, weights) shape's most recent
  /// candidate.  Inserting an already-cached key refreshes its LRU stamp
  /// only -- by the determinism contract the result is identical.
  void insert(Algorithm algorithm, const chain::TaskChain& chain,
              const platform::CostModel& costs,
              const OptimizationResult& result);

  /// Cheap admission probe: true when a lookup would hit without running
  /// the DP -- the exact key is cached, or a same-shape candidate sits
  /// inside every advisory radius and epsilon allows serving it.  Does
  /// not touch LRU stamps or counters, and does not run the evaluator
  /// (so a probed epsilon-hit may still re-solve if the re-score fails).
  bool probable_hit(Algorithm algorithm, const chain::TaskChain& chain,
                    const platform::CostModel& costs, double epsilon) const;

  /// Evicts least-recently-used entries until at most `budget_bytes`
  /// remain; returns the bytes freed.
  std::size_t evict_to(std::size_t budget_bytes);

  /// Replaces the byte budget and applies it immediately; 0 unbounds.
  void set_budget(std::size_t budget_bytes);

  /// Drops every entry; returns the bytes freed (not counted as
  /// evictions).
  std::size_t clear();

  std::size_t resident_bytes() const;
  std::size_t size() const;
  PlanCacheStats stats_snapshot() const;

 private:
  struct PlanKey {
    std::vector<std::uint64_t> bits;
    bool operator==(const PlanKey& other) const noexcept {
      return bits == other.bits;
    }
  };
  struct PlanKeyHash {
    std::size_t operator()(const PlanKey& key) const noexcept;
  };

  /// Immutable after insert except for the LRU stamp (lock-guarded);
  /// lookups hold the shared_ptr and read result/cert/costs outside the
  /// lock.
  struct Entry {
    OptimizationResult result;
    ValidityCertificate cert;
    platform::CostModel costs;
    PlanKey exact_key;
    PlanKey shape_key;
    std::size_t bytes = 0;
    std::uint64_t last_used = 0;
  };

  /// Exact key: every parameter the algorithm's DP reads, as bit
  /// patterns.  The partial-verification stream and recall join only for
  /// kADMV -- the other engines never read them, so jobs differing only
  /// there share their plans.
  static PlanKey make_exact_key(Algorithm algorithm,
                                const chain::TaskChain& chain,
                                const platform::CostModel& costs);
  /// Shape key: (algorithm, n, weights) -- the near-miss candidate index.
  static PlanKey make_shape_key(Algorithm algorithm,
                                const chain::TaskChain& chain);
  static std::size_t entry_bytes(const Entry& entry) noexcept;

  std::size_t resident_bytes_locked() const noexcept;
  std::size_t evict_locked(std::size_t budget_bytes);

  PlanCacheConfig config_;
  PlanCacheStats stats_;
  std::unordered_map<PlanKey, std::shared_ptr<Entry>, PlanKeyHash> entries_;
  /// Most recent entry per shape key -- the candidate a near-miss lookup
  /// checks the certificate against.
  std::unordered_map<PlanKey, PlanKey, PlanKeyHash> shape_index_;
  std::uint64_t use_tick_ = 0;
  mutable std::mutex mutex_;
};

}  // namespace chainckpt::core
