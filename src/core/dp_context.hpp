// Shared state for the dynamic programming optimizers.
#pragma once

#include <cstddef>

#include "analysis/segment_math.hpp"
#include "chain/chain.hpp"
#include "chain/weight_table.hpp"
#include "plan/plan.hpp"
#include "platform/cost_model.hpp"

namespace chainckpt::core {

/// Result of any optimizer: the chosen plan and its expected makespan
/// (the DP objective value; re-scoring the plan through the analytic
/// evaluator reproduces it).
struct OptimizationResult {
  plan::ResiliencePlan plan;
  double expected_makespan = 0.0;
};

/// Precomputed chain/cost/interval data shared by all DP levels.
class DpContext {
 public:
  /// `max_n` bounds the O(n^3) table memory of the multi-level DPs;
  /// the default (600) corresponds to ~1.7 GiB for the largest table and
  /// is far beyond the paper's n <= 50 regime.
  DpContext(chain::TaskChain chain, platform::CostModel costs,
            std::size_t max_n = 600);

  std::size_t n() const noexcept { return chain_.size(); }
  const chain::TaskChain& chain() const noexcept { return chain_; }
  const platform::CostModel& costs() const noexcept { return costs_; }
  const chain::WeightTable& table() const noexcept { return table_; }
  double lambda_f() const noexcept { return costs_.lambda_f(); }

  analysis::Interval interval(std::size_t i, std::size_t j) const {
    return analysis::make_interval(table_, i, j);
  }

 private:
  chain::TaskChain chain_;
  platform::CostModel costs_;
  chain::WeightTable table_;
};

}  // namespace chainckpt::core
