// Shared state for the dynamic programming optimizers.
#pragma once

#include <cstddef>
#include <memory>

#include "analysis/segment_math.hpp"
#include "analysis/segment_tables.hpp"
#include "chain/chain.hpp"
#include "chain/weight_table.hpp"
#include "core/cancellation.hpp"
#include "core/monotone_scanner.hpp"
#include "core/simd/simd_dispatch.hpp"
#include "plan/plan.hpp"
#include "platform/cost_model.hpp"

namespace chainckpt::core {

class SolveCheckpoint;

/// Result of any optimizer: the chosen plan and its expected makespan
/// (the DP objective value; re-scoring the plan through the analytic
/// evaluator reproduces it).  `scan` holds the prune/fallback counters of
/// the inner argmin scans; it is all-zero for ScanMode::kDense solves and
/// for the heuristic baselines.
struct OptimizationResult {
  plan::ResiliencePlan plan;
  double expected_makespan = 0.0;
  ScanStats scan{};
};

/// Memory layout of the dense O(n^3) level-DP tables.
///
/// kRowMajor keeps each (d1, m1, ·) row contiguous (the layout the value
/// scans were written for).  kTiled blocks every (m1, v2) plane into 8x8
/// tiles so walks along EITHER axis touch full cache lines -- the m1-scan
/// of the E_mem pass and the sparse reconstruction reads stay
/// cache-friendly once a slab plane outgrows L2.  The DP itself runs on a
/// contiguous thread-local scratch plane either way, so the two layouts
/// produce bitwise-identical tables and plans.
enum class TableLayout { kRowMajor, kTiled };

/// Precomputed chain/cost/interval data shared by all DP levels.
class DpContext {
 public:
  static constexpr std::size_t kDefaultMaxN = 900;

  /// `max_n` bounds the O(n^3) table memory of the multi-level DPs; the
  /// default (900) corresponds to ~8.8 GiB across the value + argmin
  /// tables of the largest DP.  The tiled layout and the scratch-plane
  /// hot path keep that regime compute-bound; pass a larger max_n
  /// explicitly if you have the memory.  `build_row_tables = false`
  /// skips the SegmentTables row arrays that only the ADMV partial
  /// solver reads (see analysis::SegmentTables).
  DpContext(chain::TaskChain chain, platform::CostModel costs,
            std::size_t max_n = kDefaultMaxN, bool build_row_tables = true);

  /// Shared-table constructor: borrows a prebuilt (WeightTable,
  /// SegmentTables) pair instead of building its own -- the O(n^2)
  /// coefficient tables are the dominant per-solve setup cost, and
  /// core::BatchSolver reuses one pair across every job with the same
  /// (chain weights, cost model) key.  Both pointers must be non-null,
  /// sized for this chain, and built from THIS chain and cost model
  /// (byte-identical inputs); the constructor checks the sizes, the caller
  /// owns the stronger contract.
  DpContext(chain::TaskChain chain, platform::CostModel costs,
            std::shared_ptr<const chain::WeightTable> table,
            std::shared_ptr<const analysis::SegmentTables> seg_tables,
            std::size_t max_n = kDefaultMaxN);

  /// Selects how the DPs run their inner argmin scans (see
  /// core/monotone_scanner.hpp).  Dense by default; set to
  /// kMonotonePruned before handing the context to an optimizer.  The AD
  /// baseline's degenerate single-cell scan ignores the knob.
  void set_scan_mode(ScanMode mode) noexcept { scan_mode_ = mode; }
  ScanMode scan_mode() const noexcept { return scan_mode_; }

  /// Attaches a cooperative cancellation/deadline token (see
  /// core/cancellation.hpp); the DP drivers poll it at their checkpoint
  /// placements and throw SolveInterrupted when it fires.  The token must
  /// outlive every solve run on this context; nullptr (the default)
  /// disables the checkpoints' work entirely.  Not owned.
  void set_cancel_token(const CancelToken* token) noexcept {
    cancel_ = token;
  }
  const CancelToken* cancel_token() const noexcept { return cancel_; }

  /// Advisory upper bound on the optimal objective, supplied by the plan
  /// cache when a stale-but-rescored plan exists (its evaluator score
  /// bounds the optimum from above).  The DP kernels deliberately do NOT
  /// prune on it -- that would break the bitwise-determinism contract of
  /// cached vs cold solves -- but BatchSolver uses it as a post-solve
  /// oracle guard (a fresh objective above the bound indicates a solver
  /// or certificate bug; see BatchStats::warm_bound_violations).  <= 0
  /// (the default) means "no bound known".
  void set_warm_upper_bound(double bound) noexcept {
    warm_upper_bound_ = bound;
  }
  double warm_upper_bound() const noexcept { return warm_upper_bound_; }

  /// Attaches a resumable checkpoint (core/solve_checkpoint.hpp) for the
  /// multi-level DPs (kADMVstar/kADMV): completed d1 slabs are committed
  /// into it, and a run that starts on a checkpoint holding progress for
  /// the same workload skips them.  The checkpoint must outlive the solve
  /// and belong to this solve exclusively while it runs.  nullptr (the
  /// default) solves without checkpointing; the single-level DPs ignore
  /// it.  Not owned.
  void set_checkpoint(SolveCheckpoint* checkpoint) noexcept {
    checkpoint_ = checkpoint;
  }
  SolveCheckpoint* checkpoint() const noexcept { return checkpoint_; }

  /// Per-solve SIMD tier override for the argmin kernels (see
  /// core/simd/simd_dispatch.hpp).  Requests are clamped to the best tier
  /// the CPU/build actually supports -- an override can narrow the
  /// dispatch (benches, equivalence batteries), never force an
  /// unsupported ISA.  Without an override the process-wide
  /// simd::active_tier() (detected tier clamped by CHAINCKPT_SIMD)
  /// applies.  Every tier produces bitwise-identical plans, objectives,
  /// and scan counters.
  void set_simd_tier(simd::SimdTier tier) noexcept {
    simd_override_ = simd::clamp_tier(tier);
    has_simd_override_ = true;
  }
  simd::SimdTier simd_tier() const noexcept {
    return has_simd_override_ ? simd_override_ : simd::active_tier();
  }

  /// Minimum slab height (rows = n - d1) at which the multi-level DPs
  /// split a slab's per-j row work across workers instead of assigning
  /// the whole slab to one (see run_level_dp_impl).  0 disables
  /// splitting.  The default comes from CHAINCKPT_INTRA_SLAB when set,
  /// else 256.  Results are bitwise identical for every value.
  void set_intra_slab_threshold(std::size_t rows) noexcept {
    intra_slab_threshold_ = rows;
  }
  std::size_t intra_slab_threshold() const noexcept {
    return intra_slab_threshold_;
  }

  /// j-steps between sub-slab checkpoint granule commits while a split
  /// slab runs on a SolveCheckpoint; 0 (the default) picks an automatic
  /// spacing.  Granules only bound re-execution after an interruption --
  /// any value yields bitwise-identical results.
  void set_checkpoint_granule(std::size_t steps) noexcept {
    checkpoint_granule_ = steps;
  }
  std::size_t checkpoint_granule() const noexcept {
    return checkpoint_granule_;
  }

  std::size_t n() const noexcept { return chain_.size(); }
  const chain::TaskChain& chain() const noexcept { return chain_; }
  const platform::CostModel& costs() const noexcept { return costs_; }
  const chain::WeightTable& table() const noexcept { return *table_; }
  /// Hoisted SoA interval algebra for the DP inner kernels.
  const analysis::SegmentTables& seg_tables() const noexcept {
    return *seg_tables_;
  }
  double lambda_f() const noexcept { return costs_.lambda_f(); }

  analysis::Interval interval(std::size_t i, std::size_t j) const {
    return analysis::make_interval(*table_, i, j);
  }

  /// Process default for intra_slab_threshold(): CHAINCKPT_INTRA_SLAB
  /// parsed once, else 256.
  static std::size_t default_intra_slab_threshold() noexcept;

 private:
  chain::TaskChain chain_;
  platform::CostModel costs_;
  ScanMode scan_mode_ = ScanMode::kDense;
  const CancelToken* cancel_ = nullptr;
  double warm_upper_bound_ = 0.0;
  SolveCheckpoint* checkpoint_ = nullptr;
  simd::SimdTier simd_override_ = simd::SimdTier::kScalar;
  bool has_simd_override_ = false;
  std::size_t intra_slab_threshold_ = default_intra_slab_threshold();
  std::size_t checkpoint_granule_ = 0;
  /// shared_ptr so a BatchSolver cache entry and every context borrowing
  /// it stay valid independently of each other's lifetime; the
  /// build-your-own constructors simply own the single reference.
  std::shared_ptr<const chain::WeightTable> table_;
  std::shared_ptr<const analysis::SegmentTables> seg_tables_;
};

}  // namespace chainckpt::core
