#include "core/dp_context.hpp"

#include <cstdlib>
#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace chainckpt::core {

namespace {

void check_context(const chain::TaskChain& chain,
                   const platform::CostModel& costs, std::size_t max_n) {
  CHAINCKPT_REQUIRE(!chain.empty(), "optimizer needs a non-empty chain");
  CHAINCKPT_REQUIRE(chain.size() <= max_n,
                    "chain too long for the dense DP tables; raise max_n "
                    "explicitly if you have the memory");
  if (!costs.is_uniform()) {
    // Per-position cost models must cover every task of this chain; probe
    // the last position so failures surface at construction time.
    (void)costs.c_disk_after(chain.size());
  }
}

}  // namespace

std::size_t DpContext::default_intra_slab_threshold() noexcept {
  static const std::size_t value = [] {
    constexpr std::size_t kDefault = 256;
    const char* env = std::getenv("CHAINCKPT_INTRA_SLAB");
    if (env == nullptr || *env == '\0') return kDefault;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0') {
      util::log_warn() << "CHAINCKPT_INTRA_SLAB=\"" << env
                       << "\" is not a row count; using " << kDefault;
      return kDefault;
    }
    return static_cast<std::size_t>(parsed);
  }();
  return value;
}

DpContext::DpContext(chain::TaskChain chain, platform::CostModel costs,
                     std::size_t max_n, bool build_row_tables)
    : chain_(std::move(chain)), costs_(std::move(costs)) {
  check_context(chain_, costs_, max_n);
  table_ = std::make_shared<const chain::WeightTable>(
      chain_, costs_.lambda_f(), costs_.lambda_s());
  seg_tables_ = std::make_shared<const analysis::SegmentTables>(
      *table_, costs_, build_row_tables);
}

DpContext::DpContext(chain::TaskChain chain, platform::CostModel costs,
                     std::shared_ptr<const chain::WeightTable> table,
                     std::shared_ptr<const analysis::SegmentTables> seg_tables,
                     std::size_t max_n)
    : chain_(std::move(chain)),
      costs_(std::move(costs)),
      table_(std::move(table)),
      seg_tables_(std::move(seg_tables)) {
  check_context(chain_, costs_, max_n);
  CHAINCKPT_REQUIRE(table_ != nullptr && seg_tables_ != nullptr,
                    "shared-table DpContext needs non-null tables");
  CHAINCKPT_REQUIRE(
      table_->n() == chain_.size() && seg_tables_->n() == chain_.size(),
      "shared tables were built for a different chain length");
}

}  // namespace chainckpt::core
