#include "core/dp_context.hpp"

#include "util/assert.hpp"

namespace chainckpt::core {

DpContext::DpContext(chain::TaskChain chain, platform::CostModel costs,
                     std::size_t max_n, bool build_row_tables)
    : chain_(std::move(chain)),
      costs_(std::move(costs)),
      table_(chain_, costs_.lambda_f(), costs_.lambda_s()),
      seg_tables_(table_, costs_, build_row_tables) {
  CHAINCKPT_REQUIRE(!chain_.empty(), "optimizer needs a non-empty chain");
  CHAINCKPT_REQUIRE(chain_.size() <= max_n,
                    "chain too long for the dense DP tables; raise max_n "
                    "explicitly if you have the memory");
  if (!costs_.is_uniform()) {
    // Per-position cost models must cover every task of this chain; probe
    // the last position so failures surface at construction time.
    (void)costs_.c_disk_after(chain_.size());
  }
}

}  // namespace chainckpt::core
