#include "core/dp_single_level.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "analysis/segment_math.hpp"
#include "core/cancellation.hpp"
#include "core/monotone_scanner.hpp"
#include "core/simd/argmin_kernels.hpp"
#include "util/arena.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace chainckpt::core {

namespace {

// Streaming formulation.  The m1 = d1 restriction makes every E_verif slab
// one row: E_verif(d1, ·) depends only on itself, never on E_disk, and
// E_disk(d2) = min_{d1 < d2} E_disk(d1) + E_verif(d1, d2) + C_M + C_D
// consumes each row exactly once.  So instead of materializing the dense
// (n+1)^2 value + argmin tables, the solver streams rows in blocks:
//
//   1. compute a block of E_verif rows in parallel (one O(n) row per d1);
//   2. fold the block into the running E_disk minima in ascending d1
//      order, finalizing E_disk(d1) right before row d1 contributes --
//      every contribution from d1' < d1 has landed by then, whether d1'
//      sits in an earlier block or earlier in this one.
//
// Peak DP memory drops from O(n^2) to block x O(n) rows plus the O(n)
// E_disk arrays (the O(n^2) SegmentTables coefficient columns are shared
// context, not per-solve state).  The fold applies candidates in the same
// ascending-d1 order with the same strict-less argmin as the dense scan,
// and each row is produced by the identical fused Eq. (4) kernel, so
// objectives AND plans are bitwise identical to the dense formulation.
//
// Plan extraction re-derives the v1 argmin chain by re-streaming the one
// row per chosen disk segment (O((d2-d1)^2) work, O(n) scratch); the
// chosen segments partition [0, n], so reconstruction costs at most one
// extra row pass over the chain.

/// Streamed scratch: the row block plus the O(n) disk-level arrays,
/// registered with the arena pool (grow-only, reused across solves on the
/// same thread, reclaimed via core::BatchSolver::release_scratch()).
struct SingleLevelScratch final : util::ArenaBlock {
  std::vector<double> rows;
  std::vector<double> run_best;
  std::vector<double> edisk;
  std::vector<std::int32_t> best_d1;
  std::vector<std::int32_t> row_args;

  ~SingleLevelScratch() override { unregister(); }

  void ensure(std::size_t n, std::size_t block) {
    if (rows.size() < block * (n + 1)) rows.resize(block * (n + 1));
    if (run_best.size() < n + 1) {
      run_best.resize(n + 1);
      edisk.resize(n + 1);
      best_d1.resize(n + 1);
      row_args.resize(n + 1);
    }
  }

  std::size_t resident_bytes() const noexcept override {
    return util::vector_bytes(rows) + util::vector_bytes(run_best) +
           util::vector_bytes(edisk) + util::vector_bytes(best_d1) +
           util::vector_bytes(row_args);
  }
  void release() noexcept override {
    util::free_vector(rows);
    util::free_vector(run_best);
    util::free_vector(edisk);
    util::free_vector(best_d1);
    util::free_vector(row_args);
  }
};

SingleLevelScratch& single_level_scratch() {
  static thread_local SingleLevelScratch scratch;
  return scratch;
}

/// Rows per streamed block: enough to keep every worker busy, a handful
/// when this solve is itself one item of an outer parallel loop (nested
/// regions run serially, so a large block would only cost memory).  The
/// block size only shapes the schedule -- the fold consumes rows in
/// ascending d1 order regardless -- so results are identical for any value.
std::size_t stream_block_rows(std::size_t n) {
  const std::size_t workers =
      util::in_parallel_region()
          ? 1
          : static_cast<std::size_t>(std::max(1, util::hardware_parallelism()));
  return std::min(n, std::max<std::size_t>(8, std::min<std::size_t>(workers, 256)));
}

/// Streams the E_verif(d1, ·) row of the m1 = d1 DP into row[d1..limit]:
/// E_verif(d1, d1) = 0 and, for j > d1, the Eq. (4) scan over v1 fused on
/// the hoisted SoA columns (see analysis::SegmentTables) -- E_mem(d1, d1)
/// is 0 and R_M is the memory copy bundled with the disk checkpoint at d1.
/// When `args` is non-null the v1 argmins are recorded for plan
/// extraction.  Bitwise the recurrence the dense tables used to hold.
///
/// kWindowed prunes the v1 scans through the gate-and-guard window of
/// core::MonotoneScanner; it requires a scanner + certificate and
/// allow_extra_verifications (the AD single-cell scans gain nothing).
/// The mode -- and the SIMD kernel facade K -- are compile-time
/// parameters so the scalar dense instantiation keeps the original
/// branch-free loop body (see run_level_dp_impl for the rationale).
/// Plan extraction re-streams rows with the same mode and tier, so the
/// recovered argmins match the folded values bit for bit either way.
template <bool kWindowed, typename K>
void stream_everif_row(const DpContext& ctx, std::size_t d1,
                       std::size_t limit, bool allow_extra_verifications,
                       double* row, std::int32_t* args,
                       MonotoneScanner* scanner,
                       const analysis::QiCertificate* cert) {
  const auto& cm = ctx.costs();
  const auto& seg = ctx.seg_tables();
  row[d1] = 0.0;
  const double k1 = cm.r_disk_after(d1) + 0.0;  // left e_mem is 0 here
  const double k2 = cm.r_mem_after(d1);
  if constexpr (kWindowed) scanner->begin_row(d1, cert->row_ok(d1));
  for (std::size_t j = d1 + 1; j <= limit; ++j) {
    const double* exvg = seg.exvg_col(j);
    const double* b = seg.b_col(j);
    const double* c = seg.c_col(j);
    const double* d = seg.d_col(j);
    const auto kernel = [&](std::size_t lo, std::size_t hi, double& best,
                            std::int32_t& best_arg) {
      K::affine(row, exvg, b, c, d, k1, k2, lo, hi, best, best_arg);
    };
    double best = std::numeric_limits<double>::infinity();
    std::int32_t best_arg = -1;
    if constexpr (kWindowed) {
      scanner->step(d1, j, kernel, best, best_arg);
    } else {
      // AD restricts the segment to start at d1 (no interior verifs).
      kernel(d1, allow_extra_verifications ? j : d1 + 1, best, best_arg);
    }
    row[j] = best;
    if (args != nullptr) args[j] = best_arg;
  }
}

/// The solve body, instantiated per SIMD kernel tier K (dispatch happens
/// once in optimize_single_level; K = ScalarKernels is the historic
/// code path, the vector tiers are bitwise identical by contract).
template <typename K>
OptimizationResult optimize_single_level_impl(const DpContext& ctx,
                                              SingleLevelOptions options) {
  const std::size_t n = ctx.n();
  const auto& cm = ctx.costs();
  const CancelToken* cancel = ctx.cancel_token();
  const std::size_t stride = n + 1;
  const std::size_t block = stream_block_rows(n);
  const bool pruned = ctx.scan_mode() == ScanMode::kMonotonePruned &&
                      options.allow_extra_verifications;
  const analysis::QiCertificate* cert =
      pruned ? &ctx.seg_tables().verify_quadrangle() : nullptr;
  ScanStats scan_stats;
  // Per-worker scan accumulators, folded after each block region --
  // replaces the old per-row mutex (same rationale as run_level_dp_impl).
  struct alignas(64) WorkerStats {
    ScanStats scan;
  };
  std::vector<WorkerStats> worker_stats(
      pruned
          ? static_cast<std::size_t>(std::max(1, util::hardware_parallelism()))
          : 0);
  SingleLevelScratch& s = single_level_scratch();
  s.ensure(n, block);
  std::fill(s.run_best.begin(), s.run_best.begin() + stride,
            std::numeric_limits<double>::infinity());
  std::fill(s.best_d1.begin(), s.best_d1.begin() + stride,
            std::int32_t{-1});
  s.edisk[0] = 0.0;

  for (std::size_t b0 = 0; b0 < n; b0 += block) {
    const std::size_t b1 = std::min(n, b0 + block);
    double* rows = s.rows.data();
    util::parallel_for(b0, b1, [&](std::size_t d1) {
      // Cancellation checkpoint: per streamed row (a row is O(n) scan
      // steps), keeping the fused Eq. (4) kernel itself untouched.
      poll_cancellation(cancel);
      if (pruned) {
        MonotoneScanner scanner(n);
        stream_everif_row<true, K>(ctx, d1, n,
                                   options.allow_extra_verifications,
                                   rows + (d1 - b0) * stride, nullptr,
                                   &scanner, cert);
        const std::size_t slot =
            std::min(static_cast<std::size_t>(util::worker_index()),
                     worker_stats.size() - 1);
        worker_stats[slot].scan += scanner.stats();
      } else {
        stream_everif_row<false, K>(ctx, d1, n,
                                    options.allow_extra_verifications,
                                    rows + (d1 - b0) * stride, nullptr,
                                    nullptr, nullptr);
      }
    });
    // Fold the block into the running E_disk minima.  E_disk(d1) excludes
    // the segment value but pays the memory + disk checkpoint pair at d1
    // (ADV* bundles them), mirroring the dense pass term for term.
    for (std::size_t d1 = b0; d1 < b1; ++d1) {
      if (d1 > 0) {
        CHAINCKPT_ASSERT(s.best_d1[d1] >= 0, "broken E_disk argmin");
        s.edisk[d1] =
            s.run_best[d1] + cm.c_mem_after(d1) + cm.c_disk_after(d1);
      }
      const double base = s.edisk[d1];
      const double* row = rows + (d1 - b0) * stride;
      K::fold(row, base, static_cast<std::int32_t>(d1), s.run_best.data(),
              s.best_d1.data(), d1 + 1, n + 1);
    }
  }
  for (const WorkerStats& ws : worker_stats) scan_stats += ws.scan;
  CHAINCKPT_ASSERT(s.best_d1[n] >= 0, "broken E_disk argmin");
  s.edisk[n] = s.run_best[n] + cm.c_mem_after(n) + cm.c_disk_after(n);
  const double expected_makespan = s.edisk[n];

  // Plan extraction: walk the disk chain, re-streaming one E_verif row per
  // chosen segment to recover the v1 argmins.
  plan::ResiliencePlan plan(n);
  double* row = s.rows.data();
  std::int32_t* args = s.row_args.data();
  std::size_t d2 = n;
  while (d2 > 0) {
    poll_cancellation(cancel);  // one re-streamed row per chosen segment
    const auto d1 = static_cast<std::size_t>(s.best_d1[d2]);
    CHAINCKPT_ASSERT(s.best_d1[d2] >= 0 && d1 < d2, "broken E_disk argmin");
    plan.set_action(d2, plan::Action::kDiskCheckpoint);
    if (pruned) {
      // Same mode as the fold, so the re-streamed values and argmins are
      // the ones the running minima consumed.
      MonotoneScanner scanner(n);
      stream_everif_row<true, K>(ctx, d1, d2,
                                 options.allow_extra_verifications, row,
                                 args, &scanner, cert);
      scan_stats += scanner.stats();
    } else {
      stream_everif_row<false, K>(ctx, d1, d2,
                                  options.allow_extra_verifications, row,
                                  args, nullptr, nullptr);
    }
    std::size_t v2 = d2;
    while (v2 > d1) {
      const auto v1 = static_cast<std::size_t>(args[v2]);
      CHAINCKPT_ASSERT(args[v2] >= 0 && v1 < v2, "broken E_verif argmin");
      if (v2 != d2) plan.set_action(v2, plan::Action::kGuaranteedVerif);
      v2 = v1;
    }
    d2 = d1;
  }
  plan.validate();
  return OptimizationResult{std::move(plan), expected_makespan, scan_stats};
}

}  // namespace

OptimizationResult optimize_single_level(const DpContext& ctx,
                                         SingleLevelOptions options) {
  if (const CancelToken* cancel = ctx.cancel_token()) cancel->poll_now();
  switch (ctx.simd_tier()) {
    case simd::SimdTier::kAvx512:
      return optimize_single_level_impl<simd::Avx512Kernels>(ctx, options);
    case simd::SimdTier::kAvx2:
      return optimize_single_level_impl<simd::Avx2Kernels>(ctx, options);
    default:
      return optimize_single_level_impl<simd::ScalarKernels>(ctx, options);
  }
}

OptimizationResult optimize_single_level(const chain::TaskChain& chain,
                                         const platform::CostModel& costs,
                                         SingleLevelOptions options) {
  const DpContext ctx(chain, costs, DpContext::kDefaultMaxN,
                      /*build_row_tables=*/false);
  return optimize_single_level(ctx, options);
}

}  // namespace chainckpt::core
