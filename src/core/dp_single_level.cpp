#include "core/dp_single_level.hpp"

#include <limits>
#include <vector>

#include "analysis/segment_math.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace chainckpt::core {

namespace {

/// Dense (n+1)^2 tables for E_verif(d1, v2) with m1 pinned to d1.
struct SingleLevelTables {
  std::size_t n;
  std::vector<double> everif;
  std::vector<std::int32_t> best_v1;
  std::vector<double> edisk;
  std::vector<std::int32_t> best_d1;

  explicit SingleLevelTables(std::size_t n_in)
      : n(n_in),
        everif((n + 1) * (n + 1), std::numeric_limits<double>::quiet_NaN()),
        best_v1((n + 1) * (n + 1), -1),
        edisk(n + 1, std::numeric_limits<double>::quiet_NaN()),
        best_d1(n + 1, -1) {}

  std::size_t idx(std::size_t d1, std::size_t v2) const {
    return d1 * (n + 1) + v2;
  }
};

}  // namespace

OptimizationResult optimize_single_level(const chain::TaskChain& chain,
                                         const platform::CostModel& costs,
                                         SingleLevelOptions options) {
  const DpContext ctx(chain, costs, DpContext::kDefaultMaxN,
                      /*build_row_tables=*/false);
  const std::size_t n = ctx.n();
  const auto& cm = ctx.costs();
  SingleLevelTables t(n);

  // E_verif(d1, v2) with m1 = d1: E_mem(d1, d1) = 0 and R_M is the memory
  // copy bundled with the disk checkpoint at d1.  Eq. (4) is fused over
  // the hoisted SoA columns (see analysis::SegmentTables); each slab's
  // E_verif row is contiguous, so the v1 scan reads flat arrays only.
  const auto& seg = ctx.seg_tables();
  util::parallel_for(0, n, [&](std::size_t d1) {
    double* everif_row = t.everif.data() + t.idx(d1, 0);
    everif_row[d1] = 0.0;
    const double k1 = cm.r_disk_after(d1) + 0.0;  // left e_mem is 0 here
    const double k2 = cm.r_mem_after(d1);
    for (std::size_t j = d1 + 1; j <= n; ++j) {
      const double* exvg = seg.exvg_col(j);
      const double* b = seg.b_col(j);
      const double* c = seg.c_col(j);
      const double* d = seg.d_col(j);
      double best = std::numeric_limits<double>::infinity();
      std::int32_t best_arg = -1;
      // AD restricts the segment to start at d1 (no interior verifs).
      const std::size_t v1_last =
          options.allow_extra_verifications ? j - 1 : d1;
      for (std::size_t v1 = d1; v1 <= v1_last; ++v1) {
        const double ev = everif_row[v1];
        const double candidate =
            ev + (exvg[v1] + b[v1] * k1 + c[v1] * ev + d[v1] * k2);
        if (candidate < best) {
          best = candidate;
          best_arg = static_cast<std::int32_t>(v1);
        }
      }
      everif_row[j] = best;
      t.best_v1[t.idx(d1, j)] = best_arg;
    }
  });

  // E_disk(d2) = min_{d1} E_disk(d1) + E_verif(d1, d2) + C_M + C_D: the
  // segment value excludes the checkpoint bundle at d2, which ADV* pays as
  // a memory + disk checkpoint pair.
  t.edisk[0] = 0.0;
  for (std::size_t d2 = 1; d2 <= n; ++d2) {
    double best = std::numeric_limits<double>::infinity();
    std::int32_t best_arg = -1;
    for (std::size_t d1 = 0; d1 < d2; ++d1) {
      const double candidate = t.edisk[d1] + t.everif[t.idx(d1, d2)];
      if (candidate < best) {
        best = candidate;
        best_arg = static_cast<std::int32_t>(d1);
      }
    }
    t.edisk[d2] = best + cm.c_mem_after(d2) + cm.c_disk_after(d2);
    t.best_d1[d2] = best_arg;
  }

  // Plan extraction.
  plan::ResiliencePlan plan(n);
  std::size_t d2 = n;
  while (d2 > 0) {
    const auto d1 = static_cast<std::size_t>(t.best_d1[d2]);
    CHAINCKPT_ASSERT(t.best_d1[d2] >= 0 && d1 < d2, "broken E_disk argmin");
    plan.set_action(d2, plan::Action::kDiskCheckpoint);
    std::size_t v2 = d2;
    while (v2 > d1) {
      const auto v1 = static_cast<std::size_t>(t.best_v1[t.idx(d1, v2)]);
      CHAINCKPT_ASSERT(t.best_v1[t.idx(d1, v2)] >= 0 && v1 < v2,
                       "broken E_verif argmin");
      if (v2 != d2) plan.set_action(v2, plan::Action::kGuaranteedVerif);
      v2 = v1;
    }
    d2 = d1;
  }
  plan.validate();
  return OptimizationResult{std::move(plan), t.edisk[n]};
}

}  // namespace chainckpt::core
