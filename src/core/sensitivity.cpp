#include "core/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "analysis/first_order.hpp"
#include "platform/cost_model.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

namespace chainckpt::core {

namespace {

double optimized_makespan(const chain::TaskChain& chain,
                          const platform::Platform& platform,
                          Algorithm algorithm) {
  platform::Platform p = platform;
  p.validate();
  const platform::CostModel costs(p);
  return optimize(algorithm, chain, costs).expected_makespan;
}

using Mutator = std::function<void(platform::Platform&, double factor)>;

SensitivityRow row_for(const chain::TaskChain& chain,
                       const platform::Platform& base,
                       const SensitivityOptions& options,
                       const std::string& name, double base_value,
                       const Mutator& scale) {
  SensitivityRow row;
  row.parameter = name;
  row.base_value = base_value;
  if (base_value == 0.0) return row;  // elasticity undefined; report 0
  const double h = options.relative_step;
  platform::Platform up = base;
  scale(up, 1.0 + h);
  platform::Platform down = base;
  scale(down, 1.0 - h);
  const double e_up = optimized_makespan(chain, up, options.algorithm);
  const double e_down = optimized_makespan(chain, down, options.algorithm);
  const double e_base = optimized_makespan(chain, base, options.algorithm);
  // d log E / d log p ~ (E+ - E-) / (2 h E0).
  row.elasticity = (e_up - e_down) / (2.0 * h * e_base);
  return row;
}

}  // namespace

std::vector<SensitivityRow> parameter_sensitivity(
    const chain::TaskChain& chain, const platform::Platform& platform,
    const SensitivityOptions& options) {
  CHAINCKPT_REQUIRE(options.relative_step > 0.0 &&
                        options.relative_step < 0.5,
                    "relative step must lie in (0, 0.5)");
  std::vector<SensitivityRow> rows;
  rows.push_back(row_for(chain, platform, options, "lambda_f",
                         platform.lambda_f,
                         [](platform::Platform& p, double f) {
                           p.lambda_f *= f;
                         }));
  rows.push_back(row_for(chain, platform, options, "lambda_s",
                         platform.lambda_s,
                         [](platform::Platform& p, double f) {
                           p.lambda_s *= f;
                         }));
  rows.push_back(row_for(chain, platform, options, "C_D (=R_D)",
                         platform.c_disk,
                         [](platform::Platform& p, double f) {
                           p.c_disk *= f;
                           p.r_disk *= f;
                         }));
  rows.push_back(row_for(chain, platform, options, "C_M (=R_M)",
                         platform.c_mem,
                         [](platform::Platform& p, double f) {
                           p.c_mem *= f;
                           p.r_mem *= f;
                         }));
  rows.push_back(row_for(chain, platform, options, "V*",
                         platform.v_guaranteed,
                         [](platform::Platform& p, double f) {
                           p.v_guaranteed *= f;
                         }));
  rows.push_back(row_for(chain, platform, options, "V", platform.v_partial,
                         [](platform::Platform& p, double f) {
                           p.v_partial *= f;
                         }));
  rows.push_back(row_for(chain, platform, options, "miss g = 1-r",
                         platform.miss_probability(),
                         [](platform::Platform& p, double f) {
                           p.recall = 1.0 - (1.0 - p.recall) * f;
                         }));
  return rows;
}

namespace {

bool same_bits(double a, double b) noexcept {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Relative drift |b/a - 1|; 0 when bitwise-equal, +inf when the base is
/// zero but the request is not (no relative scale exists).
double rel_drift(double a, double b) noexcept {
  if (same_bits(a, b)) return 0.0;
  if (a == 0.0) return std::numeric_limits<double>::infinity();
  return std::abs(b / a - 1.0);
}

/// True when the two planning laws select the same coefficient build --
/// every exponential-reducing law (including Weibull at shape exactly 1)
/// is one class; Weibull laws compare by shape bits.
bool same_law(const platform::PlanningLaw& a,
              const platform::PlanningLaw& b) noexcept {
  if (a.is_exponential() != b.is_exponential()) return false;
  if (a.is_exponential()) return true;
  return same_bits(a.weibull_shape, b.weibull_shape);
}

}  // namespace

ValidityCertificate make_validity_certificate(
    const plan::ResiliencePlan& plan, const platform::Platform& platform,
    double base_objective, double total_weight) {
  const plan::ActionCounts counts = plan.total_counts();
  const analysis::FirstOrderPrediction fo =
      analysis::first_order_prediction(platform);
  // Per group, screen with whichever count is denser -- the plan's actual
  // placements or the first-order prediction.  Denser mechanisms react to
  // smaller drifts, so max() is the conservative choice.
  const auto denser = [](std::size_t a, std::size_t b) {
    return std::max(a, b);
  };
  ValidityCertificate cert;
  cert.radius_lambda_f = analysis::stability_radius(
      denser(counts.disk, fo.expected_disk(total_weight)));
  cert.radius_lambda_s = analysis::stability_radius(
      denser(counts.memory + counts.guaranteed,
             fo.expected_memory(total_weight) +
                 fo.expected_verifs(total_weight)));
  cert.radius_cost = analysis::stability_radius(
      denser(counts.disk + counts.memory,
             fo.expected_disk(total_weight) +
                 fo.expected_memory(total_weight)));
  cert.radius_verif = analysis::stability_radius(
      denser(counts.guaranteed + counts.partial,
             fo.expected_verifs(total_weight)));
  cert.radius_miss = analysis::stability_radius(counts.partial);
  cert.base_objective = base_objective;
  cert.total_weight = total_weight;
  // Plans that deploy partial verifications were certainly priced under
  // the III-B framework.  PlanCache::insert additionally sets this for
  // every kADMV entry -- that engine prices partial-free optima under
  // III-B too.
  cert.partial_framework = plan.uses_partial_verifications();
  return cert;
}

DriftCheck check_certificate(const ValidityCertificate& cert,
                             const platform::CostModel& base,
                             const platform::CostModel& request,
                             std::size_t n) {
  CHAINCKPT_REQUIRE(n >= 1, "drift check needs a non-empty chain");
  DriftCheck check;

  // --- Advisory screen: per-group relative drift vs the radii. ---------
  const bool law_ok = same_law(base.planning_law(), request.planning_law());
  double d_lf = rel_drift(base.lambda_f(), request.lambda_f());
  if (!law_ok) {
    d_lf = std::numeric_limits<double>::infinity();
  } else if (!base.planning_law().is_exponential()) {
    d_lf = std::max(d_lf, rel_drift(base.planning_law().weibull_shape,
                                    request.planning_law().weibull_shape));
  }
  const double d_ls = rel_drift(base.lambda_s(), request.lambda_s());
  const double d_miss = rel_drift(base.miss(), request.miss());
  const std::size_t sweep =
      (base.is_uniform() && request.is_uniform()) ? 1 : n;
  double d_cost = 0.0;
  double d_verif = 0.0;
  for (std::size_t i = 1; i <= sweep; ++i) {
    d_cost = std::max(
        {d_cost, rel_drift(base.c_disk_after(i), request.c_disk_after(i)),
         rel_drift(base.c_mem_after(i), request.c_mem_after(i)),
         rel_drift(base.r_disk_after(i), request.r_disk_after(i)),
         rel_drift(base.r_mem_after(i), request.r_mem_after(i))});
    d_verif = std::max({d_verif,
                        rel_drift(base.v_guaranteed_after(i),
                                  request.v_guaranteed_after(i)),
                        rel_drift(base.v_partial_after(i),
                                  request.v_partial_after(i))});
  }
  check.max_drift = std::max({d_lf, d_ls, d_miss, d_cost, d_verif});
  if (check.max_drift == 0.0) {
    check.outcome = DriftOutcome::kExactMatch;
  } else if (d_lf <= cert.radius_lambda_f && d_ls <= cert.radius_lambda_s &&
             d_cost <= cert.radius_cost && d_verif <= cert.radius_verif &&
             d_miss <= cert.radius_miss) {
    check.outcome = DriftOutcome::kWithinRadius;
  } else {
    check.outcome = DriftOutcome::kBeyondRadius;
  }

  // --- Sound lower bound on E*(theta_req). -----------------------------
  // Unconditionally, every task executes at least once: E* >= sum of
  // weights.  When no rate-like parameter decreased and the law is
  // unchanged, the gamma-scaling argument (see sensitivity.hpp) tightens
  // this to gamma * E*(theta_base).
  check.lower_bound = cert.total_weight;
  const bool rates_nondecreasing =
      law_ok &&
      (!base.planning_law().is_exponential()
           ? same_bits(base.planning_law().weibull_shape,
                       request.planning_law().weibull_shape)
           : true) &&
      request.lambda_f() >= base.lambda_f() &&
      request.lambda_s() >= base.lambda_s() &&
      request.miss() >= base.miss();
  if (rates_nondecreasing) {
    double gamma = 1.0;
    bool valid = true;
    const auto fold = [&](double base_v, double req_v) {
      if (base_v < 0.0 || req_v < 0.0) {
        valid = false;
        return;
      }
      if (base_v > 0.0) gamma = std::min(gamma, req_v / base_v);
    };
    for (std::size_t i = 1; i <= sweep && valid; ++i) {
      fold(base.c_disk_after(i), request.c_disk_after(i));
      fold(base.c_mem_after(i), request.c_mem_after(i));
      fold(base.r_disk_after(i), request.r_disk_after(i));
      fold(base.r_mem_after(i), request.r_mem_after(i));
      if (cert.partial_framework) {
        // Section III-B pricing: V* and V have mixed-sign coefficients;
        // (V, V* - V) is the non-negative basis (see sensitivity.hpp).
        // A request with V > V* has no valid transform -- fold() trips
        // on the negative difference and the weight floor remains.
        fold(base.v_partial_after(i), request.v_partial_after(i));
        fold(base.v_guaranteed_after(i) - base.v_partial_after(i),
             request.v_guaranteed_after(i) - request.v_partial_after(i));
      } else {
        // Eq. (4) pricing never reads V: folding it would only shrink
        // gamma for a parameter the objective ignores.
        fold(base.v_guaranteed_after(i), request.v_guaranteed_after(i));
      }
    }
    if (valid && gamma > 0.0) {
      const double scaled = gamma * cert.base_objective;
      if (scaled > check.lower_bound) {
        check.lower_bound = scaled;
        check.scaled_bound = true;
      }
    }
  }
  return check;
}

std::string render_sensitivity(const std::vector<SensitivityRow>& rows) {
  util::TextTable table(
      {"parameter", "base value", "elasticity dlogE/dlogp"});
  for (const auto& row : rows) {
    table.add_row({row.parameter, util::TextTable::num(row.base_value, 6),
                   util::TextTable::num(row.elasticity, 5)});
  }
  return table.render();
}

}  // namespace chainckpt::core
