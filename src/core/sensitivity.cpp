#include "core/sensitivity.hpp"

#include <cmath>
#include <functional>

#include "platform/cost_model.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

namespace chainckpt::core {

namespace {

double optimized_makespan(const chain::TaskChain& chain,
                          const platform::Platform& platform,
                          Algorithm algorithm) {
  platform::Platform p = platform;
  p.validate();
  const platform::CostModel costs(p);
  return optimize(algorithm, chain, costs).expected_makespan;
}

using Mutator = std::function<void(platform::Platform&, double factor)>;

SensitivityRow row_for(const chain::TaskChain& chain,
                       const platform::Platform& base,
                       const SensitivityOptions& options,
                       const std::string& name, double base_value,
                       const Mutator& scale) {
  SensitivityRow row;
  row.parameter = name;
  row.base_value = base_value;
  if (base_value == 0.0) return row;  // elasticity undefined; report 0
  const double h = options.relative_step;
  platform::Platform up = base;
  scale(up, 1.0 + h);
  platform::Platform down = base;
  scale(down, 1.0 - h);
  const double e_up = optimized_makespan(chain, up, options.algorithm);
  const double e_down = optimized_makespan(chain, down, options.algorithm);
  const double e_base = optimized_makespan(chain, base, options.algorithm);
  // d log E / d log p ~ (E+ - E-) / (2 h E0).
  row.elasticity = (e_up - e_down) / (2.0 * h * e_base);
  return row;
}

}  // namespace

std::vector<SensitivityRow> parameter_sensitivity(
    const chain::TaskChain& chain, const platform::Platform& platform,
    const SensitivityOptions& options) {
  CHAINCKPT_REQUIRE(options.relative_step > 0.0 &&
                        options.relative_step < 0.5,
                    "relative step must lie in (0, 0.5)");
  std::vector<SensitivityRow> rows;
  rows.push_back(row_for(chain, platform, options, "lambda_f",
                         platform.lambda_f,
                         [](platform::Platform& p, double f) {
                           p.lambda_f *= f;
                         }));
  rows.push_back(row_for(chain, platform, options, "lambda_s",
                         platform.lambda_s,
                         [](platform::Platform& p, double f) {
                           p.lambda_s *= f;
                         }));
  rows.push_back(row_for(chain, platform, options, "C_D (=R_D)",
                         platform.c_disk,
                         [](platform::Platform& p, double f) {
                           p.c_disk *= f;
                           p.r_disk *= f;
                         }));
  rows.push_back(row_for(chain, platform, options, "C_M (=R_M)",
                         platform.c_mem,
                         [](platform::Platform& p, double f) {
                           p.c_mem *= f;
                           p.r_mem *= f;
                         }));
  rows.push_back(row_for(chain, platform, options, "V*",
                         platform.v_guaranteed,
                         [](platform::Platform& p, double f) {
                           p.v_guaranteed *= f;
                         }));
  rows.push_back(row_for(chain, platform, options, "V", platform.v_partial,
                         [](platform::Platform& p, double f) {
                           p.v_partial *= f;
                         }));
  rows.push_back(row_for(chain, platform, options, "miss g = 1-r",
                         platform.miss_probability(),
                         [](platform::Platform& p, double f) {
                           p.recall = 1.0 - (1.0 - p.recall) * f;
                         }));
  return rows;
}

std::string render_sensitivity(const std::vector<SensitivityRow>& rows) {
  util::TextTable table(
      {"parameter", "base value", "elasticity dlogE/dlogp"});
  for (const auto& row : rows) {
    table.add_row({row.parameter, util::TextTable::num(row.base_value, 6),
                   util::TextTable::num(row.elasticity, 5)});
  }
  return table.render();
}

}  // namespace chainckpt::core
