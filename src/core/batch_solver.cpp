#include "core/batch_solver.hpp"

#include <cstring>
#include <utility>

#include "util/arena.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace chainckpt::core {

namespace {

/// The four dynamic programs read the shared coefficient tables; the
/// heuristic baselines score candidate plans through the analytic
/// evaluator and gain nothing from a prebuilt context.
bool is_dp_algorithm(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kAD:
    case Algorithm::kADVstar:
    case Algorithm::kADMVstar:
    case Algorithm::kADMV:
      return true;
    case Algorithm::kPeriodic:
    case Algorithm::kDaly:
      return false;
  }
  return false;
}

/// Only the ADMV inner DP reads the row-oriented coefficient arrays.
bool needs_row_tables(Algorithm algorithm) {
  return algorithm == Algorithm::kADMV;
}

std::uint64_t to_bits(double value) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

}  // namespace

BatchSolver::BatchSolver(BatchOptions options) : options_(options) {}

std::size_t BatchSolver::TableKeyHash::operator()(
    const TableKey& key) const noexcept {
  // FNV-1a over the 64-bit words, byte by byte.
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t word : key.bits) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (word >> shift) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return static_cast<std::size_t>(h);
}

BatchSolver::TableKey BatchSolver::make_key(
    const chain::TaskChain& chain, const platform::CostModel& costs) {
  TableKey key;
  const std::size_t n = chain.size();
  key.bits.reserve(3 + 3 * n);
  key.bits.push_back(static_cast<std::uint64_t>(n));
  key.bits.push_back(to_bits(costs.lambda_f()));
  key.bits.push_back(to_bits(costs.lambda_s()));
  for (std::size_t i = 1; i <= n; ++i) {
    key.bits.push_back(to_bits(chain.weight(i)));
  }
  for (std::size_t i = 1; i <= n; ++i) {
    key.bits.push_back(to_bits(costs.v_guaranteed_after(i)));
    key.bits.push_back(to_bits(costs.v_partial_after(i)));
  }
  return key;
}

std::vector<OptimizationResult> BatchSolver::solve(
    const std::vector<BatchJob>& jobs) {
  std::vector<OptimizationResult> results(jobs.size());

  // Phase 1 (serial): key the DP jobs, resolve cache entries, and collect
  // the distinct missing tables as build tasks.  Entry pointers are stable
  // under rehash, so jobs can hold them across the phases.
  struct Build {
    TableEntry* entry;
    const BatchJob* job;
    bool rows;
  };
  std::vector<Build> builds;
  std::unordered_map<TableEntry*, std::size_t> build_index;
  std::vector<TableEntry*> job_entry(jobs.size(), nullptr);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const BatchJob& job = jobs[i];
    CHAINCKPT_REQUIRE(!job.chain.empty(),
                      "batch job needs a non-empty chain");
    if (!is_dp_algorithm(job.algorithm)) continue;
    CHAINCKPT_REQUIRE(job.chain.size() <= options_.max_n,
                      "batch job chain longer than BatchOptions::max_n");
    auto [it, inserted] = cache_.try_emplace(make_key(job.chain, job.costs));
    TableEntry& entry = it->second;
    job_entry[i] = &entry;
    const bool rows = needs_row_tables(job.algorithm);
    // An entry built without rows is rebuilt in place when an ADMV job
    // joins its key: the column arrays are identical either way, so the
    // non-ADMV jobs sharing the entry keep their exact results.
    if (entry.seg == nullptr || (rows && !entry.seg->has_rows())) {
      const auto pending = build_index.find(&entry);
      if (pending == build_index.end()) {
        build_index.emplace(&entry, builds.size());
        builds.push_back(Build{&entry, &job, rows});
      } else {
        builds[pending->second].rows |= rows;
        ++stats_.tables_reused;
      }
    } else {
      ++stats_.tables_reused;
    }
  }

  // Phase 2: build the missing tables, in parallel over distinct keys --
  // each task writes one distinct, pre-inserted cache entry.
  const auto build_one = [&](std::size_t b) {
    const Build& task = builds[b];
    const BatchJob& job = *task.job;
    auto table = std::make_shared<const chain::WeightTable>(
        job.chain, job.costs.lambda_f(), job.costs.lambda_s());
    auto seg = std::make_shared<const analysis::SegmentTables>(
        *table, job.costs, task.rows);
    task.entry->table = std::move(table);
    task.entry->seg = std::move(seg);
  };
  if (options_.parallel) {
    util::parallel_for(0, builds.size(), build_one);
  } else {
    for (std::size_t b = 0; b < builds.size(); ++b) build_one(b);
  }
  stats_.tables_built += builds.size();

  // Phase 3: the work-queue.  Dynamic scheduling load-balances the
  // heterogeneous jobs; each solver's own slab parallelism degrades to
  // serial inside the region, so workers stay busy on whole chains.
  const auto solve_one = [&](std::size_t i) {
    const BatchJob& job = jobs[i];
    if (TableEntry* entry = job_entry[i]) {
      DpContext ctx(job.chain, job.costs, entry->table, entry->seg,
                    options_.max_n);
      ctx.set_scan_mode(options_.scan_mode);
      results[i] = optimize(job.algorithm, ctx, options_.layout);
    } else {
      results[i] = optimize(job.algorithm, job.chain, job.costs);
    }
  };
  if (options_.parallel) {
    util::parallel_for(0, jobs.size(), solve_one);
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) solve_one(i);
  }
  stats_.jobs_solved += jobs.size();
  for (const OptimizationResult& result : results) {
    stats_.scan += result.scan;
  }
  return results;
}

std::size_t BatchSolver::release_scratch() {
  std::size_t freed = 0;
  for (const auto& [key, entry] : cache_) {
    if (entry.table != nullptr) freed += entry.table->resident_bytes();
    if (entry.seg != nullptr) freed += entry.seg->resident_bytes();
  }
  cache_.clear();
  freed += util::release_all_arenas();
  stats_.released_bytes += freed;
  return freed;
}

std::size_t BatchSolver::resident_bytes() const {
  std::size_t total = util::arena_resident_bytes();
  for (const auto& [key, entry] : cache_) {
    if (entry.table != nullptr) total += entry.table->resident_bytes();
    if (entry.seg != nullptr) total += entry.seg->resident_bytes();
  }
  return total;
}

}  // namespace chainckpt::core
