#include "core/batch_solver.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/arena.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace chainckpt::core {

namespace {

/// The four dynamic programs read the shared coefficient tables; the
/// heuristic baselines score candidate plans through the analytic
/// evaluator and gain nothing from a prebuilt context.
bool is_dp_algorithm(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kAD:
    case Algorithm::kADVstar:
    case Algorithm::kADMVstar:
    case Algorithm::kADMV:
      return true;
    case Algorithm::kPeriodic:
    case Algorithm::kDaly:
      return false;
  }
  return false;
}

/// Only the ADMV inner DP reads the row-oriented coefficient arrays.
bool needs_row_tables(Algorithm algorithm) {
  return algorithm == Algorithm::kADMV;
}

/// The multi-level engines commit per-d1 slab progress into a
/// core::SolveCheckpoint; the streamed single-level DPs and the
/// heuristics are cheap enough to just restart.
bool is_checkpointable(Algorithm algorithm) {
  return algorithm == Algorithm::kADMVstar || algorithm == Algorithm::kADMV;
}

std::uint64_t to_bits(double value) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

}  // namespace

BatchSolver::BatchSolver(BatchOptions options)
    : options_(options),
      plan_cache_(PlanCacheConfig{options.plan_cache_budget_bytes}) {}

std::size_t BatchSolver::TableKeyHash::operator()(
    const TableKey& key) const noexcept {
  // FNV-1a over the 64-bit words, byte by byte.
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t word : key.bits) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (word >> shift) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return static_cast<std::size_t>(h);
}

BatchSolver::TableKey BatchSolver::make_key(
    const chain::TaskChain& chain, const platform::CostModel& costs) {
  TableKey key;
  const std::size_t n = chain.size();
  key.bits.reserve(5 + 3 * n);
  key.bits.push_back(static_cast<std::uint64_t>(n));
  key.bits.push_back(to_bits(costs.lambda_f()));
  key.bits.push_back(to_bits(costs.lambda_s()));
  // The planning law changes every coefficient stream SegmentTables
  // builds, so it must discriminate cache entries; laws that reduce to the
  // exponential build share its key (and therefore its tables).
  const platform::PlanningLaw& law = costs.planning_law();
  if (law.is_exponential()) {
    key.bits.push_back(0);
    key.bits.push_back(to_bits(1.0));
  } else {
    key.bits.push_back(static_cast<std::uint64_t>(law.law));
    key.bits.push_back(to_bits(law.weibull_shape));
  }
  for (std::size_t i = 1; i <= n; ++i) {
    key.bits.push_back(to_bits(chain.weight(i)));
  }
  for (std::size_t i = 1; i <= n; ++i) {
    key.bits.push_back(to_bits(costs.v_guaranteed_after(i)));
    key.bits.push_back(to_bits(costs.v_partial_after(i)));
  }
  return key;
}

BatchSolver::TableKey BatchSolver::make_checkpoint_key(
    const TableKey& tables_key, Algorithm algorithm, TableLayout layout,
    ScanMode scan_mode) {
  TableKey key = tables_key;
  // One metadata word: anything that changes the tables a resumed run
  // writes (algorithm picks the engine and whether E_verif values are
  // kept; layout changes idx3; scan mode changes the committed counters).
  key.bits.push_back((static_cast<std::uint64_t>(algorithm) << 16) |
                     (static_cast<std::uint64_t>(layout) << 8) |
                     static_cast<std::uint64_t>(scan_mode));
  return key;
}

std::vector<OptimizationResult> BatchSolver::solve(
    const std::vector<BatchJob>& jobs) {
  std::vector<OptimizationResult> results(jobs.size());

  // Phase 1 (serial): key the DP jobs, resolve cache entries, and collect
  // the distinct missing tables as build tasks.  Entry pointers are stable
  // under rehash, so jobs can hold them across the phases.
  struct Build {
    TableEntry* entry;
    const BatchJob* job;
    bool rows;
  };
  std::vector<Build> builds;
  std::unordered_map<TableEntry*, std::size_t> build_index;
  std::vector<TableEntry*> job_entry(jobs.size(), nullptr);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const BatchJob& job = jobs[i];
    CHAINCKPT_REQUIRE(!job.chain.empty(),
                      "batch job needs a non-empty chain");
    if (!is_dp_algorithm(job.algorithm)) continue;
    CHAINCKPT_REQUIRE(job.chain.size() <= options_.max_n,
                      "batch job chain longer than BatchOptions::max_n");
    auto [it, inserted] = cache_.try_emplace(make_key(job.chain, job.costs));
    TableEntry& entry = it->second;
    entry.last_used = ++use_tick_;
    job_entry[i] = &entry;
    const bool rows = needs_row_tables(job.algorithm);
    // An entry built without rows is rebuilt in place when an ADMV job
    // joins its key: the column arrays are identical either way, so the
    // non-ADMV jobs sharing the entry keep their exact results.
    if (entry.seg == nullptr || (rows && !entry.seg->has_rows())) {
      const auto pending = build_index.find(&entry);
      if (pending == build_index.end()) {
        build_index.emplace(&entry, builds.size());
        builds.push_back(Build{&entry, &job, rows});
      } else {
        builds[pending->second].rows |= rows;
        ++stats_.tables_reused;
      }
    } else {
      ++stats_.tables_reused;
    }
  }

  // Phase 2: build the missing tables, in parallel over distinct keys --
  // each task writes one distinct, pre-inserted cache entry.
  const auto build_one = [&](std::size_t b) {
    const Build& task = builds[b];
    const BatchJob& job = *task.job;
    auto table = std::make_shared<const chain::WeightTable>(
        job.chain, job.costs.lambda_f(), job.costs.lambda_s());
    auto seg = std::make_shared<const analysis::SegmentTables>(
        *table, job.costs, task.rows);
    task.entry->table = std::move(table);
    task.entry->seg = std::move(seg);
  };
  if (options_.parallel) {
    util::parallel_for(0, builds.size(), build_one);
  } else {
    for (std::size_t b = 0; b < builds.size(); ++b) build_one(b);
  }
  stats_.tables_built += builds.size();

  // Phase 3: the work-queue.  Dynamic scheduling load-balances the
  // heterogeneous jobs; each solver's own slab parallelism degrades to
  // serial inside the region, so workers stay busy on whole chains.
  const auto solve_one = [&](std::size_t i) {
    const BatchJob& job = jobs[i];
    if (TableEntry* entry = job_entry[i]) {
      DpContext ctx(job.chain, job.costs, entry->table, entry->seg,
                    options_.max_n);
      ctx.set_scan_mode(options_.scan_mode);
      results[i] = optimize(job.algorithm, ctx, options_.layout);
    } else {
      results[i] = optimize(job.algorithm, job.chain, job.costs);
    }
  };
  if (options_.parallel) {
    util::parallel_for(0, jobs.size(), solve_one);
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) solve_one(i);
  }
  stats_.jobs_solved += jobs.size();
  for (const OptimizationResult& result : results) {
    stats_.scan += result.scan;
  }
  if (options_.cache_budget_bytes != 0) {
    const std::lock_guard<std::mutex> lock(mutex_);
    evict_locked(options_.cache_budget_bytes);
  }
  return results;
}

OptimizationResult BatchSolver::solve_job(const BatchJob& job,
                                          const CancelToken* cancel) {
  CHAINCKPT_REQUIRE(!job.chain.empty(), "batch job needs a non-empty chain");

  // The heuristic baselines read no shared tables; poll once and run.
  if (!is_dp_algorithm(job.algorithm)) {
    poll_cancellation(cancel);
    OptimizationResult result = optimize(job.algorithm, job.chain, job.costs);
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.jobs_solved;
    return result;
  }

  CHAINCKPT_REQUIRE(job.chain.size() <= options_.max_n,
                    "batch job chain longer than BatchOptions::max_n");

  // Plan-cache front door: an exact key match returns the memoized
  // result bitwise; a certified epsilon-hit returns the cached plan
  // re-scored under this job's model.  Either way the DP (and the table
  // cache) is never touched.  A near-miss that cannot be served leaves a
  // warm upper bound for the post-solve oracle check below.
  double warm_bound = 0.0;
  bool have_warm_bound = false;
  if (options_.enable_plan_cache) {
    const double epsilon = job.cache_epsilon >= 0.0
                               ? job.cache_epsilon
                               : options_.plan_cache_epsilon;
    CacheLookup cached =
        plan_cache_.lookup(job.algorithm, job.chain, job.costs, epsilon);
    if (cached.outcome == CacheOutcome::kExactHit ||
        cached.outcome == CacheOutcome::kEpsilonHit) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.jobs_solved;
      return cached.result;
    }
    if (cached.has_warm_bound) {
      warm_bound = cached.warm_upper_bound;
      have_warm_bound = true;
    }
  }

  const bool rows = needs_row_tables(job.algorithm);
  const TableKey key = make_key(job.chain, job.costs);

  // Acquire (building if necessary) the shared table pair.  References
  // into the map survive rehashes; the loop re-looks the key up after
  // every wait, so a concurrent eviction of the entry just causes a
  // rebuild instead of a dangling pointer.
  std::shared_ptr<const chain::WeightTable> table;
  std::shared_ptr<const analysis::SegmentTables> seg;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      TableEntry& entry = cache_.try_emplace(key).first->second;
      if (entry.seg != nullptr && (!rows || entry.seg->has_rows())) {
        entry.last_used = ++use_tick_;
        ++stats_.tables_reused;
        table = entry.table;
        seg = entry.seg;
        break;
      }
      if (entry.building) {
        build_done_.wait(lock);
        continue;  // re-resolve: built, row-upgraded, or even evicted
      }
      entry.building = true;
      // A rowless entry being row-upgraded keeps its WeightTable: the
      // table depends only on key material, so rebuilding it would be
      // pure duplicate work (the SegmentTables must rebuild -- rows are
      // a construction-time property).
      std::shared_ptr<const chain::WeightTable> built_table = entry.table;
      // Incremental path: find a donor whose streams this build can
      // patch instead of recomputing.  A row upgrade's own rowless entry
      // is the ideal donor (mask = the row streams); otherwise any ready
      // entry over the same chain weights (key words [5, 5+n)) donates
      // whatever the parameter drift left untouched.  The patch
      // constructors reproduce a from-scratch build byte for byte, so
      // the determinism contract is unaffected.
      std::shared_ptr<const analysis::SegmentTables> donor_seg = entry.seg;
      std::shared_ptr<const chain::WeightTable> donor_table;
      if (donor_seg == nullptr) {
        const std::size_t n = job.chain.size();
        for (const auto& [other_key, other] : cache_) {
          if (other.building || other.seg == nullptr) continue;
          if (other_key.bits[0] != key.bits[0]) continue;
          if (!std::equal(other_key.bits.begin() + 5,
                          other_key.bits.begin() + 5 + n,
                          key.bits.begin() + 5)) {
            continue;
          }
          donor_table = other.table;
          donor_seg = other.seg;
          break;
        }
      }
      lock.unlock();
      std::shared_ptr<const analysis::SegmentTables> built_seg;
      bool patched = false;
      analysis::PatchSummary patch_summary;
      try {
        if (built_table == nullptr) {
          built_table =
              donor_table != nullptr
                  ? std::make_shared<const chain::WeightTable>(
                        *donor_table, job.costs.lambda_f(),
                        job.costs.lambda_s())
                  : std::make_shared<const chain::WeightTable>(
                        job.chain, job.costs.lambda_f(),
                        job.costs.lambda_s());
        }
        if (donor_seg != nullptr) {
          built_seg = std::make_shared<const analysis::SegmentTables>(
              *donor_seg, *built_table, job.costs, rows, &patch_summary);
          patched = true;
        } else {
          built_seg = std::make_shared<const analysis::SegmentTables>(
              *built_table, job.costs, rows);
        }
      } catch (...) {
        lock.lock();
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
          it->second.building = false;
          // A fresh entry that never got tables would otherwise linger
          // as an unevictable zero-byte zombie; a row-upgrade failure
          // keeps the still-valid rowless pair.
          if (it->second.seg == nullptr) cache_.erase(it);
        }
        build_done_.notify_all();
        throw;
      }
      lock.lock();
      // Re-resolve after re-locking: the unlocked build may have raced a
      // rehash (pointer-stable, but re-looking up is simpler to reason
      // about than held references across the gap).
      TableEntry& built = cache_.try_emplace(key).first->second;
      built.table = std::move(built_table);
      built.seg = std::move(built_seg);
      built.building = false;
      built.last_used = ++use_tick_;
      ++stats_.tables_built;
      if (patched) {
        ++stats_.tables_patched;
        stats_.patched_streams_reused += patch_summary.streams_reused;
      }
      build_done_.notify_all();
      table = built.table;
      seg = built.seg;
      break;
    }
  }

  // Check out any retained checkpoint for this exact workload: an earlier
  // interrupted solve_job() left its completed slabs here, and this run
  // resumes them.  Checkout is exclusive -- a concurrent solve of the
  // same workload simply starts fresh (last interrupt wins the store).
  TableKey ckpt_key;
  std::shared_ptr<SolveCheckpoint> ckpt;
  bool resumed = false;
  if (options_.keep_checkpoints && is_checkpointable(job.algorithm)) {
    ckpt_key = make_checkpoint_key(key, job.algorithm, options_.layout,
                                   options_.scan_mode);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = checkpoints_.find(ckpt_key);
      if (it != checkpoints_.end()) {
        ckpt = std::move(it->second.checkpoint);
        checkpoints_.erase(it);
        resumed = ckpt->has_progress();
      }
    }
    if (ckpt == nullptr) ckpt = std::make_shared<SolveCheckpoint>();
  }

  // The solve itself runs outside the lock -- the shared_ptrs keep the
  // tables alive even if the entry is evicted mid-solve.
  DpContext ctx(job.chain, job.costs, std::move(table), std::move(seg),
                options_.max_n);
  ctx.set_scan_mode(options_.scan_mode);
  ctx.set_cancel_token(cancel);
  ctx.set_checkpoint(ckpt.get());
  if (have_warm_bound) ctx.set_warm_upper_bound(warm_bound);
  OptimizationResult result;
  try {
    result = optimize(job.algorithm, ctx, options_.layout);
  } catch (const SolveInterrupted&) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.jobs_interrupted;
      if (ckpt != nullptr && ckpt->has_progress()) {
        // Retain the partial progress for the job's next submission; a
        // checkpoint another interrupt stored for the same key while we
        // ran is superseded (ours is at least as fresh).
        CheckpointEntry& entry = checkpoints_[ckpt_key];
        if (entry.checkpoint != nullptr) ++stats_.checkpoints_dropped;
        entry.checkpoint = std::move(ckpt);
        entry.last_used = ++use_tick_;
        ++stats_.checkpoints_saved;
        if (options_.checkpoint_budget_bytes != 0) {
          evict_checkpoints_locked(options_.checkpoint_budget_bytes);
        }
      }
    }
    // The dead job's thread-local scratch on THIS thread is reusable but
    // idle from here on; give it back now instead of parking it until
    // the next global release_scratch() (ISSUE: eager release).  Inside
    // a service worker the inner solve ran serially, so this frees the
    // whole job's scratch.
    const std::size_t freed = util::release_current_thread_arenas();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stats_.released_bytes += freed;
      stats_.interrupted_released_bytes += freed;
    }
    throw;
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.jobs_solved;
    stats_.scan += result.scan;
    if (resumed) {
      ++stats_.checkpoints_resumed;
      stats_.checkpoint_slabs_skipped += ckpt->last_run_slabs_skipped();
    }
    // Oracle guard: the rejected candidate's re-score upper-bounds the
    // optimum, so a fresh solve above it (beyond rounding) means the
    // solver or the certificate lied.
    if (have_warm_bound &&
        result.expected_makespan > warm_bound * (1.0 + 1e-9)) {
      ++stats_.warm_bound_violations;
    }
    if (options_.cache_budget_bytes != 0) {
      evict_locked(options_.cache_budget_bytes);
    }
  }
  if (options_.enable_plan_cache) {
    plan_cache_.insert(job.algorithm, job.chain, job.costs, result);
  }
  return result;
}

std::size_t BatchSolver::release_scratch() {
  std::size_t freed = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    freed = cache_bytes_locked() + checkpoint_bytes_locked();
    cache_.clear();
    checkpoints_.clear();
  }
  freed += plan_cache_.clear();
  freed += util::release_all_arenas();
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_.released_bytes += freed;
  return freed;
}

std::size_t BatchSolver::discard_checkpoints() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t freed = checkpoint_bytes_locked();
  stats_.checkpoints_dropped += checkpoints_.size();
  checkpoints_.clear();
  return freed;
}

std::size_t BatchSolver::checkpoint_resident_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return checkpoint_bytes_locked();
}

std::size_t BatchSolver::evict_to(std::size_t budget_bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evict_locked(budget_bytes);
}

void BatchSolver::set_cache_budget(std::size_t budget_bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  options_.cache_budget_bytes = budget_bytes;
  if (budget_bytes != 0) evict_locked(budget_bytes);
}

void BatchSolver::set_plan_cache_budget(std::size_t budget_bytes) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    options_.plan_cache_budget_bytes = budget_bytes;
  }
  plan_cache_.set_budget(budget_bytes);
}

bool BatchSolver::probable_plan_cache_hit(const BatchJob& job) const {
  if (!options_.enable_plan_cache || !is_dp_algorithm(job.algorithm) ||
      job.chain.empty()) {
    return false;
  }
  const double epsilon = job.cache_epsilon >= 0.0
                             ? job.cache_epsilon
                             : options_.plan_cache_epsilon;
  return plan_cache_.probable_hit(job.algorithm, job.chain, job.costs,
                                  epsilon);
}

PlanCacheStats BatchSolver::plan_cache_stats() const {
  return plan_cache_.stats_snapshot();
}

std::size_t BatchSolver::plan_cache_resident_bytes() const {
  return plan_cache_.resident_bytes();
}

std::size_t BatchSolver::plan_cache_size() const {
  return plan_cache_.size();
}

std::size_t BatchSolver::resident_bytes() const {
  std::size_t total = util::arena_resident_bytes() +
                      plan_cache_.resident_bytes();
  const std::lock_guard<std::mutex> lock(mutex_);
  return total + cache_bytes_locked() + checkpoint_bytes_locked();
}

std::size_t BatchSolver::cache_resident_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_bytes_locked();
}

BatchStats BatchSolver::stats_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t BatchSolver::entry_bytes(const TableEntry& entry) noexcept {
  std::size_t bytes = 0;
  if (entry.table != nullptr) bytes += entry.table->resident_bytes();
  if (entry.seg != nullptr) bytes += entry.seg->resident_bytes();
  return bytes;
}

std::size_t BatchSolver::cache_bytes_locked() const noexcept {
  std::size_t total = 0;
  for (const auto& [key, entry] : cache_) total += entry_bytes(entry);
  return total;
}

std::size_t BatchSolver::checkpoint_bytes_locked() const noexcept {
  std::size_t total = 0;
  for (const auto& [key, entry] : checkpoints_) {
    if (entry.checkpoint != nullptr) total += entry.checkpoint->resident_bytes();
  }
  return total;
}

std::size_t BatchSolver::evict_checkpoints_locked(std::size_t budget_bytes) {
  std::size_t freed = 0;
  std::size_t resident = checkpoint_bytes_locked();
  while (resident > budget_bytes && !checkpoints_.empty()) {
    auto victim = checkpoints_.begin();
    for (auto it = checkpoints_.begin(); it != checkpoints_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    const std::size_t bytes = victim->second.checkpoint->resident_bytes();
    checkpoints_.erase(victim);
    resident -= bytes;
    freed += bytes;
    ++stats_.checkpoints_dropped;
  }
  return freed;
}

std::size_t BatchSolver::evict_locked(std::size_t budget_bytes) {
  // Sweep table-less leftovers first (a phase-1 validation throw in
  // solve() can strand freshly keyed entries); they hold no bytes but
  // would otherwise occupy map nodes forever.
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (!it->second.building && it->second.seg == nullptr) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
  std::size_t freed = 0;
  std::size_t resident = cache_bytes_locked();
  while (resident > budget_bytes) {
    // Oldest stamp first.  Entries mid-build are skipped: their bytes are
    // claimed by the builder and will be accounted at its own evict pass.
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second.building || it->second.seg == nullptr) continue;
      if (victim == cache_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == cache_.end()) break;
    const std::size_t bytes = entry_bytes(victim->second);
    cache_.erase(victim);
    resident -= bytes;
    freed += bytes;
    ++stats_.tables_evicted;
    stats_.evicted_bytes += bytes;
  }
  return freed;
}

}  // namespace chainckpt::core
