#include "core/budget.hpp"

#include <vector>

#include "analysis/evaluator.hpp"
#include "util/assert.hpp"

namespace chainckpt::core {

namespace {

/// Cost model equal to `base` with `disk_penalty`/`memory_penalty` added
/// to the *interior* checkpoint placement prices.  Recovery costs and the
/// final position's prices are unchanged, so the penalty only steers
/// placement decisions.
platform::CostModel penalize(const platform::CostModel& base, std::size_t n,
                             double disk_penalty, double memory_penalty) {
  std::vector<double> c_disk(n), c_mem(n), v_g(n), v_p(n), r_d(n), r_m(n);
  for (std::size_t i = 1; i <= n; ++i) {
    const bool interior = i < n;
    c_disk[i - 1] = base.c_disk_after(i) + (interior ? disk_penalty : 0.0);
    c_mem[i - 1] = base.c_mem_after(i) + (interior ? memory_penalty : 0.0);
    v_g[i - 1] = base.v_guaranteed_after(i);
    v_p[i - 1] = base.v_partial_after(i);
    r_d[i - 1] = base.r_disk_after(i);
    r_m[i - 1] = base.r_mem_after(i);
  }
  return platform::CostModel(base.platform(), std::move(c_disk),
                             std::move(c_mem), std::move(v_g),
                             std::move(v_p), std::move(r_d), std::move(r_m));
}

struct Counts {
  std::size_t disk = 0;
  std::size_t memory = 0;
};

Counts interior_counts(const plan::ResiliencePlan& plan) {
  const auto c = plan.interior_counts();
  return Counts{c.disk, c.memory};
}

bool within(const Counts& counts, const BudgetConstraint& budget) {
  if (budget.max_interior_disk && counts.disk > *budget.max_interior_disk)
    return false;
  if (budget.max_interior_memory &&
      counts.memory > *budget.max_interior_memory)
    return false;
  return true;
}

}  // namespace

BudgetResult optimize_with_budget(Algorithm algorithm,
                                  const chain::TaskChain& chain,
                                  const platform::CostModel& costs,
                                  const BudgetConstraint& budget) {
  CHAINCKPT_REQUIRE(algorithm == Algorithm::kADVstar ||
                        algorithm == Algorithm::kADMVstar ||
                        algorithm == Algorithm::kADMV ||
                        algorithm == Algorithm::kAD,
                    "budgeted optimization requires a DP algorithm");
  const std::size_t n = chain.size();
  const analysis::PlanEvaluator evaluator(chain, costs);

  auto solve = [&](double disk_penalty, double memory_penalty) {
    const auto penalized = penalize(costs, n, disk_penalty, memory_penalty);
    return optimize(algorithm, chain, penalized).plan;
  };

  double disk_penalty = 0.0;
  double memory_penalty = 0.0;
  plan::ResiliencePlan best = solve(0.0, 0.0);
  if (!within(interior_counts(best), budget)) {
    // A penalty of the whole error-free makespan suppresses any placement
    // (an interior checkpoint can never save more than the full chain).
    const double penalty_cap = 4.0 * chain.total_weight();

    // Coordinate-wise bisection, a few alternating rounds to absorb the
    // (mild) coupling between the two budgets.
    for (int round = 0; round < 3; ++round) {
      if (budget.max_interior_disk) {
        double lo = 0.0, hi = penalty_cap;
        for (int it = 0; it < 48; ++it) {
          const double mid = 0.5 * (lo + hi);
          const auto plan = solve(mid, memory_penalty);
          if (interior_counts(plan).disk > *budget.max_interior_disk) {
            lo = mid;
          } else {
            hi = mid;
            best = plan;
          }
        }
        disk_penalty = hi;
      }
      if (budget.max_interior_memory) {
        double lo = 0.0, hi = penalty_cap;
        for (int it = 0; it < 48; ++it) {
          const double mid = 0.5 * (lo + hi);
          const auto plan = solve(disk_penalty, mid);
          if (interior_counts(plan).memory > *budget.max_interior_memory) {
            lo = mid;
          } else {
            hi = mid;
            best = plan;
          }
        }
        memory_penalty = hi;
      }
      const auto plan = solve(disk_penalty, memory_penalty);
      if (within(interior_counts(plan), budget)) best = plan;
      if (within(interior_counts(best), budget) &&
          (!budget.max_interior_disk || disk_penalty == 0.0 ||
           !budget.max_interior_memory || memory_penalty == 0.0 ||
           round > 0)) {
        break;
      }
    }
  }

  CHAINCKPT_ASSERT(within(interior_counts(best), budget),
                   "Lagrangian bisection failed to reach the budget");
  BudgetResult out;
  out.plan = best;
  out.expected_makespan = evaluator.expected_makespan(best);
  out.disk_penalty = disk_penalty;
  out.memory_penalty = memory_penalty;
  out.feasible = true;
  return out;
}

}  // namespace chainckpt::core
