// ADMV: the full dynamic program of paper Section III-B.
//
// Extends ADMV* with partial verifications (cost V << V*, recall r < 1).
// The outer three levels (disk / memory / guaranteed verification) are the
// same as Section III-A; each verified segment (v1, v2] is scored by an
// inner dynamic program that walks partial-verification positions from
// right to left:
//
//   E_partial(d1,m1,v1,p1,v2) = min over p2 in (p1, v2] of
//     p2 < v2 : E^-(d1,m1,v1,p1,p2,v2) * e^{(lf+ls) W_{p2,v2}}
//               + E_partial(d1,m1,v1,p2,v2)
//     p2 = v2 : E^-(d1,m1,v1,p1,v2,v2)
//               + e^{(lf+ls) W_{p1,v2}} (V* - V)
//
// where E^- is the inter-partial-verification segment cost with the
// E_left re-execution term removed (re-injected through the proven
// e^{(lf+ls) W_{p2,v2}} multiplier), and E_right -- the expected loss
// while an undetected silent error propagates -- is evaluated along the
// *optimal* next-verification chain, which is exactly why the inner DP
// must run right to left.  O(n^6) time, O(n^3) memory (the O(n^5)
// E_partial table is never materialized: winning segments are
// re-derived during plan extraction).
#pragma once

#include "core/dp_context.hpp"

namespace chainckpt::core {

/// Returns the optimal ADMV plan and its expected makespan.  `layout`
/// selects the storage layout of the dense DP tables (values and plans are
/// identical under both; see core::TableLayout).
OptimizationResult optimize_with_partial(
    const chain::TaskChain& chain, const platform::CostModel& costs,
    TableLayout layout = TableLayout::kRowMajor);

/// Same solver on a prebuilt context -- the shared-SegmentTables path used
/// by core::BatchSolver.  The inner DP reads the row-oriented coefficient
/// arrays, so the context must have been built with row tables (throws
/// std::invalid_argument otherwise).
OptimizationResult optimize_with_partial(
    const DpContext& ctx, TableLayout layout = TableLayout::kRowMajor);

}  // namespace chainckpt::core
