#include "core/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/evaluator.hpp"
#include "util/assert.hpp"

namespace chainckpt::core {

plan::ResiliencePlan make_periodic_plan(std::size_t n, std::size_t pv,
                                        std::size_t pm, std::size_t pd) {
  CHAINCKPT_REQUIRE(n >= 1, "periodic plan needs at least one task");
  plan::ResiliencePlan plan(n);
  for (std::size_t i = 1; i < n; ++i) {
    if (pd != 0 && i % pd == 0) {
      plan.set_action(i, plan::Action::kDiskCheckpoint);
    } else if (pm != 0 && i % pm == 0) {
      plan.set_action(i, plan::Action::kMemoryCheckpoint);
    } else if (pv != 0 && i % pv == 0) {
      plan.set_action(i, plan::Action::kGuaranteedVerif);
    }
  }
  return plan;
}

OptimizationResult optimize_periodic(const chain::TaskChain& chain,
                                     const platform::CostModel& costs) {
  const std::size_t n = chain.size();
  const analysis::PlanEvaluator evaluator(chain, costs);
  OptimizationResult best{plan::ResiliencePlan(n),
                          std::numeric_limits<double>::infinity()};
  // Nested periods keep the search O(n log^2 n): pm is a multiple of pv,
  // pd a multiple of pm; 0 disables interior placements of that level.
  for (std::size_t pv = 1; pv <= n; ++pv) {
    for (std::size_t a = 0; a * pv <= n; ++a) {
      const std::size_t pm = a * pv;  // a == 0 -> no interior memory ckpts
      const std::size_t pd_base = pm == 0 ? 0 : pm;
      for (std::size_t b = 0; b * pd_base <= n; ++b) {
        const std::size_t pd = b * pd_base;
        const auto candidate = make_periodic_plan(n, pv, pm, pd);
        const double value = evaluator.expected_makespan(candidate);
        if (value < best.expected_makespan) {
          best.expected_makespan = value;
          best.plan = candidate;
        }
        if (pd_base == 0) break;  // b loop degenerate without memory ckpts
      }
    }
  }
  return best;
}

namespace {

/// Collects 1-based task positions at (approximately) every `period`
/// seconds of accumulated weight; empty when period is infinite.
std::vector<std::size_t> positions_for_period(const chain::TaskChain& chain,
                                              double period) {
  std::vector<std::size_t> out;
  if (!std::isfinite(period) || period <= 0.0) return out;
  double acc = 0.0;
  for (std::size_t i = 1; i < chain.size(); ++i) {
    acc += chain.weight(i);
    if (acc >= period) {
      out.push_back(i);
      acc = 0.0;
    }
  }
  return out;
}

}  // namespace

OptimizationResult optimize_daly(const chain::TaskChain& chain,
                                 const platform::CostModel& costs) {
  const auto& p = costs.platform();
  const double inf = std::numeric_limits<double>::infinity();
  const double w_disk =
      p.lambda_f > 0.0 ? std::sqrt(2.0 * p.c_disk / p.lambda_f) : inf;
  const double w_mem =
      p.lambda_s > 0.0
          ? std::sqrt(2.0 * (p.c_mem + p.v_guaranteed) / p.lambda_s)
          : inf;
  const double w_verif =
      p.lambda_s > 0.0 ? std::sqrt(2.0 * p.v_guaranteed / p.lambda_s) : inf;

  plan::ResiliencePlan plan(chain.size());
  // Place from weakest to strongest so checkpoints subsume verifications.
  for (std::size_t i : positions_for_period(chain, w_verif))
    plan.set_action(i, plan::Action::kGuaranteedVerif);
  for (std::size_t i : positions_for_period(chain, w_mem))
    plan.set_action(i, plan::Action::kMemoryCheckpoint);
  for (std::size_t i : positions_for_period(chain, w_disk))
    plan.set_action(i, plan::Action::kDiskCheckpoint);

  const analysis::PlanEvaluator evaluator(chain, costs);
  return OptimizationResult{plan, evaluator.expected_makespan(plan)};
}

}  // namespace chainckpt::core
