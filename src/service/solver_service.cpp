#include "service/solver_service.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "util/parallel.hpp"

namespace chainckpt::service {

namespace detail {

/// Shared record behind a JobHandle.  `work`, `options`, `cost_units`,
/// and `id` are immutable after submit; `token` is internally
/// synchronized; the mutable tail (state/result/error and the scheduling
/// trace) is guarded by the service mutex.
struct JobRecord {
  explicit JobRecord(core::BatchJob job) : work(std::move(job)) {}

  JobId id = 0;
  core::BatchJob work;
  SubmitOptions options;
  double cost_units = 0.0;
  core::CancelToken token;
  /// Absolute deadline (zero time_point = none), for the preemption
  /// policy's remaining-time reads; the token holds the same instant for
  /// the solver side.
  core::CancelToken::Clock::time_point deadline_at{};

  JobState state = JobState::kQueued;
  RejectReason reject_reason = RejectReason::kNone;
  std::uint64_t submit_seq = 0;
  std::uint64_t start_seq = 0;
  /// Wall-clock instant of the most recent queue entry (submit or
  /// requeue-after-preemption); priority aging boosts from it.
  core::CancelToken::Clock::time_point queued_at{};
  /// Wall-clock instant of the most recent dispatch; the preemption
  /// policy's estimate of a running job's remaining time reads it.
  core::CancelToken::Clock::time_point started_at{};
  std::uint32_t starts = 0;
  std::uint32_t preemptions = 0;
  /// A preempt was requested for the current run and has not yet
  /// unwound; keeps the policy from stacking preempts on one victim.
  bool preempt_pending = false;
  core::OptimizationResult result;
  std::string error;
};

}  // namespace detail

JobId JobHandle::id() const noexcept {
  return record_ != nullptr ? record_->id : 0;
}

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kSucceeded:
      return "succeeded";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kExpired:
      return "expired";
    case JobState::kRejected:
      return "rejected";
  }
  return "unknown";
}

bool is_terminal(JobState state) noexcept {
  return state != JobState::kQueued && state != JobState::kRunning;
}

const char* to_string(Priority priority) noexcept {
  switch (priority) {
    case Priority::kBatch:
      return "batch";
    case Priority::kNormal:
      return "normal";
    case Priority::kInteractive:
      return "interactive";
    case Priority::kUrgent:
      return "urgent";
  }
  return "unknown";
}

namespace {

/// What poll()/wait() report for an empty handle: terminal, so the
/// natural poll-until-terminal loop cannot spin on a job that does not
/// exist.
JobStatus empty_handle_status() {
  JobStatus status;
  status.state = JobState::kRejected;
  status.reject_reason = RejectReason::kEmptyChain;
  status.error = "empty job handle (no job was submitted)";
  return status;
}

/// Dispatch order within the queue: higher priority class first, FIFO
/// (by service event order) within a class.
bool ranks_before(const detail::JobRecord& a,
                  const detail::JobRecord& b) noexcept {
  if (a.options.priority != b.options.priority) {
    return a.options.priority > b.options.priority;
  }
  return a.submit_seq < b.submit_seq;
}

/// Callbacks run outside the service lock on whichever thread finished
/// the job; an exception escaping one would either double-complete the
/// job (worker catch blocks) or terminate the process (pool unwinding),
/// so the contract is: callbacks must not throw, and one that does is
/// swallowed here.
void invoke_callback(const SolverService::CompletionCallback& callback,
                     const JobStatus& status) noexcept {
  if (!callback) return;
  try {
    callback(status);
  } catch (...) {
  }
}

}  // namespace

SolverService::SolverService(ServiceOptions options)
    : options_(options),
      solver_(options.solver),
      admission_(options.admission) {
  workers_ = options_.workers != 0
                 ? options_.workers
                 : static_cast<std::size_t>(
                       std::max(1, util::hardware_parallelism()));
  // The pool is one long-lived parallel_for region on a dedicated thread:
  // each body is a worker looping on the queue until shutdown.  Without
  // OpenMP the region degrades to a serial call chain -- worker 0 serves
  // the whole queue and the rest exit immediately at shutdown -- which
  // keeps the service functional (single-worker) on any build.
  pool_ = std::thread([this] {
    util::parallel_for(0, workers_, [this](std::size_t) { worker_loop(); });
  });
  if (options_.enable_preemption && options_.watchdog_interval.count() > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

SolverService::~SolverService() { shutdown(); }

JobHandle SolverService::submit(JobRequest request) {
  auto record = std::make_shared<detail::JobRecord>(std::move(request.work));
  record->options = request.options;
  // Per-submission plan-cache tolerance rides on the BatchJob; negative
  // defers to the solver's BatchOptions::plan_cache_epsilon.
  record->work.cache_epsilon = request.options.cache_epsilon;
  const std::size_t n = record->work.chain.size();
  // Probe the plan cache before taking the service lock: the probe hashes
  // the chain and cost model (O(n)) and takes only the cache's own lock.
  const bool probable_cache_hit =
      solver_.probable_plan_cache_hit(record->work);

  CompletionCallback callback;
  JobStatus rejected_status;
  bool rejected = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    record->id = ++next_id_;
    ++counters_.submitted;
    TenantCounters& tenant = tenant_counters_[record->options.tenant];
    ++tenant.submitted;
    const char* reason = nullptr;
    if (stopping_) {
      reason = "service is shut down";
      record->reject_reason = RejectReason::kShutdown;
    } else if (n == 0) {
      reason = "job needs a non-empty chain";
      record->reject_reason = RejectReason::kEmptyChain;
    } else if (n > options_.solver.max_n) {
      reason = "chain longer than the service's max_n";
      record->reject_reason = RejectReason::kChainTooLong;
    } else {
      const AdmissionVerdict verdict =
          admission_.assess(record->work.algorithm, n, queue_.size(),
                            inflight_units_, record->options.deadline,
                            probable_cache_hit);
      record->cost_units = verdict.cost_units;
      if (verdict.decision == AdmissionDecision::kReject) {
        reason = verdict.reason;
        record->reject_reason = verdict.reject;
      }
    }
    if (reason != nullptr) {
      record->state = JobState::kRejected;
      record->error = reason;
      ++counters_.rejected;
      ++tenant.rejected;
      rejected = true;
      rejected_status = snapshot_locked(*record);
      callback = callback_;
    } else {
      if (record->options.deadline.count() > 0) {
        record->deadline_at =
            core::CancelToken::Clock::now() + record->options.deadline;
        record->token.set_deadline(record->deadline_at);
      }
      record->state = JobState::kQueued;
      record->submit_seq = ++event_seq_;
      record->queued_at = core::CancelToken::Clock::now();
      queue_.push_back(record);
      queued_units_ += record->cost_units;
      maybe_preempt_locked();
    }
  }
  if (rejected) {
    invoke_callback(callback, rejected_status);
  } else {
    work_ready_.notify_one();
  }
  return JobHandle(std::move(record));
}

JobStatus SolverService::poll(const JobHandle& handle) const {
  if (handle.record_ == nullptr) return empty_handle_status();
  const std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_locked(*handle.record_);
}

JobStatus SolverService::wait(const JobHandle& handle) {
  if (handle.record_ == nullptr) return empty_handle_status();
  std::unique_lock<std::mutex> lock(mutex_);
  job_done_.wait(lock,
                 [&] { return is_terminal(handle.record_->state); });
  return snapshot_locked(*handle.record_);
}

bool SolverService::cancel(const JobHandle& handle) {
  const std::shared_ptr<detail::JobRecord>& record = handle.record_;
  if (record == nullptr) return false;

  CompletionCallback callback;
  JobStatus status;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (record->state == JobState::kRunning) {
      // Honored at the solve's next cancellation checkpoint; the worker
      // performs the terminal transition.
      record->token.request_cancel();
      return true;
    }
    if (record->state != JobState::kQueued) return false;
    const auto it = std::find(queue_.begin(), queue_.end(), record);
    if (it != queue_.end()) queue_.erase(it);
    queued_units_ -= record->cost_units;
    settle_gauges_locked();
    record->state = JobState::kCancelled;
    record->error = "cancelled while queued";
    ++counters_.cancelled;
    ++tenant_counters_[record->options.tenant].cancelled;
    status = snapshot_locked(*record);
    callback = callback_;
  }
  job_done_.notify_all();
  invoke_callback(callback, status);
  return true;
}

void SolverService::on_completion(CompletionCallback callback) {
  const std::lock_guard<std::mutex> lock(mutex_);
  callback_ = std::move(callback);
}

void SolverService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  job_done_.wait(lock,
                 [&] { return queue_.empty() && running_jobs_.empty(); });
}

void SolverService::shutdown() {
  std::vector<JobStatus> dropped;
  CompletionCallback callback;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (const auto& record : queue_) {
      record->state = JobState::kCancelled;
      record->error = "service shutdown";
      ++counters_.cancelled;
      ++tenant_counters_[record->options.tenant].cancelled;
      dropped.push_back(snapshot_locked(*record));
    }
    queue_.clear();
    queued_units_ = 0.0;
    for (const auto& record : running_jobs_) {
      record->token.request_cancel();
    }
    callback = callback_;
  }
  work_ready_.notify_all();
  job_done_.notify_all();
  watchdog_wake_.notify_all();
  for (const JobStatus& status : dropped) invoke_callback(callback, status);
  if (pool_.joinable()) pool_.join();
  if (watchdog_.joinable()) watchdog_.join();
}

ServiceStats SolverService::stats() const {
  ServiceStats out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.submitted = counters_.submitted;
    out.rejected = counters_.rejected;
    out.succeeded = counters_.succeeded;
    out.failed = counters_.failed;
    out.cancelled = counters_.cancelled;
    out.expired = counters_.expired;
    out.preempted = counters_.preempted;
    out.queued = queue_.size();
    out.running = running_jobs_.size();
    out.inflight_units = inflight_units_;
    out.queued_units = queued_units_;
    out.tenants = tenant_counters_;
  }
  out.solver = solver_.stats_snapshot();
  out.plan_cache = solver_.plan_cache_stats();
  return out;
}

AdmissionController::Estimate SolverService::estimate(
    core::Algorithm algorithm, std::size_t n) const {
  return admission_.estimate(algorithm, n);
}

std::size_t SolverService::resident_bytes() const {
  return solver_.resident_bytes();
}

std::size_t SolverService::release_scratch() {
  return solver_.release_scratch();
}

void SolverService::settle_gauges_locked() {
  // The priced gauges accumulate +=/-= of doubles; snap them to exactly
  // zero whenever their container empties so summation residue (the
  // ~1e-12 the soak battery surfaced) cannot leak into metrics or
  // admission fits() reads at idle.
  if (queue_.empty()) queued_units_ = 0.0;
  if (running_jobs_.empty()) inflight_units_ = 0.0;
}

void SolverService::watchdog_loop() {
  // The tick exists because deadline risk is a function of TIME, not of
  // events: with every worker deep in long solves, nothing calls
  // maybe_preempt_locked() while a queued deadline's remaining time
  // decays past the at-risk threshold.  Re-running the policy each
  // interval bounds how late the crossing is noticed by one tick.
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    watchdog_wake_.wait_for(lock, options_.watchdog_interval);
    if (stopping_) break;
    maybe_preempt_locked();
  }
}

std::shared_ptr<detail::JobRecord> SolverService::pop_runnable_locked() {
  // Priority aging (opt-in): one clock read shared by every comparison in
  // this pass, so the boosted ranking is a strict weak ordering even as
  // waits tick upward between calls.  Effective class = submitted class
  // + floor(wait / aging_interval), capped at kUrgent; FIFO within an
  // effective class, so a long-waiting kBatch job eventually outranks
  // freshly submitted kUrgent work and bounded starvation holds.
  const bool aging = options_.aging_interval.count() > 0;
  const auto now = aging ? core::CancelToken::Clock::now()
                         : core::CancelToken::Clock::time_point{};
  const auto aged_class = [&](const detail::JobRecord& r) {
    const auto boosts = (now - r.queued_at) / options_.aging_interval;
    const auto cls = static_cast<long long>(r.options.priority) + boosts;
    return std::min<long long>(
        cls, static_cast<long long>(Priority::kUrgent));
  };
  const auto ranks = [&](const detail::JobRecord& a,
                         const detail::JobRecord& b) {
    if (!aging) return ranks_before(a, b);
    const long long ca = aged_class(a);
    const long long cb = aged_class(b);
    if (ca != cb) return ca > cb;
    return a.submit_seq < b.submit_seq;
  };

  auto best = queue_.end();
  auto best_any = queue_.end();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (best_any == queue_.end() || ranks(**it, **best_any)) {
      best_any = it;
    }
    if (!admission_.fits((*it)->cost_units, inflight_units_)) continue;
    if (best == queue_.end() || ranks(**it, **best)) best = it;
  }
  if (best != queue_.end()) {
    auto record = *best;
    queue_.erase(best);
    return record;
  }
  // Nothing fits.  An idle pool still takes the best-ranked job: the
  // budget bounds concurrent work, it must not deadlock a job priced
  // above it.
  if (best_any != queue_.end() && running_jobs_.empty()) {
    auto record = *best_any;
    queue_.erase(best_any);
    return record;
  }
  return nullptr;
}

void SolverService::maybe_preempt_locked() {
  if (!options_.enable_preemption || running_jobs_.empty() ||
      queue_.empty() || stopping_) {
    return;
  }
  // The contender: the best-ranked queued job that carries a deadline and
  // outranks at least one running job.  Urgent-but-deadline-free work
  // still jumps the queue by ordering; only a deadline justifies
  // displacing work already paid for.
  const auto now = core::CancelToken::Clock::now();
  std::shared_ptr<detail::JobRecord> contender;
  for (const auto& record : queue_) {
    if (record->options.deadline.count() <= 0) continue;
    if (contender == nullptr || ranks_before(*record, *contender)) {
      contender = record;
    }
  }
  if (contender == nullptr) return;
  // If capacity frees up without displacement -- a free worker exists and
  // the job fits the budget -- dispatch handles it; preemption would be
  // pure waste.
  const bool fits_now =
      admission_.fits(contender->cost_units, inflight_units_);
  const bool free_worker = running_jobs_.size() < workers_;
  if (fits_now && free_worker) return;
  // At risk?  The contender must both wait for a worker and then solve:
  // its deadline is at risk when the remaining time is under
  //   slack * (own calibrated estimate + expected wait),
  // where the expected wait is the smallest calibrated remaining runtime
  // across the running jobs.  Anything uncalibrated cannot be bounded,
  // so it counts as at risk -- the scheduler protects the deadline when
  // it cannot rule a miss out.
  const double remaining =
      std::chrono::duration<double>(contender->deadline_at - now).count();
  const double estimate =
      admission_
          .estimate(contender->work.algorithm, contender->work.chain.size())
          .seconds;
  if (estimate >= 0.0) {
    double wait = free_worker ? 0.0
                              : std::numeric_limits<double>::infinity();
    if (!free_worker) {
      for (const auto& running : running_jobs_) {
        const double running_estimate =
            admission_
                .estimate(running->work.algorithm,
                          running->work.chain.size())
                .seconds;
        if (running_estimate < 0.0) continue;  // unknown: no bound
        const double elapsed =
            std::chrono::duration<double>(now - running->started_at)
                .count();
        wait = std::min(wait,
                        std::max(0.0, running_estimate - elapsed));
      }
    }
    if (remaining >= (estimate + wait) * options_.preemption_slack) {
      return;
    }
  }
  // Victim: the lowest-class running job strictly below the contender
  // (never preempt within a class), latest-started first so the least
  // progress is set aside; displacing it must actually let the contender
  // start.
  std::shared_ptr<detail::JobRecord> victim;
  for (const auto& running : running_jobs_) {
    if (running->preempt_pending) continue;
    if (running->options.priority >= contender->options.priority) continue;
    if (!fits_now &&
        !admission_.fits(contender->cost_units,
                         inflight_units_ - running->cost_units)) {
      continue;
    }
    if (victim == nullptr ||
        running->options.priority < victim->options.priority ||
        (running->options.priority == victim->options.priority &&
         running->start_seq > victim->start_seq)) {
      victim = running;
    }
  }
  if (victim == nullptr) return;
  victim->preempt_pending = true;
  victim->token.request_preempt();
}

bool SolverService::requeue_preempted(
    const std::shared_ptr<detail::JobRecord>& record) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // A cancel, an expired deadline, or shutdown that raced the
    // preemption wins: those are terminal intents, handled by the
    // caller's completion path.
    if (stopping_ || record->token.cancel_requested() ||
        record->token.deadline_passed()) {
      return false;
    }
    record->token.clear_preempt();
    record->preempt_pending = false;
    record->state = JobState::kQueued;
    record->queued_at = core::CancelToken::Clock::now();
    ++record->preemptions;
    ++counters_.preempted;
    ++tenant_counters_[record->options.tenant].preempted;
    inflight_units_ -= record->cost_units;
    queued_units_ += record->cost_units;
    running_jobs_.erase(
        std::find(running_jobs_.begin(), running_jobs_.end(), record));
    settle_gauges_locked();
    // push_back is fine: dispatch ranks by (class, submit_seq), so the
    // job resumes ahead of anything submitted after it in its class.
    queue_.push_back(record);
  }
  work_ready_.notify_all();
  return true;
}

void SolverService::worker_loop() {
  for (;;) {
    std::shared_ptr<detail::JobRecord> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        if (stopping_) return;
        job = pop_runnable_locked();
        if (job != nullptr) break;
        work_ready_.wait(lock);
      }
      queued_units_ -= job->cost_units;
      settle_gauges_locked();
      inflight_units_ += job->cost_units;
      job->state = JobState::kRunning;
      job->start_seq = ++event_seq_;
      ++job->starts;
      job->started_at = core::CancelToken::Clock::now();
      running_jobs_.push_back(job);
      // A dispatch changes who is running: a queued deadline may now be
      // blocked behind this very job.
      maybe_preempt_locked();
    }

    // Pre-start screen: a deadline that passed (or a cancel that raced
    // the dispatch) while the job sat queued skips the solve entirely.
    if (job->token.cancel_requested()) {
      complete(job, JobState::kCancelled, nullptr, "cancelled before start",
               0.0);
      continue;
    }
    if (job->token.deadline_passed()) {
      complete(job, JobState::kExpired, nullptr, "deadline passed in queue",
               0.0);
      continue;
    }

    const auto start = std::chrono::steady_clock::now();
    try {
      core::OptimizationResult result =
          solver_.solve_job(job->work, &job->token);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      complete(job, JobState::kSucceeded, &result, std::string(), seconds);
    } catch (const core::SolveInterrupted& interrupted) {
      if (interrupted.reason() == core::InterruptReason::kPreempted &&
          requeue_preempted(job)) {
        continue;  // back in the queue; its next run resumes the solve
      }
      // A refused requeue means a terminal intent raced the preemption;
      // classify by what the token actually says.
      JobState state = JobState::kCancelled;
      if (interrupted.reason() == core::InterruptReason::kDeadline ||
          (interrupted.reason() == core::InterruptReason::kPreempted &&
           !job->token.cancel_requested() && job->token.deadline_passed())) {
        state = JobState::kExpired;
      }
      complete(job, state, nullptr, interrupted.what(), 0.0);
    } catch (const std::exception& error) {
      complete(job, JobState::kFailed, nullptr, error.what(), 0.0);
    }
  }
}

void SolverService::complete(const std::shared_ptr<detail::JobRecord>& record,
                             JobState state,
                             core::OptimizationResult* result,
                             std::string error, double seconds) {
  CompletionCallback callback;
  JobStatus status;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    record->state = state;
    record->preempt_pending = false;
    if (result != nullptr) record->result = std::move(*result);
    record->error = std::move(error);
    inflight_units_ -= record->cost_units;
    running_jobs_.erase(std::find(running_jobs_.begin(), running_jobs_.end(),
                                  record));
    settle_gauges_locked();
    maybe_preempt_locked();  // freed capacity may re-rank a blocked deadline
    TenantCounters& tenant = tenant_counters_[record->options.tenant];
    switch (state) {
      case JobState::kSucceeded:
        ++counters_.succeeded;
        ++tenant.succeeded;
        break;
      case JobState::kFailed:
        ++counters_.failed;
        ++tenant.failed;
        break;
      case JobState::kCancelled:
        ++counters_.cancelled;
        ++tenant.cancelled;
        break;
      case JobState::kExpired:
        ++counters_.expired;
        ++tenant.expired;
        break;
      default:
        break;
    }
    status = snapshot_locked(*record);
    callback = callback_;
  }
  if (state == JobState::kSucceeded) {
    admission_.observe(record->work.algorithm, record->cost_units,
                       record->result.scan, seconds,
                       solver_.cache_resident_bytes());
  }
  work_ready_.notify_all();  // freed budget may unblock queued jobs
  job_done_.notify_all();
  invoke_callback(callback, status);
}

JobStatus SolverService::snapshot_locked(
    const detail::JobRecord& record) const {
  JobStatus status;
  status.id = record.id;
  status.state = record.state;
  status.priority = record.options.priority;
  status.tenant = record.options.tenant;
  status.cost_units = record.cost_units;
  status.reject_reason = record.reject_reason;
  status.submit_seq = record.submit_seq;
  status.start_seq = record.start_seq;
  status.starts = record.starts;
  status.preemptions = record.preemptions;
  if (record.state == JobState::kSucceeded) status.result = record.result;
  status.error = record.error;
  return status;
}

}  // namespace chainckpt::service
