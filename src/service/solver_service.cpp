#include "service/solver_service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/parallel.hpp"

namespace chainckpt::service {

namespace detail {

/// Shared record behind a JobHandle.  `work`, `cost_units`, and `id` are
/// immutable after submit; `token` is internally synchronized; the
/// mutable tail (state/result/error) is guarded by the service mutex.
struct JobRecord {
  explicit JobRecord(core::BatchJob job) : work(std::move(job)) {}

  JobId id = 0;
  core::BatchJob work;
  double cost_units = 0.0;
  core::CancelToken token;

  JobState state = JobState::kQueued;
  core::OptimizationResult result;
  std::string error;
};

}  // namespace detail

JobId JobHandle::id() const noexcept {
  return record_ != nullptr ? record_->id : 0;
}

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kSucceeded:
      return "succeeded";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kExpired:
      return "expired";
    case JobState::kRejected:
      return "rejected";
  }
  return "unknown";
}

bool is_terminal(JobState state) noexcept {
  return state != JobState::kQueued && state != JobState::kRunning;
}

namespace {

/// What poll()/wait() report for an empty handle: terminal, so the
/// natural poll-until-terminal loop cannot spin on a job that does not
/// exist.
JobStatus empty_handle_status() {
  JobStatus status;
  status.state = JobState::kRejected;
  status.error = "empty job handle (no job was submitted)";
  return status;
}

/// Callbacks run outside the service lock on whichever thread finished
/// the job; an exception escaping one would either double-complete the
/// job (worker catch blocks) or terminate the process (pool unwinding),
/// so the contract is: callbacks must not throw, and one that does is
/// swallowed here.
void invoke_callback(const SolverService::CompletionCallback& callback,
                     const JobStatus& status) noexcept {
  if (!callback) return;
  try {
    callback(status);
  } catch (...) {
  }
}

}  // namespace

SolverService::SolverService(ServiceOptions options)
    : options_(options),
      solver_(options.solver),
      admission_(options.admission) {
  workers_ = options_.workers != 0
                 ? options_.workers
                 : static_cast<std::size_t>(
                       std::max(1, util::hardware_parallelism()));
  // The pool is one long-lived parallel_for region on a dedicated thread:
  // each body is a worker looping on the queue until shutdown.  Without
  // OpenMP the region degrades to a serial call chain -- worker 0 serves
  // the whole queue and the rest exit immediately at shutdown -- which
  // keeps the service functional (single-worker) on any build.
  pool_ = std::thread([this] {
    util::parallel_for(0, workers_, [this](std::size_t) { worker_loop(); });
  });
}

SolverService::~SolverService() { shutdown(); }

JobHandle SolverService::submit(JobRequest request) {
  auto record = std::make_shared<detail::JobRecord>(std::move(request.work));
  const std::size_t n = record->work.chain.size();

  CompletionCallback callback;
  JobStatus rejected_status;
  bool rejected = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    record->id = ++next_id_;
    ++counters_.submitted;
    const char* reason = nullptr;
    if (stopping_) {
      reason = "service is shut down";
    } else if (n == 0) {
      reason = "job needs a non-empty chain";
    } else if (n > options_.solver.max_n) {
      reason = "chain longer than the service's max_n";
    } else {
      const AdmissionVerdict verdict = admission_.assess(
          record->work.algorithm, n, queue_.size(), inflight_units_);
      record->cost_units = verdict.cost_units;
      if (verdict.decision == AdmissionDecision::kReject) {
        reason = verdict.reason;
      }
    }
    if (reason != nullptr) {
      record->state = JobState::kRejected;
      record->error = reason;
      ++counters_.rejected;
      rejected = true;
      rejected_status = snapshot_locked(*record);
      callback = callback_;
    } else {
      if (request.deadline.count() > 0) {
        record->token.set_deadline(core::CancelToken::Clock::now() +
                                   request.deadline);
      }
      record->state = JobState::kQueued;
      queue_.push_back(record);
      queued_units_ += record->cost_units;
    }
  }
  if (rejected) {
    invoke_callback(callback, rejected_status);
  } else {
    work_ready_.notify_one();
  }
  return JobHandle(std::move(record));
}

JobStatus SolverService::poll(const JobHandle& handle) const {
  if (handle.record_ == nullptr) return empty_handle_status();
  const std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_locked(*handle.record_);
}

JobStatus SolverService::wait(const JobHandle& handle) {
  if (handle.record_ == nullptr) return empty_handle_status();
  std::unique_lock<std::mutex> lock(mutex_);
  job_done_.wait(lock,
                 [&] { return is_terminal(handle.record_->state); });
  return snapshot_locked(*handle.record_);
}

bool SolverService::cancel(const JobHandle& handle) {
  const std::shared_ptr<detail::JobRecord>& record = handle.record_;
  if (record == nullptr) return false;

  CompletionCallback callback;
  JobStatus status;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (record->state == JobState::kRunning) {
      // Honored at the solve's next cancellation checkpoint; the worker
      // performs the terminal transition.
      record->token.request_cancel();
      return true;
    }
    if (record->state != JobState::kQueued) return false;
    const auto it = std::find(queue_.begin(), queue_.end(), record);
    if (it != queue_.end()) queue_.erase(it);
    queued_units_ -= record->cost_units;
    record->state = JobState::kCancelled;
    record->error = "cancelled while queued";
    ++counters_.cancelled;
    status = snapshot_locked(*record);
    callback = callback_;
  }
  job_done_.notify_all();
  invoke_callback(callback, status);
  return true;
}

void SolverService::on_completion(CompletionCallback callback) {
  const std::lock_guard<std::mutex> lock(mutex_);
  callback_ = std::move(callback);
}

void SolverService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  job_done_.wait(lock,
                 [&] { return queue_.empty() && running_jobs_.empty(); });
}

void SolverService::shutdown() {
  std::vector<JobStatus> dropped;
  CompletionCallback callback;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (const auto& record : queue_) {
      record->state = JobState::kCancelled;
      record->error = "service shutdown";
      ++counters_.cancelled;
      dropped.push_back(snapshot_locked(*record));
    }
    queue_.clear();
    queued_units_ = 0.0;
    for (const auto& record : running_jobs_) {
      record->token.request_cancel();
    }
    callback = callback_;
  }
  work_ready_.notify_all();
  job_done_.notify_all();
  for (const JobStatus& status : dropped) invoke_callback(callback, status);
  if (pool_.joinable()) pool_.join();
}

ServiceStats SolverService::stats() const {
  ServiceStats out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.submitted = counters_.submitted;
    out.rejected = counters_.rejected;
    out.succeeded = counters_.succeeded;
    out.failed = counters_.failed;
    out.cancelled = counters_.cancelled;
    out.expired = counters_.expired;
    out.queued = queue_.size();
    out.running = running_jobs_.size();
    out.inflight_units = inflight_units_;
    out.queued_units = queued_units_;
  }
  out.solver = solver_.stats_snapshot();
  return out;
}

AdmissionController::Estimate SolverService::estimate(
    core::Algorithm algorithm, std::size_t n) const {
  return admission_.estimate(algorithm, n);
}

std::size_t SolverService::resident_bytes() const {
  return solver_.resident_bytes();
}

std::size_t SolverService::release_scratch() {
  return solver_.release_scratch();
}

std::shared_ptr<detail::JobRecord> SolverService::pop_runnable_locked() {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (admission_.fits((*it)->cost_units, inflight_units_)) {
      auto record = *it;
      queue_.erase(it);
      return record;
    }
  }
  // Nothing fits.  An idle pool still takes the head: the budget bounds
  // concurrent work, it must not deadlock a job priced above it.
  if (!queue_.empty() && running_jobs_.empty()) {
    auto record = queue_.front();
    queue_.pop_front();
    return record;
  }
  return nullptr;
}

void SolverService::worker_loop() {
  for (;;) {
    std::shared_ptr<detail::JobRecord> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        if (stopping_) return;
        job = pop_runnable_locked();
        if (job != nullptr) break;
        work_ready_.wait(lock);
      }
      queued_units_ -= job->cost_units;
      inflight_units_ += job->cost_units;
      job->state = JobState::kRunning;
      running_jobs_.push_back(job);
    }

    // Pre-start screen: a deadline that passed (or a cancel that raced
    // the dispatch) while the job sat queued skips the solve entirely.
    if (job->token.cancel_requested()) {
      complete(job, JobState::kCancelled, nullptr, "cancelled before start",
               0.0);
      continue;
    }
    if (job->token.deadline_passed()) {
      complete(job, JobState::kExpired, nullptr, "deadline passed in queue",
               0.0);
      continue;
    }

    const auto start = std::chrono::steady_clock::now();
    try {
      core::OptimizationResult result =
          solver_.solve_job(job->work, &job->token);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      complete(job, JobState::kSucceeded, &result, std::string(), seconds);
    } catch (const core::SolveInterrupted& interrupted) {
      complete(job,
               interrupted.reason() == core::InterruptReason::kDeadline
                   ? JobState::kExpired
                   : JobState::kCancelled,
               nullptr, interrupted.what(), 0.0);
    } catch (const std::exception& error) {
      complete(job, JobState::kFailed, nullptr, error.what(), 0.0);
    }
  }
}

void SolverService::complete(const std::shared_ptr<detail::JobRecord>& record,
                             JobState state,
                             core::OptimizationResult* result,
                             std::string error, double seconds) {
  CompletionCallback callback;
  JobStatus status;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    record->state = state;
    if (result != nullptr) record->result = std::move(*result);
    record->error = std::move(error);
    inflight_units_ -= record->cost_units;
    running_jobs_.erase(std::find(running_jobs_.begin(), running_jobs_.end(),
                                  record));
    switch (state) {
      case JobState::kSucceeded:
        ++counters_.succeeded;
        break;
      case JobState::kFailed:
        ++counters_.failed;
        break;
      case JobState::kCancelled:
        ++counters_.cancelled;
        break;
      case JobState::kExpired:
        ++counters_.expired;
        break;
      default:
        break;
    }
    status = snapshot_locked(*record);
    callback = callback_;
  }
  if (state == JobState::kSucceeded) {
    admission_.observe(record->work.algorithm, record->cost_units,
                       record->result.scan, seconds,
                       solver_.cache_resident_bytes());
  }
  work_ready_.notify_all();  // freed budget may unblock queued jobs
  job_done_.notify_all();
  invoke_callback(callback, status);
}

JobStatus SolverService::snapshot_locked(
    const detail::JobRecord& record) const {
  JobStatus status;
  status.id = record.id;
  status.state = record.state;
  status.cost_units = record.cost_units;
  if (record.state == JobState::kSucceeded) status.result = record.result;
  status.error = record.error;
  return status;
}

}  // namespace chainckpt::service
