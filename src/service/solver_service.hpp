// Async service layer over core::BatchSolver.
//
// BatchSolver's solve() is synchronous and batch-shaped: the caller
// blocks until every job finishes.  A long-lived serving process wants
// the opposite contract -- requests arrive one at a time, the caller gets
// a handle back immediately, and completion is observed by polling,
// blocking, or callback.  SolverService provides that shape:
//
//   * submit() -> JobHandle: prices the job through the admission
//     controller (service/admission.hpp), rejects over-cap or
//     over-capacity work, and enqueues the rest;
//   * a worker pool: one long-lived util::parallel_for region whose
//     bodies loop on the queue -- the workers ARE the same OpenMP threads
//     the solvers' thread-local arenas live on, so scratch reuse and
//     release_scratch() behave exactly as in the batch path, and each
//     job's own slab parallelism degrades to serial inside the pool just
//     like a BatchSolver batch;
//   * dispatch under budget and priority: a worker takes the
//     highest-priority queued job that fits the remaining admission
//     budget, FIFO within a class (an idle pool always takes the best
//     queued job, so one oversized job cannot wedge the queue);
//   * preemption: when a strictly higher class's deadline is at risk,
//     the dispatcher cooperatively displaces a lower-class running job
//     (via its CancelToken); the victim re-queues -- NOT a terminal
//     state -- and its next run resumes the solve checkpoint its
//     interrupted run committed (core/solve_checkpoint.hpp), so the
//     preempted work re-executes only unfinished slabs;
//   * poll()/wait()/completion callback over JobStatus snapshots;
//   * cancel() and per-job deadlines, threaded to the DPs' cooperative
//     checkpoints as a core::CancelToken (core/cancellation.hpp), with
//     deadline-infeasible submissions rejected up front once the class
//     is calibrated (service/admission.hpp);
//   * bounded memory: the table cache inherits BatchSolver's LRU budget
//     (BatchOptions::cache_budget_bytes), interruption checkpoints are
//     bounded by BatchOptions::checkpoint_budget_bytes, and
//     release_scratch() remains available at quiescent points.
//
// Determinism: a job's result is bit-identical to a synchronous
// core::BatchSolver::solve() (and standalone core::optimize()) run of the
// same work -- scheduling order, worker count, queue pressure, eviction,
// preemption/resume, and cancellation of OTHER jobs change nothing about
// a job's plan or objective (tests/service/solver_service_test.cpp pins
// this at n up to 400; tests/service/scheduler_stress_test.cpp under
// mixed-priority chaos).
//
// Thread-safety: every public method is safe from any thread.  The
// operator's manual -- lifecycle, tuning, metrics export -- lives in
// docs/SERVER.md.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/batch_solver.hpp"
#include "service/admission.hpp"
#include "service/job.hpp"

namespace chainckpt::service {

struct ServiceOptions {
  /// Worker-pool width; 0 uses util::hardware_parallelism().  Effective
  /// concurrency is min(workers, OpenMP threads) -- see the pool note in
  /// the header comment.
  std::size_t workers = 0;
  /// Passed through to the embedded BatchSolver: table layout, scan mode,
  /// max_n, the LRU cache budget, and the interruption-checkpoint policy
  /// (keep_checkpoints/checkpoint_budget_bytes -- what makes preempted
  /// jobs resume instead of restart).
  core::BatchOptions solver;
  /// Admission pricing, budget, and the deadline-feasibility screen
  /// (service/admission.hpp).
  AdmissionConfig admission;
  /// Allow the dispatcher to preempt.  Preemption fires only when a
  /// queued job of a STRICTLY higher priority class carries a deadline
  /// the scheduler judges at risk (see preemption_slack) and no capacity
  /// frees up by itself; the lowest-class running job is displaced,
  /// re-queued, and resumed later.  Decisions are made at submit and
  /// job-completion events.
  bool enable_preemption = true;
  /// Deadline-risk factor: a queued job's deadline is at risk when its
  /// remaining time is below
  ///   (calibrated_estimate + expected_worker_wait) * preemption_slack,
  /// where the expected wait is the smallest calibrated remaining
  /// runtime among the running jobs.  Anything uncalibrated (no
  /// completed job in the class yet) is treated as at-risk -- the
  /// scheduler cannot rule a miss out, so it protects the deadline.
  double preemption_slack = 1.5;
  /// Periodic deadline-risk watchdog.  The dispatcher historically
  /// re-evaluated preemption only at submit/dispatch/completion events,
  /// so a queued deadline could slide into the at-risk region during a
  /// long event-free stretch (every worker busy on long solves) and
  /// expire unprotected -- the stress battery caught exactly that.  The
  /// watchdog re-runs the same policy every interval so the at-risk
  /// crossing is observed within one tick.  Zero disables (restoring the
  /// event-only behavior; the regression test does this on purpose).
  std::chrono::milliseconds watchdog_interval{20};
  /// Priority aging: when positive, a queued job's effective class for
  /// DISPATCH ordering is raised one class per `aging_interval` waited
  /// (capped at kUrgent), so sustained high-class storms cannot starve
  /// kBatch forever -- waiting becomes rank.  Preemption victim/contender
  /// selection still uses the submitted class (aging earns a turn, not
  /// the right to displace running work).  Zero (the default) keeps
  /// strict classes: several batteries assert zero inversions under
  /// strict priority, so aging -- which trades inversions for bounded
  /// starvation -- is opt-in.
  std::chrono::milliseconds aging_interval{0};
};

/// Per-tenant slice of the terminal counters: every job outcome is
/// counted once globally and once under its SubmitOptions::tenant, so
///   sum over tenants == the global counter
/// holds for each field in every snapshot -- the reconciliation invariant
/// the multi-tenant batteries (tests/net/tenant_stress_test.cpp) assert.
struct TenantCounters {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;
  std::uint64_t preempted = 0;
};

/// Counters + gauges, snapshotted by stats().  The embedded solver's
/// BatchStats (table builds/reuses/evictions, scan counters) ride along
/// so one call exports everything docs/SERVER.md lists as metrics.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t expired = 0;
  /// Runs displaced by the preemption policy (kRunning -> kQueued
  /// transitions; not terminal, so disjoint from the counters above).
  std::uint64_t preempted = 0;
  /// Instantaneous gauges.
  std::size_t queued = 0;
  std::size_t running = 0;
  double inflight_units = 0.0;
  double queued_units = 0.0;
  core::BatchStats solver;
  /// Snapshot of the solver's plan cache (hit/miss/eviction counters;
  /// see core/plan_cache.hpp).  lookups == exact_hits + epsilon_hits +
  /// cert_rejections + misses holds in every snapshot.
  core::PlanCacheStats plan_cache;
  /// Per-tenant attribution of the terminal counters above (ordered map
  /// for deterministic export).  Only tenants that submitted at least one
  /// job appear; each field sums to its global counterpart.
  std::map<std::uint64_t, TenantCounters> tenants;
};

class SolverService {
 public:
  /// Invoked exactly once per job on reaching a terminal state, with the
  /// same snapshot poll() would return.  Runs on the worker that finished
  /// the job (or the submitter's thread for rejections), outside the
  /// service lock -- it may call back into the service, but must not
  /// block for long (it delays that worker's next dispatch) and must not
  /// throw (an escaping exception would corrupt the worker's accounting,
  /// so the service swallows it).
  using CompletionCallback = std::function<void(const JobStatus&)>;

  explicit SolverService(ServiceOptions options = {});
  /// Shuts down: cancels queued and running jobs, joins the pool.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Prices, admits, and enqueues.  Never blocks on solving; an
  /// inadmissible request returns an already-terminal kRejected handle
  /// (JobStatus::error says why) rather than throwing.
  JobHandle submit(JobRequest request);

  /// Non-blocking state snapshot.
  JobStatus poll(const JobHandle& handle) const;

  /// Blocks until the job reaches a terminal state; returns the final
  /// snapshot.
  JobStatus wait(const JobHandle& handle);

  /// Cancels a queued job directly or requests cancellation of a running
  /// one (honored at the DP's next checkpoint).  Returns false when the
  /// job is already terminal or the handle is empty.
  bool cancel(const JobHandle& handle);

  /// Installs the completion callback.  Set it before the first submit;
  /// jobs finishing before installation do not fire it retroactively.
  void on_completion(CompletionCallback callback);

  /// Blocks until the queue is empty and every worker is idle.
  void drain();

  /// Stops accepting work, cancels queued and running jobs, and joins
  /// the worker pool.  Idempotent; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;

  /// Calibrated cost preview for a prospective job (admission pricing +
  /// expected seconds once the class has completed work).
  AdmissionController::Estimate estimate(core::Algorithm algorithm,
                                         std::size_t n) const;

  /// Table-cache + arena residency of the embedded solver.
  std::size_t resident_bytes() const;

  /// Quiescent-point release of the embedded solver's cache and the
  /// process-wide arenas; call only while drained (the arena pool
  /// contract -- see core::BatchSolver::release_scratch).
  std::size_t release_scratch();

 private:
  void worker_loop();
  /// Timer thread body: re-evaluates the preemption policy every
  /// watchdog_interval so deadline risk is caught between events.
  void watchdog_loop();
  /// Pops the highest-priority queued job fitting the admission budget,
  /// FIFO within a class (or the best queued job regardless of price
  /// when the pool is idle); nullptr when nothing is runnable.  When
  /// aging is enabled the ranking uses wait-boosted effective classes
  /// against one shared clock read.  Requires mutex_.
  std::shared_ptr<detail::JobRecord> pop_runnable_locked();
  /// Preemption policy: if a queued strictly-higher-class job's deadline
  /// is at risk and displacing a running lower-class job would let it
  /// start, fire the victim's preempt flag.  Requires mutex_.
  void maybe_preempt_locked();
  /// Returns a preempted job to the queue (kRunning -> kQueued) for a
  /// later resumed run; returns false -- leaving the record untouched for
  /// a terminal completion -- when a cancel, an expired deadline, or
  /// shutdown raced the preemption.
  bool requeue_preempted(const std::shared_ptr<detail::JobRecord>& record);
  /// Terminal transition + bookkeeping + callback/calibration dispatch.
  void complete(const std::shared_ptr<detail::JobRecord>& record,
                JobState state, core::OptimizationResult* result,
                std::string error, double seconds);
  /// Snaps the priced gauges to exactly zero when their containers are
  /// empty (floating-point summation residue).  Requires mutex_.
  void settle_gauges_locked();
  JobStatus snapshot_locked(const detail::JobRecord& record) const;

  ServiceOptions options_;
  core::BatchSolver solver_;
  AdmissionController admission_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;  ///< workers: queue or stop flag
  std::condition_variable job_done_;    ///< waiters: terminal transitions
  std::deque<std::shared_ptr<detail::JobRecord>> queue_;
  std::vector<std::shared_ptr<detail::JobRecord>> running_jobs_;
  CompletionCallback callback_;
  double inflight_units_ = 0.0;
  double queued_units_ = 0.0;
  JobId next_id_ = 0;
  /// One service-wide event order covering queue entries and dispatches;
  /// the source of JobStatus::submit_seq/start_seq.
  std::uint64_t event_seq_ = 0;
  bool stopping_ = false;
  /// Terminal counters only; the ServiceStats gauges and solver snapshot
  /// are assembled fresh by stats().
  struct Counters {
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t succeeded = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t expired = 0;
    std::uint64_t preempted = 0;
  } counters_;
  /// Per-tenant slices of counters_ (see ServiceStats::tenants); guarded
  /// by mutex_ like the globals, updated at the same points, so the
  /// sum-reconciliation invariant holds in every snapshot.
  std::map<std::uint64_t, TenantCounters> tenant_counters_;

  std::size_t workers_ = 1;
  std::thread pool_;
  std::condition_variable watchdog_wake_;  ///< shutdown: end the tick wait
  std::thread watchdog_;
};

}  // namespace chainckpt::service
