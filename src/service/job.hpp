// Job-side types of the async service: what a client submits, the handle
// it gets back, and the status snapshots it polls.  The service itself
// lives in service/solver_service.hpp.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "core/batch_solver.hpp"

namespace chainckpt::service {

class SolverService;

using JobId = std::uint64_t;

/// Lifecycle of a submitted job.  kQueued/kRunning are transient; the
/// rest are terminal.  A job reaches exactly one terminal state, and the
/// completion callback fires exactly once when it does.
enum class JobState {
  kQueued,     ///< admitted, waiting for budget + a worker
  kRunning,    ///< a worker is solving it
  kSucceeded,  ///< result available
  kFailed,     ///< the solve threw (JobStatus::error has the message)
  kCancelled,  ///< cancel() reached it (queued or mid-solve)
  kExpired,    ///< its deadline passed (queued or mid-solve)
  kRejected,   ///< refused at submit (admission cap, full queue, bad job)
};

const char* to_string(JobState state) noexcept;
bool is_terminal(JobState state) noexcept;

/// One submission: the work itself (algorithm + chain + cost model, the
/// same triple core::BatchSolver takes) plus an optional wall-clock
/// deadline measured from submit time.  A job whose deadline passes while
/// queued never starts; one that expires mid-solve is interrupted at the
/// DP's next cancellation checkpoint.  Zero means no deadline.
struct JobRequest {
  core::BatchJob work;
  std::chrono::milliseconds deadline{0};
};

/// Point-in-time snapshot of one job, returned by poll()/wait() and
/// passed to the completion callback.  `result` is meaningful only in
/// kSucceeded; `error` carries the rejection or failure reason.
struct JobStatus {
  JobId id = 0;
  JobState state = JobState::kQueued;
  /// Admission price of the job (see service/admission.hpp).
  double cost_units = 0.0;
  core::OptimizationResult result;
  std::string error;
};

namespace detail {
struct JobRecord;
}

/// Client-side reference to a submitted job.  Cheap to copy; valid for
/// the life of the process (the record it shares outlives the service).
/// All interrogation goes through the service: poll(), wait(), cancel().
/// A default-constructed (empty) handle polls as terminal kRejected --
/// never as a live job -- so poll-until-terminal loops cannot hang on it.
class JobHandle {
 public:
  JobHandle() = default;

  JobId id() const noexcept;
  bool valid() const noexcept { return record_ != nullptr; }

 private:
  friend class SolverService;
  explicit JobHandle(std::shared_ptr<detail::JobRecord> record)
      : record_(std::move(record)) {}

  std::shared_ptr<detail::JobRecord> record_;
};

}  // namespace chainckpt::service
