// Job-side types of the async service: what a client submits, the handle
// it gets back, and the status snapshots it polls.  The service itself
// lives in service/solver_service.hpp.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "core/batch_solver.hpp"
#include "service/admission.hpp"

namespace chainckpt::service {

class SolverService;

using JobId = std::uint64_t;

/// Lifecycle of a submitted job.  kQueued/kRunning are transient; the
/// rest are terminal.  A job reaches exactly one terminal state, and the
/// completion callback fires exactly once when it does.  A preempted job
/// transitions kRunning -> kQueued (not terminal, no callback) and runs
/// again later, resuming any solve checkpoint it committed.
enum class JobState {
  kQueued,     ///< admitted, waiting for budget + a worker
  kRunning,    ///< a worker is solving it
  kSucceeded,  ///< result available
  kFailed,     ///< the solve threw (JobStatus::error has the message)
  kCancelled,  ///< cancel() reached it (queued or mid-solve)
  kExpired,    ///< its deadline passed (queued or mid-solve)
  kRejected,   ///< refused at submit (JobStatus::reject_reason says why)
};

const char* to_string(JobState state) noexcept;
bool is_terminal(JobState state) noexcept;

/// Scheduling class of a submission.  The dispatcher always starts the
/// highest class that fits the admission budget (FIFO within a class),
/// and -- when preemption is enabled -- may cooperatively displace a
/// strictly lower-class running job to keep a deadline-carrying higher
/// class job from missing its deadline (see docs/SERVER.md).
enum class Priority : std::uint8_t {
  kBatch = 0,        ///< throughput work; first to be preempted
  kNormal = 1,       ///< the default
  kInteractive = 2,  ///< latency-sensitive
  kUrgent = 3,       ///< jumps everything; never preempted
};

const char* to_string(Priority priority) noexcept;

/// Scheduling options of one submission: its priority class and an
/// optional wall-clock deadline measured from submit time.  A job whose
/// deadline passes while queued never starts; one that expires mid-solve
/// is interrupted at the DP's next cancellation checkpoint.  Zero means
/// no deadline.  The converting constructor keeps the pre-priority
/// submission shape `{work, deadline}` valid.
struct SubmitOptions {
  SubmitOptions() = default;
  SubmitOptions(std::chrono::milliseconds deadline_in)  // NOLINT(runtime/explicit)
      : deadline(deadline_in) {}
  SubmitOptions(Priority priority_in, std::chrono::milliseconds deadline_in =
                                          std::chrono::milliseconds{0})
      : priority(priority_in), deadline(deadline_in) {}

  Priority priority = Priority::kNormal;
  std::chrono::milliseconds deadline{0};

  /// Multi-tenant accounting id.  Purely an accounting label inside the
  /// service -- scheduling stays (priority, FIFO) regardless of tenant --
  /// but every terminal counter is additionally attributed to this id in
  /// ServiceStats::tenants, which is what the network edge's per-tenant
  /// quotas and the reconciliation battery read.  0 is the anonymous
  /// default tenant.  The wire server overwrites it with the
  /// authenticated frame-header tenant (net/wire_server.hpp): the edge,
  /// not the payload, owns identity.
  std::uint64_t tenant = 0;

  /// Per-submission plan-cache tolerance, copied onto the underlying
  /// core::BatchJob at submit.  Negative (the default) defers to the
  /// service solver's BatchOptions::plan_cache_epsilon; 0 accepts exact
  /// hits only; > 0 also accepts certified epsilon-hits whose re-scored
  /// objective is within (1 + epsilon) of the sound lower bound (see
  /// docs/CACHING.md).
  double cache_epsilon = -1.0;
};

/// One submission: the work itself (algorithm + chain + cost model, the
/// same triple core::BatchSolver takes) plus its scheduling options.
struct JobRequest {
  core::BatchJob work;
  SubmitOptions options;
};

/// Point-in-time snapshot of one job, returned by poll()/wait() and
/// passed to the completion callback.  `result` is meaningful only in
/// kSucceeded; `error` carries the rejection or failure reason.
struct JobStatus {
  JobId id = 0;
  JobState state = JobState::kQueued;
  Priority priority = Priority::kNormal;
  /// Accounting id the job was submitted under (SubmitOptions::tenant).
  std::uint64_t tenant = 0;
  /// Admission price of the job (see service/admission.hpp).
  double cost_units = 0.0;
  /// Machine-readable cause when state == kRejected; kNone otherwise.
  RejectReason reject_reason = RejectReason::kNone;
  /// Scheduling trace, in one service-wide event order: submit_seq stamps
  /// queue entry, start_seq the most recent dispatch (0 = never started).
  /// The stress battery asserts priority-inversion bounds from these.
  std::uint64_t submit_seq = 0;
  std::uint64_t start_seq = 0;
  /// Times a worker picked the job up, and how many of those ended in a
  /// preemption (starts > 1 implies the job was preempted and resumed).
  std::uint32_t starts = 0;
  std::uint32_t preemptions = 0;
  core::OptimizationResult result;
  std::string error;
};

namespace detail {
struct JobRecord;
}

/// Client-side reference to a submitted job.  Cheap to copy; valid for
/// the life of the process (the record it shares outlives the service).
/// All interrogation goes through the service: poll(), wait(), cancel().
/// A default-constructed (empty) handle polls as terminal kRejected --
/// never as a live job -- so poll-until-terminal loops cannot hang on it.
class JobHandle {
 public:
  JobHandle() = default;

  JobId id() const noexcept;
  bool valid() const noexcept { return record_ != nullptr; }

 private:
  friend class SolverService;
  explicit JobHandle(std::shared_ptr<detail::JobRecord> record)
      : record_(std::move(record)) {}

  std::shared_ptr<detail::JobRecord> record_;
};

}  // namespace chainckpt::service
