#include "service/admission.hpp"

#include <cmath>

namespace chainckpt::service {

namespace {

/// EWMA weight for new calibration samples: heavy enough to track a
/// platform change within a few jobs, light enough to smooth the
/// per-solve jitter of small chains.
constexpr double kEwmaAlpha = 0.25;

}  // namespace

double complexity_exponent(core::Algorithm algorithm) noexcept {
  switch (algorithm) {
    case core::Algorithm::kAD:
      return 2.0;  // single-cell v1 scans: n rows of O(n) steps
    case core::Algorithm::kADVstar:
      return 3.0;  // streamed single-level DP
    case core::Algorithm::kADMVstar:
      return 4.0;  // two-level engine, Eq. (4) segments
    case core::Algorithm::kADMV:
      return 6.0;  // two-level engine over the partial inner DP
    case core::Algorithm::kPeriodic:
    case core::Algorithm::kDaly:
      return 2.0;  // analytic evaluator over candidate plans
  }
  return 2.0;
}

double price_units(core::Algorithm algorithm, std::size_t n) noexcept {
  return std::pow(static_cast<double>(n), complexity_exponent(algorithm)) *
         1e-6;
}

const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kPerJobCap:
      return "per-job-cap";
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kDeadlineInfeasible:
      return "deadline-infeasible";
    case RejectReason::kEmptyChain:
      return "empty-chain";
    case RejectReason::kChainTooLong:
      return "chain-too-long";
    case RejectReason::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {}

AdmissionVerdict AdmissionController::assess(
    core::Algorithm algorithm, std::size_t n, std::size_t queued_now,
    double inflight_units, std::chrono::milliseconds deadline,
    bool probable_cache_hit) const {
  AdmissionVerdict verdict;
  verdict.cost_units = price_units(algorithm, n);
  if (probable_cache_hit && config_.cache_hit_unit_factor > 0.0 &&
      config_.cache_hit_unit_factor < 1.0) {
    verdict.cost_units *= config_.cache_hit_unit_factor;
  }
  if (config_.max_job_units > 0.0 &&
      verdict.cost_units > config_.max_job_units) {
    verdict.decision = AdmissionDecision::kReject;
    verdict.reject = RejectReason::kPerJobCap;
    verdict.reason = "job priced above the per-job admission cap";
    return verdict;
  }
  if (queued_now >= config_.queue_capacity) {
    verdict.decision = AdmissionDecision::kReject;
    verdict.reject = RejectReason::kQueueFull;
    verdict.reason = "admission queue is full";
    return verdict;
  }
  if (deadline.count() < 0) {
    // The submit-time race the chaos battery probes: a deadline the
    // client computed against an earlier clock can already be in the
    // past when the submission lands.  Rejected regardless of the
    // feasibility screen -- admitting it would run the job with no
    // deadline at all (the service only arms positive ones).
    verdict.decision = AdmissionDecision::kReject;
    verdict.reject = RejectReason::kDeadlineInfeasible;
    verdict.reason = "deadline already passed at submit";
    return verdict;
  }
  if (deadline.count() > 0 && config_.reject_infeasible_deadlines &&
      !probable_cache_hit) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Estimate est = estimate_locked(algorithm, n);
    verdict.estimated_seconds = est.seconds;
    const double deadline_seconds =
        std::chrono::duration<double>(deadline).count();
    if (est.seconds >= 0.0 &&
        est.seconds * config_.deadline_headroom > deadline_seconds) {
      verdict.decision = AdmissionDecision::kReject;
      verdict.reject = RejectReason::kDeadlineInfeasible;
      verdict.reason =
          "calibrated estimate already exceeds the job's deadline";
      return verdict;
    }
  }
  if (!fits(verdict.cost_units, inflight_units)) {
    verdict.decision = AdmissionDecision::kQueue;
    verdict.reason = "queued until in-flight priced work drains";
    return verdict;
  }
  verdict.decision = AdmissionDecision::kAdmit;
  verdict.reason = "within budget";
  return verdict;
}

bool AdmissionController::fits(double cost_units,
                               double inflight_units) const noexcept {
  return config_.budget_units <= 0.0 ||
         inflight_units + cost_units <= config_.budget_units;
}

void AdmissionController::observe(core::Algorithm algorithm,
                                  double cost_units,
                                  const core::ScanStats& scan, double seconds,
                                  std::size_t resident_bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ClassCalibration& cls = classes_[class_index(algorithm)];
  if (seconds > 0.0 && cost_units > 0.0) {
    const double rate = cost_units / seconds;
    cls.units_per_second = cls.samples == 0
                               ? rate
                               : (1.0 - kEwmaAlpha) * cls.units_per_second +
                                     kEwmaAlpha * rate;
  }
  const double prune = scan.prune_fraction();
  cls.prune_fraction = cls.samples == 0
                           ? prune
                           : (1.0 - kEwmaAlpha) * cls.prune_fraction +
                                 kEwmaAlpha * prune;
  ++cls.samples;
  resident_bytes_ = resident_bytes;
}

AdmissionController::Estimate AdmissionController::estimate(
    core::Algorithm algorithm, std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return estimate_locked(algorithm, n);
}

AdmissionController::Estimate AdmissionController::estimate_locked(
    core::Algorithm algorithm, std::size_t n) const {
  Estimate est;
  est.cost_units = price_units(algorithm, n);
  const ClassCalibration& cls = classes_[class_index(algorithm)];
  if (cls.units_per_second > 0.0) {
    est.seconds = est.cost_units / cls.units_per_second;
  }
  est.prune_fraction = cls.prune_fraction;
  return est;
}

std::size_t AdmissionController::observed_resident_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

std::size_t AdmissionController::class_index(
    core::Algorithm algorithm) noexcept {
  switch (algorithm) {
    case core::Algorithm::kAD:
      return 0;
    case core::Algorithm::kADVstar:
      return 1;
    case core::Algorithm::kADMVstar:
      return 2;
    case core::Algorithm::kADMV:
      return 3;
    case core::Algorithm::kPeriodic:
      return 4;
    case core::Algorithm::kDaly:
      return 5;
  }
  return 0;
}

}  // namespace chainckpt::service
