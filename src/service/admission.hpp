// Admission control: price a solve before running it.
//
// The algorithms the service fronts have wildly different asymptotic
// costs -- the streamed single-level DP is O(n^3), the two-level engine
// O(n^4), and ADMV's partial-verification DP O(n^6) -- so a queue that
// treats "one job" as one unit of work lets a single ADMV request starve
// hundreds of cheap ones.  The admission controller prices every job from
// its algorithm class and chain length (price_units, the n^k cost model),
// rejects work that is individually over the per-job cap or arrives to a
// full queue, and hands the dispatcher a budget test so the priced sum of
// in-flight work stays under the configured concurrency budget.
//
// Pricing is a static model; calibration makes it actionable.  Every
// completed job reports its observed wall time, its ScanStats (whose
// dense/scanned cell counts measure how much of the priced work the
// monotonicity pruning actually skipped), and the solver's resident table
// bytes.  The controller folds these into per-class EWMA throughput
// estimates, so estimate() can translate abstract units into expected
// seconds once traffic has warmed it up -- the numbers an operator tunes
// the budget against (see docs/SERVER.md).
//
// Calibration also closes the loop on deadlines: a submission that
// carries one is checked against the class's calibrated estimate at
// submit time, and a job whose estimate already exceeds its deadline is
// rejected up front (RejectReason::kDeadlineInfeasible) instead of
// burning a worker on a solve that is doomed to expire.
//
// Thread-safety: all methods are safe to call concurrently; calibration
// state sits behind an internal mutex, and assess() reads only immutable
// config, calibration state, and caller-supplied load figures.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>

#include "core/batch_solver.hpp"

namespace chainckpt::service {

/// Exponent k of the algorithm's asymptotic DP cost O(n^k): 2 for AD and
/// the heuristic baselines, 3 for ADV*, 4 for ADMV*, 6 for ADMV.
double complexity_exponent(core::Algorithm algorithm) noexcept;

/// Abstract priced cost of one job: n^k scaled by 1e-6, so an ADV* job at
/// n = 400 prices at 64 units while an ADMV job at n = 100 prices at one
/// million -- the asymmetry the budget is there to manage.
double price_units(core::Algorithm algorithm, std::size_t n) noexcept;

struct AdmissionConfig {
  /// Priced units allowed in flight at once; 0 = unlimited.  When the
  /// next queued job would push the in-flight sum past the budget it
  /// waits in the queue (an idle service always dispatches at least one
  /// job, so a single over-budget job cannot wedge the queue).
  double budget_units = 0.0;
  /// Per-job cap; a submission priced above it is rejected outright.
  /// 0 = no cap.
  double max_job_units = 0.0;
  /// Submissions rejected once this many jobs are already queued.
  std::size_t queue_capacity = 1024;
  /// Reject a submission whose per-class calibrated estimate already
  /// exceeds its deadline (scaled by deadline_headroom).  Only fires once
  /// the class has completed at least one job -- a cold class admits
  /// everything (the deadline still expires the job cooperatively
  /// mid-solve if the guess was wrong).  Deadlines that are negative at
  /// submit are rejected regardless of calibration AND of this flag --
  /// admitting one would run the job unbounded, since only positive
  /// deadlines arm the token.
  bool reject_infeasible_deadlines = true;
  /// Estimate-vs-deadline slack: reject when
  ///   estimated_seconds * deadline_headroom > deadline.
  /// Values above 1 reject earlier (pessimistic); below 1 admit jobs the
  /// estimate says will likely expire.
  double deadline_headroom = 1.0;
  /// Price multiplier applied when the solver's plan cache reports the
  /// submission would probably be served from cache (exact key present,
  /// or a certified near-miss within the advisory drift screen): a
  /// cache hit skips the priced DP entirely, so charging the full n^k
  /// price would reject or queue work that costs microseconds.  The
  /// discount is advisory-priced, not a guarantee -- a probable hit that
  /// falls through to a full solve still runs under its discounted
  /// price, which the budget absorbs like any calibration error.
  /// 1 = no discount; must be in (0, 1].
  double cache_hit_unit_factor = 0.05;
};

/// Only kReject changes what happens to a submission; the kAdmit/kQueue
/// split is advisory (would the job start right now?), because the
/// budget is enforced at dispatch time by fits(), not at submit time --
/// SolverService queues both and lets its dispatcher gate the start.
enum class AdmissionDecision {
  kAdmit,   ///< fits the budget right now
  kQueue,   ///< admissible, but must wait for in-flight work to drain
  kReject,  ///< over the per-job cap, full queue, or infeasible deadline
};

/// Machine-readable why of a rejection, surfaced on the job handle
/// (JobStatus::reject_reason) so clients can react programmatically --
/// back off on kQueueFull, shrink the request on kPerJobCap, extend or
/// drop the deadline on kDeadlineInfeasible.  The submit-side screens of
/// SolverService (empty chain, over-max_n chain, shutdown) use the same
/// enum.
enum class RejectReason {
  kNone,                ///< not rejected
  kPerJobCap,           ///< priced above AdmissionConfig::max_job_units
  kQueueFull,           ///< AdmissionConfig::queue_capacity reached
  kDeadlineInfeasible,  ///< calibrated estimate exceeds the deadline
  kEmptyChain,          ///< the job carried no tasks
  kChainTooLong,        ///< chain longer than the service's max_n
  kShutdown,            ///< service no longer accepting work
};

const char* to_string(RejectReason reason) noexcept;

struct AdmissionVerdict {
  AdmissionDecision decision = AdmissionDecision::kAdmit;
  double cost_units = 0.0;
  /// Static human-readable explanation (never null).
  const char* reason = "";
  /// Machine-readable rejection cause; kNone unless decision == kReject.
  RejectReason reject = RejectReason::kNone;
  /// Calibrated expected seconds consulted by the deadline screen;
  /// kUncalibrated when the class has no completed jobs (or the
  /// submission carried no deadline).
  double estimated_seconds = -1.0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {});

  const AdmissionConfig& config() const noexcept { return config_; }

  /// Prices (algorithm, n) and decides against the caller's current load
  /// (queued job count, priced units in flight) and the submission's
  /// deadline (zero = none; the calibrated feasibility screen is
  /// described on AdmissionConfig::reject_infeasible_deadlines).  Reads
  /// config, the calibration state, and its arguments -- the caller
  /// serializes load reads itself.  `probable_cache_hit` (from
  /// core::BatchSolver::probable_plan_cache_hit) discounts the price by
  /// AdmissionConfig::cache_hit_unit_factor and skips the deadline
  /// feasibility screen, whose calibrated estimate models the full DP.
  AdmissionVerdict assess(core::Algorithm algorithm, std::size_t n,
                          std::size_t queued_now, double inflight_units,
                          std::chrono::milliseconds deadline =
                              std::chrono::milliseconds{0},
                          bool probable_cache_hit = false) const;

  /// Dispatcher-side budget test: may a job priced `cost_units` start
  /// while `inflight_units` are already running?
  bool fits(double cost_units, double inflight_units) const noexcept;

  /// Calibration feed, called per completed job: priced units, the
  /// solve's ScanStats, observed wall seconds, and the solver's resident
  /// table bytes after the job.
  void observe(core::Algorithm algorithm, double cost_units,
               const core::ScanStats& scan, double seconds,
               std::size_t resident_bytes);

  struct Estimate {
    double cost_units = 0.0;
    /// Expected wall seconds from the class's calibrated throughput;
    /// negative (kUncalibrated) until the class has completed a job.
    double seconds = kUncalibrated;
    /// EWMA fraction of priced cells the pruned scans skipped (0 while
    /// running ScanMode::kDense).
    double prune_fraction = 0.0;
  };
  static constexpr double kUncalibrated = -1.0;

  Estimate estimate(core::Algorithm algorithm, std::size_t n) const;

  /// Most recent resident-table-bytes observation (0 before any).
  std::size_t observed_resident_bytes() const;

 private:
  static std::size_t class_index(core::Algorithm algorithm) noexcept;
  /// estimate() body; requires mutex_ (assess() shares it).
  Estimate estimate_locked(core::Algorithm algorithm, std::size_t n) const;

  struct ClassCalibration {
    double units_per_second = 0.0;  ///< EWMA; 0 = no sample yet
    double prune_fraction = 0.0;    ///< EWMA of ScanStats::prune_fraction
    std::size_t samples = 0;
  };

  AdmissionConfig config_;
  mutable std::mutex mutex_;
  ClassCalibration classes_[6];
  std::size_t resident_bytes_ = 0;
};

}  // namespace chainckpt::service
