// A named (x, y) series: the unit of data behind every reproduced figure.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace chainckpt::report {

struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  void add(double x_value, double y_value);
  std::size_t size() const noexcept { return x.size(); }
  bool empty() const noexcept { return x.empty(); }

  double min_x() const;
  double max_x() const;
  double min_y() const;
  double max_y() const;
};

}  // namespace chainckpt::report
