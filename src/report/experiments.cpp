#include "report/experiments.hpp"

#include "platform/cost_model.hpp"

namespace chainckpt::report {

Series makespan_series(const platform::Platform& platform,
                       const EvaluationSetup& setup,
                       core::Algorithm algorithm,
                       const std::vector<std::size_t>& ns) {
  Series out;
  out.name = core::to_string(algorithm);
  const platform::CostModel costs(platform);
  for (std::size_t n : ns) {
    const auto chain =
        chain::make_pattern(setup.pattern, n, setup.total_weight);
    const auto result = core::optimize(algorithm, chain, costs);
    out.add(static_cast<double>(n),
            result.expected_makespan / setup.total_weight);
  }
  return out;
}

CountSweep count_sweep(const platform::Platform& platform,
                       const EvaluationSetup& setup,
                       core::Algorithm algorithm,
                       const std::vector<std::size_t>& ns) {
  CountSweep out;
  out.disk.name = "#DiskCkpt";
  out.memory.name = "#MemCkpt";
  out.guaranteed.name = "#Verif";
  out.partial.name = "#PartialVerif";
  const platform::CostModel costs(platform);
  for (std::size_t n : ns) {
    const auto chain =
        chain::make_pattern(setup.pattern, n, setup.total_weight);
    const auto result = core::optimize(algorithm, chain, costs);
    const plan::ActionCounts counts = result.plan.interior_counts();
    const auto x = static_cast<double>(n);
    out.disk.add(x, static_cast<double>(counts.disk));
    out.memory.add(x, static_cast<double>(counts.memory));
    out.guaranteed.add(x, static_cast<double>(counts.guaranteed));
    out.partial.add(x, static_cast<double>(counts.partial));
  }
  return out;
}

core::OptimizationResult placement(const platform::Platform& platform,
                                   const EvaluationSetup& setup,
                                   core::Algorithm algorithm,
                                   std::size_t n) {
  const platform::CostModel costs(platform);
  const auto chain =
      chain::make_pattern(setup.pattern, n, setup.total_weight);
  return core::optimize(algorithm, chain, costs);
}

std::vector<std::size_t> makespan_task_counts() {
  std::vector<std::size_t> ns;
  for (std::size_t n = 1; n <= 50; ++n) ns.push_back(n);
  return ns;
}

std::vector<std::size_t> count_task_counts() {
  std::vector<std::size_t> ns;
  for (std::size_t n = 5; n <= 50; n += 5) ns.push_back(n);
  return ns;
}

}  // namespace chainckpt::report
