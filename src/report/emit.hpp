// Emission of figure data: CSV files (one per figure, long format) and
// text tables.
#pragma once

#include <string>
#include <vector>

#include "report/series.hpp"

namespace chainckpt::report {

/// Writes all series in long format (series,x,y) to `path`.
void write_series_csv(const std::string& path,
                      const std::vector<Series>& series);

/// Renders the series as a wide text table: one row per x value (the union
/// of all x values), one column per series; missing points print "-".
std::string series_table(const std::string& x_header,
                         const std::vector<Series>& series, int precision = 4);

}  // namespace chainckpt::report
