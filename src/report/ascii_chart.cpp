#include "report/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace chainckpt::report {

std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& options) {
  CHAINCKPT_REQUIRE(!series.empty(), "chart needs at least one series");
  const std::string markers = "ox+*#@";

  double min_x = series.front().min_x(), max_x = series.front().max_x();
  double min_y = series.front().min_y(), max_y = series.front().max_y();
  for (const auto& s : series) {
    if (s.empty()) continue;
    min_x = std::min(min_x, s.min_x());
    max_x = std::max(max_x, s.max_x());
    min_y = std::min(min_y, s.min_y());
    max_y = std::max(max_y, s.max_y());
  }
  const double pad = (max_y - min_y) * 0.02;
  min_y -= pad;
  max_y += pad;
  if (max_y == min_y) {  // flat data: give the range some thickness
    min_y -= 0.5;
    max_y += 0.5;
  }
  if (max_x == min_x) max_x = min_x + 1.0;

  const std::size_t w = std::max<std::size_t>(options.width, 8);
  const std::size_t h = std::max<std::size_t>(options.height, 4);
  std::vector<std::string> grid(h, std::string(w, ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char marker = markers[si % markers.size()];
    const Series& s = series[si];
    for (std::size_t k = 0; k < s.size(); ++k) {
      const double fx = (s.x[k] - min_x) / (max_x - min_x);
      const double fy = (s.y[k] - min_y) / (max_y - min_y);
      auto col = static_cast<std::size_t>(
          std::lround(fx * static_cast<double>(w - 1)));
      auto row = static_cast<std::size_t>(
          std::lround((1.0 - fy) * static_cast<double>(h - 1)));
      col = std::min(col, w - 1);
      row = std::min(row, h - 1);
      grid[row][col] = marker;
    }
  }

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  auto y_tick = [&](std::size_t row) {
    const double fy =
        1.0 - static_cast<double>(row) / static_cast<double>(h - 1);
    return min_y + fy * (max_y - min_y);
  };
  for (std::size_t row = 0; row < h; ++row) {
    os << std::setw(10) << std::setprecision(4) << std::fixed << y_tick(row)
       << " |" << grid[row] << '\n';
  }
  os << std::string(11, ' ') << '+' << std::string(w, '-') << '\n';
  {
    std::ostringstream xs;
    xs << std::setprecision(4) << min_x;
    std::ostringstream xe;
    xe << std::setprecision(4) << max_x;
    const std::string left = xs.str(), right = xe.str();
    std::string axis(11 + 1 + w, ' ');
    const std::size_t start = 12;
    axis.replace(start, left.size(), left);
    if (start + w >= right.size())
      axis.replace(start + w - right.size(), right.size(), right);
    os << axis;
    if (!options.x_label.empty()) os << "  (" << options.x_label << ')';
    os << '\n';
  }
  os << "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  " << markers[si % markers.size()] << " = " << series[si].name;
  }
  os << '\n';
  return os.str();
}

}  // namespace chainckpt::report
