#include "report/series.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace chainckpt::report {

void Series::add(double x_value, double y_value) {
  x.push_back(x_value);
  y.push_back(y_value);
}

double Series::min_x() const {
  CHAINCKPT_REQUIRE(!x.empty(), "empty series");
  return *std::min_element(x.begin(), x.end());
}

double Series::max_x() const {
  CHAINCKPT_REQUIRE(!x.empty(), "empty series");
  return *std::max_element(x.begin(), x.end());
}

double Series::min_y() const {
  CHAINCKPT_REQUIRE(!y.empty(), "empty series");
  return *std::min_element(y.begin(), y.end());
}

double Series::max_y() const {
  CHAINCKPT_REQUIRE(!y.empty(), "empty series");
  return *std::max_element(y.begin(), y.end());
}

}  // namespace chainckpt::report
