// Figure pipelines: the parameter sweeps behind each figure of the paper's
// evaluation (Section IV), exposed as reusable library calls so the bench
// harnesses, the tests, and user code all produce identical data.
#pragma once

#include <cstddef>
#include <vector>

#include "chain/patterns.hpp"
#include "core/optimizer.hpp"
#include "platform/platform.hpp"
#include "report/series.hpp"

namespace chainckpt::report {

/// The paper's evaluation-wide constants.
struct EvaluationSetup {
  double total_weight = 25000.0;  ///< seconds of computation
  chain::Pattern pattern = chain::Pattern::kUniform;
};

/// Normalized expected makespan (makespan / total weight) of `algorithm`
/// for each task count in `ns` -- one curve of Figure 5/7/8, column 1.
Series makespan_series(const platform::Platform& platform,
                       const EvaluationSetup& setup,
                       core::Algorithm algorithm,
                       const std::vector<std::size_t>& ns);

/// Interior mechanism counts of `algorithm` for each n -- one panel of
/// Figure 5 columns 2-4 (four series: disk / memory / guaranteed /
/// partial).
struct CountSweep {
  Series disk;
  Series memory;
  Series guaranteed;
  Series partial;

  std::vector<Series> all() const { return {disk, memory, guaranteed,
                                            partial}; }
};
CountSweep count_sweep(const platform::Platform& platform,
                       const EvaluationSetup& setup,
                       core::Algorithm algorithm,
                       const std::vector<std::size_t>& ns);

/// The optimal plan of `algorithm` at one task count -- the placement maps
/// of Figures 6-8.
core::OptimizationResult placement(const platform::Platform& platform,
                                   const EvaluationSetup& setup,
                                   core::Algorithm algorithm, std::size_t n);

/// Task counts 1..50 (makespan curves) and 5,10,...,50 (count panels),
/// matching the paper's x axes.
std::vector<std::size_t> makespan_task_counts();
std::vector<std::size_t> count_task_counts();

}  // namespace chainckpt::report
