#include "report/emit.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace chainckpt::report {

void write_series_csv(const std::string& path,
                      const std::vector<Series>& series) {
  util::CsvWriter csv(path, {"series", "x", "y"});
  for (const auto& s : series) {
    for (std::size_t k = 0; k < s.size(); ++k) {
      std::ostringstream xs, ys;
      xs << s.x[k];
      ys << s.y[k];
      csv.add_row({s.name, xs.str(), ys.str()});
    }
  }
}

std::string series_table(const std::string& x_header,
                         const std::vector<Series>& series, int precision) {
  // Union of x values, sorted; map each series' points for lookup.
  std::vector<double> xs;
  for (const auto& s : series) xs.insert(xs.end(), s.x.begin(), s.x.end());
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  std::vector<std::map<double, double>> lookup(series.size());
  for (std::size_t si = 0; si < series.size(); ++si) {
    for (std::size_t k = 0; k < series[si].size(); ++k)
      lookup[si][series[si].x[k]] = series[si].y[k];
  }

  std::vector<std::string> headers{x_header};
  for (const auto& s : series) headers.push_back(s.name);
  util::TextTable table(headers);
  for (double x : xs) {
    std::vector<std::string> row;
    std::ostringstream xv;
    xv << x;
    row.push_back(xv.str());
    for (std::size_t si = 0; si < series.size(); ++si) {
      auto it = lookup[si].find(x);
      row.push_back(it == lookup[si].end()
                        ? "-"
                        : util::TextTable::num(it->second, precision));
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

}  // namespace chainckpt::report
