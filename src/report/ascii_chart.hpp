// Terminal line charts so the bench harnesses can display the paper's
// figures directly in the console output.
#pragma once

#include <string>
#include <vector>

#include "report/series.hpp"

namespace chainckpt::report {

struct ChartOptions {
  std::size_t width = 64;   ///< plot columns (excluding the axis gutter)
  std::size_t height = 16;  ///< plot rows
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Renders the series on a shared grid; each series gets a marker from
/// "ox+*#@" in order.  Y range is padded by 2%; a legend is appended.
std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& options);

}  // namespace chainckpt::report
