#include "net/wire_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/payload.hpp"
#include "service/admission.hpp"

namespace chainckpt::net {

namespace {

/// Frames per writev batch (IOV_MAX is far larger; 16 keeps the iovec
/// array on the stack while still aggregating whole reply bursts).
constexpr std::size_t kMaxIov = 16;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

struct Connection {
  int fd = -1;
  bool tenant_bound = false;
  std::uint64_t tenant = 0;
  /// Read buffer; [parse_offset, size) is the unparsed suffix.
  std::vector<std::uint8_t> inbuf;
  std::size_t parse_offset = 0;
  /// Pending reply frames (State::mutex); front_offset is how much of the
  /// front frame a partial writev already pushed out.
  std::deque<std::vector<std::uint8_t>> outbox;
  std::size_t front_offset = 0;
  /// Flush what is queued, then close (kGoodbye or an unsyncable stream).
  bool closing = false;
  bool dead = false;  ///< socket error/EOF: close without flushing
  /// Live request ids of this connection (I/O thread only).
  std::map<std::uint64_t, service::JobHandle> requests;
};

/// Where a finished job's kResult frame goes.  `sent` is the exactly-once
/// latch raced by the completion callback (worker thread) and the
/// post-submit/poll handoff (I/O thread); both flip it under State::mutex.
struct Route {
  int fd = -1;
  std::uint64_t request_id = 0;
  std::uint64_t tenant = 0;
  bool sent = false;
};

/// One quota-pending submission sitting in the DRR ingress.
struct Ingress {
  int fd = -1;
  std::uint64_t request_id = 0;
  std::uint16_t flags = 0;
  double units = 0.0;
  service::JobRequest request;
};

}  // namespace

struct WireServer::State {
  explicit State(const WireServerOptions& options)
      : governor(options.default_quota) {
    for (const auto& [tenant, quota] : options.tenant_quotas) {
      governor.set_quota(tenant, quota);
    }
  }

  ~State() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_read >= 0) ::close(wake_read);
    if (wake_write >= 0) ::close(wake_write);
  }

  void wake() {
    const char byte = 1;
    // Best-effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t n = ::write(wake_write, &byte, 1);
  }

  /// Queues one frame on a connection's outbox.  Requires mutex.
  void append_frame_locked(Connection& conn, FrameHeader header,
                           const std::vector<std::uint8_t>& payload) {
    conn.outbox.push_back(encode_frame(header, payload));
    ++stats.frames_sent;
  }

  mutable std::mutex mutex;
  bool stopping = false;
  int listen_fd = -1;
  int wake_read = -1;
  int wake_write = -1;
  std::uint16_t port = 0;
  std::map<int, std::shared_ptr<Connection>> conns;
  std::map<service::JobId, Route> routes;
  WireServerStats stats;
  TenantGovernor governor;
};

WireServer::WireServer(service::SolverService& service,
                       WireServerOptions options)
    : service_(service),
      options_(std::move(options)),
      state_(std::make_shared<State>(options_)) {}

WireServer::~WireServer() { stop(); }

void WireServer::start() {
  if (started_) return;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("wire server: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    throw std::runtime_error("wire server: bad bind address " +
                             options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, options_.listen_backlog) < 0) {
    ::close(fd);
    throw std::runtime_error("wire server: cannot bind " +
                             options_.bind_address + ":" +
                             std::to_string(options_.port));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  set_nonblocking(fd);

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    ::close(fd);
    throw std::runtime_error("wire server: pipe() failed");
  }
  set_nonblocking(pipe_fds[0]);
  set_nonblocking(pipe_fds[1]);

  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->listen_fd = fd;
    state_->wake_read = pipe_fds[0];
    state_->wake_write = pipe_fds[1];
    state_->port = ntohs(bound.sin_port);
    state_->stopping = false;
  }

  // The callback holds its own reference to the state: a result landing
  // while stop() tears connections down still finds a coherent (if
  // empty) routing table instead of a dangling pointer.
  std::shared_ptr<State> st = state_;
  service_.on_completion([st](const service::JobStatus& status) {
    std::lock_guard<std::mutex> lock(st->mutex);
    const auto route_it = st->routes.find(status.id);
    if (route_it == st->routes.end() || route_it->second.sent) return;
    const auto conn_it = st->conns.find(route_it->second.fd);
    if (conn_it == st->conns.end()) {
      st->routes.erase(route_it);
      return;
    }
    route_it->second.sent = true;
    FrameHeader header;
    header.type = FrameType::kResult;
    header.tenant_id = route_it->second.tenant;
    header.request_id = route_it->second.request_id;
    st->append_frame_locked(*conn_it->second, header,
                            encode_job_status(status));
    ++st->stats.results_streamed;
    st->wake();
  });

  io_thread_ = std::thread([this] { io_loop(); });
  started_ = true;
}

void WireServer::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stopping = true;
  }
  state_->wake();
  if (io_thread_.joinable()) io_thread_.join();
  service_.on_completion({});
  started_ = false;
}

std::uint16_t WireServer::port() const noexcept { return state_->port; }

WireServerStats WireServer::stats() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->stats;
}

std::map<std::uint64_t, TenantEdgeStats> WireServer::tenant_stats() const {
  return state_->governor.stats();
}

TenantGovernor& WireServer::governor() noexcept { return state_->governor; }

namespace {

/// Everything the io_loop needs per iteration but must not keep across
/// iterations lives here (plain function-local style keeps the loop
/// readable without a second class).
class IoDriver {
 public:
  IoDriver(WireServer::State& state, service::SolverService& service,
           const WireServerOptions& options)
      : st_(state), service_(service), options_(options),
        ingress_(options.drr_quantum_units) {}

  void run();

 private:
  using StatePtr = WireServer::State;

  void accept_ready();
  bool read_ready(const std::shared_ptr<Connection>& conn);
  void parse_frames(const std::shared_ptr<Connection>& conn);
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const FrameHeader& header, const std::uint8_t* payload,
                    std::size_t payload_size);
  void drain_ingress();
  /// Returns false when the socket died mid-flush.
  bool flush(const std::shared_ptr<Connection>& conn);
  void close_connection(int fd);
  void send_error(const std::shared_ptr<Connection>& conn,
                  std::uint64_t tenant, std::uint64_t request_id,
                  WireError code, const std::string& message);
  void send_frame(const std::shared_ptr<Connection>& conn,
                  FrameHeader header,
                  const std::vector<std::uint8_t>& payload);

  WireServer::State& st_;
  service::SolverService& service_;
  const WireServerOptions& options_;
  DrrScheduler<Ingress> ingress_;
};

void IoDriver::send_frame(const std::shared_ptr<Connection>& conn,
                          FrameHeader header,
                          const std::vector<std::uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(st_.mutex);
  st_.append_frame_locked(*conn, header, payload);
}

void IoDriver::send_error(const std::shared_ptr<Connection>& conn,
                          std::uint64_t tenant, std::uint64_t request_id,
                          WireError code, const std::string& message) {
  FrameHeader header;
  header.type = FrameType::kError;
  header.tenant_id = tenant;
  header.request_id = request_id;
  ErrorPayload payload{code, message};
  {
    std::lock_guard<std::mutex> lock(st_.mutex);
    st_.append_frame_locked(*conn, header, encode_error(payload));
    ++st_.stats.protocol_errors;
  }
}

void IoDriver::accept_ready() {
  for (;;) {
    const int fd = ::accept(st_.listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: next poll round
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(st_.mutex);
    st_.conns[fd] = std::move(conn);
    ++st_.stats.connections_accepted;
  }
}

bool IoDriver::read_ready(const std::shared_ptr<Connection>& conn) {
  std::uint8_t buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->inbuf.insert(conn->inbuf.end(), buffer, buffer + n);
      std::lock_guard<std::mutex> lock(st_.mutex);
      st_.stats.bytes_received += static_cast<std::uint64_t>(n);
      if (static_cast<std::size_t>(n) < sizeof(buffer)) return true;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    // 0 = orderly EOF, otherwise a hard error: either way the peer is
    // gone (a mid-frame disconnect lands here; any half-parsed frame is
    // simply dropped with the connection).
    conn->dead = true;
    return false;
  }
}

void IoDriver::parse_frames(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    if (conn->closing || conn->dead) break;
    const std::uint8_t* data = conn->inbuf.data() + conn->parse_offset;
    const std::size_t avail = conn->inbuf.size() - conn->parse_offset;
    FrameHeader header;
    const DecodeStatus status =
        decode_header(data, avail, header, options_.max_payload_bytes);
    if (status == DecodeStatus::kNeedMoreData) break;
    if (status != DecodeStatus::kOk) {
      // The stream cannot be resynchronized past a bad header (the
      // length field is untrusted), so: one error frame, flush, close.
      const bool header_parsed = status == DecodeStatus::kBadType ||
                                 status == DecodeStatus::kPayloadTooLarge;
      send_error(conn, header_parsed ? header.tenant_id : 0,
                 header_parsed ? header.request_id : 0,
                 to_wire_error(status), to_string(to_wire_error(status)));
      conn->closing = true;
      break;
    }
    if (avail < kHeaderBytes + header.payload_size) break;
    {
      std::lock_guard<std::mutex> lock(st_.mutex);
      ++st_.stats.frames_received;
    }
    handle_frame(conn, header, data + kHeaderBytes, header.payload_size);
    conn->parse_offset += kHeaderBytes + header.payload_size;
  }
  if (conn->parse_offset == conn->inbuf.size()) {
    conn->inbuf.clear();
    conn->parse_offset = 0;
  } else if (conn->parse_offset > (1u << 20)) {
    conn->inbuf.erase(conn->inbuf.begin(),
                      conn->inbuf.begin() +
                          static_cast<std::ptrdiff_t>(conn->parse_offset));
    conn->parse_offset = 0;
  }
}

void IoDriver::handle_frame(const std::shared_ptr<Connection>& conn,
                            const FrameHeader& header,
                            const std::uint8_t* payload,
                            std::size_t payload_size) {
  if (!conn->tenant_bound) {
    conn->tenant_bound = true;
    conn->tenant = header.tenant_id;
  } else if (header.tenant_id != conn->tenant) {
    send_error(conn, conn->tenant, header.request_id,
               WireError::kTenantMismatch, to_string(WireError::kTenantMismatch));
    return;
  }

  FrameHeader reply;
  reply.tenant_id = conn->tenant;
  reply.request_id = header.request_id;

  switch (header.type) {
    case FrameType::kHello: {
      std::string client;
      if (!decode_hello(payload, payload_size, client)) {
        send_error(conn, conn->tenant, header.request_id,
                   WireError::kBadPayload, "malformed hello");
        return;
      }
      WelcomePayload welcome;
      welcome.version = kProtocolVersion;
      welcome.max_payload_bytes = options_.max_payload_bytes;
      welcome.max_n = options_.advertised_max_n;
      welcome.server = options_.server_name;
      reply.type = FrameType::kWelcome;
      send_frame(conn, reply, encode_welcome(welcome));
      return;
    }
    case FrameType::kSubmit: {
      if (conn->requests.count(header.request_id) != 0) {
        send_error(conn, conn->tenant, header.request_id,
                   WireError::kDuplicateRequest,
                   to_string(WireError::kDuplicateRequest));
        return;
      }
      Ingress item;
      if (!decode_job_request(payload, payload_size, item.request)) {
        send_error(conn, conn->tenant, header.request_id,
                   WireError::kBadPayload, "malformed job request");
        return;
      }
      item.fd = conn->fd;
      item.request_id = header.request_id;
      item.flags = header.flags;
      // The edge, not the payload, owns identity.
      item.request.options.tenant = conn->tenant;
      item.units = service::price_units(item.request.work.algorithm,
                                        item.request.work.chain.size());
      ingress_.push(conn->tenant, item.units, std::move(item));
      return;
    }
    case FrameType::kPoll: {
      const auto it = conn->requests.find(header.request_id);
      if (it == conn->requests.end()) {
        send_error(conn, conn->tenant, header.request_id,
                   WireError::kUnknownRequest,
                   to_string(WireError::kUnknownRequest));
        return;
      }
      const service::JobStatus status = service_.poll(it->second);
      reply.type = FrameType::kStatus;
      send_frame(conn, reply, encode_job_status(status));
      return;
    }
    case FrameType::kCancel: {
      const auto it = conn->requests.find(header.request_id);
      if (it == conn->requests.end()) {
        send_error(conn, conn->tenant, header.request_id,
                   WireError::kUnknownRequest,
                   to_string(WireError::kUnknownRequest));
        return;
      }
      // Unlocked on purpose: cancelling a queued job fires the
      // completion callback synchronously on this thread.
      const bool cancelled = service_.cancel(it->second);
      reply.type = FrameType::kCancelAck;
      send_frame(conn, reply, encode_cancel_ack(cancelled));
      return;
    }
    case FrameType::kStatsRequest: {
      const std::string json = service_stats_to_json(service_.stats());
      reply.type = FrameType::kStatsReply;
      send_frame(conn, reply,
                 std::vector<std::uint8_t>(json.begin(), json.end()));
      return;
    }
    case FrameType::kGoodbye:
      conn->closing = true;
      return;
    case FrameType::kWelcome:
    case FrameType::kSubmitAck:
    case FrameType::kStatus:
    case FrameType::kCancelAck:
    case FrameType::kResult:
    case FrameType::kRetryAfter:
    case FrameType::kError:
    case FrameType::kStatsReply:
      send_error(conn, conn->tenant, header.request_id, WireError::kBadType,
                 "server-to-client frame type received from client");
      return;
  }
}

void IoDriver::drain_ingress() {
  while (!ingress_.empty()) {
    auto [tenant, item] = ingress_.pop();
    std::shared_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(st_.mutex);
      const auto it = st_.conns.find(item.fd);
      if (it != st_.conns.end()) conn = it->second;
    }
    // Connection gone before its submit was serviced: drop the job --
    // nothing was charged or enqueued yet.
    if (!conn || conn->dead) continue;

    FrameHeader reply;
    reply.tenant_id = tenant;
    reply.request_id = item.request_id;

    // Second duplicate screen: two submits reusing one id in the same
    // poll cycle both pass the frame-time check (neither was registered
    // yet), so the ingress drain re-checks before submitting.
    if (conn->requests.count(item.request_id) != 0) {
      std::lock_guard<std::mutex> lock(st_.mutex);
      ErrorPayload error{WireError::kDuplicateRequest,
                         to_string(WireError::kDuplicateRequest)};
      reply.type = FrameType::kError;
      st_.append_frame_locked(*conn, reply, encode_error(error));
      ++st_.stats.protocol_errors;
      continue;
    }

    const ThrottleDecision decision =
        st_.governor.try_charge(tenant, item.units, now_seconds());
    if (!decision.admitted) {
      RetryAfterPayload retry;
      retry.retry_after_ms = decision.retry_after_ms;
      retry.reason = service::RejectReason::kNone;
      retry.message = "tenant quota exhausted";
      reply.type = FrameType::kRetryAfter;
      {
        std::lock_guard<std::mutex> lock(st_.mutex);
        st_.append_frame_locked(*conn, reply, encode_retry_after(retry));
        ++st_.stats.throttled;
      }
      continue;
    }

    // Unlocked: a rejected submit invokes the completion callback
    // synchronously on this thread, and the callback takes the mutex.
    service::JobHandle handle = service_.submit(std::move(item.request));
    service::JobStatus status = service_.poll(handle);

    if (status.state == service::JobState::kRejected &&
        status.reject_reason == service::RejectReason::kQueueFull) {
      // Queue-full is backpressure, not failure: refund the quota charge
      // and tell the client when to retry the identical submit.
      st_.governor.refund(tenant, item.units);
      RetryAfterPayload retry;
      retry.retry_after_ms = options_.queue_full_retry_ms;
      retry.reason = service::RejectReason::kQueueFull;
      retry.message = "admission queue full";
      reply.type = FrameType::kRetryAfter;
      std::lock_guard<std::mutex> lock(st_.mutex);
      st_.append_frame_locked(*conn, reply, encode_retry_after(retry));
      ++st_.stats.backpressured;
      continue;
    }

    conn->requests[item.request_id] = handle;
    const bool accepted = status.state != service::JobState::kRejected;
    const bool wants_stream =
        accepted && (item.flags & kFlagStreamResult) != 0;

    // Protocol guarantee: the kSubmitAck always precedes the streamed
    // kResult.  The route is therefore registered only AFTER the ack is
    // queued -- the completion callback cannot stream into an outbox
    // that does not yet carry the ack.
    reply.type = FrameType::kSubmitAck;
    {
      std::lock_guard<std::mutex> lock(st_.mutex);
      st_.append_frame_locked(*conn, reply, encode_job_status(status));
      if (accepted) {
        ++st_.stats.submits_accepted;
      } else {
        ++st_.stats.submits_rejected;
      }
    }

    if (wants_stream) {
      FrameHeader result_header;
      result_header.type = FrameType::kResult;
      result_header.tenant_id = tenant;
      result_header.request_id = item.request_id;
      if (service::is_terminal(status.state)) {
        // Finished before the ack: the callback ran with no route, so
        // stream directly -- every accepted streamed submit gets exactly
        // one kResult.
        std::lock_guard<std::mutex> lock(st_.mutex);
        st_.append_frame_locked(*conn, result_header,
                                encode_job_status(status));
        ++st_.stats.results_streamed;
      } else {
        {
          std::lock_guard<std::mutex> lock(st_.mutex);
          st_.routes[handle.id()] =
              Route{item.fd, item.request_id, tenant, false};
        }
        // The job may have finished between submit() and the route
        // registration, in which case the completion callback found no
        // route and sent nothing.  Re-poll and serve the route here;
        // the `sent` latch makes the two paths exactly-once.
        status = service_.poll(handle);
        if (service::is_terminal(status.state)) {
          std::lock_guard<std::mutex> lock(st_.mutex);
          const auto route_it = st_.routes.find(handle.id());
          if (route_it != st_.routes.end() && !route_it->second.sent) {
            route_it->second.sent = true;
            st_.append_frame_locked(*conn, result_header,
                                    encode_job_status(status));
            ++st_.stats.results_streamed;
          }
        }
      }
    }
  }
}

bool IoDriver::flush(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(st_.mutex);
  while (!conn->outbox.empty()) {
    iovec iov[kMaxIov];
    std::size_t count = 0;
    std::size_t skip = conn->front_offset;
    for (const std::vector<std::uint8_t>& frame : conn->outbox) {
      if (count == kMaxIov) break;
      iov[count].iov_base =
          const_cast<std::uint8_t*>(frame.data() + skip);
      iov[count].iov_len = frame.size() - skip;
      skip = 0;
      ++count;
    }
    const ssize_t written =
        ::writev(conn->fd, iov, static_cast<int>(count));
    if (written < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      conn->dead = true;
      return false;
    }
    ++st_.stats.flushes;
    st_.stats.bytes_sent += static_cast<std::uint64_t>(written);
    std::size_t remaining = static_cast<std::size_t>(written);
    while (remaining > 0 && !conn->outbox.empty()) {
      std::vector<std::uint8_t>& front = conn->outbox.front();
      const std::size_t front_left = front.size() - conn->front_offset;
      if (remaining >= front_left) {
        remaining -= front_left;
        conn->outbox.pop_front();
        conn->front_offset = 0;
      } else {
        conn->front_offset += remaining;
        remaining = 0;
      }
    }
  }
  return true;
}

void IoDriver::close_connection(int fd) {
  std::shared_ptr<Connection> conn;
  {
    std::lock_guard<std::mutex> lock(st_.mutex);
    const auto it = st_.conns.find(fd);
    if (it == st_.conns.end()) return;
    conn = it->second;
    st_.conns.erase(it);
    for (auto route_it = st_.routes.begin(); route_it != st_.routes.end();) {
      if (route_it->second.fd == fd) {
        route_it = st_.routes.erase(route_it);
      } else {
        ++route_it;
      }
    }
    ++st_.stats.connections_closed;
  }
  ::close(fd);
  // Jobs the connection submitted keep running; the service owns them.
}

void IoDriver::run() {
  std::vector<pollfd> fds;
  std::vector<int> conn_fds;
  for (;;) {
    fds.clear();
    conn_fds.clear();
    {
      std::lock_guard<std::mutex> lock(st_.mutex);
      if (st_.stopping) break;
      fds.push_back({st_.wake_read, POLLIN, 0});
      fds.push_back({st_.listen_fd, POLLIN, 0});
      for (const auto& [fd, conn] : st_.conns) {
        short events = 0;
        if (!conn->closing && !conn->dead) events |= POLLIN;
        if (!conn->outbox.empty()) events |= POLLOUT;
        fds.push_back({fd, events, 0});
        conn_fds.push_back(fd);
      }
    }

    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 200);
    if (ready < 0 && errno != EINTR) break;

    if (fds[0].revents & POLLIN) {
      std::uint8_t drain[256];
      while (::read(st_.wake_read, drain, sizeof(drain)) > 0) {
      }
    }
    if (fds[1].revents & POLLIN) accept_ready();

    for (std::size_t i = 0; i < conn_fds.size(); ++i) {
      const pollfd& pfd = fds[i + 2];
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(st_.mutex);
        const auto it = st_.conns.find(conn_fds[i]);
        if (it == st_.conns.end()) continue;
        conn = it->second;
      }
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) conn->dead = true;
      if (!conn->dead && (pfd.revents & POLLIN)) {
        if (read_ready(conn)) parse_frames(conn);
      }
    }

    // Fairness point: every submit read this cycle is sitting in the DRR
    // scheduler; drain it in deficit order so one tenant's burst cannot
    // starve another's frames that arrived in the same cycle.
    drain_ingress();

    // Opportunistic flush of every pending outbox (not just POLLOUT
    // signalled ones): replies generated this cycle go out now, batched.
    std::vector<int> to_close;
    conn_fds.clear();
    {
      std::lock_guard<std::mutex> lock(st_.mutex);
      for (const auto& [fd, conn] : st_.conns) conn_fds.push_back(fd);
    }
    for (const int fd : conn_fds) {
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(st_.mutex);
        const auto it = st_.conns.find(fd);
        if (it == st_.conns.end()) continue;
        conn = it->second;
      }
      bool pending = false;
      {
        std::lock_guard<std::mutex> lock(st_.mutex);
        pending = !conn->outbox.empty();
      }
      if (pending && !conn->dead) flush(conn);
      bool empty_out = false;
      {
        std::lock_guard<std::mutex> lock(st_.mutex);
        empty_out = conn->outbox.empty();
      }
      if (conn->dead || (conn->closing && empty_out)) to_close.push_back(fd);
    }
    for (const int fd : to_close) close_connection(fd);
  }

  // Teardown: close every connection (the listener and pipe close with
  // the State).
  std::vector<int> remaining;
  {
    std::lock_guard<std::mutex> lock(st_.mutex);
    for (const auto& [fd, conn] : st_.conns) remaining.push_back(fd);
  }
  for (const int fd : remaining) close_connection(fd);
}

}  // namespace

void WireServer::io_loop() {
  IoDriver driver(*state_, service_, options_);
  driver.run();
}

}  // namespace chainckpt::net
