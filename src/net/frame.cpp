#include "net/frame.hpp"

#include "core/result_io.hpp"

namespace chainckpt::net {

bool frame_type_known(std::uint8_t raw) noexcept {
  return raw >= static_cast<std::uint8_t>(FrameType::kHello) &&
         raw <= static_cast<std::uint8_t>(FrameType::kGoodbye);
}

const char* to_string(FrameType type) noexcept {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kWelcome: return "welcome";
    case FrameType::kSubmit: return "submit";
    case FrameType::kSubmitAck: return "submit_ack";
    case FrameType::kPoll: return "poll";
    case FrameType::kStatus: return "status";
    case FrameType::kCancel: return "cancel";
    case FrameType::kCancelAck: return "cancel_ack";
    case FrameType::kResult: return "result";
    case FrameType::kRetryAfter: return "retry_after";
    case FrameType::kError: return "error";
    case FrameType::kStatsRequest: return "stats_request";
    case FrameType::kStatsReply: return "stats_reply";
    case FrameType::kGoodbye: return "goodbye";
  }
  return "unknown";
}

const char* to_string(WireError error) noexcept {
  switch (error) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad magic";
    case WireError::kBadVersion: return "unsupported protocol version";
    case WireError::kBadType: return "unknown frame type";
    case WireError::kPayloadTooLarge: return "declared payload too large";
    case WireError::kBadPayload: return "malformed payload";
    case WireError::kUnknownRequest: return "unknown request id";
    case WireError::kDuplicateRequest: return "request id already in use";
    case WireError::kTenantMismatch: return "frame tenant differs from "
                                            "the connection's tenant";
    case WireError::kNotAccepting: return "server is not accepting work";
  }
  return "unknown";
}

WireError to_wire_error(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kBadMagic: return WireError::kBadMagic;
    case DecodeStatus::kBadVersion: return WireError::kBadVersion;
    case DecodeStatus::kBadType: return WireError::kBadType;
    case DecodeStatus::kPayloadTooLarge: return WireError::kPayloadTooLarge;
    case DecodeStatus::kOk:
    case DecodeStatus::kNeedMoreData:
      break;
  }
  return WireError::kNone;
}

void encode_header(std::vector<std::uint8_t>& out,
                   const FrameHeader& header) {
  out.reserve(out.size() + kHeaderBytes + header.payload_size);
  for (const std::uint8_t byte : kMagic) out.push_back(byte);
  core::put_u8(out, header.version);
  core::put_u8(out, static_cast<std::uint8_t>(header.type));
  core::put_u16(out, header.flags);
  core::put_u64(out, header.tenant_id);
  core::put_u64(out, header.request_id);
  core::put_u32(out, header.payload_size);
}

std::vector<std::uint8_t> encode_frame(
    const FrameHeader& header, const std::vector<std::uint8_t>& payload) {
  FrameHeader sized = header;
  sized.payload_size = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> out;
  encode_header(out, sized);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

DecodeStatus decode_header(const std::uint8_t* data, std::size_t size,
                           FrameHeader& header, std::uint32_t max_payload) {
  if (size < kHeaderBytes) return DecodeStatus::kNeedMoreData;
  for (std::size_t i = 0; i < 4; ++i) {
    if (data[i] != kMagic[i]) return DecodeStatus::kBadMagic;
  }
  std::size_t offset = 4;
  std::uint8_t version = 0;
  std::uint8_t raw_type = 0;
  core::get_u8(data, size, offset, version);
  core::get_u8(data, size, offset, raw_type);
  core::get_u16(data, size, offset, header.flags);
  core::get_u64(data, size, offset, header.tenant_id);
  core::get_u64(data, size, offset, header.request_id);
  core::get_u32(data, size, offset, header.payload_size);
  header.version = version;
  // Version is checked before type: a future version may define new
  // types, so an unknown type only means "malformed" within a version we
  // actually speak.
  if (version != kProtocolVersion) return DecodeStatus::kBadVersion;
  if (!frame_type_known(raw_type)) return DecodeStatus::kBadType;
  header.type = static_cast<FrameType>(raw_type);
  if (header.payload_size > max_payload) {
    return DecodeStatus::kPayloadTooLarge;
  }
  return DecodeStatus::kOk;
}

}  // namespace chainckpt::net
