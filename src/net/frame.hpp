// Length-prefixed binary wire protocol: the frame layer.
//
// Every message on a chainckpt connection is one frame:
//
//     offset  size  field
//          0     4  magic       "CKPT" (0x43 0x4B 0x50 0x54)
//          4     1  version     kProtocolVersion (1)
//          5     1  type        FrameType
//          6     2  flags       u16 LE (bit 0: kFlagStreamResult)
//          8     8  tenant_id   u64 LE (accounting identity of the frame)
//         16     8  request_id  u64 LE (client-chosen; echoed in replies)
//         24     4  payload_len u32 LE
//         28     -  payload     payload_len bytes (see net/payload.hpp)
//
// The header is fixed-size (kHeaderBytes = 28) so a reader can always
// frame the stream: read 28 bytes, validate, read payload_len more.
// Integers are little-endian, doubles travel as IEEE-754 bit patterns
// (core/result_io.hpp) -- the binary counterpart of spec_io's %.17g
// discipline, bit-exact by construction.
//
// Versioning policy (docs/PROTOCOL.md): the magic and the header layout
// never change; `version` bumps on any payload or semantics change, and a
// server rejects versions it does not speak with kError/kBadVersion
// before reading the payload.  Unknown frame TYPES within a known version
// are a protocol error (kError/kBadType), not a crash -- the fuzz battery
// (tests/net/wire_fuzz_test.cpp) pins both.
//
// decode_header() is total: any 28 bytes produce either a valid header or
// a machine-readable reason, never UB.  Byte-level captures of every
// frame type are golden-pinned in tests/net/golden/ so an accidental
// layout change breaks CI (tests/net/wire_golden_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chainckpt::net {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 28;
/// "CKPT" in wire order (byte 0 = 'C').
inline constexpr std::uint8_t kMagic[4] = {0x43, 0x4B, 0x50, 0x54};
/// Default ceiling on declared payload lengths; a header declaring more
/// is rejected before any allocation (WireServerOptions can lower it).
inline constexpr std::uint32_t kDefaultMaxPayloadBytes = 16u << 20;

/// Frame types of protocol version 1.  Values are wire-stable: new types
/// append, existing values never renumber (golden-pinned).
enum class FrameType : std::uint8_t {
  kHello = 1,         ///< client -> server: first frame; binds the tenant
  kWelcome = 2,       ///< server -> client: version + limits
  kSubmit = 3,        ///< client -> server: one job (payload: job request)
  kSubmitAck = 4,     ///< server -> client: admitted/rejected status
  kPoll = 5,          ///< client -> server: status query (empty payload)
  kStatus = 6,        ///< server -> client: snapshot (result if terminal)
  kCancel = 7,        ///< client -> server: cancel the request id
  kCancelAck = 8,     ///< server -> client: u8 "cancel reached the job"
  kResult = 9,        ///< server -> client: streamed terminal status
  kRetryAfter = 10,   ///< server -> client: backpressure, not failure
  kError = 11,        ///< server -> client: protocol-level error
  kStatsRequest = 12, ///< client -> server: empty payload
  kStatsReply = 13,   ///< server -> client: ServiceStats JSON text
  kGoodbye = 14,      ///< client -> server: orderly close
};

/// True for the type values this protocol version defines.
bool frame_type_known(std::uint8_t raw) noexcept;
const char* to_string(FrameType type) noexcept;

/// Submit flag: stream the terminal Result frame to this connection as
/// soon as the job completes (no polling needed).
inline constexpr std::uint16_t kFlagStreamResult = 1u << 0;

/// Machine-readable error codes carried by kError payloads.
enum class WireError : std::uint16_t {
  kNone = 0,
  kBadMagic = 1,        ///< first 4 bytes are not "CKPT"
  kBadVersion = 2,      ///< version byte != kProtocolVersion
  kBadType = 3,         ///< unknown FrameType value
  kPayloadTooLarge = 4, ///< declared length over the server's ceiling
  kBadPayload = 5,      ///< well-framed but undecodable payload
  kUnknownRequest = 6,  ///< Poll/Cancel for an id this connection never sent
  kDuplicateRequest = 7,///< Submit reusing a live request id
  kTenantMismatch = 8,  ///< frame tenant differs from the connection's
  kNotAccepting = 9,    ///< server shutting down
};

const char* to_string(WireError error) noexcept;

struct FrameHeader {
  std::uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kHello;
  std::uint16_t flags = 0;
  std::uint64_t tenant_id = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_size = 0;
};

/// Header validation outcome; kOk means the header fields were filled in.
enum class DecodeStatus : std::uint8_t {
  kOk,
  kNeedMoreData,    ///< fewer than kHeaderBytes available
  kBadMagic,
  kBadVersion,
  kBadType,
  kPayloadTooLarge,
};

/// Maps the error statuses onto WireError (kOk/kNeedMoreData -> kNone).
WireError to_wire_error(DecodeStatus status) noexcept;

/// Appends the 28-byte header for `payload_size` payload bytes.
void encode_header(std::vector<std::uint8_t>& out, const FrameHeader& header);

/// One whole frame: header + payload copy.
std::vector<std::uint8_t> encode_frame(const FrameHeader& header,
                                       const std::vector<std::uint8_t>& payload);

/// Validates and decodes the first kHeaderBytes of [data, data+size).
/// Total: every input yields kOk (header filled) or a precise reason.
/// `max_payload` guards hostile declared lengths.
DecodeStatus decode_header(const std::uint8_t* data, std::size_t size,
                           FrameHeader& header,
                           std::uint32_t max_payload = kDefaultMaxPayloadBytes);

}  // namespace chainckpt::net
