// Payload (de)serialization of protocol version 1 (net/frame.hpp holds
// the framing; this module fills the payload bytes).
//
// Bit-exactness contract: a JobRequest decoded from the wire reproduces
// every number the solver reads bit-for-bit -- chain weights, platform
// rates/costs, per-position cost streams (including the "empty stream ==
// mirror the checkpoint cost" recovery convention), and the planning law
// -- so a loopback solve is bitwise identical to the in-process solve of
// the original request (tests/net/wire_roundtrip_test.cpp).  Doubles
// travel as IEEE-754 bit patterns (core/result_io.hpp); the JSON text of
// kStatsReply uses the %.17g discipline of scenario/spec_io.hpp.
//
// Decoders are total over hostile bytes: they bounds-check every read,
// validate enum ranges and length consistency, and return false instead
// of throwing or over-allocating, so the fuzz battery can hurl mutated
// payloads at them under ASan+UBSan.  Task names are deliberately NOT
// serialized (they never influence a solve); the decoded chain carries
// the default "T<i>" labels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "service/solver_service.hpp"

namespace chainckpt::net {

// ------------------------------------------------------------- requests
/// kSubmit payload: algorithm + scheduling options + chain + cost model.
std::vector<std::uint8_t> encode_job_request(
    const service::JobRequest& request);
bool decode_job_request(const std::uint8_t* data, std::size_t size,
                        service::JobRequest& request);

// ------------------------------------------------------------- statuses
/// kSubmitAck / kStatus / kResult payload: a JobStatus snapshot; the
/// OptimizationResult rides along exactly when state == kSucceeded.
std::vector<std::uint8_t> encode_job_status(const service::JobStatus& status);
bool decode_job_status(const std::uint8_t* data, std::size_t size,
                       service::JobStatus& status);

// --------------------------------------------------------- backpressure
/// kRetryAfter payload.  Backpressure is advice, not failure: the job was
/// NOT enqueued; retry the identical submit after `retry_after_ms`.
/// `reason` distinguishes an admission queue-full verdict
/// (RejectReason::kQueueFull) from a tenant-quota throttle (kNone).
struct RetryAfterPayload {
  std::uint32_t retry_after_ms = 0;
  service::RejectReason reason = service::RejectReason::kNone;
  std::string message;
};
std::vector<std::uint8_t> encode_retry_after(const RetryAfterPayload& payload);
bool decode_retry_after(const std::uint8_t* data, std::size_t size,
                        RetryAfterPayload& payload);

// --------------------------------------------------------------- errors
struct ErrorPayload {
  WireError code = WireError::kNone;
  std::string message;
};
std::vector<std::uint8_t> encode_error(const ErrorPayload& payload);
bool decode_error(const std::uint8_t* data, std::size_t size,
                  ErrorPayload& payload);

// -------------------------------------------------------------- session
/// kWelcome payload: what the server speaks and will accept.
struct WelcomePayload {
  std::uint8_t version = kProtocolVersion;
  std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  std::uint32_t max_n = 0;  ///< service max chain length
  std::string server;
};
std::vector<std::uint8_t> encode_welcome(const WelcomePayload& payload);
bool decode_welcome(const std::uint8_t* data, std::size_t size,
                    WelcomePayload& payload);

/// kHello payload: free-form client identification (may be empty).
std::vector<std::uint8_t> encode_hello(const std::string& client);
bool decode_hello(const std::uint8_t* data, std::size_t size,
                  std::string& client);

/// kCancelAck payload: did the cancel reach a non-terminal job?
std::vector<std::uint8_t> encode_cancel_ack(bool cancelled);
bool decode_cancel_ack(const std::uint8_t* data, std::size_t size,
                       bool& cancelled);

// ---------------------------------------------------------------- stats
/// ServiceStats (including the per-tenant counter map) as deterministic
/// JSON -- the kStatsReply payload and the HTTP gateway's /v1/stats body.
/// Doubles print %.17g, tenants in ascending id order.
std::string service_stats_to_json(const service::ServiceStats& stats);

}  // namespace chainckpt::net
