#include "net/http_gateway.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "net/payload.hpp"
#include "service/admission.hpp"

namespace chainckpt::net {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string fmt_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// ---------------------------------------------------------------- JSON
// A ~100-line recursive-descent JSON reader for the gateway's fixed
// request schema.  Not a general library: no \uXXXX escapes, doubles
// only.  scenario/spec_io.cpp keeps its own parser on purpose -- its
// grammar is pinned by the golden scenario corpus and must not drift
// with gateway needs.
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<Json> items;
  std::map<std::string, Json> fields;

  const Json* find(const std::string& key) const {
    const auto it = fields.find(key);
    return it != fields.end() ? &it->second : nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(Json& out) {
    if (!value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool value(Json& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.type = Json::Type::kString;
      return string(out.text);
    }
    if (c == 't') {
      out.type = Json::Type::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.type = Json::Type::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.type = Json::Type::kNull;
      return literal("null");
    }
    return number(out);
  }

  bool string(std::string& out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: return false;  // \uXXXX and friends unsupported
        }
        continue;
      }
      out.push_back(c);
    }
    return false;
  }

  bool number(Json& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      std::size_t used = 0;
      out.number = std::stod(text_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) return false;
    } catch (const std::exception&) {
      return false;
    }
    out.type = Json::Type::kNumber;
    return true;
  }

  bool array(Json& out) {
    out.type = Json::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Json item;
      if (!value(item)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool object(Json& out) {
    out.type = Json::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || !string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      Json item;
      if (!value(item)) return false;
      out.fields[key] = std::move(item);
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string job_status_json(const service::JobStatus& status) {
  std::ostringstream out;
  out << "{\"id\":" << status.id << ",\"state\":\""
      << service::to_string(status.state) << "\",\"priority\":\""
      << service::to_string(status.priority)
      << "\",\"tenant\":" << status.tenant << ",\"reject_reason\":\""
      << service::to_string(status.reject_reason)
      << "\",\"cost_units\":" << fmt_double(status.cost_units)
      << ",\"starts\":" << status.starts
      << ",\"preemptions\":" << status.preemptions << ",\"error\":\""
      << json_escape(status.error) << "\"";
  if (status.state == service::JobState::kSucceeded) {
    out << ",\"result\":{\"expected_makespan\":"
        << fmt_double(status.result.expected_makespan) << ",\"actions\":[";
    for (std::size_t i = 1; i <= status.result.plan.size(); ++i) {
      if (i > 1) out << ",";
      out << static_cast<int>(status.result.plan.action(i));
    }
    out << "]}";
  }
  out << "}";
  return out.str();
}

/// Builds a JobRequest from the gateway schema; returns an error string
/// ("" = ok).
std::string parse_job_request(const Json& body,
                              const std::string& tenant_header,
                              service::JobRequest& request) {
  if (body.type != Json::Type::kObject) return "body must be a JSON object";

  const Json* algorithm = body.find("algorithm");
  if (algorithm == nullptr || algorithm->type != Json::Type::kString) {
    return "missing string field \"algorithm\"";
  }
  try {
    request.work.algorithm = core::algorithm_from_string(algorithm->text);
  } catch (const std::exception& error) {
    return error.what();
  }

  std::vector<double> weights;
  if (const Json* weights_json = body.find("weights");
      weights_json != nullptr && weights_json->type == Json::Type::kArray) {
    for (const Json& item : weights_json->items) {
      if (item.type != Json::Type::kNumber) return "weights must be numbers";
      weights.push_back(item.number);
    }
  } else if (const Json* n_json = body.find("n");
             n_json != nullptr && n_json->type == Json::Type::kNumber) {
    const double n = n_json->number;
    if (!(n >= 1.0 && n <= 100000.0)) return "bad \"n\"";
    double weight = 1.0;
    if (const Json* w = body.find("weight");
        w != nullptr && w->type == Json::Type::kNumber) {
      weight = w->number;
    }
    weights.assign(static_cast<std::size_t>(n), weight);
  } else {
    return "provide \"weights\" (array) or \"n\" (uniform chain)";
  }

  const Json* platform_json = body.find("platform");
  if (platform_json == nullptr ||
      platform_json->type != Json::Type::kObject) {
    return "missing object field \"platform\"";
  }
  platform::Platform platform;
  const auto number_field = [&](const char* key, double& out) {
    const Json* field = platform_json->find(key);
    if (field == nullptr || field->type != Json::Type::kNumber) return false;
    out = field->number;
    return true;
  };
  if (const Json* name = platform_json->find("name");
      name != nullptr && name->type == Json::Type::kString) {
    platform.name = name->text;
  }
  double nodes = 0.0;
  number_field("nodes", nodes);
  platform.nodes = static_cast<std::size_t>(nodes);
  if (!number_field("lambda_f", platform.lambda_f) ||
      !number_field("c_disk", platform.c_disk) ||
      !number_field("r_disk", platform.r_disk) ||
      !number_field("v_guaranteed", platform.v_guaranteed)) {
    return "platform requires lambda_f, c_disk, r_disk, v_guaranteed";
  }
  number_field("lambda_s", platform.lambda_s);
  number_field("c_mem", platform.c_mem);
  number_field("r_mem", platform.r_mem);
  number_field("v_partial", platform.v_partial);
  if (!number_field("recall", platform.recall)) platform.recall = 1.0;

  platform::PlanningLaw law;
  if (const Json* law_json = body.find("law");
      law_json != nullptr && law_json->type == Json::Type::kString) {
    if (law_json->text == "weibull") {
      law.law = platform::FailureLaw::kWeibull;
      if (const Json* shape = body.find("weibull_shape");
          shape != nullptr && shape->type == Json::Type::kNumber) {
        law.weibull_shape = shape->number;
      }
    } else if (law_json->text != "exponential") {
      return "law must be \"exponential\" or \"weibull\"";
    }
  }

  try {
    request.work.chain = chain::TaskChain(weights);
    platform::CostModel costs(platform);
    costs.set_planning_law(law);
    request.work.costs = std::move(costs);
  } catch (const std::exception& error) {
    return error.what();
  }

  if (const Json* priority = body.find("priority");
      priority != nullptr && priority->type == Json::Type::kNumber) {
    const double p = priority->number;
    if (!(p >= 0.0 && p <= 3.0)) return "priority must be 0..3";
    request.options.priority =
        static_cast<service::Priority>(static_cast<int>(p));
  }
  if (const Json* deadline = body.find("deadline_ms");
      deadline != nullptr && deadline->type == Json::Type::kNumber) {
    request.options.deadline = std::chrono::milliseconds(
        static_cast<std::int64_t>(deadline->number));
  }

  // The X-Tenant header wins over the body field: the closest HTTP
  // analogue of "the edge owns identity".
  request.options.tenant = 0;
  if (const Json* tenant = body.find("tenant");
      tenant != nullptr && tenant->type == Json::Type::kNumber) {
    request.options.tenant = static_cast<std::uint64_t>(tenant->number);
  }
  if (!tenant_header.empty()) {
    try {
      request.options.tenant = std::stoull(tenant_header);
    } catch (const std::exception&) {
      return "bad X-Tenant header";
    }
  }
  return "";
}

std::string http_response(int code, const std::string& reason,
                          const std::string& body,
                          const std::string& extra_headers = "") {
  std::ostringstream out;
  out << "HTTP/1.1 " << code << " " << reason << "\r\n"
      << "Content-Type: application/json\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << extra_headers << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

}  // namespace

HttpGateway::HttpGateway(service::SolverService& service,
                         TenantGovernor& governor,
                         HttpGatewayOptions options)
    : service_(service), governor_(governor), options_(std::move(options)) {}

HttpGateway::~HttpGateway() { stop(); }

void HttpGateway::start() {
  if (started_) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("http gateway: socket failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
          1 ||
      ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, options_.listen_backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("http gateway: cannot bind " +
                             options_.bind_address + ":" +
                             std::to_string(options_.port));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
  }
  thread_ = std::thread([this] { serve_loop(); });
  started_ = true;
}

void HttpGateway::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
}

HttpGatewayStats HttpGateway::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void HttpGateway::serve_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const timeval timeout{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpGateway::handle_connection(int fd) {
  // Read until the request is complete: headers, then Content-Length
  // body bytes.  One request per connection.
  std::string data;
  std::size_t header_end = std::string::npos;
  std::size_t content_length = 0;
  char buffer[16 * 1024];
  for (;;) {
    if (header_end == std::string::npos) {
      header_end = data.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const std::size_t cl = data.find("Content-Length:");
        if (cl != std::string::npos && cl < header_end) {
          content_length = static_cast<std::size_t>(
              std::strtoul(data.c_str() + cl + 15, nullptr, 10));
        }
        if (content_length > options_.max_request_bytes) return;
      }
    }
    if (header_end != std::string::npos &&
        data.size() >= header_end + 4 + content_length) {
      break;
    }
    if (data.size() > options_.max_request_bytes) return;
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) return;  // timeout, EOF, or error: drop the request
    data.append(buffer, static_cast<std::size_t>(n));
  }

  const std::string head = data.substr(0, header_end);
  const std::string body = data.substr(header_end + 4, content_length);
  std::istringstream request_line(head.substr(0, head.find("\r\n")));
  std::string method, target;
  request_line >> method >> target;

  std::string tenant_header;
  std::size_t pos = head.find("X-Tenant:");
  if (pos == std::string::npos) pos = head.find("x-tenant:");
  if (pos != std::string::npos) {
    std::size_t start = pos + 9;
    while (start < head.size() && head[start] == ' ') ++start;
    std::size_t end = head.find("\r\n", start);
    if (end == std::string::npos) end = head.size();
    tenant_header = head.substr(start, end - start);
  }

  const std::string response = respond(method, target, tenant_header, body);
  std::size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n = ::send(fd, response.data() + sent,
                             response.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

std::string HttpGateway::respond(const std::string& method,
                                 const std::string& target,
                                 const std::string& tenant_header,
                                 const std::string& body) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
  }

  if (method == "GET" && target == "/v1/stats") {
    return http_response(200, "OK",
                         service_stats_to_json(service_.stats()));
  }

  if (method == "GET" && target.rfind("/v1/jobs/", 0) == 0) {
    service::JobHandle handle;
    try {
      const service::JobId id = std::stoull(target.substr(9));
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = jobs_.find(id);
      if (it != jobs_.end()) handle = it->second;
    } catch (const std::exception&) {
    }
    if (!handle.valid()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.client_errors;
      return http_response(404, "Not Found",
                           "{\"error\":\"unknown job id\"}");
    }
    return http_response(200, "OK", job_status_json(service_.poll(handle)));
  }

  if (method == "POST" && target == "/v1/jobs") {
    Json parsed;
    service::JobRequest request;
    std::string error;
    if (!JsonParser(body).parse(parsed)) {
      error = "request body is not valid JSON";
    } else {
      error = parse_job_request(parsed, tenant_header, request);
    }
    if (!error.empty()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.client_errors;
      return http_response(400, "Bad Request",
                           "{\"error\":\"" + json_escape(error) + "\"}");
    }

    const std::uint64_t tenant = request.options.tenant;
    const double units = service::price_units(request.work.algorithm,
                                              request.work.chain.size());
    const ThrottleDecision decision =
        governor_.try_charge(tenant, units, now_seconds());
    if (!decision.admitted) {
      const std::uint32_t seconds =
          (decision.retry_after_ms + 999) / 1000;
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.throttled;
      return http_response(
          429, "Too Many Requests",
          "{\"error\":\"tenant quota exhausted\",\"retry_after_ms\":" +
              std::to_string(decision.retry_after_ms) + "}",
          "Retry-After: " + std::to_string(seconds < 1 ? 1 : seconds) +
              "\r\n");
    }

    const service::JobHandle handle = service_.submit(std::move(request));
    const service::JobStatus status = service_.poll(handle);
    if (status.state == service::JobState::kRejected &&
        status.reject_reason == service::RejectReason::kQueueFull) {
      governor_.refund(tenant, units);
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.backpressured;
      return http_response(
          503, "Service Unavailable",
          "{\"error\":\"admission queue full\"}",
          "Retry-After: " +
              std::to_string(options_.queue_full_retry_seconds) + "\r\n");
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      jobs_[status.id] = handle;
      if (status.state != service::JobState::kRejected) {
        ++stats_.submits_accepted;
      }
    }
    return http_response(200, "OK", job_status_json(status));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.client_errors;
  return http_response(405, "Method Not Allowed",
                       "{\"error\":\"unsupported method or path\"}");
}

}  // namespace chainckpt::net
