// Multi-tenant ingress control for the network edge: token-bucket rate
// quotas priced in admission units, plus a deficit-round-robin (DRR)
// scheduler that keeps one chatty tenant from starving the others'
// already-read frames.
//
// Division of labour with service/admission.hpp: the admission
// controller protects the SOLVER (global queue depth, per-job cost
// caps); the governor here protects the EDGE (per-tenant arrival rate,
// inter-tenant fairness).  Both speak the same currency --
// service::price_units(algorithm, n) -- so a quota of R units/sec is
// directly comparable to the admission budget.
//
// A throttle verdict is backpressure, not failure: the wire server turns
// it into a kRetryAfter frame carrying the bucket's own estimate of when
// the tokens will exist (docs/PROTOCOL.md).  A job the quota admitted
// but admission then bounced (kQueueFull) is refunded, so a full queue
// does not also burn the tenant's budget.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <utility>

namespace chainckpt::net {

/// Rate limit of one tenant.  rate == 0 means unlimited (the bucket is
/// bypassed entirely); burst == 0 with a positive rate defaults to one
/// second's worth of tokens.
struct TenantQuota {
  double rate_units_per_sec = 0.0;
  double burst_units = 0.0;

  bool unlimited() const noexcept { return rate_units_per_sec <= 0.0; }
  double effective_burst() const noexcept {
    return burst_units > 0.0 ? burst_units : rate_units_per_sec;
  }
};

/// Outcome of charging a submit against its tenant's bucket.
struct ThrottleDecision {
  bool admitted = true;
  /// When !admitted: milliseconds until the bucket will hold enough
  /// tokens for this charge (>= 1; the client should wait at least this).
  std::uint32_t retry_after_ms = 0;
};

/// Per-tenant edge counters (distinct from service::TenantCounters, which
/// attributes solver outcomes; these attribute edge verdicts).
struct TenantEdgeStats {
  std::uint64_t admitted = 0;   ///< charges the bucket accepted
  std::uint64_t throttled = 0;  ///< charges bounced with retry-after
  std::uint64_t refunded = 0;   ///< admission queue-full refunds
  double units_charged = 0.0;   ///< net units consumed (charges - refunds)
};

/// Token-bucket registry keyed by tenant id.  Time is injected as
/// seconds-since-epoch doubles so tests can drive the clock explicitly.
/// Thread-safe: shared between the wire server's I/O thread and the HTTP
/// gateway's acceptor thread.
class TenantGovernor {
 public:
  /// `default_quota` applies to tenants with no explicit entry.
  explicit TenantGovernor(TenantQuota default_quota = {});

  /// Installs/overwrites one tenant's quota (bucket starts full).
  void set_quota(std::uint64_t tenant, TenantQuota quota);
  TenantQuota quota_for(std::uint64_t tenant) const;

  /// Refills the tenant's bucket to `now_seconds`, then tries to take
  /// `units` tokens.  Admits when the bucket holds the charge (capped at
  /// the burst ceiling, so a single job priced above the burst is not
  /// starved forever -- it waits for a full bucket, not an impossible
  /// one).  The bucket may go negative on an admitted charge (burst
  /// debt), which later charges repay by waiting.
  ThrottleDecision try_charge(std::uint64_t tenant, double units,
                              double now_seconds);

  /// Returns `units` to the bucket (clamped to the burst ceiling).  Used
  /// when the quota said yes but admission said queue-full: backpressure
  /// must not double-bill.
  void refund(std::uint64_t tenant, double units);

  /// Edge counters per tenant, ascending id (tenants seen by the
  /// governor; a tenant with an unlimited quota still appears).
  std::map<std::uint64_t, TenantEdgeStats> stats() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    double last_refill_seconds = 0.0;
    bool primed = false;  ///< bucket starts full on first sighting
    TenantEdgeStats stats;
  };

  Bucket& bucket_locked(std::uint64_t tenant);

  mutable std::mutex mutex_;
  TenantQuota default_quota_;
  std::map<std::uint64_t, TenantQuota> quotas_;
  std::map<std::uint64_t, Bucket> buckets_;
};

/// Deficit round robin over per-tenant FIFO queues.  Each queued item
/// carries its admission price; every visit grants the tenant `quantum`
/// units of deficit, and the head item is served once the accumulated
/// deficit covers its price.  Cheap jobs from polite tenants therefore
/// overtake a flood of expensive jobs from a greedy one, while each
/// tenant's own items stay FIFO.  Single-threaded by design (the wire
/// server's I/O loop owns it).
template <typename Item>
class DrrScheduler {
 public:
  explicit DrrScheduler(double quantum) : quantum_(quantum > 0.0 ? quantum : 1.0) {}

  void push(std::uint64_t tenant, double cost, Item item) {
    Queue& queue = queues_[tenant];
    if (queue.items.empty() && !queue.active) {
      queue.active = true;
      round_.push_back(tenant);
    }
    queue.items.emplace_back(cost, std::move(item));
    ++size_;
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  /// Serves the next item in DRR order.  Requires !empty().  Terminates:
  /// every full rotation adds `quantum_` to each active tenant's deficit,
  /// so some head item eventually becomes affordable.
  std::pair<std::uint64_t, Item> pop() {
    for (;;) {
      const std::uint64_t tenant = round_.front();
      Queue& queue = queues_[tenant];
      queue.deficit += quantum_;
      if (!queue.items.empty() && queue.items.front().first <= queue.deficit) {
        queue.deficit -= queue.items.front().first;
        Item item = std::move(queue.items.front().second);
        queue.items.pop_front();
        --size_;
        round_.pop_front();
        if (queue.items.empty()) {
          // An empty queue forfeits its deficit -- credit must not be
          // hoarded across idle periods (textbook DRR).
          queue.deficit = 0.0;
          queue.active = false;
        } else {
          round_.push_back(tenant);
        }
        return {tenant, std::move(item)};
      }
      round_.pop_front();
      round_.push_back(tenant);
    }
  }

 private:
  struct Queue {
    std::deque<std::pair<double, Item>> items;
    double deficit = 0.0;
    bool active = false;
  };

  double quantum_;
  std::map<std::uint64_t, Queue> queues_;
  std::deque<std::uint64_t> round_;
  std::size_t size_ = 0;
};

}  // namespace chainckpt::net
