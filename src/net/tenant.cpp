#include "net/tenant.hpp"

#include <algorithm>
#include <cmath>

namespace chainckpt::net {

TenantGovernor::TenantGovernor(TenantQuota default_quota)
    : default_quota_(default_quota) {}

void TenantGovernor::set_quota(std::uint64_t tenant, TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mutex_);
  quotas_[tenant] = quota;
  // A quota change resets the bucket: it re-primes (full at the new
  // burst) on the next charge.
  buckets_[tenant].primed = false;
}

TenantQuota TenantGovernor::quota_for(std::uint64_t tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = quotas_.find(tenant);
  return it != quotas_.end() ? it->second : default_quota_;
}

TenantGovernor::Bucket& TenantGovernor::bucket_locked(std::uint64_t tenant) {
  return buckets_[tenant];
}

ThrottleDecision TenantGovernor::try_charge(std::uint64_t tenant,
                                            double units,
                                            double now_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = quotas_.find(tenant);
  const TenantQuota quota =
      it != quotas_.end() ? it->second : default_quota_;
  Bucket& bucket = bucket_locked(tenant);
  if (quota.unlimited()) {
    ++bucket.stats.admitted;
    bucket.stats.units_charged += units;
    return {true, 0};
  }

  const double burst = quota.effective_burst();
  if (!bucket.primed) {
    bucket.tokens = burst;
    bucket.last_refill_seconds = now_seconds;
    bucket.primed = true;
  } else if (now_seconds > bucket.last_refill_seconds) {
    bucket.tokens = std::min(
        burst, bucket.tokens + quota.rate_units_per_sec *
                                   (now_seconds - bucket.last_refill_seconds));
    bucket.last_refill_seconds = now_seconds;
  }

  // A charge above the burst ceiling can never be fully covered; require
  // a full bucket instead of starving it forever.
  const double required = std::min(units, burst);
  if (bucket.tokens + 1e-12 >= required) {
    bucket.tokens -= units;  // may go negative: burst debt
    ++bucket.stats.admitted;
    bucket.stats.units_charged += units;
    return {true, 0};
  }

  const double deficit = required - bucket.tokens;
  const double wait_seconds = deficit / quota.rate_units_per_sec;
  const double wait_ms = std::ceil(wait_seconds * 1000.0);
  std::uint32_t retry_after_ms = 1;
  if (wait_ms >= 1.0) {
    retry_after_ms = wait_ms > 4294967294.0
                         ? 4294967294u
                         : static_cast<std::uint32_t>(wait_ms);
  }
  ++bucket.stats.throttled;
  return {false, retry_after_ms};
}

void TenantGovernor::refund(std::uint64_t tenant, double units) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = quotas_.find(tenant);
  const TenantQuota quota =
      it != quotas_.end() ? it->second : default_quota_;
  Bucket& bucket = bucket_locked(tenant);
  ++bucket.stats.refunded;
  bucket.stats.units_charged -= units;
  if (quota.unlimited()) return;
  bucket.tokens = std::min(quota.effective_burst(), bucket.tokens + units);
}

std::map<std::uint64_t, TenantEdgeStats> TenantGovernor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::uint64_t, TenantEdgeStats> out;
  for (const auto& [tenant, bucket] : buckets_) {
    out[tenant] = bucket.stats;
  }
  return out;
}

}  // namespace chainckpt::net
