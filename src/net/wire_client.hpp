// Thin blocking client for the wire protocol: one TCP connection, one
// tenant, synchronous request/reply with a stash for interleaved frames
// (a streamed kResult may arrive while the caller awaits a kStatus;
// the stash holds it until wait_result() asks).
//
// This is deliberately the simplest correct client: blocking socket,
// no internal threads, not thread-safe.  It exists for the loopback
// test battery (tests/net/), the benches, and as reference code for
// writing a real client (tools/wire_smoke.py is the same logic in
// Python).  Protocol-level kError frames surface as WireClientError.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/payload.hpp"
#include "service/solver_service.hpp"

namespace chainckpt::net {

/// A kError frame (or a transport failure) surfaced to the caller.
class WireClientError : public std::runtime_error {
 public:
  WireClientError(WireError code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  /// kNone for transport-level failures (EOF, short read).
  WireError code() const noexcept { return code_; }

 private:
  WireError code_;
};

/// One received frame, payload still raw.
struct ClientFrame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Reply to submit(): exactly one of the three shapes.
struct SubmitOutcome {
  /// True when the server answered kRetryAfter (quota throttle or
  /// admission queue-full): the job was NOT enqueued; retry later.
  bool retry = false;
  RetryAfterPayload retry_info;
  /// Valid when !retry: the kSubmitAck snapshot (kQueued/kRunning when
  /// accepted; kRejected with reject_reason when refused outright).
  service::JobStatus status;
};

class WireClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::uint64_t tenant = 0;
    std::string client_name = "wire_client";
    std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  };

  /// Connects (throws WireClientError on failure).  No frames are
  /// exchanged until hello()/submit().
  explicit WireClient(Options options);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// kHello -> kWelcome handshake; binds the tenant server-side.
  WelcomePayload hello();

  /// Submits one job under `request_id` (client-chosen, unique per
  /// connection).  `stream` requests a kResult push on completion
  /// (collect it with wait_result()).
  SubmitOutcome submit(const service::JobRequest& request,
                       std::uint64_t request_id, bool stream = false);

  /// kPoll -> kStatus snapshot.
  service::JobStatus poll(std::uint64_t request_id);

  /// Blocks until the streamed kResult frame for `request_id` arrives
  /// (submit(..., stream = true) must have been used).
  service::JobStatus wait_result(std::uint64_t request_id);

  /// kCancel -> kCancelAck; true when the cancel reached a live job.
  bool cancel(std::uint64_t request_id);

  /// kStatsRequest -> kStatsReply JSON text.
  std::string stats_json();

  /// Orderly close (kGoodbye + shutdown).  Idempotent.
  void goodbye();

  // Low-level escape hatches (the conformance tests drive these).
  void send_frame(const FrameHeader& header,
                  const std::vector<std::uint8_t>& payload);
  void send_raw(const std::uint8_t* data, std::size_t size);
  ClientFrame read_frame();

 private:
  /// Returns the next frame whose request id matches, stashing others.
  /// Throws WireClientError when that frame is kError.
  ClientFrame await_reply(std::uint64_t request_id);
  FrameHeader make_header(FrameType type, std::uint64_t request_id,
                          std::uint16_t flags = 0) const;

  Options options_;
  int fd_ = -1;
  std::deque<ClientFrame> stash_;
};

}  // namespace chainckpt::net
