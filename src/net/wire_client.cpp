#include "net/wire_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace chainckpt::net {

namespace {

void read_exact(int fd, std::uint8_t* out, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, out + got, size - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw WireClientError(WireError::kNone,
                          n == 0 ? "connection closed by server"
                                 : "recv failed: " +
                                       std::string(std::strerror(errno)));
  }
}

}  // namespace

WireClient::WireClient(Options options) : options_(std::move(options)) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw WireClientError(WireError::kNone, "socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw WireClientError(WireError::kNone,
                          "bad host address " + options_.host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw WireClientError(WireError::kNone,
                          "connect to " + options_.host + ":" +
                              std::to_string(options_.port) + " failed: " +
                              std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

WireClient::~WireClient() {
  if (fd_ >= 0) ::close(fd_);
}

FrameHeader WireClient::make_header(FrameType type, std::uint64_t request_id,
                                    std::uint16_t flags) const {
  FrameHeader header;
  header.type = type;
  header.flags = flags;
  header.tenant_id = options_.tenant;
  header.request_id = request_id;
  return header;
}

void WireClient::send_raw(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw WireClientError(
        WireError::kNone,
        "send failed: " + std::string(std::strerror(errno)));
  }
}

void WireClient::send_frame(const FrameHeader& header,
                            const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = encode_frame(header, payload);
  send_raw(frame.data(), frame.size());
}

ClientFrame WireClient::read_frame() {
  ClientFrame frame;
  std::uint8_t header_bytes[kHeaderBytes];
  read_exact(fd_, header_bytes, kHeaderBytes);
  const DecodeStatus status =
      decode_header(header_bytes, kHeaderBytes, frame.header,
                    options_.max_payload_bytes);
  if (status != DecodeStatus::kOk) {
    throw WireClientError(to_wire_error(status),
                          "undecodable frame header from server");
  }
  frame.payload.resize(frame.header.payload_size);
  if (frame.header.payload_size > 0) {
    read_exact(fd_, frame.payload.data(), frame.payload.size());
  }
  return frame;
}

ClientFrame WireClient::await_reply(std::uint64_t request_id) {
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    if (it->header.request_id == request_id) {
      ClientFrame frame = std::move(*it);
      stash_.erase(it);
      if (frame.header.type == FrameType::kError) {
        ErrorPayload error;
        decode_error(frame.payload.data(), frame.payload.size(), error);
        throw WireClientError(error.code, error.message);
      }
      return frame;
    }
  }
  for (;;) {
    ClientFrame frame = read_frame();
    if (frame.header.request_id != request_id) {
      stash_.push_back(std::move(frame));
      continue;
    }
    if (frame.header.type == FrameType::kError) {
      ErrorPayload error;
      decode_error(frame.payload.data(), frame.payload.size(), error);
      throw WireClientError(error.code, error.message);
    }
    return frame;
  }
}

WelcomePayload WireClient::hello() {
  send_frame(make_header(FrameType::kHello, 0),
             encode_hello(options_.client_name));
  const ClientFrame frame = await_reply(0);
  WelcomePayload welcome;
  if (frame.header.type != FrameType::kWelcome ||
      !decode_welcome(frame.payload.data(), frame.payload.size(), welcome)) {
    throw WireClientError(WireError::kBadPayload,
                          "expected a kWelcome reply to hello");
  }
  return welcome;
}

SubmitOutcome WireClient::submit(const service::JobRequest& request,
                                 std::uint64_t request_id, bool stream) {
  send_frame(make_header(FrameType::kSubmit, request_id,
                         stream ? kFlagStreamResult : 0),
             encode_job_request(request));
  const ClientFrame frame = await_reply(request_id);
  SubmitOutcome outcome;
  if (frame.header.type == FrameType::kRetryAfter) {
    outcome.retry = true;
    if (!decode_retry_after(frame.payload.data(), frame.payload.size(),
                            outcome.retry_info)) {
      throw WireClientError(WireError::kBadPayload,
                            "malformed kRetryAfter payload");
    }
    return outcome;
  }
  if (frame.header.type != FrameType::kSubmitAck ||
      !decode_job_status(frame.payload.data(), frame.payload.size(),
                         outcome.status)) {
    throw WireClientError(WireError::kBadPayload,
                          "expected a kSubmitAck reply to submit");
  }
  return outcome;
}

service::JobStatus WireClient::poll(std::uint64_t request_id) {
  send_frame(make_header(FrameType::kPoll, request_id), {});
  const ClientFrame frame = await_reply(request_id);
  service::JobStatus status;
  if (frame.header.type != FrameType::kStatus ||
      !decode_job_status(frame.payload.data(), frame.payload.size(),
                         status)) {
    throw WireClientError(WireError::kBadPayload,
                          "expected a kStatus reply to poll");
  }
  return status;
}

service::JobStatus WireClient::wait_result(std::uint64_t request_id) {
  // A kStatus stashed for this id (a poll raced the stream) does not
  // satisfy wait_result; only the pushed kResult does.
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    if (it->header.request_id == request_id &&
        it->header.type == FrameType::kResult) {
      ClientFrame frame = std::move(*it);
      stash_.erase(it);
      service::JobStatus status;
      if (!decode_job_status(frame.payload.data(), frame.payload.size(),
                             status)) {
        throw WireClientError(WireError::kBadPayload,
                              "malformed kResult payload");
      }
      return status;
    }
  }
  for (;;) {
    ClientFrame frame = read_frame();
    if (frame.header.request_id == request_id &&
        frame.header.type == FrameType::kResult) {
      service::JobStatus status;
      if (!decode_job_status(frame.payload.data(), frame.payload.size(),
                             status)) {
        throw WireClientError(WireError::kBadPayload,
                              "malformed kResult payload");
      }
      return status;
    }
    stash_.push_back(std::move(frame));
  }
}

bool WireClient::cancel(std::uint64_t request_id) {
  send_frame(make_header(FrameType::kCancel, request_id), {});
  const ClientFrame frame = await_reply(request_id);
  bool cancelled = false;
  if (frame.header.type != FrameType::kCancelAck ||
      !decode_cancel_ack(frame.payload.data(), frame.payload.size(),
                         cancelled)) {
    throw WireClientError(WireError::kBadPayload,
                          "expected a kCancelAck reply to cancel");
  }
  return cancelled;
}

std::string WireClient::stats_json() {
  send_frame(make_header(FrameType::kStatsRequest, 0), {});
  const ClientFrame frame = await_reply(0);
  if (frame.header.type != FrameType::kStatsReply) {
    throw WireClientError(WireError::kBadPayload,
                          "expected a kStatsReply reply");
  }
  return std::string(frame.payload.begin(), frame.payload.end());
}

void WireClient::goodbye() {
  if (fd_ < 0) return;
  try {
    send_frame(make_header(FrameType::kGoodbye, 0), {});
  } catch (const WireClientError&) {
    // Closing anyway.
  }
  ::shutdown(fd_, SHUT_WR);
  ::close(fd_);
  fd_ = -1;
}

}  // namespace chainckpt::net
