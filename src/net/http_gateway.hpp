// Minimal HTTP/JSON gateway over the same SolverService: the curl-able
// face of the wire protocol for operators and scripts that do not speak
// binary frames.  Deliberately small -- HTTP/1.1, Connection: close, one
// request per connection, no TLS, no chunking -- because the binary
// protocol (net/wire_server.hpp) is the real data path.
//
// Endpoints:
//   POST /v1/jobs        submit one job (JSON body; see docs/PROTOCOL.md)
//                        -> 200 job JSON | 400 | 429/503 + Retry-After
//   GET  /v1/jobs/<id>   poll a job by its service JobId
//                        -> 200 job JSON | 404
//   GET  /v1/stats       ServiceStats JSON (net/payload.hpp's encoder)
//
// Backpressure maps onto HTTP natively: a tenant-quota throttle is
// 429 Too Many Requests and an admission queue-full verdict is
// 503 Service Unavailable, both carrying a Retry-After header (seconds,
// rounded up) -- the same semantics as the binary kRetryAfter frame.
// The gateway shares the wire server's TenantGovernor so a tenant's
// budget is one pool regardless of which door it uses; the tenant id
// comes from the X-Tenant header (or "tenant" in the body, the header
// winning -- closest analogue of "the edge owns identity").
#pragma once

#include <cstdint>
#include <string>
#include <thread>

#include "net/tenant.hpp"
#include "service/solver_service.hpp"

namespace chainckpt::net {

struct HttpGatewayOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral
  int listen_backlog = 16;
  /// Cap on request size (start line + headers + body).
  std::size_t max_request_bytes = 1u << 20;
  /// Retry-After seconds attached to 503 queue-full responses.
  std::uint32_t queue_full_retry_seconds = 1;
};

struct HttpGatewayStats {
  std::uint64_t requests = 0;
  std::uint64_t submits_accepted = 0;
  std::uint64_t throttled = 0;      ///< 429 responses
  std::uint64_t backpressured = 0;  ///< 503 queue-full responses
  std::uint64_t client_errors = 0;  ///< 400/404/405 responses
};

class HttpGateway {
 public:
  /// `service` and `governor` must outlive the gateway; pass the wire
  /// server's governor() to share one quota pool across both edges.
  HttpGateway(service::SolverService& service, TenantGovernor& governor,
              HttpGatewayOptions options = {});
  ~HttpGateway();

  HttpGateway(const HttpGateway&) = delete;
  HttpGateway& operator=(const HttpGateway&) = delete;

  void start();
  void stop();
  std::uint16_t port() const noexcept { return port_; }
  HttpGatewayStats stats() const;

 private:
  void serve_loop();
  void handle_connection(int fd);
  /// Returns the full HTTP response for one parsed request.
  std::string respond(const std::string& method, const std::string& target,
                      const std::string& tenant_header,
                      const std::string& body);

  service::SolverService& service_;
  TenantGovernor& governor_;
  HttpGatewayOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  bool started_ = false;
  mutable std::mutex mutex_;
  bool stopping_ = false;
  HttpGatewayStats stats_;
  /// JobId -> handle so GET /v1/jobs/<id> can poll (gateway submissions
  /// only; wire-server jobs are polled over the wire).
  std::map<service::JobId, service::JobHandle> jobs_;
};

}  // namespace chainckpt::net
