#include "net/payload.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/result_io.hpp"

namespace chainckpt::net {

namespace {

using core::get_f64;
using core::get_string;
using core::get_u16;
using core::get_u32;
using core::get_u64;
using core::get_u8;
using core::put_f64;
using core::put_string;
using core::put_u16;
using core::put_u32;
using core::put_u64;
using core::put_u8;

constexpr std::uint8_t kMaxAlgorithm =
    static_cast<std::uint8_t>(core::Algorithm::kDaly);
constexpr std::uint8_t kMaxPriority =
    static_cast<std::uint8_t>(service::Priority::kUrgent);
constexpr std::uint8_t kMaxJobState =
    static_cast<std::uint8_t>(service::JobState::kRejected);
constexpr std::uint8_t kMaxRejectReason =
    static_cast<std::uint8_t>(service::RejectReason::kShutdown);
/// Sanity ceiling on decoded element counts (chains, cost streams): far
/// above any real chain (DpContext::kDefaultMaxN = 900) but small enough
/// that a hostile count cannot drive a giant allocation before the
/// per-element bounds checks run.
constexpr std::uint32_t kMaxElements = 1u << 20;

/// Reads `count` doubles after checking the bytes are actually present.
bool get_f64_vector(const std::uint8_t* data, std::size_t size,
                    std::size_t& offset, std::uint32_t count,
                    std::vector<double>& out) {
  if (count > kMaxElements) return false;
  if (offset > size || (size - offset) / 8 < count) return false;
  out.clear();
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    double value;
    if (!get_f64(data, size, offset, value)) return false;
    out.push_back(value);
  }
  return true;
}

void put_f64_vector(std::vector<std::uint8_t>& out,
                    const std::vector<double>& values) {
  put_u32(out, static_cast<std::uint32_t>(values.size()));
  for (const double value : values) put_f64(out, value);
}

std::string fmt_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::vector<std::uint8_t> encode_job_request(
    const service::JobRequest& request) {
  std::vector<std::uint8_t> out;
  put_u8(out, static_cast<std::uint8_t>(request.work.algorithm));
  put_u8(out, static_cast<std::uint8_t>(request.options.priority));
  put_u64(out, static_cast<std::uint64_t>(request.options.deadline.count()));
  put_f64(out, request.options.cache_epsilon);
  put_u64(out, request.options.tenant);

  const chain::TaskChain& chain = request.work.chain;
  put_u32(out, static_cast<std::uint32_t>(chain.size()));
  for (std::size_t i = 1; i <= chain.size(); ++i) {
    put_f64(out, chain.weight(i));
  }

  const platform::CostModel& costs = request.work.costs;
  const platform::Platform& p = costs.platform();
  put_string(out, p.name);
  put_u32(out, static_cast<std::uint32_t>(p.nodes));
  put_f64(out, p.lambda_f);
  put_f64(out, p.lambda_s);
  put_f64(out, p.c_disk);
  put_f64(out, p.c_mem);
  put_f64(out, p.r_disk);
  put_f64(out, p.r_mem);
  put_f64(out, p.v_guaranteed);
  put_f64(out, p.v_partial);
  put_f64(out, p.recall);

  const platform::PlanningLaw& law = costs.planning_law();
  put_u8(out, static_cast<std::uint8_t>(law.law));
  put_f64(out, law.weibull_shape);

  // Per-position streams ship exactly as constructed (all empty when
  // uniform; recovery streams empty when mirrored) so the decoder can
  // rebuild the model through the matching constructor and reproduce the
  // mirror semantics, not just today's values.
  put_u8(out, costs.is_uniform() ? 1 : 0);
  if (!costs.is_uniform()) {
    put_f64_vector(out, costs.raw_c_disk());
    put_f64_vector(out, costs.raw_c_mem());
    put_f64_vector(out, costs.raw_v_guaranteed());
    put_f64_vector(out, costs.raw_v_partial());
    put_f64_vector(out, costs.raw_r_disk());
    put_f64_vector(out, costs.raw_r_mem());
  }
  return out;
}

bool decode_job_request(const std::uint8_t* data, std::size_t size,
                        service::JobRequest& request) {
  std::size_t offset = 0;
  std::uint8_t algorithm, priority;
  std::uint64_t deadline_ms, tenant;
  double cache_epsilon;
  if (!get_u8(data, size, offset, algorithm) || algorithm > kMaxAlgorithm ||
      !get_u8(data, size, offset, priority) || priority > kMaxPriority ||
      !get_u64(data, size, offset, deadline_ms) ||
      !get_f64(data, size, offset, cache_epsilon) ||
      !get_u64(data, size, offset, tenant)) {
    return false;
  }

  std::uint32_t n;
  if (!get_u32(data, size, offset, n)) return false;
  std::vector<double> weights;
  if (!get_f64_vector(data, size, offset, n, weights)) return false;
  for (const double w : weights) {
    if (!std::isfinite(w) || w <= 0.0) return false;
  }

  platform::Platform p;
  std::uint32_t nodes;
  if (!get_string(data, size, offset, p.name) ||
      !get_u32(data, size, offset, nodes) ||
      !get_f64(data, size, offset, p.lambda_f) ||
      !get_f64(data, size, offset, p.lambda_s) ||
      !get_f64(data, size, offset, p.c_disk) ||
      !get_f64(data, size, offset, p.c_mem) ||
      !get_f64(data, size, offset, p.r_disk) ||
      !get_f64(data, size, offset, p.r_mem) ||
      !get_f64(data, size, offset, p.v_guaranteed) ||
      !get_f64(data, size, offset, p.v_partial) ||
      !get_f64(data, size, offset, p.recall)) {
    return false;
  }
  p.nodes = nodes;

  std::uint8_t law_raw;
  platform::PlanningLaw law;
  if (!get_u8(data, size, offset, law_raw) || law_raw > 1 ||
      !get_f64(data, size, offset, law.weibull_shape)) {
    return false;
  }
  law.law = static_cast<platform::FailureLaw>(law_raw);

  std::uint8_t uniform;
  if (!get_u8(data, size, offset, uniform) || uniform > 1) return false;
  std::vector<double> c_disk, c_mem, v_guar, v_part, r_disk, r_mem;
  if (uniform == 0) {
    std::uint32_t count;
    if (!get_u32(data, size, offset, count) || count != n ||
        !get_f64_vector(data, size, offset, count, c_disk)) {
      return false;
    }
    const auto read_stream = [&](std::vector<double>& stream,
                                 bool may_be_empty) {
      std::uint32_t len;
      if (!get_u32(data, size, offset, len)) return false;
      if (len != n && !(may_be_empty && len == 0)) return false;
      return get_f64_vector(data, size, offset, len, stream);
    };
    if (!read_stream(c_mem, false) || !read_stream(v_guar, false) ||
        !read_stream(v_part, false) || !read_stream(r_disk, true) ||
        !read_stream(r_mem, true)) {
      return false;
    }
  }
  if (offset != size) return false;  // trailing bytes: malformed

  // Construction validates ranges (rates, recall, positivity) by
  // throwing; a decoder must be total over hostile bytes, so the throw
  // becomes `false` here.
  try {
    request.work.algorithm = static_cast<core::Algorithm>(algorithm);
    request.work.chain = chain::TaskChain(weights);
    platform::CostModel costs =
        uniform == 1
            ? platform::CostModel(p)
            : platform::CostModel(p, std::move(c_disk), std::move(c_mem),
                                  std::move(v_guar), std::move(v_part),
                                  std::move(r_disk), std::move(r_mem));
    costs.set_planning_law(law);
    request.work.costs = std::move(costs);
  } catch (const std::exception&) {
    return false;
  }
  request.work.cache_epsilon = cache_epsilon;
  request.options.priority = static_cast<service::Priority>(priority);
  request.options.deadline =
      std::chrono::milliseconds(static_cast<std::int64_t>(deadline_ms));
  request.options.cache_epsilon = cache_epsilon;
  request.options.tenant = tenant;
  return true;
}

std::vector<std::uint8_t> encode_job_status(
    const service::JobStatus& status) {
  std::vector<std::uint8_t> out;
  put_u64(out, status.id);
  put_u8(out, static_cast<std::uint8_t>(status.state));
  put_u8(out, static_cast<std::uint8_t>(status.priority));
  put_u8(out, static_cast<std::uint8_t>(status.reject_reason));
  put_u64(out, status.tenant);
  put_f64(out, status.cost_units);
  put_u64(out, status.submit_seq);
  put_u64(out, status.start_seq);
  put_u32(out, status.starts);
  put_u32(out, status.preemptions);
  put_string(out, status.error);
  const bool has_result = status.state == service::JobState::kSucceeded;
  put_u8(out, has_result ? 1 : 0);
  if (has_result) core::append_result(out, status.result);
  return out;
}

bool decode_job_status(const std::uint8_t* data, std::size_t size,
                       service::JobStatus& status) {
  std::size_t offset = 0;
  std::uint8_t state, priority, reject;
  if (!get_u64(data, size, offset, status.id) ||
      !get_u8(data, size, offset, state) || state > kMaxJobState ||
      !get_u8(data, size, offset, priority) || priority > kMaxPriority ||
      !get_u8(data, size, offset, reject) || reject > kMaxRejectReason ||
      !get_u64(data, size, offset, status.tenant) ||
      !get_f64(data, size, offset, status.cost_units) ||
      !get_u64(data, size, offset, status.submit_seq) ||
      !get_u64(data, size, offset, status.start_seq) ||
      !get_u32(data, size, offset, status.starts) ||
      !get_u32(data, size, offset, status.preemptions) ||
      !get_string(data, size, offset, status.error)) {
    return false;
  }
  status.state = static_cast<service::JobState>(state);
  status.priority = static_cast<service::Priority>(priority);
  status.reject_reason = static_cast<service::RejectReason>(reject);
  std::uint8_t has_result;
  if (!get_u8(data, size, offset, has_result) || has_result > 1) return false;
  if (has_result == 1) {
    if (status.state != service::JobState::kSucceeded) return false;
    if (!core::read_result(data, size, offset, status.result)) return false;
  } else {
    status.result = core::OptimizationResult{};
  }
  return offset == size;
}

std::vector<std::uint8_t> encode_retry_after(
    const RetryAfterPayload& payload) {
  std::vector<std::uint8_t> out;
  put_u32(out, payload.retry_after_ms);
  put_u8(out, static_cast<std::uint8_t>(payload.reason));
  put_string(out, payload.message);
  return out;
}

bool decode_retry_after(const std::uint8_t* data, std::size_t size,
                        RetryAfterPayload& payload) {
  std::size_t offset = 0;
  std::uint8_t reason;
  if (!get_u32(data, size, offset, payload.retry_after_ms) ||
      !get_u8(data, size, offset, reason) || reason > kMaxRejectReason ||
      !get_string(data, size, offset, payload.message)) {
    return false;
  }
  payload.reason = static_cast<service::RejectReason>(reason);
  return offset == size;
}

std::vector<std::uint8_t> encode_error(const ErrorPayload& payload) {
  std::vector<std::uint8_t> out;
  put_u16(out, static_cast<std::uint16_t>(payload.code));
  put_string(out, payload.message);
  return out;
}

bool decode_error(const std::uint8_t* data, std::size_t size,
                  ErrorPayload& payload) {
  std::size_t offset = 0;
  std::uint16_t code;
  if (!get_u16(data, size, offset, code) ||
      code > static_cast<std::uint16_t>(WireError::kNotAccepting) ||
      !get_string(data, size, offset, payload.message)) {
    return false;
  }
  payload.code = static_cast<WireError>(code);
  return offset == size;
}

std::vector<std::uint8_t> encode_welcome(const WelcomePayload& payload) {
  std::vector<std::uint8_t> out;
  put_u8(out, payload.version);
  put_u32(out, payload.max_payload_bytes);
  put_u32(out, payload.max_n);
  put_string(out, payload.server);
  return out;
}

bool decode_welcome(const std::uint8_t* data, std::size_t size,
                    WelcomePayload& payload) {
  std::size_t offset = 0;
  return get_u8(data, size, offset, payload.version) &&
         get_u32(data, size, offset, payload.max_payload_bytes) &&
         get_u32(data, size, offset, payload.max_n) &&
         get_string(data, size, offset, payload.server) && offset == size;
}

std::vector<std::uint8_t> encode_hello(const std::string& client) {
  std::vector<std::uint8_t> out;
  put_string(out, client);
  return out;
}

bool decode_hello(const std::uint8_t* data, std::size_t size,
                  std::string& client) {
  std::size_t offset = 0;
  return get_string(data, size, offset, client) && offset == size;
}

std::vector<std::uint8_t> encode_cancel_ack(bool cancelled) {
  std::vector<std::uint8_t> out;
  put_u8(out, cancelled ? 1 : 0);
  return out;
}

bool decode_cancel_ack(const std::uint8_t* data, std::size_t size,
                       bool& cancelled) {
  std::size_t offset = 0;
  std::uint8_t raw;
  if (!get_u8(data, size, offset, raw) || raw > 1 || offset != size) {
    return false;
  }
  cancelled = raw == 1;
  return true;
}

std::string service_stats_to_json(const service::ServiceStats& stats) {
  std::ostringstream out;
  out << "{\"submitted\":" << stats.submitted
      << ",\"rejected\":" << stats.rejected
      << ",\"succeeded\":" << stats.succeeded
      << ",\"failed\":" << stats.failed
      << ",\"cancelled\":" << stats.cancelled
      << ",\"expired\":" << stats.expired
      << ",\"preempted\":" << stats.preempted
      << ",\"queued\":" << stats.queued << ",\"running\":" << stats.running
      << ",\"inflight_units\":" << fmt_double(stats.inflight_units)
      << ",\"queued_units\":" << fmt_double(stats.queued_units)
      << ",\"solver\":{\"jobs_solved\":" << stats.solver.jobs_solved
      << ",\"tables_built\":" << stats.solver.tables_built
      << ",\"tables_reused\":" << stats.solver.tables_reused
      << ",\"tables_evicted\":" << stats.solver.tables_evicted
      << ",\"jobs_interrupted\":" << stats.solver.jobs_interrupted
      << ",\"checkpoints_saved\":" << stats.solver.checkpoints_saved
      << ",\"checkpoints_resumed\":" << stats.solver.checkpoints_resumed
      << "},\"plan_cache\":{\"lookups\":" << stats.plan_cache.lookups
      << ",\"exact_hits\":" << stats.plan_cache.exact_hits
      << ",\"epsilon_hits\":" << stats.plan_cache.epsilon_hits
      << ",\"cert_rejections\":" << stats.plan_cache.cert_rejections
      << ",\"misses\":" << stats.plan_cache.misses
      << "},\"tenants\":{";
  bool first = true;
  for (const auto& [tenant, counters] : stats.tenants) {
    if (!first) out << ",";
    first = false;
    out << "\"" << tenant << "\":{\"submitted\":" << counters.submitted
        << ",\"rejected\":" << counters.rejected
        << ",\"succeeded\":" << counters.succeeded
        << ",\"failed\":" << counters.failed
        << ",\"cancelled\":" << counters.cancelled
        << ",\"expired\":" << counters.expired
        << ",\"preempted\":" << counters.preempted << "}";
  }
  out << "}}";
  return out.str();
}

}  // namespace chainckpt::net
