// Network edge of the solver service: a poll(2)-based TCP server that
// maps protocol-version-1 frames (net/frame.hpp, net/payload.hpp) onto
// service::SolverService submit/poll/cancel, with per-tenant token-bucket
// quotas, deficit-round-robin ingress fairness (net/tenant.hpp), and
// result streaming.
//
// Threading model: ONE I/O thread owns every socket -- accept, read,
// parse, dispatch, write.  Solves happen on the service's worker pool;
// the only cross-thread touch is the completion callback, which (under
// the server mutex) appends a kResult frame to the owning connection's
// outbox and pokes a self-pipe so the poll loop wakes to flush it.  The
// mutex guards outboxes, the result-routing table, and stats -- never a
// socket read or a service call (submit's rejection callback fires
// synchronously on the submitting thread, so calling submit under the
// mutex would deadlock).
//
// Write aggregation: replies are queued per connection and flushed with
// writev, many frames per syscall.  WireServerStats counts frames_sent
// and flushes separately so the batching is observable (a burst of polls
// yields frames_sent >> flushes).
//
// Backpressure (docs/PROTOCOL.md): a quota throttle and an admission
// queue-full verdict both become kRetryAfter frames -- the job was NOT
// enqueued, and a queue-full verdict refunds the quota charge.  All
// other rejections return a kSubmitAck whose JobStatus carries the
// RejectReason, so clients can distinguish "slow down" from "this
// request is wrong".
//
// Tenant identity: the first frame on a connection binds its tenant id;
// every later frame must carry the same id (kTenantMismatch otherwise).
// The server overwrites SubmitOptions::tenant with this bound id -- the
// edge, not the payload, owns identity -- which is what makes the
// per-tenant counters in ServiceStats trustworthy.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "net/frame.hpp"
#include "net/tenant.hpp"
#include "service/solver_service.hpp"

namespace chainckpt::net {

struct WireServerOptions {
  /// Listen address (tests and the CI smoke lane stay on loopback).
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; port() reports the actual one.
  std::uint16_t port = 0;
  int listen_backlog = 64;
  /// Ceiling on declared payload lengths; larger declarations are
  /// rejected before any allocation.
  std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Retry hint attached to admission queue-full backpressure.
  std::uint32_t queue_full_retry_ms = 50;
  /// DRR quantum in admission units (service::price_units currency).
  double drr_quantum_units = 8.0;
  /// Quota for tenants without an explicit entry (default: unlimited).
  TenantQuota default_quota;
  std::map<std::uint64_t, TenantQuota> tenant_quotas;
  /// Advertised in kWelcome; the solver's own max_n is authoritative.
  std::uint32_t advertised_max_n = 900;
  std::string server_name = "chainckpt-wire/1";
};

/// Edge-side counters (monotonic except where noted); all reads are a
/// consistent snapshot under the server mutex.
struct WireServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  /// writev calls; frames_sent / flushes is the aggregation factor.
  std::uint64_t flushes = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t submits_accepted = 0;
  /// kRetryAfter frames from tenant-quota throttles.
  std::uint64_t throttled = 0;
  /// kRetryAfter frames from admission queue-full verdicts.
  std::uint64_t backpressured = 0;
  /// Non-retryable kSubmitAck rejections (bad chain, per-job cap, ...).
  std::uint64_t submits_rejected = 0;
  /// kResult frames pushed by the completion callback / poll handoff.
  std::uint64_t results_streamed = 0;
  /// kError frames sent (bad magic/version/type/payload, unknown ids...).
  std::uint64_t protocol_errors = 0;
};

class WireServer {
 public:
  /// The service must outlive the server.  The server installs itself as
  /// the service's completion callback in start().
  explicit WireServer(service::SolverService& service,
                      WireServerOptions options = {});
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// Binds, listens, and spawns the I/O thread.  Throws std::runtime_error
  /// when the socket cannot be bound.
  void start();

  /// Closes the listener and every connection, then joins the I/O
  /// thread.  Idempotent; the destructor calls it.
  void stop();

  /// Actual bound port (after start(); useful with port = 0).
  std::uint16_t port() const noexcept;

  WireServerStats stats() const;
  /// Per-tenant edge verdicts (quota admits/throttles/refunds).
  std::map<std::uint64_t, TenantEdgeStats> tenant_stats() const;

  /// The quota registry, shared with the HTTP gateway when one fronts
  /// the same service.
  TenantGovernor& governor() noexcept;

  /// Shared I/O state (public only so the file-local I/O driver can name
  /// it; the definition is internal to wire_server.cpp).
  struct State;

 private:
  void io_loop();

  service::SolverService& service_;
  WireServerOptions options_;
  /// Kept alive by the completion callback too (it may outlive stop()'s
  /// connection teardown by a beat), hence shared_ptr.
  std::shared_ptr<State> state_;
  std::thread io_thread_;
  bool started_ = false;
};

}  // namespace chainckpt::net
