#!/usr/bin/env python3
"""Fail on dead relative links in the repository's Markdown files.

Scans every *.md under the repo root (skipping build trees), extracts
inline links and images ``[text](target)``, and checks that relative
targets exist on disk.  External schemes (http/https/mailto) and pure
anchors are ignored; a ``#fragment`` suffix on a relative target is
stripped before the existence check.

Usage: python3 tools/check_md_links.py [repo_root]
"""
import re
import sys
from pathlib import Path

SKIP_DIRS = {"build", "build-native", ".git", ".cache"}
# [text](target) with no nesting; target ends at the first unescaped ')'.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.relative_to(root).parts):
            yield path


def check_file(md: Path) -> list:
    dead = []
    text = md.read_text(encoding="utf-8", errors="replace")
    in_code = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            resolved = (md.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                dead.append((md, lineno, target))
    return dead


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    dead = []
    count = 0
    for md in markdown_files(root):
        count += 1
        dead.extend(check_file(md))
    if dead:
        for md, lineno, target in dead:
            print(f"DEAD LINK {md}:{lineno}: ({target})")
        print(f"{len(dead)} dead link(s) across {count} Markdown file(s)")
        return 1
    print(f"OK: no dead relative links across {count} Markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
