#!/usr/bin/env python3
"""End-to-end smoke test for the wire protocol (docs/PROTOCOL.md).

Speaks protocol version 1 from scratch with nothing but the stdlib --
an independent second implementation of the frame layout, so a C++-side
encoding slip that the C++ round-trip tests cannot see (they share the
codecs) fails here.  Drives a live server (examples/wire_server.cpp):

  1. hello -> welcome handshake,
  2. a streamed solve round-trip that must succeed with a finite
     expected makespan and echo our tenant id,
  3. a quota rejection: a throttled tenant's second submit must bounce
     with a kRetryAfter frame carrying a positive retry-after hint.

Usage (the CI smoke lane):
  wire_server --port 7433 --quotas "2:0.000001:0.000001" &
  python3 tools/wire_smoke.py --port 7433
"""
import argparse
import socket
import struct
import sys

MAGIC = b"CKPT"
VERSION = 1
HEADER = struct.Struct("<4sBBHQQI")  # magic ver type flags tenant request len

# FrameType values (src/net/frame.hpp).
HELLO, WELCOME, SUBMIT, SUBMIT_ACK = 1, 2, 3, 4
RESULT, RETRY_AFTER, ERROR, GOODBYE = 9, 10, 11, 14
FLAG_STREAM_RESULT = 1

# JobState values (src/service/job.hpp).
SUCCEEDED, REJECTED = 2, 6


def frame(ftype, tenant, request_id, payload=b"", flags=0):
    return HEADER.pack(MAGIC, VERSION, ftype, flags, tenant, request_id,
                       len(payload)) + payload


def wire_string(text):
    raw = text.encode()
    return struct.pack("<I", len(raw)) + raw


def submit_payload(tenant, n=64):
    """A uniform AD job on a pinned valid platform (layout:
    src/net/payload.cpp encode_job_request)."""
    out = struct.pack("<BBQdQ", 0, 1, 0, -1.0, tenant)
    out += struct.pack("<I", n) + struct.pack("<%dd" % n, *([25000.0 / n] * n))
    out += wire_string("smoke")
    out += struct.pack("<I", 100)  # nodes
    out += struct.pack("<9d", 1.0 / 86400, 1.0 / 172800, 600.0, 60.0,
                       600.0, 60.0, 300.0, 30.0, 0.8)
    out += struct.pack("<Bd", 0, 1.0)  # exponential law
    out += struct.pack("<B", 1)  # uniform cost model
    return out


def recv_exact(sock, count):
    data = b""
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        if not chunk:
            raise ConnectionError("server closed mid-frame")
        data += chunk
    return data


def read_frame(sock):
    magic, version, ftype, _flags, tenant, request_id, length = \
        HEADER.unpack(recv_exact(sock, HEADER.size))
    assert magic == MAGIC and version == VERSION, "bad frame header"
    return ftype, tenant, request_id, recv_exact(sock, length)


def parse_status(payload):
    """JobStatus payload -> (state, tenant, reject_reason, makespan)."""
    (job_id, state, _prio, reject, tenant, _cost, _sub, _start, _starts,
     _preempt, errlen) = struct.unpack_from("<QBBBQdQQIII", payload)
    offset = struct.calcsize("<QBBBQdQQIII") + errlen
    (has_result,) = struct.unpack_from("<B", payload, offset)
    makespan = None
    if has_result:
        (makespan,) = struct.unpack_from("<d", payload, offset + 1)
    return state, tenant, reject, makespan


def check(condition, message):
    if not condition:
        print("FAIL:", message)
        sys.exit(1)
    print("ok:", message)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--throttled-tenant", type=int, default=2,
                        help="tenant the server was started with a "
                             "near-zero quota for")
    args = parser.parse_args()

    # 1. Handshake + solve round-trip as an unthrottled tenant.
    with socket.create_connection((args.host, args.port), timeout=30) as s:
        s.sendall(frame(HELLO, 1, 1, wire_string("wire_smoke.py")))
        ftype, _, _, _ = read_frame(s)
        check(ftype == WELCOME, "hello answered with welcome")

        s.sendall(frame(SUBMIT, 1, 2, submit_payload(1),
                        flags=FLAG_STREAM_RESULT))
        ftype, tenant, request_id, payload = read_frame(s)
        check(ftype == SUBMIT_ACK and request_id == 2, "submit acked")
        state, tenant, _, _ = parse_status(payload)
        check(state != REJECTED, "submit admitted")
        check(tenant == 1, "ack echoes our tenant id")

        ftype, _, request_id, payload = read_frame(s)
        check(ftype == RESULT and request_id == 2, "result streamed")
        state, tenant, _, makespan = parse_status(payload)
        check(state == SUCCEEDED, "job succeeded")
        check(tenant == 1, "result attributed to our tenant")
        check(makespan is not None and makespan > 0,
              "finite positive expected makespan (%r)" % makespan)
        s.sendall(frame(GOODBYE, 1, 3))

    # 2. Quota rejection: the throttled tenant's burst covers one admit,
    #    then the bucket is in debt and the next submit must bounce.
    with socket.create_connection((args.host, args.port), timeout=30) as s:
        t = args.throttled_tenant
        s.sendall(frame(SUBMIT, t, 1, submit_payload(t)))
        ftype, _, _, _ = read_frame(s)
        check(ftype == SUBMIT_ACK, "throttled tenant's first submit admitted")
        s.sendall(frame(SUBMIT, t, 2, submit_payload(t)))
        ftype, _, request_id, payload = read_frame(s)
        check(ftype == RETRY_AFTER and request_id == 2,
              "second submit throttled with retry-after")
        retry_ms, _reason = struct.unpack_from("<IB", payload)
        check(retry_ms > 0, "positive retry-after hint (%d ms)" % retry_ms)
        s.sendall(frame(GOODBYE, t, 3))

    print("wire smoke passed")


if __name__ == "__main__":
    main()
