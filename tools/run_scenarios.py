#!/usr/bin/env python3
"""Drive the scenario matrix and emit/inspect BENCH_scenarios.json.

Thin stdlib-only wrapper over the ``bench_scenarios`` binary: runs the
golden-corpus check and the requested matrix sweep, writes the
machine-readable ScenarioReport next to the chosen output path, and
prints a per-regime digest table so CI logs show WHAT diverged, not just
whether the run passed.

Usage:
  python3 tools/run_scenarios.py [--build-dir build] [--mode smoke|full]
                                 [--out BENCH_scenarios.json]
                                 [--skip-golden] [--seed N]

Exit status is non-zero when bench_scenarios reports a gate failure
(DP config mismatch, in-model divergence, or a golden-pin drift).
"""
import argparse
import collections
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def run(cmd, **kwargs):
    print("+ " + " ".join(str(c) for c in cmd), flush=True)
    return subprocess.run(cmd, **kwargs).returncode


def regime_of(cell_name: str) -> str:
    """Cell names end in the regime token: shape-nN-Platform-<regime>."""
    for token in ("poisson", "bursty"):
        if cell_name.endswith("-" + token):
            return "traffic-" + token
    parts = cell_name.split("-")
    # exp-r0.8 / exp-mis0.95a0.5 / weib0.7-expplan / weib0.5-mis style
    # regimes span two tokens ("weib0.7" alone is the law-planned regime).
    if len(parts) >= 2 and (parts[-2] == "exp" or parts[-2].startswith("weib")):
        return "-".join(parts[-2:])
    return parts[-1]


def summarize(report_path: Path) -> None:
    report = json.loads(report_path.read_text(encoding="utf-8"))
    summary = report["summary"]
    print(
        "matrix: {cells} cells | ok {ok_cells} | flagged {flagged_cells} "
        "(diverged {diverged_flagged}) | in-model divergences "
        "{diverged_in_model} | dp config mismatches "
        "{dp_config_mismatches}".format(**summary)
    )

    by_regime = collections.defaultdict(lambda: [0, 0, 0.0])
    for cell in report["cells"]:
        bucket = by_regime[regime_of(cell["name"])]
        bucket[0] += 1
        bucket[1] += 1 if cell["diverged"] else 0
        for lane in cell["sim"]:
            bucket[2] = max(bucket[2], abs(lane["relative_gap"]))
    print(f"{'regime':<20} {'cells':>5} {'diverged':>8} {'max |gap|':>10}")
    for regime in sorted(by_regime):
        cells, diverged, gap = by_regime[regime]
        print(f"{regime:<20} {cells:>5} {diverged:>8} {gap:>10.4f}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="CMake build tree holding bench_scenarios")
    parser.add_argument("--mode", choices=("smoke", "full"), default="smoke",
                        help="matrix breadth (smoke ~30 cells, full >= 200)")
    parser.add_argument("--out", default="BENCH_scenarios.json",
                        help="report path (relative to the repo root)")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed override")
    parser.add_argument("--spec-dir", default=None,
                        help="directory of *.json spec files swept INSTEAD "
                             "of the generated matrix (e.g. "
                             "tests/scenario/specs-weibull)")
    parser.add_argument("--skip-golden", action="store_true",
                        help="skip the golden-corpus digest check")
    parser.add_argument("--timing", action="store_true",
                        help="include wall-clock service metrics "
                             "(opts out of byte determinism)")
    args = parser.parse_args()

    bench = REPO / args.build_dir / "bench_scenarios"
    if not bench.exists():
        print(f"error: {bench} not found (build the `bench_scenarios` "
              "target first)", file=sys.stderr)
        return 2

    if not args.skip_golden:
        rc = run([bench, "--mode", "golden",
                  "--golden-dir", REPO / "tests" / "scenario" / "golden"])
        if rc != 0:
            print("golden corpus FAILED", file=sys.stderr)
            return rc

    out = (REPO / args.out).resolve()
    cmd = [bench, "--mode", args.mode, "--out", out]
    if args.seed is not None:
        cmd += ["--seed", str(args.seed)]
    if args.spec_dir is not None:
        cmd += ["--spec-dir", REPO / args.spec_dir]
    if args.timing:
        cmd += ["--timing"]
    rc = run(cmd)
    if rc != 0:
        print("matrix sweep FAILED", file=sys.stderr)
        return rc

    summarize(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
