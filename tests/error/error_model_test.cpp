#include "error/error_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "chain/patterns.hpp"

namespace chainckpt::error {
namespace {

TEST(ErrorModel, RejectsNegativeRates) {
  EXPECT_THROW(ErrorModel(-1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ErrorModel(0.0, -1.0), std::invalid_argument);
}

TEST(ErrorModel, ProbabilitiesMatchPoisson) {
  const ErrorModel m(9.46e-7, 3.38e-6);
  EXPECT_NEAR(m.p_fail(25000.0), 1.0 - std::exp(-9.46e-7 * 25000.0), 1e-12);
  EXPECT_NEAR(m.p_silent(25000.0), 1.0 - std::exp(-3.38e-6 * 25000.0),
              1e-12);
  EXPECT_DOUBLE_EQ(m.p_fail(0.0), 0.0);
}

TEST(ErrorModel, PaperQuotedTaskFailureProbabilities) {
  // HighLow discussion: "a large task [3000s] will fail with probability
  // 1.3%, as opposed to ... 0.096% for small tasks [~222s]" on Hera
  // (combined fail-stop + silent probability).
  const ErrorModel m(9.46e-7, 3.38e-6);
  const double p_large =
      1.0 - (1.0 - m.p_fail(3000.0)) * (1.0 - m.p_silent(3000.0));
  const double p_small =
      1.0 - (1.0 - m.p_fail(10000.0 / 45.0)) *
                (1.0 - m.p_silent(10000.0 / 45.0));
  EXPECT_NEAR(p_large, 0.013, 0.0005);
  EXPECT_NEAR(p_small, 0.00096, 0.00005);
}

TEST(ErrorModel, ExpectedTimeLostHalfAtLowRate) {
  const ErrorModel m(9.46e-7, 0.0);
  // Paper HighLow discussion: T_lost ~ 1500s for a 3000s task on Hera.
  EXPECT_NEAR(m.expected_time_lost(3000.0), 1500.0, 1.0);
}

TEST(ErrorModel, BetweenTasksUsesChainWeights) {
  const auto c = chain::make_uniform(10, 25000.0);
  const ErrorModel m(1e-6, 2e-6);
  EXPECT_NEAR(m.p_fail_between(c, 0, 10), m.p_fail(25000.0), 1e-15);
  EXPECT_NEAR(m.p_silent_between(c, 4, 6), m.p_silent(5000.0), 1e-15);
  EXPECT_DOUBLE_EQ(m.p_fail_between(c, 3, 3), 0.0);
}

}  // namespace
}  // namespace chainckpt::error
