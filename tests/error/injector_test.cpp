#include "error/injector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/math.hpp"

namespace chainckpt::error {
namespace {

TEST(PoissonInjector, NoErrorsWhenRatesAreZero) {
  PoissonInjector inj(0.0, 0.0, util::Xoshiro256(1));
  for (int i = 0; i < 1000; ++i) {
    const auto out = inj.attempt(1e6);
    EXPECT_FALSE(out.fail_stop_after.has_value());
    EXPECT_FALSE(out.silent_corruption);
  }
}

TEST(PoissonInjector, FailStopFrequencyMatchesModel) {
  const double lambda = 1e-3, w = 500.0;
  PoissonInjector inj(lambda, 0.0, util::Xoshiro256(2));
  const int n = 100000;
  int fails = 0;
  double lost = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto out = inj.attempt(w);
    if (out.fail_stop_after.has_value()) {
      ++fails;
      lost += *out.fail_stop_after;
      EXPECT_GE(*out.fail_stop_after, 0.0);
      EXPECT_LT(*out.fail_stop_after, w);
    }
  }
  const double p = util::error_probability(lambda, w);
  EXPECT_NEAR(static_cast<double>(fails) / n, p, 0.006);
  // Conditional mean of the strike time must match Eq. (3).
  EXPECT_NEAR(lost / fails, util::expected_time_lost(lambda, w),
              5.0 /* ~4 sigma of the sample mean */);
}

TEST(PoissonInjector, SilentFrequencyMatchesModel) {
  const double lambda = 2e-3, w = 300.0;
  PoissonInjector inj(0.0, lambda, util::Xoshiro256(3));
  const int n = 100000;
  int corrupt = 0;
  for (int i = 0; i < n; ++i) {
    const auto out = inj.attempt(w);
    EXPECT_FALSE(out.fail_stop_after.has_value());
    if (out.silent_corruption) ++corrupt;
  }
  EXPECT_NEAR(static_cast<double>(corrupt) / n,
              util::error_probability(lambda, w), 0.006);
}

TEST(PoissonInjector, FailStopSuppressesSilentReporting) {
  // When the attempt crashes, corruption of the wiped memory is moot and
  // must not be reported.
  PoissonInjector inj(1.0, 1.0, util::Xoshiro256(4));
  for (int i = 0; i < 1000; ++i) {
    const auto out = inj.attempt(100.0);
    if (out.fail_stop_after.has_value()) {
      EXPECT_FALSE(out.silent_corruption);
    }
  }
}

TEST(PoissonInjector, PartialVerificationRecall) {
  PoissonInjector inj(0.0, 0.0, util::Xoshiro256(5));
  const int n = 100000;
  int detected = 0;
  for (int i = 0; i < n; ++i)
    if (inj.partial_verification_detects(0.8)) ++detected;
  EXPECT_NEAR(static_cast<double>(detected) / n, 0.8, 0.006);
  EXPECT_TRUE(inj.partial_verification_detects(1.0));
  EXPECT_FALSE(inj.partial_verification_detects(0.0));
}

TEST(PoissonInjector, DeterministicForSameStream) {
  PoissonInjector a(1e-3, 1e-3, util::Xoshiro256::stream(7, 0));
  PoissonInjector b(1e-3, 1e-3, util::Xoshiro256::stream(7, 0));
  for (int i = 0; i < 100; ++i) {
    const auto oa = a.attempt(100.0);
    const auto ob = b.attempt(100.0);
    EXPECT_EQ(oa.fail_stop_after.has_value(), ob.fail_stop_after.has_value());
    if (oa.fail_stop_after.has_value()) {
      EXPECT_DOUBLE_EQ(*oa.fail_stop_after, *ob.fail_stop_after);
    }
    EXPECT_EQ(oa.silent_corruption, ob.silent_corruption);
  }
}

}  // namespace
}  // namespace chainckpt::error
