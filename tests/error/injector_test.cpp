#include "error/injector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/math.hpp"

namespace chainckpt::error {
namespace {

TEST(PoissonInjector, NoErrorsWhenRatesAreZero) {
  PoissonInjector inj(0.0, 0.0, util::Xoshiro256(1));
  for (int i = 0; i < 1000; ++i) {
    const auto out = inj.attempt(1e6);
    EXPECT_FALSE(out.fail_stop_after.has_value());
    EXPECT_FALSE(out.silent_corruption);
  }
}

TEST(PoissonInjector, FailStopFrequencyMatchesModel) {
  const double lambda = 1e-3, w = 500.0;
  PoissonInjector inj(lambda, 0.0, util::Xoshiro256(2));
  const int n = 100000;
  int fails = 0;
  double lost = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto out = inj.attempt(w);
    if (out.fail_stop_after.has_value()) {
      ++fails;
      lost += *out.fail_stop_after;
      EXPECT_GE(*out.fail_stop_after, 0.0);
      EXPECT_LT(*out.fail_stop_after, w);
    }
  }
  const double p = util::error_probability(lambda, w);
  EXPECT_NEAR(static_cast<double>(fails) / n, p, 0.006);
  // Conditional mean of the strike time must match Eq. (3).
  EXPECT_NEAR(lost / fails, util::expected_time_lost(lambda, w),
              5.0 /* ~4 sigma of the sample mean */);
}

TEST(PoissonInjector, SilentFrequencyMatchesModel) {
  const double lambda = 2e-3, w = 300.0;
  PoissonInjector inj(0.0, lambda, util::Xoshiro256(3));
  const int n = 100000;
  int corrupt = 0;
  for (int i = 0; i < n; ++i) {
    const auto out = inj.attempt(w);
    EXPECT_FALSE(out.fail_stop_after.has_value());
    if (out.silent_corruption) ++corrupt;
  }
  EXPECT_NEAR(static_cast<double>(corrupt) / n,
              util::error_probability(lambda, w), 0.006);
}

TEST(PoissonInjector, FailStopSuppressesSilentReporting) {
  // When the attempt crashes, corruption of the wiped memory is moot and
  // must not be reported.
  PoissonInjector inj(1.0, 1.0, util::Xoshiro256(4));
  for (int i = 0; i < 1000; ++i) {
    const auto out = inj.attempt(100.0);
    if (out.fail_stop_after.has_value()) {
      EXPECT_FALSE(out.silent_corruption);
    }
  }
}

TEST(PoissonInjector, PartialVerificationRecall) {
  PoissonInjector inj(0.0, 0.0, util::Xoshiro256(5));
  const int n = 100000;
  int detected = 0;
  for (int i = 0; i < n; ++i)
    if (inj.partial_verification_detects(0.8)) ++detected;
  EXPECT_NEAR(static_cast<double>(detected) / n, 0.8, 0.006);
  EXPECT_TRUE(inj.partial_verification_detects(1.0));
  EXPECT_FALSE(inj.partial_verification_detects(0.0));
}

TEST(PoissonInjector, DeterministicForSameStream) {
  PoissonInjector a(1e-3, 1e-3, util::Xoshiro256::stream(7, 0));
  PoissonInjector b(1e-3, 1e-3, util::Xoshiro256::stream(7, 0));
  for (int i = 0; i < 100; ++i) {
    const auto oa = a.attempt(100.0);
    const auto ob = b.attempt(100.0);
    EXPECT_EQ(oa.fail_stop_after.has_value(), ob.fail_stop_after.has_value());
    if (oa.fail_stop_after.has_value()) {
      EXPECT_DOUBLE_EQ(*oa.fail_stop_after, *ob.fail_stop_after);
    }
    EXPECT_EQ(oa.silent_corruption, ob.silent_corruption);
  }
}

TEST(PoissonInjector, RecallDrawsDoNotPerturbFaultArrivals) {
  // The recall sub-stream regression (the bug this pins: recall draws
  // used to consume from the fault-arrival stream, so two runs differing
  // only in HOW OFTEN verification happened saw different fault
  // sequences).  Interleaving recall draws must leave attempt() outcomes
  // identical, draw for draw.
  PoissonInjector plain(1e-3, 2e-3, util::Xoshiro256::stream(11, 0));
  PoissonInjector interleaved(1e-3, 2e-3, util::Xoshiro256::stream(11, 0));
  util::Xoshiro256 cadence(99);
  for (int i = 0; i < 2000; ++i) {
    // A random number of recall draws between attempts -- the exact
    // pattern a simulated plan with partial verifications produces.
    const int draws = static_cast<int>(cadence() % 4);
    for (int d = 0; d < draws; ++d) {
      interleaved.partial_verification_detects(0.8);
    }
    const auto a = plain.attempt(250.0);
    const auto b = interleaved.attempt(250.0);
    ASSERT_EQ(a.fail_stop_after.has_value(), b.fail_stop_after.has_value());
    if (a.fail_stop_after.has_value()) {
      ASSERT_DOUBLE_EQ(*a.fail_stop_after, *b.fail_stop_after);
    }
    ASSERT_EQ(a.silent_corruption, b.silent_corruption);
  }
}

TEST(PoissonInjector, AttemptDrawsDoNotPerturbRecallStream) {
  // The converse direction: the recall stream is a fixed sequence
  // regardless of how many fault draws happen in between.
  PoissonInjector plain(1e-3, 2e-3, util::Xoshiro256::stream(13, 0));
  PoissonInjector interleaved(1e-3, 2e-3, util::Xoshiro256::stream(13, 0));
  util::Xoshiro256 cadence(77);
  for (int i = 0; i < 2000; ++i) {
    const int draws = static_cast<int>(cadence() % 4);
    for (int d = 0; d < draws; ++d) interleaved.attempt(250.0);
    ASSERT_EQ(plain.partial_verification_detects(0.8),
              interleaved.partial_verification_detects(0.8));
  }
}

TEST(WeibullInjector, ShapeOneMatchesExponentialStatistics) {
  // shape == 1 reduces the Weibull law to the exponential one; the
  // failure frequency over a window must match the Poisson model.
  const double lambda = 1e-3, w = 500.0;
  WeibullInjector inj(lambda, 1.0, 0.0, util::Xoshiro256(21));
  EXPECT_NEAR(inj.scale(), 1.0 / lambda, 1e-9);
  const int n = 100000;
  int fails = 0;
  for (int i = 0; i < n; ++i) {
    if (inj.attempt(w).fail_stop_after.has_value()) ++fails;
  }
  EXPECT_NEAR(static_cast<double>(fails) / n,
              util::error_probability(lambda, w), 0.006);
}

TEST(WeibullInjector, HeavyTailMatchesWeibullCdf) {
  // shape < 1 with the mean pinned to 1/lambda_f: the per-attempt failure
  // probability is the Weibull CDF 1 - exp(-(w/scale)^k), which for short
  // windows is much LARGER than the exponential probability -- the
  // assumption break the divergence lane exists to catch.
  const double lambda = 1e-3, shape = 0.5, w = 100.0;
  WeibullInjector inj(lambda, shape, 0.0, util::Xoshiro256(22));
  const double expected_cdf =
      1.0 - std::exp(-std::pow(w / inj.scale(), shape));
  const int n = 100000;
  int fails = 0;
  for (int i = 0; i < n; ++i) {
    const auto out = inj.attempt(w);
    if (out.fail_stop_after.has_value()) {
      ++fails;
      EXPECT_GE(*out.fail_stop_after, 0.0);
      EXPECT_LT(*out.fail_stop_after, w);
    }
  }
  EXPECT_NEAR(static_cast<double>(fails) / n, expected_cdf, 0.006);
  EXPECT_GT(expected_cdf, 2.0 * util::error_probability(lambda, w));
}

TEST(WeibullInjector, ShapeOneIsBitwiseThePoissonInjector) {
  // shape == 1 IS the exponential law: on the same seed the two
  // injectors must produce the IDENTICAL outcome sequence -- same draw
  // count per attempt, same fail-stop instants bit for bit, same silent
  // strikes, same recall sub-stream.  The generic inverse-CDF sampler
  // rounds differently (scale * pow(-log u, 1.0) vs -log(u) / rate), so
  // the injector delegates to the shared exponential sampler at shape 1;
  // this test pins that delegation.
  const double lambda_f = 1e-3, lambda_s = 4e-4;
  PoissonInjector exp_inj(lambda_f, lambda_s, util::Xoshiro256::stream(77, 3));
  WeibullInjector weib_inj(lambda_f, 1.0, lambda_s,
                           util::Xoshiro256::stream(77, 3));
  util::Xoshiro256 cadence(91);
  for (int i = 0; i < 5000; ++i) {
    // Interleave recall draws so the sub-stream discipline is compared
    // too, and vary the window so both short and long attempts appear.
    const int recalls = static_cast<int>(cadence() % 3);
    for (int d = 0; d < recalls; ++d) {
      ASSERT_EQ(exp_inj.partial_verification_detects(0.8),
                weib_inj.partial_verification_detects(0.8));
    }
    const double w = 50.0 + static_cast<double>(cadence() % 2000);
    const auto oe = exp_inj.attempt(w);
    const auto ow = weib_inj.attempt(w);
    ASSERT_EQ(oe.fail_stop_after.has_value(), ow.fail_stop_after.has_value());
    if (oe.fail_stop_after.has_value()) {
      ASSERT_EQ(*oe.fail_stop_after, *ow.fail_stop_after);
    }
    ASSERT_EQ(oe.silent_corruption, ow.silent_corruption);
  }
}

TEST(WeibullInjector, ShapeOneDisabledFailStopMatchesPoissonDrawCount) {
  // lambda_f == 0 disables fail-stop on both injectors; the streams must
  // stay aligned there as well (the Poisson path consumes no draw for a
  // disabled source, so neither may the Weibull path).
  PoissonInjector exp_inj(0.0, 5e-4, util::Xoshiro256::stream(13, 1));
  WeibullInjector weib_inj(0.0, 1.0, 5e-4, util::Xoshiro256::stream(13, 1));
  for (int i = 0; i < 2000; ++i) {
    const auto oe = exp_inj.attempt(300.0);
    const auto ow = weib_inj.attempt(300.0);
    ASSERT_FALSE(oe.fail_stop_after.has_value());
    ASSERT_FALSE(ow.fail_stop_after.has_value());
    ASSERT_EQ(oe.silent_corruption, ow.silent_corruption);
  }
}

TEST(WeibullInjector, DeterministicAndRecallSubStreamIsolated) {
  WeibullInjector a(1e-3, 0.7, 2e-3, util::Xoshiro256::stream(23, 0));
  WeibullInjector b(1e-3, 0.7, 2e-3, util::Xoshiro256::stream(23, 0));
  util::Xoshiro256 cadence(55);
  for (int i = 0; i < 2000; ++i) {
    const int draws = static_cast<int>(cadence() % 4);
    for (int d = 0; d < draws; ++d) b.partial_verification_detects(0.8);
    const auto oa = a.attempt(250.0);
    const auto ob = b.attempt(250.0);
    ASSERT_EQ(oa.fail_stop_after.has_value(), ob.fail_stop_after.has_value());
    if (oa.fail_stop_after.has_value()) {
      ASSERT_DOUBLE_EQ(*oa.fail_stop_after, *ob.fail_stop_after);
    }
    ASSERT_EQ(oa.silent_corruption, ob.silent_corruption);
  }
}

}  // namespace
}  // namespace chainckpt::error
