// Beyond-paper scale: the paper stops at n = 50 ("real-life linear
// workflows rarely exceed tens of tasks"); a library must stay correct
// and fast when users push further.
#include <gtest/gtest.h>

#include <chrono>

#include "analysis/evaluator.hpp"
#include "chain/patterns.hpp"
#include "core/dp_single_level.hpp"
#include "core/dp_two_level.hpp"
#include "platform/registry.hpp"

namespace chainckpt {
namespace {

TEST(Scale, TwoLevelAtTwoHundredTasks) {
  const auto chain = chain::make_uniform(200, 25000.0);
  const platform::CostModel costs(platform::hera());
  const auto start = std::chrono::steady_clock::now();
  const auto result = core::optimize_two_level(chain, costs);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  result.plan.validate();
  // Value still matches the evaluator at scale.
  const analysis::PlanEvaluator evaluator(chain, costs);
  EXPECT_NEAR(evaluator.expected_makespan(result.plan,
                                          analysis::FormulaMode::kTwoLevel),
              result.expected_makespan, 1e-9 * result.expected_makespan);
  // More placement freedom can only help: n=200 is at least as good as
  // the n=50 optimum for the same total work.
  const auto small = core::optimize_two_level(
      chain::make_uniform(50, 25000.0), costs);
  EXPECT_LE(result.expected_makespan,
            small.expected_makespan * (1.0 + 1e-9));
  // And it must not crawl (O(n^4) with a small constant; CI slack x30
  // over the ~0.15s measured).
  EXPECT_LT(elapsed, 5.0);
}

TEST(Scale, OverheadSaturatesWithGranularity) {
  // The normalized makespan converges as tasks shrink: the continuous
  // (divisible-load) limit of the companion paper.  Successive doublings
  // must bring ever-smaller improvements.
  const platform::CostModel costs(platform::atlas());
  const auto at = [&](std::size_t n) {
    return core::optimize_two_level(chain::make_uniform(n, 25000.0), costs)
        .expected_makespan;
  };
  const double e50 = at(50), e100 = at(100), e200 = at(200);
  EXPECT_GE(e50, e100 * (1.0 - 1e-12));
  EXPECT_GE(e100, e200 * (1.0 - 1e-12));
  EXPECT_LT(e100 - e200, (e50 - e100) + 1e-6);
}

TEST(Scale, SingleLevelHandlesLongHeterogeneousChains) {
  util::Xoshiro256 rng(555);
  const auto chain = chain::make_random(300, 25000.0, rng);
  const platform::CostModel costs(platform::coastal());
  const auto result = core::optimize_single_level(chain, costs);
  result.plan.validate();
  const analysis::PlanEvaluator evaluator(chain, costs);
  EXPECT_NEAR(evaluator.expected_makespan(result.plan,
                                          analysis::FormulaMode::kTwoLevel),
              result.expected_makespan, 1e-9 * result.expected_makespan);
}

}  // namespace
}  // namespace chainckpt
