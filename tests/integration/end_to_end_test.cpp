// Full-pipeline integration: pattern -> optimizer -> serialization ->
// evaluator -> Monte-Carlo, with every stage agreeing with the others.
#include <gtest/gtest.h>

#include <limits>

#include "analysis/breakdown.hpp"
#include "analysis/evaluator.hpp"
#include "chain/patterns.hpp"
#include "core/optimizer.hpp"
#include "plan/plan_io.hpp"
#include "plan/render.hpp"
#include "platform/registry.hpp"
#include "report/emit.hpp"
#include "report/experiments.hpp"
#include "sim/validation.hpp"

namespace chainckpt {
namespace {

TEST(EndToEnd, OptimizeSerializeEvaluateSimulate) {
  const auto platform = platform::atlas();
  const platform::CostModel costs(platform);
  const auto chain = chain::make_highlow(16, 25000.0);

  // 1. Optimize.
  const auto result = core::optimize(core::Algorithm::kADMV, chain, costs);
  result.plan.validate();

  // 2. Serialize and parse back.
  const auto reparsed = plan::from_text(plan::to_text(result.plan));
  EXPECT_EQ(reparsed, result.plan);

  // 3. Analytic evaluation of the reparsed plan reproduces the DP value.
  const analysis::PlanEvaluator evaluator(chain, costs);
  EXPECT_NEAR(evaluator.expected_makespan(
                  reparsed, analysis::FormulaMode::kPartialFramework),
              result.expected_makespan, 1e-9 * result.expected_makespan);

  // 4. The breakdown is consistent.
  const auto b = analysis::breakdown(evaluator, reparsed);
  EXPECT_NEAR(b.expected_makespan, result.expected_makespan,
              1e-9 * result.expected_makespan);

  // 5. Monte-Carlo agrees within 5 sigma.
  sim::ExperimentOptions options;
  options.replicas = 30000;
  options.seed = 424242;
  const auto report = sim::validate_plan(chain, costs, reparsed, options);
  EXPECT_LT(report.gap_in_sigmas(), 5.0) << report.describe();

  // 6. Rendering works on the real artifact.
  const std::string fig = plan::render_figure(reparsed, "e2e");
  EXPECT_NE(fig.find('x'), std::string::npos);
}

TEST(EndToEnd, FigurePipelineProducesConsistentData) {
  // Mini Figure 5 on one platform: the series produced by the report
  // layer must match direct optimizer calls.
  const auto platform = platform::hera();
  const report::EvaluationSetup setup;
  const std::vector<std::size_t> ns{5, 15};
  const auto series = report::makespan_series(
      platform, setup, core::Algorithm::kADMVstar, ns);
  const platform::CostModel costs(platform);
  for (std::size_t k = 0; k < ns.size(); ++k) {
    const auto chain = chain::make_uniform(ns[k], setup.total_weight);
    const auto direct =
        core::optimize(core::Algorithm::kADMVstar, chain, costs);
    EXPECT_NEAR(series.y[k],
                direct.expected_makespan / setup.total_weight, 1e-12);
  }
  // And the emitters accept it.
  const std::string table = report::series_table("n", {series});
  EXPECT_NE(table.find("ADMV*"), std::string::npos);
}

TEST(EndToEnd, AllAlgorithmsAllPatternsSmoke) {
  // Broad shallow sweep: every optimizer on every pattern at a moderate
  // size, all invariants checked.
  const platform::CostModel costs(platform::coastal());
  for (auto pattern : {chain::Pattern::kUniform, chain::Pattern::kDecrease,
                       chain::Pattern::kHighLow}) {
    const auto chain = chain::make_pattern(pattern, 12, 25000.0);
    const analysis::PlanEvaluator evaluator(chain, costs);
    double previous = std::numeric_limits<double>::infinity();
    // Ordered from most restricted to least: values must not increase.
    for (auto algorithm :
         {core::Algorithm::kAD, core::Algorithm::kADVstar,
          core::Algorithm::kADMVstar}) {
      const auto result = core::optimize(algorithm, chain, costs);
      result.plan.validate();
      EXPECT_LE(result.expected_makespan, previous * (1 + 1e-12))
          << chain::to_string(pattern) << " "
          << core::to_string(algorithm);
      EXPECT_NEAR(evaluator.expected_makespan(
                      result.plan, analysis::FormulaMode::kTwoLevel),
                  result.expected_makespan,
                  1e-9 * result.expected_makespan);
      previous = result.expected_makespan;
    }
  }
}

}  // namespace
}  // namespace chainckpt
