// Qualitative claims of the paper's evaluation (Section IV), asserted as
// regression tests.  Quantities are gated with generous margins around the
// values this implementation reproduces (see EXPERIMENTS.md for the full
// paper-vs-measured record).
#include <gtest/gtest.h>

#include "chain/patterns.hpp"
#include "core/optimizer.hpp"
#include "platform/cost_model.hpp"
#include "platform/registry.hpp"

namespace chainckpt {
namespace {

core::OptimizationResult run(const platform::Platform& p,
                             chain::Pattern pattern, std::size_t n,
                             core::Algorithm algorithm) {
  const platform::CostModel costs(p);
  const auto chain = chain::make_pattern(pattern, n, 25000.0);
  return core::optimize(algorithm, chain, costs);
}

TEST(PaperClaims, TwoLevelAlwaysImprovesOnSingleLevel) {
  // "the algorithm ADMV* always leads to a better makespan compared to the
  // single-level algorithm ADV*".
  for (const auto& p : platform::table1_platforms()) {
    for (std::size_t n : {10u, 25u, 50u}) {
      const auto adv = run(p, chain::Pattern::kUniform, n,
                           core::Algorithm::kADVstar);
      const auto admv_star = run(p, chain::Pattern::kUniform, n,
                                 core::Algorithm::kADMVstar);
      EXPECT_LE(admv_star.expected_makespan,
                adv.expected_makespan * (1.0 + 1e-12))
          << p.name << " n=" << n;
    }
  }
}

TEST(PaperClaims, HeraGainIsAboutTwoPercent) {
  // "our approach saves 2% of execution time on Hera".
  const auto adv =
      run(platform::hera(), chain::Pattern::kUniform, 50,
          core::Algorithm::kADVstar);
  const auto admv_star =
      run(platform::hera(), chain::Pattern::kUniform, 50,
          core::Algorithm::kADMVstar);
  const double gain =
      1.0 - admv_star.expected_makespan / adv.expected_makespan;
  EXPECT_GT(gain, 0.012);
  EXPECT_LT(gain, 0.030);
}

TEST(PaperClaims, AtlasGainIsAboutFivePercent) {
  // "... and 5% on Atlas".
  const auto adv = run(platform::atlas(), chain::Pattern::kUniform, 50,
                       core::Algorithm::kADVstar);
  const auto admv_star = run(platform::atlas(), chain::Pattern::kUniform,
                             50, core::Algorithm::kADMVstar);
  const double gain =
      1.0 - admv_star.expected_makespan / adv.expected_makespan;
  EXPECT_GT(gain, 0.035);
  EXPECT_LT(gain, 0.065);
}

TEST(PaperClaims, CoastalSsdPartialVerificationGainIsAboutOnePercent) {
  // "we observe an improved makespan (around 1% with 50 tasks) compared to
  // the ADMV* algorithm" on Coastal SSD.
  const auto admv_star =
      run(platform::coastal_ssd(), chain::Pattern::kUniform, 50,
          core::Algorithm::kADMVstar);
  const auto admv = run(platform::coastal_ssd(), chain::Pattern::kUniform,
                        50, core::Algorithm::kADMV);
  const double gain =
      1.0 - admv.expected_makespan / admv_star.expected_makespan;
  EXPECT_GT(gain, 0.005);
  EXPECT_LT(gain, 0.02);
}

TEST(PaperClaims, NoInteriorDiskCheckpointsAtFiftyUniformTasks) {
  // Figure 6: "For all platforms, the algorithm does not perform any
  // additional disk checkpoints."
  for (const auto& p : platform::table1_platforms()) {
    const auto admv = run(p, chain::Pattern::kUniform, 50,
                          core::Algorithm::kADMV);
    EXPECT_EQ(admv.plan.interior_counts().disk, 0u) << p.name;
  }
}

TEST(PaperClaims, VerificationsOutnumberCheckpoints) {
  // Figure 5, ADV* column: "a large number of guaranteed verifications is
  // placed ... while the number of checkpoints remains relatively small
  // (less than 5 for all platforms)" -- Coastal SSD's expensive
  // verifications excepted.
  for (const auto& p : {platform::hera(), platform::atlas(),
                        platform::coastal()}) {
    const auto adv = run(p, chain::Pattern::kUniform, 50,
                         core::Algorithm::kADVstar);
    const auto counts = adv.plan.interior_counts();
    EXPECT_LT(counts.disk, 5u) << p.name;
    EXPECT_GT(counts.guaranteed, 4 * counts.disk) << p.name;
  }
}

TEST(PaperClaims, CoastalSsdPrefersPartialsOverGuaranteed) {
  // "on the Coastal SSD platform, the cost of checkpoints and
  // verifications is substantially higher, which leads the algorithm to
  // choose partial verifications over guaranteed ones."
  const auto admv = run(platform::coastal_ssd(), chain::Pattern::kUniform,
                        50, core::Algorithm::kADMV);
  const auto counts = admv.plan.interior_counts();
  EXPECT_GT(counts.partial, counts.guaranteed);
  EXPECT_GT(counts.partial, 10u);
}

TEST(PaperClaims, EquispacedMemoryCheckpointsOnHeraUniform) {
  // Figure 6 Hera: "the optimal solution is a combination of equi-spaced
  // memory checkpoints and guaranteed verifications, with additional
  // partial verifications in-between."
  const auto admv = run(platform::hera(), chain::Pattern::kUniform, 50,
                        core::Algorithm::kADMV);
  const auto mems = admv.plan.memory_positions();
  ASSERT_GE(mems.size(), 3u);
  // Gaps between consecutive memory checkpoints vary by at most 2 tasks.
  std::size_t min_gap = 50, max_gap = 0;
  std::size_t prev = 0;
  for (std::size_t m : mems) {
    min_gap = std::min(min_gap, m - prev);
    max_gap = std::max(max_gap, m - prev);
    prev = m;
  }
  EXPECT_LE(max_gap - min_gap, 2u);
  EXPECT_GT(admv.plan.interior_counts().partial, 20u);
}

TEST(PaperClaims, DecreasePatternFrontLoadsResilience) {
  // Figure 7: "the large tasks at the beginning of the chain ... will be
  // checkpointed more often, as opposed to the small tasks at the end,
  // which the algorithm does not even consider worth verifying."
  const auto admv = run(platform::hera(), chain::Pattern::kDecrease, 50,
                        core::Algorithm::kADMV);
  std::size_t first_half = 0, second_half = 0;
  for (std::size_t i = 1; i < 50; ++i) {
    if (admv.plan.action(i) != plan::Action::kNone) {
      (i <= 25 ? first_half : second_half) += 1;
    }
  }
  EXPECT_GT(first_half, second_half);
  // The last few small tasks carry no resilience actions at all.
  for (std::size_t i = 46; i < 50; ++i)
    EXPECT_EQ(admv.plan.action(i), plan::Action::kNone) << "position " << i;
  // All memory checkpoints sit in the first half.
  for (std::size_t m : admv.plan.memory_positions()) {
    if (m != 50) {
      EXPECT_LE(m, 25u);
    }
  }
}

TEST(PaperClaims, HighLowMakesMemoryCheckpointsMandatoryOnHera) {
  // Figure 8 discussion: on Hera "the memory checkpoint, which takes only
  // 15.4s, becomes mandatory" for the five 3000s-tasks.
  const auto admv = run(platform::hera(), chain::Pattern::kHighLow, 50,
                        core::Algorithm::kADMV);
  std::size_t mem_in_large = 0;
  for (std::size_t i = 1; i <= 5; ++i)
    if (has_memory_checkpoint(admv.plan.action(i))) ++mem_in_large;
  EXPECT_GE(mem_in_large, 3u);
  // Disk checkpoints stay too expensive even there.
  EXPECT_EQ(admv.plan.interior_counts().disk, 0u);
}

TEST(PaperClaims, HighLowOnCoastalSsdStaysFrugal) {
  // "On Coastal SSD ... the memory checkpoint is still quite expensive":
  // few (if any) of the large tasks get V*+M, unlike on Hera.
  const auto admv = run(platform::coastal_ssd(), chain::Pattern::kHighLow,
                        50, core::Algorithm::kADMV);
  std::size_t mem_in_large = 0;
  for (std::size_t i = 1; i <= 5; ++i)
    if (has_memory_checkpoint(admv.plan.action(i))) ++mem_in_large;
  EXPECT_LE(mem_in_large, 1u);
}

TEST(PaperClaims, SmallTaskCountsSufferFromLargeTasks) {
  // Figure 5 discussion: tiny n means huge tasks and expensive rollbacks;
  // the makespan improves once tasks shrink.
  for (const auto& p : platform::table1_platforms()) {
    const auto at = [&](std::size_t n) {
      return run(p, chain::Pattern::kUniform, n, core::Algorithm::kADMV)
                 .expected_makespan /
             25000.0;
    };
    EXPECT_GT(at(1), at(50)) << p.name;
    EXPECT_GT(at(2), at(20)) << p.name;
  }
}

TEST(PaperClaims, DeviationNote_PartialsAppearEarlierThanPaperPlots) {
  // The paper's Figure 5 shows ADMV using partial verifications only for
  // n > 30 on Hera.  Our implementation -- which is brute-force-verified
  // optimal for the stated model -- already benefits from them at smaller
  // n.  This test pins the measured onset so any regression (or fix that
  // reconciles the difference) is visible.
  const platform::CostModel costs(platform::hera());
  std::size_t first = 0;
  for (std::size_t n = 2; n <= 50; ++n) {
    const auto chain = chain::make_uniform(n, 25000.0);
    if (core::optimize(core::Algorithm::kADMV, chain, costs)
            .plan.uses_partial_verifications()) {
      first = n;
      break;
    }
  }
  EXPECT_EQ(first, 10u);
}

}  // namespace
}  // namespace chainckpt
