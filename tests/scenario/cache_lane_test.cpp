// Cache-replay lane: seeded drifted re-submissions through a plan-cached
// BatchSolver, classified by PlanCacheStats deltas and oracled against
// cache-disabled fresh solves (see runner.cpp run_cache_lane).
#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include "scenario/report.hpp"
#include "scenario/spec_io.hpp"

namespace chainckpt::scenario {
namespace {

ScenarioSpec cache_spec() {
  ScenarioSpec spec;
  spec.name = "cache-lane";
  spec.seed = 77001;
  spec.chain.shape = ChainShape::kUniform;
  spec.chain.n = 12;
  spec.failure.rate_scale = 25.0;
  spec.cache.enabled = true;
  spec.cache.requests = 20;
  spec.cache.drift = 0.05;
  spec.cache.epsilon = 0.02;
  spec.algorithms = {core::Algorithm::kADVstar, core::Algorithm::kADMVstar};
  spec.replicas = 50;
  return spec;
}

TEST(CacheLane, OutcomesReconcileAndEveryServeSurvivesTheOracle) {
  const ScenarioSpec spec = cache_spec();
  RunnerOptions options;
  const CellReport cell = run_cell(spec, options);

  ASSERT_EQ(cell.cache.size(), 1u);
  const CacheLaneResult& lane = cell.cache[0];
  EXPECT_EQ(lane.requests, spec.cache.requests);
  // Stats deltas partition the requests exactly.
  EXPECT_EQ(lane.exact_hits + lane.epsilon_hits + lane.resolves,
            lane.requests);
  // A quarter of requests are verbatim re-submissions; at least one must
  // exact-hit at these counts.
  EXPECT_GT(lane.exact_hits, 0u);
  // Drifted requests must exercise the non-exact paths too.
  EXPECT_GT(lane.epsilon_hits + lane.resolves, 0u);
  // The fresh-solve oracle: exact hits bitwise-identical, epsilon-hits
  // within (1 + epsilon) of the fresh objective, re-solves bitwise.
  EXPECT_TRUE(lane.oracle_ok);
  EXPECT_TRUE(cell.ok);
}

TEST(CacheLane, ReportIsByteDeterministicAndCarriesTheLane) {
  const ScenarioSpec spec = cache_spec();
  RunnerOptions options;
  ScenarioReport a;
  a.cells.push_back(run_cell(spec, options));
  a.finalize();
  ScenarioReport b;
  b.cells.push_back(run_cell(spec, options));
  b.finalize();
  const std::string ja = report_to_json(a);
  EXPECT_EQ(ja, report_to_json(b));
  EXPECT_NE(ja.find("\"cache\": [{\"requests\": 20"), std::string::npos);
}

TEST(CacheLane, DisabledLaneLeavesReportAndSpecBytesUntouched) {
  ScenarioSpec spec = cache_spec();
  spec.cache.enabled = false;
  RunnerOptions options;
  const CellReport cell = run_cell(spec, options);
  EXPECT_TRUE(cell.cache.empty());
  ScenarioReport report;
  report.cells.push_back(cell);
  report.finalize();
  EXPECT_EQ(report_to_json(report).find("\"cache\""), std::string::npos);
  // The spec writer only emits the cache block when the lane is on, so
  // pre-cache fixtures round-trip byte-identically.
  EXPECT_EQ(spec_to_json(spec).find("\"cache\""), std::string::npos);
  const std::string json = spec_to_json(spec);
  EXPECT_EQ(spec_to_json(spec_from_json(json)), json);
}

TEST(CacheLane, SpecRoundTripsTheCacheBlock) {
  const ScenarioSpec spec = cache_spec();
  const std::string json = spec_to_json(spec);
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  const ScenarioSpec back = spec_from_json(json);
  EXPECT_TRUE(back.cache.enabled);
  EXPECT_EQ(back.cache.requests, spec.cache.requests);
  EXPECT_EQ(back.cache.drift, spec.cache.drift);
  EXPECT_EQ(back.cache.epsilon, spec.cache.epsilon);
  EXPECT_EQ(spec_to_json(back), json);
}

}  // namespace
}  // namespace chainckpt::scenario
