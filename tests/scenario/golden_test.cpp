// Golden scenario corpus: every checked-in spec fixture re-solves to its
// pinned plan/objective digest (tier-1 -- this is the fast regression net
// over solver behaviour across shapes, platforms, and regimes; the pins
// are rewritten only deliberately, via bench_scenarios --write-golden).
#include "scenario/spec_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "scenario/report.hpp"
#include "scenario/runner.hpp"

namespace chainckpt::scenario {
namespace {

std::string golden_dir() {
  return std::string(CHAINCKPT_SOURCE_DIR) + "/tests/scenario/golden";
}

std::vector<std::string> golden_paths() {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(golden_dir())) {
    if (entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(GoldenCorpus, HasTheExpectedBreadth) {
  const std::vector<std::string> paths = golden_paths();
  ASSERT_GE(paths.size(), 12u) << "golden corpus shrank: " << golden_dir();
  // The corpus must keep covering the adversarial axes, not just the
  // paper's uniform/exponential baseline.
  bool pareto = false, traced = false, weibull = false, mismatch = false,
       perturbed = false, per_position = false;
  for (const std::string& path : paths) {
    const ScenarioSpec spec = load_spec(path);
    EXPECT_FALSE(spec.expected.empty())
        << path << ": unpinned fixture (run bench_scenarios --write-golden)";
    if (spec.chain.shape == ChainShape::kPareto) pareto = true;
    if (spec.chain.shape == ChainShape::kTraced) traced = true;
    if (spec.failure.law == FailureLaw::kWeibull) weibull = true;
    if (!spec.failure.assumptions_hold() &&
        spec.failure.law == FailureLaw::kExponential) {
      mismatch = true;
    }
    if (spec.platform.perturb > 0.0) perturbed = true;
    if (spec.chain.per_position_costs) per_position = true;
  }
  EXPECT_TRUE(pareto);
  EXPECT_TRUE(traced);
  EXPECT_TRUE(weibull);
  EXPECT_TRUE(mismatch);
  EXPECT_TRUE(perturbed);
  EXPECT_TRUE(per_position);
}

TEST(GoldenCorpus, EveryFixtureResolvesToItsPinnedDigests) {
  RunnerOptions options;
  for (const std::string& path : golden_paths()) {
    const ScenarioSpec spec = load_spec(path);
    const CellReport cell = run_cell(spec, options);
    EXPECT_TRUE(cell.ok) << path;
    ASSERT_EQ(cell.dp.size(), spec.algorithms.size()) << path;
    ASSERT_FALSE(spec.expected.empty()) << path;
    for (const ExpectedDigest& pin : spec.expected) {
      const DpLaneResult* found = nullptr;
      for (const DpLaneResult& dp : cell.dp) {
        if (dp.algorithm == pin.algorithm) found = &dp;
      }
      ASSERT_NE(found, nullptr) << path << ": " << pin.algorithm;
      EXPECT_EQ(found->digest, pin.digest)
          << path << ": " << pin.algorithm << " plan/objective drifted";
      EXPECT_EQ(found->makespan_bits, pin.makespan_bits)
          << path << ": " << pin.algorithm << " objective bits drifted";
    }
  }
}

}  // namespace
}  // namespace chainckpt::scenario
