// Deep matrix sweep (ctest label: slow; gate CHAINCKPT_SLOW_TESTS=1).
//
// Runs the full >= 200-cell cross-product twice -- parallel and serial,
// plus a narrowed thread count -- and asserts the report's
// byte-determinism contract, bit-identical DP configurations in every
// cell, agreement in every in-model cell, and a measured+flagged gap in
// the heavy-tailed regimes.
#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "scenario/matrix.hpp"
#include "util/parallel.hpp"

namespace chainckpt::scenario {
namespace {

#define CHAINCKPT_REQUIRE_SLOW()                                         \
  if (std::getenv("CHAINCKPT_SLOW_TESTS") == nullptr) {                  \
    GTEST_SKIP() << "deep matrix sweep; set CHAINCKPT_SLOW_TESTS=1 "     \
                    "(ctest label: slow)";                               \
  }

TEST(MatrixSlow, FullSweepIsByteDeterministicAndInModelCellsAgree) {
  CHAINCKPT_REQUIRE_SLOW();
  const MatrixOptions mopts;
  const std::vector<ScenarioSpec> specs = build_matrix(mopts);
  ASSERT_GE(specs.size(), 200u);

  RunnerOptions ropts;
  ropts.master_seed = mopts.master_seed;
  const ScenarioReport parallel_report = run_matrix(specs, ropts);
  const std::string parallel_json = report_to_json(parallel_report);

  // Byte-identical under a serial schedule...
  RunnerOptions serial = ropts;
  serial.parallel = false;
  EXPECT_EQ(report_to_json(run_matrix(specs, serial)), parallel_json);

  // ...and under a different thread count.
  util::set_parallelism(3);
  const std::string narrowed_json = report_to_json(run_matrix(specs, ropts));
  util::set_parallelism(0);
  EXPECT_EQ(narrowed_json, parallel_json);

  // The matrix invariants, cell by cell.
  const MatrixSummary& s = parallel_report.summary;
  EXPECT_EQ(s.cells, specs.size());
  EXPECT_EQ(s.ok_cells, s.cells);
  EXPECT_EQ(s.dp_config_mismatches, 0u);
  EXPECT_EQ(s.diverged_in_model, 0u);
  EXPECT_GT(s.flagged_cells, 0u);
  EXPECT_GT(s.diverged_flagged, 0u);
  EXPECT_GT(s.service_cells, 0u);
  for (const CellReport& cell : parallel_report.cells) {
    EXPECT_TRUE(cell.ok) << cell.name;
    if (cell.assumptions_hold) {
      EXPECT_FALSE(cell.diverged) << cell.name;
      for (const SimLaneResult& lane : cell.sim) {
        EXPECT_TRUE(lane.within_ci) << cell.name << " " << lane.algorithm
                                    << " gap " << lane.gap_sigmas << " sigmas";
      }
    }
    // Weibull cells planned under the exponential law must measurably
    // diverge -- the heavy-tail break is large by construction at the
    // matrix's amplified rates.  Weibull cells planned under their own
    // law (the bare weib0.7/weib0.5 regimes) are in-model and covered
    // by the agreement branch above.
    const bool weibull = cell.name.find("weib") != std::string::npos;
    const bool exp_planned = cell.name.find("expplan") != std::string::npos ||
                             cell.name.find("-mis") != std::string::npos;
    if (weibull && exp_planned) {
      EXPECT_TRUE(cell.flagged) << cell.name;
      EXPECT_TRUE(cell.diverged) << cell.name;
    } else if (weibull) {
      EXPECT_TRUE(cell.assumptions_hold) << cell.name;
      EXPECT_EQ(cell.planning_law.rfind("weibull", 0), 0u) << cell.name;
      EXPECT_FALSE(cell.flagged) << cell.name;
    }
  }
}

TEST(MatrixSlow, ReportIsInvariantToTheRunnersServiceWorkerCount) {
  CHAINCKPT_REQUIRE_SLOW();
  // The service lane runs live threads; its deterministic fields must
  // not depend on the pool width.
  MatrixOptions mopts;
  mopts.smoke = true;
  const std::vector<ScenarioSpec> specs = build_matrix(mopts);
  RunnerOptions a;
  a.master_seed = mopts.master_seed;
  a.service_workers = 1;
  RunnerOptions b = a;
  b.service_workers = 8;
  EXPECT_EQ(report_to_json(run_matrix(specs, a)),
            report_to_json(run_matrix(specs, b)));
}

}  // namespace
}  // namespace chainckpt::scenario
