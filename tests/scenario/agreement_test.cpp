// Sim-vs-DP agreement property battery.
//
// The tier-1 cells are small and fast (seconds): in-model regimes
// (exponential failures, honest recall -- including recall < 1, which the
// DP prices correctly) must land inside the flagging interval; the
// assumption-breaking regimes (heavy-tailed Weibull, modeled-vs-actual
// recall mismatch) must take the flagged-divergence path instead of being
// silently averaged.  The deep sweep over every in-model matrix cell
// rides in matrix_slow_test.cpp (ctest label: slow).
#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include "scenario/matrix.hpp"
#include "scenario/spec.hpp"

namespace chainckpt::scenario {
namespace {

ScenarioSpec base_cell(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.seed = derive_cell_seed(0xA900ULL, name);
  spec.chain.n = 16;
  spec.failure.rate_scale = 25.0;
  spec.replicas = 2000;
  return spec;
}

TEST(Agreement, ExponentialHonestCellsAgreeWithinCi) {
  for (double recall : {1.0, 0.8, 0.5}) {
    ScenarioSpec spec = base_cell("agree-exp-r" + std::to_string(recall));
    spec.failure.modeled_recall = recall;
    spec.failure.actual_recall = recall;
    ASSERT_TRUE(spec.failure.assumptions_hold());
    const CellReport cell = run_cell(spec);
    EXPECT_TRUE(cell.assumptions_hold);
    EXPECT_FALSE(cell.flagged);
    EXPECT_FALSE(cell.diverged) << "recall " << recall;
    EXPECT_TRUE(cell.ok);
    ASSERT_EQ(cell.sim.size(), spec.algorithms.size());
    for (const SimLaneResult& lane : cell.sim) {
      EXPECT_TRUE(lane.within_ci)
          << lane.algorithm << " gap " << lane.relative_gap << " ("
          << lane.gap_sigmas << " sigmas)";
      EXPECT_GT(lane.sim_mean, 0.0);
      EXPECT_EQ(lane.replicas, spec.replicas);
    }
    for (const DpLaneResult& lane : cell.dp) {
      EXPECT_TRUE(lane.configs_identical) << lane.algorithm;
      EXPECT_GE(lane.configs, 4u);
    }
  }
}

TEST(Agreement, HeavyTailedCellIsFlaggedAndDiverges) {
  ScenarioSpec spec = base_cell("agree-weibull");
  spec.failure.law = FailureLaw::kWeibull;
  spec.failure.weibull_shape = 0.5;
  spec.failure.modeled_recall = 0.8;
  spec.failure.actual_recall = 0.8;
  ASSERT_FALSE(spec.failure.assumptions_hold());
  const CellReport cell = run_cell(spec);
  EXPECT_FALSE(cell.assumptions_hold);
  EXPECT_TRUE(cell.flagged);
  // shape 0.5 at amplified rates: the gap is tens of percent -- far
  // outside any CI -- so the divergence must be MEASURED and recorded...
  EXPECT_TRUE(cell.diverged);
  for (const SimLaneResult& lane : cell.sim) {
    EXPECT_FALSE(lane.within_ci) << lane.algorithm;
    EXPECT_GT(lane.relative_gap, 0.05) << lane.algorithm;
  }
  // ...while the cell stays ok: flagged cells are EXPECTED to diverge;
  // the failure mode the battery guards against is diverged && !flagged.
  EXPECT_TRUE(cell.ok);
}

TEST(Agreement, WeibullPlannedHonestCellsAgreeWithinCi) {
  // The heavy-tail planning mode: when the DP optimizes under the SAME
  // Weibull law the injector draws from (plan_under_law), the cell is
  // back in-model -- honest agreement within the CI, not a flagged
  // divergence.  This is the tentpole acceptance cell: the exact regime
  // HeavyTailedCellIsFlaggedAndDiverges shows breaking the exponential
  // planner is healed by planning under the law.
  for (double shape : {0.7, 0.5}) {
    ScenarioSpec spec = base_cell("agree-weibull-planned-k" +
                                  std::to_string(shape));
    spec.failure.law = FailureLaw::kWeibull;
    spec.failure.weibull_shape = shape;
    spec.failure.plan_under_law = true;
    spec.failure.modeled_recall = 0.8;
    spec.failure.actual_recall = 0.8;
    ASSERT_TRUE(spec.failure.assumptions_hold());
    const CellReport cell = run_cell(spec);
    EXPECT_TRUE(cell.assumptions_hold) << "shape " << shape;
    EXPECT_FALSE(cell.flagged) << "shape " << shape;
    EXPECT_FALSE(cell.diverged) << "shape " << shape;
    EXPECT_TRUE(cell.ok) << "shape " << shape;
    EXPECT_EQ(cell.planning_law,
              "weibull k=" + std::to_string(shape).substr(0, 3));
    for (const SimLaneResult& lane : cell.sim) {
      EXPECT_TRUE(lane.within_ci)
          << lane.algorithm << " shape " << shape << " gap "
          << lane.relative_gap << " (" << lane.gap_sigmas << " sigmas)";
      EXPECT_GT(lane.sim_mean, 0.0);
    }
    for (const DpLaneResult& lane : cell.dp) {
      EXPECT_TRUE(lane.configs_identical) << lane.algorithm;
      // The restart-vs-checkpoint comparison: under a heavy tail the
      // restart-only strategy is dramatically worse than the optimized
      // plan, and the ratio must be recorded on the reference config.
      EXPECT_GT(lane.restart_ratio, 1.0) << lane.algorithm;
    }
  }
}

TEST(Agreement, RecallMismatchIsFlaggedNeverAveraged) {
  ScenarioSpec spec = base_cell("agree-mismatch");
  spec.failure.modeled_recall = 0.95;
  spec.failure.actual_recall = 0.5;
  ASSERT_FALSE(spec.failure.assumptions_hold());
  const CellReport cell = run_cell(spec);
  EXPECT_FALSE(cell.assumptions_hold);
  EXPECT_TRUE(cell.flagged);
  EXPECT_TRUE(cell.ok);
  // The mismatch only binds when the plan carries partial verifications;
  // either way the gap is recorded per algorithm, never folded into an
  // "agreement" verdict.
  for (const SimLaneResult& lane : cell.sim) {
    EXPECT_GT(lane.sim_mean, 0.0);
    EXPECT_GE(lane.sim_stderr, 0.0);
  }
}

TEST(Agreement, DivergenceSetsAreDisjointInTheSummary) {
  // One honest cell + one broken cell through run_matrix: the summary
  // must route the divergence into diverged_flagged, keep
  // diverged_in_model at zero, and count flags correctly.
  ScenarioSpec honest = base_cell("agree-summary-honest");
  honest.failure.modeled_recall = 0.8;
  honest.failure.actual_recall = 0.8;
  ScenarioSpec broken = base_cell("agree-summary-broken");
  broken.failure.law = FailureLaw::kWeibull;
  broken.failure.weibull_shape = 0.5;
  const ScenarioReport report = run_matrix({honest, broken});
  EXPECT_EQ(report.summary.cells, 2u);
  EXPECT_EQ(report.summary.ok_cells, 2u);
  EXPECT_EQ(report.summary.flagged_cells, 1u);
  EXPECT_EQ(report.summary.diverged_flagged, 1u);
  EXPECT_EQ(report.summary.diverged_in_model, 0u);
  EXPECT_EQ(report.summary.dp_config_mismatches, 0u);
}

}  // namespace
}  // namespace chainckpt::scenario
