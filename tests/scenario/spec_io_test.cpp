// ScenarioSpec JSON round-trip + materialization determinism.
#include "scenario/spec_io.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/matrix.hpp"
#include "scenario/spec.hpp"

namespace chainckpt::scenario {
namespace {

ScenarioSpec full_featured_spec() {
  ScenarioSpec spec;
  spec.name = "roundtrip-cell";
  spec.seed = 0xDEADBEEFCAFEULL;
  spec.chain.shape = ChainShape::kPareto;
  spec.chain.n = 17;
  spec.chain.total_weight = 31000.0;
  spec.chain.pareto_alpha = 1.25;
  spec.chain.ramp_factor = 3.0;
  spec.chain.trace = "seismic";
  spec.chain.per_position_costs = true;
  spec.platform.base = "Atlas";
  spec.platform.perturb = 0.2;
  spec.failure.law = FailureLaw::kWeibull;
  spec.failure.weibull_shape = 0.6;
  spec.failure.rate_scale = 12.5;
  spec.failure.modeled_recall = 0.95;
  spec.failure.actual_recall = 0.5;
  spec.traffic.kind = TrafficKind::kBursty;
  spec.traffic.jobs = 31;
  spec.traffic.rate = 150.0;
  spec.traffic.burst_size = 5;
  spec.traffic.deadline_fraction = 0.4;
  spec.traffic.priority_mix[0] = 0.1;
  spec.traffic.priority_mix[1] = 0.2;
  spec.traffic.priority_mix[2] = 0.3;
  spec.traffic.priority_mix[3] = 0.4;
  spec.algorithms = {core::Algorithm::kADVstar, core::Algorithm::kADMV};
  spec.replicas = 321;
  spec.expected.push_back({"ADV*", "0123456789abcdef", "0x40c3880000000000"});
  return spec;
}

TEST(SpecIo, RoundTripPreservesEveryField) {
  const ScenarioSpec spec = full_featured_spec();
  const ScenarioSpec back = spec_from_json(spec_to_json(spec));

  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.chain.shape, spec.chain.shape);
  EXPECT_EQ(back.chain.n, spec.chain.n);
  EXPECT_EQ(back.chain.total_weight, spec.chain.total_weight);
  EXPECT_EQ(back.chain.pareto_alpha, spec.chain.pareto_alpha);
  EXPECT_EQ(back.chain.ramp_factor, spec.chain.ramp_factor);
  EXPECT_EQ(back.chain.trace, spec.chain.trace);
  EXPECT_EQ(back.chain.per_position_costs, spec.chain.per_position_costs);
  EXPECT_EQ(back.platform.base, spec.platform.base);
  EXPECT_EQ(back.platform.perturb, spec.platform.perturb);
  EXPECT_EQ(back.failure.law, spec.failure.law);
  EXPECT_EQ(back.failure.weibull_shape, spec.failure.weibull_shape);
  EXPECT_EQ(back.failure.rate_scale, spec.failure.rate_scale);
  EXPECT_EQ(back.failure.modeled_recall, spec.failure.modeled_recall);
  EXPECT_EQ(back.failure.actual_recall, spec.failure.actual_recall);
  EXPECT_EQ(back.traffic.kind, spec.traffic.kind);
  EXPECT_EQ(back.traffic.jobs, spec.traffic.jobs);
  EXPECT_EQ(back.traffic.rate, spec.traffic.rate);
  EXPECT_EQ(back.traffic.burst_size, spec.traffic.burst_size);
  EXPECT_EQ(back.traffic.deadline_fraction, spec.traffic.deadline_fraction);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(back.traffic.priority_mix[i], spec.traffic.priority_mix[i]);
  }
  ASSERT_EQ(back.algorithms.size(), spec.algorithms.size());
  for (std::size_t i = 0; i < spec.algorithms.size(); ++i) {
    EXPECT_EQ(back.algorithms[i], spec.algorithms[i]);
  }
  EXPECT_EQ(back.replicas, spec.replicas);
  ASSERT_EQ(back.expected.size(), 1u);
  EXPECT_EQ(back.expected[0].algorithm, spec.expected[0].algorithm);
  EXPECT_EQ(back.expected[0].digest, spec.expected[0].digest);
  EXPECT_EQ(back.expected[0].makespan_bits, spec.expected[0].makespan_bits);

  // Serialization is canonical: a second round trip is byte-identical.
  EXPECT_EQ(spec_to_json(back), spec_to_json(spec));
}

TEST(SpecIo, RejectsMalformedInput) {
  EXPECT_THROW(spec_from_json(""), std::invalid_argument);
  EXPECT_THROW(spec_from_json("{"), std::invalid_argument);
  EXPECT_THROW(spec_from_json("[]"), std::invalid_argument);
  EXPECT_THROW(spec_from_json("{\"name\": }"), std::invalid_argument);
  // Parsed but invalid: validate() must fire.
  EXPECT_THROW(spec_from_json("{\"name\": \"x\", \"chain\": {\"n\": 1}}"),
               std::invalid_argument);
  EXPECT_THROW(
      spec_from_json(
          "{\"name\": \"x\", \"platform\": {\"base\": \"NoSuch\"}}"),
      std::invalid_argument);
}

TEST(SpecIo, MissingFieldsKeepDefaults) {
  const ScenarioSpec spec = spec_from_json("{\"name\": \"minimal\"}");
  EXPECT_EQ(spec.name, "minimal");
  EXPECT_EQ(spec.chain.shape, ChainShape::kUniform);
  EXPECT_EQ(spec.chain.n, 24u);
  EXPECT_EQ(spec.platform.base, "Hera");
  EXPECT_EQ(spec.failure.law, FailureLaw::kExponential);
  EXPECT_EQ(spec.traffic.kind, TrafficKind::kNone);
  EXPECT_EQ(spec.algorithms.size(), 2u);
}

TEST(Spec, MaterializeIsDeterministic) {
  const ScenarioSpec spec = full_featured_spec();
  const MaterializedCell a = materialize(spec);
  const MaterializedCell b = materialize(spec);
  ASSERT_EQ(a.chain.size(), b.chain.size());
  for (std::size_t i = 1; i <= a.chain.size(); ++i) {
    EXPECT_EQ(a.chain.weight(i), b.chain.weight(i));
    EXPECT_EQ(a.modeled_costs.c_disk_after(i), b.modeled_costs.c_disk_after(i));
  }
  EXPECT_EQ(a.modeled_platform.lambda_f, b.modeled_platform.lambda_f);
  // Modeled vs actual differ ONLY in recall.
  EXPECT_EQ(a.modeled_platform.lambda_f, a.actual_platform.lambda_f);
  EXPECT_EQ(a.modeled_platform.c_disk, a.actual_platform.c_disk);
  EXPECT_DOUBLE_EQ(a.modeled_platform.recall, 0.95);
  EXPECT_DOUBLE_EQ(a.actual_platform.recall, 0.5);
  // Rate scaling applied to both failure sources.
  EXPECT_GT(a.modeled_platform.lambda_f, 0.0);
}

TEST(Spec, PerturbationIsSeededAndBounded) {
  ScenarioSpec spec;
  spec.name = "perturbed";
  spec.seed = 99;
  spec.platform.perturb = 0.35;
  const MaterializedCell a = materialize(spec);
  const MaterializedCell b = materialize(spec);
  EXPECT_EQ(a.modeled_platform.lambda_f, b.modeled_platform.lambda_f);
  EXPECT_EQ(a.modeled_platform.c_disk, b.modeled_platform.c_disk);
  // Different seed, different jitter.
  spec.seed = 100;
  const MaterializedCell c = materialize(spec);
  EXPECT_NE(a.modeled_platform.c_disk, c.modeled_platform.c_disk);
  // Bounded multiplicative jitter.
  ScenarioSpec exact = spec;
  exact.platform.perturb = 0.0;
  const MaterializedCell base = materialize(exact);
  const double ratio = a.modeled_platform.c_disk / base.modeled_platform.c_disk;
  EXPECT_GE(ratio, 1.0 / 1.35 - 1e-12);
  EXPECT_LE(ratio, 1.35 + 1e-12);
}

TEST(Matrix, CellSeedsAreNameKeyed) {
  const std::uint64_t seed_a = derive_cell_seed(7, "cell-a");
  EXPECT_EQ(seed_a, derive_cell_seed(7, "cell-a"));
  EXPECT_NE(seed_a, derive_cell_seed(7, "cell-b"));
  EXPECT_NE(seed_a, derive_cell_seed(8, "cell-a"));
}

TEST(Matrix, FullMatrixMeetsTheCellFloor) {
  const std::vector<ScenarioSpec> cells = build_matrix({});
  EXPECT_GE(cells.size(), 200u);
  // Names are unique (they key the seeds) and every spec validates.
  std::set<std::string> names;
  std::size_t traffic = 0, weibull = 0, mismatch = 0, perturbed = 0;
  for (const ScenarioSpec& spec : cells) {
    EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
    ASSERT_NO_THROW(spec.validate()) << spec.name;
    if (spec.traffic.kind != TrafficKind::kNone) ++traffic;
    if (spec.failure.law == FailureLaw::kWeibull) ++weibull;
    if (!spec.failure.assumptions_hold() &&
        spec.failure.law == FailureLaw::kExponential) {
      ++mismatch;
    }
    if (spec.platform.perturb > 0.0) ++perturbed;
  }
  // Every adversarial axis is represented.
  EXPECT_GT(traffic, 0u);
  EXPECT_GT(weibull, 0u);
  EXPECT_GT(mismatch, 0u);
  EXPECT_GT(perturbed, 0u);
}

TEST(Matrix, SmokeMatrixIsSmallButCoversTheAxes) {
  MatrixOptions options;
  options.smoke = true;
  const std::vector<ScenarioSpec> cells = build_matrix(options);
  EXPECT_GE(cells.size(), 20u);
  EXPECT_LE(cells.size(), 60u);
  bool has_broken = false, has_traffic = false;
  for (const ScenarioSpec& spec : cells) {
    if (!spec.failure.assumptions_hold()) has_broken = true;
    if (spec.traffic.kind != TrafficKind::kNone) has_traffic = true;
  }
  EXPECT_TRUE(has_broken);
  EXPECT_TRUE(has_traffic);
}

}  // namespace
}  // namespace chainckpt::scenario
