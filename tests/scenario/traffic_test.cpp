// Arrival-trace generation: determinism, shape, and digest stability.
#include "scenario/traffic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace chainckpt::scenario {
namespace {

ScenarioSpec traffic_spec(TrafficKind kind) {
  ScenarioSpec spec;
  spec.name = "traffic";
  spec.seed = 4242;
  spec.traffic.kind = kind;
  spec.traffic.jobs = 60;
  spec.traffic.rate = 500.0;
  spec.traffic.burst_size = 6;
  return spec;
}

TEST(Traffic, DeterministicForSameSpec) {
  const ScenarioSpec spec = traffic_spec(TrafficKind::kPoisson);
  const ArrivalTrace a = make_trace(spec);
  const ArrivalTrace b = make_trace(spec);
  ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
  EXPECT_EQ(a.digest(), b.digest());
  for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
    EXPECT_EQ(a.arrivals[i].offset_us, b.arrivals[i].offset_us);
    EXPECT_EQ(a.arrivals[i].priority, b.arrivals[i].priority);
    EXPECT_EQ(a.arrivals[i].deadline_ms, b.arrivals[i].deadline_ms);
    EXPECT_EQ(a.arrivals[i].algorithm_index, b.arrivals[i].algorithm_index);
  }
  // A different seed produces a different trace (digest collision over
  // full traces would be astronomically unlikely).
  ScenarioSpec other = spec;
  other.seed = 4243;
  EXPECT_NE(make_trace(other).digest(), a.digest());
}

TEST(Traffic, EmitsRequestedJobCountSortedByOffset) {
  for (TrafficKind kind : {TrafficKind::kPoisson, TrafficKind::kBursty}) {
    const ScenarioSpec spec = traffic_spec(kind);
    const ArrivalTrace trace = make_trace(spec);
    ASSERT_EQ(trace.arrivals.size(), spec.traffic.jobs);
    for (std::size_t i = 1; i < trace.arrivals.size(); ++i) {
      EXPECT_GE(trace.arrivals[i].offset_us, trace.arrivals[i - 1].offset_us);
    }
    EXPECT_EQ(trace.span_us, trace.arrivals.back().offset_us);
    // Round-robin over the algorithm list.
    for (std::size_t i = 0; i < trace.arrivals.size(); ++i) {
      EXPECT_EQ(trace.arrivals[i].algorithm_index,
                i % spec.algorithms.size());
    }
  }
}

TEST(Traffic, BurstyTracesClusterArrivals) {
  const ScenarioSpec spec = traffic_spec(TrafficKind::kBursty);
  const ArrivalTrace trace = make_trace(spec);
  // Arrivals inside one burst share an instant: with bursts of 6, at
  // most ceil(60/6) = 10 distinct offsets exist.
  std::map<std::uint64_t, std::size_t> by_offset;
  for (const Arrival& a : trace.arrivals) ++by_offset[a.offset_us];
  EXPECT_LE(by_offset.size(), 10u);
  std::size_t largest = 0;
  for (const auto& [offset, count] : by_offset) {
    largest = std::max(largest, count);
  }
  EXPECT_EQ(largest, spec.traffic.burst_size);

  // Poisson arrivals do NOT cluster that way.
  const ArrivalTrace poisson = make_trace(traffic_spec(TrafficKind::kPoisson));
  std::map<std::uint64_t, std::size_t> poisson_offsets;
  for (const Arrival& a : poisson.arrivals) ++poisson_offsets[a.offset_us];
  EXPECT_GT(poisson_offsets.size(), by_offset.size());
}

TEST(Traffic, DeadlinesAreGenerousAndFractional) {
  ScenarioSpec spec = traffic_spec(TrafficKind::kPoisson);
  spec.traffic.jobs = 400;
  spec.traffic.deadline_fraction = 0.25;
  const ArrivalTrace trace = make_trace(spec);
  std::size_t with_deadline = 0;
  for (const Arrival& a : trace.arrivals) {
    if (a.deadline_ms > 0) {
      ++with_deadline;
      // The matrix-lane default scale: generous by construction.
      EXPECT_GE(a.deadline_ms, 15000u);
    }
  }
  // ~25% of 400, with a wide statistical margin.
  EXPECT_GT(with_deadline, 60u);
  EXPECT_LT(with_deadline, 140u);
}

TEST(Traffic, PriorityMixIsRespected) {
  ScenarioSpec spec = traffic_spec(TrafficKind::kPoisson);
  spec.traffic.jobs = 1000;
  spec.traffic.priority_mix[0] = 1.0;  // batch only
  spec.traffic.priority_mix[1] = 0.0;
  spec.traffic.priority_mix[2] = 0.0;
  spec.traffic.priority_mix[3] = 0.0;
  for (const Arrival& a : make_trace(spec).arrivals) {
    EXPECT_EQ(a.priority, service::Priority::kBatch);
  }
  spec.traffic.priority_mix[0] = 0.5;
  spec.traffic.priority_mix[3] = 0.5;
  std::size_t batch = 0, urgent = 0, other = 0;
  for (const Arrival& a : make_trace(spec).arrivals) {
    if (a.priority == service::Priority::kBatch) ++batch;
    else if (a.priority == service::Priority::kUrgent) ++urgent;
    else ++other;
  }
  EXPECT_EQ(other, 0u);
  EXPECT_GT(batch, 350u);
  EXPECT_GT(urgent, 350u);
}

}  // namespace
}  // namespace chainckpt::scenario
