// Scenario service-lane soak (ctest label: stress; gate
// CHAINCKPT_STRESS_TESTS=1): seeded replayed arrival traces through a
// live SolverService under bursty mixed-priority traffic, asserting the
// scheduler_stress invariants -- bitwise solver results per job, zero
// priority inversions under the unlimited budget, exact ServiceStats
// reconciliation -- via the SAME shared harness
// (tests/service/stress_harness.hpp), at several pool widths.
#include "scenario/traffic.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "../service/stress_harness.hpp"
#include "scenario/matrix.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "service/solver_service.hpp"

namespace chainckpt::scenario {
namespace {

using service::stress::count_priority_inversions;

ScenarioSpec soak_spec(TrafficKind kind, std::size_t jobs,
                       const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.seed = derive_cell_seed(0x50AB5EEDULL, name);
  spec.chain.n = 24;
  spec.failure.rate_scale = 25.0;
  spec.traffic.kind = kind;
  spec.traffic.jobs = jobs;
  spec.traffic.rate = 400.0;
  spec.traffic.burst_size = 12;
  spec.traffic.deadline_fraction = 0.3;
  spec.replicas = 50;  // the soak is about the service, not the sim lane
  return spec;
}

/// Replays one trace through a live service at the given pool width and
/// asserts the full invariant set.
void run_replay_soak(const ScenarioSpec& spec, std::size_t workers) {
  const MaterializedCell cell = materialize(spec);
  const ArrivalTrace trace = make_trace(spec);
  ASSERT_EQ(trace.arrivals.size(), spec.traffic.jobs);

  // Bitwise ground truth, one synchronous solve per algorithm kind.
  std::vector<core::OptimizationResult> expected;
  for (core::Algorithm algorithm : spec.algorithms) {
    expected.push_back(
        core::optimize(algorithm, cell.chain, cell.modeled_costs));
  }

  service::ServiceOptions options;
  options.workers = workers;
  options.admission.budget_units = 0.0;  // unlimited: zero inversions
  options.admission.queue_capacity = trace.arrivals.size() + 8;
  service::SolverService svc(options);

  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  std::vector<service::JobHandle> handles;
  handles.reserve(trace.arrivals.size());
  for (const Arrival& arrival : trace.arrivals) {
    std::this_thread::sleep_until(
        start + std::chrono::microseconds(arrival.offset_us));
    handles.push_back(svc.submit(
        {core::BatchJob{spec.algorithms[arrival.algorithm_index], cell.chain,
                        cell.modeled_costs},
         service::SubmitOptions(
             arrival.priority,
             std::chrono::milliseconds(arrival.deadline_ms))}));
  }

  std::vector<service::JobStatus> outcomes;
  outcomes.reserve(handles.size());
  for (const auto& handle : handles) outcomes.push_back(svc.wait(handle));
  svc.drain();

  // (b) bitwise results: generous deadlines + unlimited budget mean every
  // job must SUCCEED, and each result must match the reference solve.
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const service::JobStatus& status = outcomes[i];
    ASSERT_EQ(status.state, service::JobState::kSucceeded)
        << spec.name << " job " << status.id << ": "
        << service::to_string(status.state) << " " << status.error;
    const core::OptimizationResult& want =
        expected[trace.arrivals[i].algorithm_index];
    EXPECT_EQ(status.result.expected_makespan, want.expected_makespan);
    EXPECT_EQ(status.result.plan, want.plan);
  }

  // (a) zero priority inversions, by the shared counting rule.
  EXPECT_EQ(count_priority_inversions(outcomes), 0u) << spec.name;

  // (c) exact counter reconciliation.
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, trace.arrivals.size());
  EXPECT_EQ(stats.succeeded, trace.arrivals.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.inflight_units, 0.0);
  EXPECT_EQ(stats.queued_units, 0.0);
  svc.shutdown();
}

TEST(ServiceLane, BurstyReplaySoakAcrossPoolWidths) {
  CHAINCKPT_REQUIRE_STRESS();
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    run_replay_soak(
        soak_spec(TrafficKind::kBursty, 240,
                  "soak-bursty-w" + std::to_string(workers)),
        workers);
  }
}

TEST(ServiceLane, PoissonReplaySoak) {
  CHAINCKPT_REQUIRE_STRESS();
  run_replay_soak(soak_spec(TrafficKind::kPoisson, 240, "soak-poisson"), 4);
}

TEST(ServiceLane, RunnerServiceLaneMatchesTheHarnessVerdict) {
  CHAINCKPT_REQUIRE_STRESS();
  // The runner's embedded service lane must reach the same verdict the
  // standalone soak does: all succeeded, bitwise, inversion-free.
  ScenarioSpec spec = soak_spec(TrafficKind::kBursty, 96, "soak-runner-lane");
  RunnerOptions options;
  const CellReport cell = run_cell(spec, options);
  ASSERT_EQ(cell.service.size(), 1u);
  const ServiceLaneResult& lane = cell.service[0];
  EXPECT_EQ(lane.jobs, spec.traffic.jobs);
  EXPECT_TRUE(lane.all_succeeded);
  EXPECT_TRUE(lane.bitwise_ok);
  EXPECT_EQ(lane.priority_inversions, 0u);
  EXPECT_EQ(lane.trace_digest, hex64(make_trace(spec).digest()));
  EXPECT_TRUE(cell.ok);
}

}  // namespace
}  // namespace chainckpt::scenario
