// Protocol conformance / fuzz battery: hurl >= 500 seeded mutated frames
// at a live WireServer -- truncated frames, oversized declared lengths,
// bad magic/version/type, flipped bytes, garbage payloads, duplicate and
// interleaved request ids, mid-frame disconnects -- and assert the server
// (a) never crashes or corrupts memory (the CI sanitize lane runs this
// under ASan+UBSan), (b) answers protocol errors with kError frames, and
// (c) keeps a neighboring tenant's stream bit-exact throughout: a victim
// connection periodically solves a pinned job and must receive the same
// bitwise result every time, no matter what the attacker is sending.
//
// Everything is seeded (util::Xoshiro256) so a failure reproduces
// exactly; also fuzzes the pure decoders directly (decode_header and
// every payload codec must be total over hostile bytes).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "chain/patterns.hpp"
#include "core/batch_solver.hpp"
#include "net/payload.hpp"
#include "net/wire_client.hpp"
#include "net/wire_server.hpp"
#include "platform/cost_model.hpp"
#include "platform/registry.hpp"
#include "service/solver_service.hpp"
#include "util/rng.hpp"

namespace chainckpt::net {
namespace {

constexpr std::uint64_t kSeed = 0x5eedC0DEull;
constexpr std::size_t kFuzzFrames = 640;  // >= 500 per the battery contract

/// Raw attacker socket: no protocol smarts, free to misbehave.
class RawSocket {
 public:
  explicit RawSocket(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~RawSocket() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const noexcept { return fd_ >= 0; }

  void send_bytes(const std::uint8_t* data, std::size_t size) {
    std::size_t sent = 0;
    while (sent < size && fd_ >= 0) {
      const ssize_t n =
          ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
      if (n <= 0) break;  // server closed on us: expected under fuzz
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Non-blocking drain so the server's reply outbox never wedges.
  void drain() {
    std::uint8_t buffer[4096];
    while (fd_ >= 0 &&
           ::recv(fd_, buffer, sizeof(buffer), MSG_DONTWAIT) > 0) {
    }
  }

 private:
  int fd_ = -1;
};

std::vector<std::uint8_t> valid_submit_frame(std::uint64_t tenant,
                                             std::uint64_t request_id) {
  service::JobRequest request;
  request.work = core::BatchJob{core::Algorithm::kDaly,
                                chain::make_uniform(24, 25000.0),
                                platform::CostModel{platform::hera()}};
  FrameHeader header;
  header.type = FrameType::kSubmit;
  header.tenant_id = tenant;
  header.request_id = request_id;
  return encode_frame(header, encode_job_request(request));
}

std::vector<std::uint8_t> valid_frame(FrameType type, std::uint64_t tenant,
                                      std::uint64_t request_id) {
  FrameHeader header;
  header.type = type;
  header.tenant_id = tenant;
  header.request_id = request_id;
  switch (type) {
    case FrameType::kHello:
      return encode_frame(header, encode_hello("fuzzer"));
    case FrameType::kSubmit:
      return valid_submit_frame(tenant, request_id);
    default:
      return encode_frame(header, {});
  }
}

/// One seeded mutation of a valid frame.  Mutation kinds cover the
/// battery contract; the RNG picks which.
std::vector<std::uint8_t> mutate(util::Xoshiro256& rng,
                                 std::vector<std::uint8_t> frame) {
  // Header-field mutations only apply when the bytes actually carry a
  // header (the decoder-fuzz seeds include bare payloads).
  const bool has_header = frame.size() >= kHeaderBytes;
  switch (rng() % 8) {
    case 0:  // bad magic
      if (has_header) {
        frame[rng() % 4] ^= static_cast<std::uint8_t>(1 + rng() % 255);
      }
      break;
    case 1:  // bad version
      if (has_header) frame[4] = static_cast<std::uint8_t>(rng());
      break;
    case 2:  // bad type
      if (has_header) frame[5] = static_cast<std::uint8_t>(rng());
      break;
    case 3: {  // oversized / lying declared payload length
      if (has_header) {
        const std::uint32_t lie = static_cast<std::uint32_t>(rng());
        std::memcpy(frame.data() + 24, &lie, 4);
      }
      break;
    }
    case 4:  // truncate (mid-frame disconnect follows on close)
      frame.resize(rng() % (frame.size() + 1));
      break;
    case 5: {  // flip random bytes anywhere (often payload corruption)
      const std::size_t flips = 1 + rng() % 8;
      for (std::size_t i = 0; i < flips; ++i) {
        frame[rng() % frame.size()] ^=
            static_cast<std::uint8_t>(1 + rng() % 255);
      }
      break;
    }
    case 6: {  // pure garbage of random length
      frame.resize(1 + rng() % 128);
      for (auto& byte : frame) byte = static_cast<std::uint8_t>(rng());
      break;
    }
    case 7:  // valid frame, possibly a duplicate/interleaved request id
      break;
  }
  return frame;
}

TEST(WireFuzz, MutatedFramesNeverCrashServerOrCorruptNeighborTenant) {
  service::SolverService svc;
  WireServer server(svc);
  server.start();

  // Victim tenant: a pinned job whose bitwise result is the canary.
  core::BatchJob canary{core::Algorithm::kADVstar,
                        chain::make_uniform(48, 25000.0),
                        platform::CostModel{platform::atlas()}};
  core::BatchSolver reference;
  const core::OptimizationResult expected = reference.solve_job(canary);

  WireClient::Options victim_options;
  victim_options.port = server.port();
  victim_options.tenant = 99;
  WireClient victim(victim_options);
  victim.hello();
  std::uint64_t victim_request = 1;
  const auto victim_check = [&] {
    service::JobRequest request;
    request.work = canary;
    ASSERT_FALSE(victim.submit(request, victim_request, true).retry);
    const service::JobStatus status = victim.wait_result(victim_request);
    ASSERT_EQ(status.state, service::JobState::kSucceeded);
    ASSERT_EQ(status.result.expected_makespan, expected.expected_makespan);
    ASSERT_TRUE(status.result.plan == expected.plan);
    ASSERT_EQ(status.tenant, 99u);
    ++victim_request;
  };
  victim_check();

  util::Xoshiro256 rng(kSeed);
  const FrameType kinds[] = {FrameType::kHello,  FrameType::kSubmit,
                             FrameType::kPoll,   FrameType::kCancel,
                             FrameType::kStatsRequest, FrameType::kGoodbye};

  std::size_t sent = 0;
  while (sent < kFuzzFrames) {
    // A fresh attacker connection per burst: the server tears the stream
    // down on unsyncable headers, and closing mid-burst exercises
    // mid-frame disconnects.
    RawSocket attacker(server.port());
    ASSERT_TRUE(attacker.ok());
    const std::size_t burst = 1 + rng() % 12;
    for (std::size_t i = 0; i < burst && sent < kFuzzFrames; ++i) {
      const FrameType kind = kinds[rng() % 6];
      // Interleaved/duplicate ids on purpose: only a handful of values.
      const std::uint64_t request_id = rng() % 5;
      const std::uint64_t tenant = rng() % 3;  // never the victim's 99
      std::vector<std::uint8_t> frame =
          mutate(rng, valid_frame(kind, tenant, request_id));
      if (!frame.empty()) attacker.send_bytes(frame.data(), frame.size());
      ++sent;
      attacker.drain();
    }
    attacker.drain();
    // Periodically prove the victim's stream is still bit-exact.
    if (sent % 128 < 12) victim_check();
  }

  victim_check();

  // The server must have survived and must have flagged at least some of
  // the garbage as protocol errors (not silently swallowed everything).
  const WireServerStats stats = server.stats();
  EXPECT_GT(stats.frames_received + stats.protocol_errors, 0u);
  EXPECT_GT(stats.protocol_errors, 0u);
  EXPECT_GT(stats.connections_accepted, 1u);

  // Victim accounting is intact: exactly its own submissions, tenant 99.
  const service::ServiceStats service_stats = svc.stats();
  const auto it = service_stats.tenants.find(99);
  ASSERT_NE(it, service_stats.tenants.end());
  EXPECT_EQ(it->second.submitted, victim_request - 1);
  EXPECT_EQ(it->second.succeeded, victim_request - 1);
  EXPECT_EQ(it->second.rejected, 0u);

  victim.goodbye();
  server.stop();
}

TEST(WireFuzz, DecodersAreTotalOverHostileBytes) {
  util::Xoshiro256 rng(kSeed ^ 0xabcdef);

  // Seeds: one valid instance of every payload, plus raw headers.
  std::vector<std::vector<std::uint8_t>> seeds;
  seeds.push_back(valid_frame(FrameType::kSubmit, 1, 1));
  seeds.push_back(encode_hello("seed"));
  {
    service::JobStatus status;
    status.id = 3;
    status.state = service::JobState::kSucceeded;
    status.result.plan = plan::ResiliencePlan(6);
    status.result.expected_makespan = 123.5;
    seeds.push_back(encode_job_status(status));
  }
  {
    RetryAfterPayload retry;
    retry.retry_after_ms = 10;
    retry.reason = service::RejectReason::kQueueFull;
    retry.message = "seed";
    seeds.push_back(encode_retry_after(retry));
  }
  {
    WelcomePayload welcome;
    welcome.server = "seed";
    seeds.push_back(encode_welcome(welcome));
  }
  seeds.push_back(encode_error(ErrorPayload{WireError::kBadPayload, "x"}));
  seeds.push_back(encode_cancel_ack(true));

  for (std::size_t round = 0; round < 4000; ++round) {
    std::vector<std::uint8_t> bytes = seeds[rng() % seeds.size()];
    bytes = mutate(rng, std::move(bytes));

    FrameHeader header;
    (void)decode_header(bytes.data(), bytes.size(), header);
    service::JobRequest request;
    (void)decode_job_request(bytes.data(), bytes.size(), request);
    service::JobStatus status;
    (void)decode_job_status(bytes.data(), bytes.size(), status);
    RetryAfterPayload retry;
    (void)decode_retry_after(bytes.data(), bytes.size(), retry);
    ErrorPayload error;
    (void)decode_error(bytes.data(), bytes.size(), error);
    WelcomePayload welcome;
    (void)decode_welcome(bytes.data(), bytes.size(), welcome);
    std::string text;
    (void)decode_hello(bytes.data(), bytes.size(), text);
    bool flag = false;
    (void)decode_cancel_ack(bytes.data(), bytes.size(), flag);
  }
  SUCCEED();  // surviving without sanitizer reports IS the assertion
}

}  // namespace
}  // namespace chainckpt::net
