// Loopback round-trip battery: every algorithm class solved through
// WireClient -> TCP -> WireServer -> SolverService must be BITWISE
// identical to the same job solved in-process -- the end-to-end proof of
// the protocol's bit-exact serialization discipline (net/payload.hpp).
// Also pins the submit-reply semantics: plan-cache hits stay bitwise
// stable, non-retryable rejections round-trip their RejectReason, and a
// full admission queue answers kRetryAfter (backpressure, not failure).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "chain/patterns.hpp"
#include "core/batch_solver.hpp"
#include "net/wire_client.hpp"
#include "net/wire_server.hpp"
#include "platform/cost_model.hpp"
#include "platform/registry.hpp"
#include "service/solver_service.hpp"

namespace chainckpt::net {
namespace {

WireClient::Options client_options(std::uint16_t port,
                                   std::uint64_t tenant = 1) {
  WireClient::Options options;
  options.port = port;
  options.tenant = tenant;
  return options;
}

struct Row {
  core::Algorithm algorithm;
  std::size_t n;
};

/// All algorithms at n = 24; everything but ADMV (O(n^6)) at n = 100;
/// the cheap classes at n = 400.  The two big two-level rows ride the
/// slow gate so plain tier-1 stays fast.
std::vector<Row> coverage_rows() {
  std::vector<Row> rows;
  for (const core::Algorithm algorithm :
       {core::Algorithm::kAD, core::Algorithm::kADVstar,
        core::Algorithm::kADMVstar, core::Algorithm::kADMV,
        core::Algorithm::kPeriodic, core::Algorithm::kDaly}) {
    rows.push_back({algorithm, 24});
  }
  for (const core::Algorithm algorithm :
       {core::Algorithm::kAD, core::Algorithm::kADVstar,
        core::Algorithm::kADMVstar, core::Algorithm::kPeriodic,
        core::Algorithm::kDaly}) {
    rows.push_back({algorithm, 100});
  }
  for (const core::Algorithm algorithm :
       {core::Algorithm::kAD, core::Algorithm::kADVstar,
        core::Algorithm::kPeriodic, core::Algorithm::kDaly}) {
    rows.push_back({algorithm, 400});
  }
  if (std::getenv("CHAINCKPT_SLOW_TESTS") != nullptr) {
    rows.push_back({core::Algorithm::kADMVstar, 400});
    rows.push_back({core::Algorithm::kADMV, 100});
  }
  return rows;
}

TEST(WireRoundtrip, EveryAlgorithmBitwiseIdenticalToInProcessSolve) {
  service::SolverService svc;
  WireServer server(svc);
  server.start();
  WireClient client(client_options(server.port()));
  const WelcomePayload welcome = client.hello();
  EXPECT_EQ(welcome.version, kProtocolVersion);
  EXPECT_GT(welcome.max_n, 0u);

  core::BatchSolver reference;
  const platform::CostModel hera{platform::hera()};
  const platform::CostModel atlas{platform::atlas()};

  std::uint64_t request_id = 1;
  for (const Row& row : coverage_rows()) {
    SCOPED_TRACE(core::to_string(row.algorithm) + "/n=" +
                 std::to_string(row.n));
    core::BatchJob job{row.algorithm,
                       chain::make_uniform(row.n, 25000.0),
                       row.n % 2 == 0 ? hera : atlas};
    const core::OptimizationResult expected = reference.solve_job(job);

    service::JobRequest request;
    request.work = job;
    const SubmitOutcome outcome =
        client.submit(request, request_id, /*stream=*/true);
    ASSERT_FALSE(outcome.retry);
    ASSERT_NE(outcome.status.state, service::JobState::kRejected)
        << outcome.status.error;
    const service::JobStatus status = client.wait_result(request_id);
    ASSERT_EQ(status.state, service::JobState::kSucceeded)
        << status.error;
    // Bitwise: EXPECT_EQ on doubles is exact equality, not a tolerance.
    EXPECT_EQ(status.result.expected_makespan, expected.expected_makespan);
    EXPECT_TRUE(status.result.plan == expected.plan);
    EXPECT_EQ(status.result.plan.size(), row.n);
    EXPECT_EQ(status.tenant, 1u);
    ++request_id;
  }

  client.goodbye();
  server.stop();
}

TEST(WireRoundtrip, PerPositionCostModelAndWeibullLawSurviveTheWire) {
  service::SolverService svc;
  WireServer server(svc);
  server.start();
  WireClient client(client_options(server.port()));

  // Non-uniform model with EMPTY recovery streams: the decoder must
  // preserve the "empty = mirror the checkpoint cost" convention, not
  // materialize today's mirrored values.
  const std::size_t n = 60;
  const platform::Platform hera = platform::hera();
  std::vector<double> c_disk(n), c_mem(n), v_guar(n), v_part(n);
  for (std::size_t i = 0; i < n; ++i) {
    c_disk[i] = hera.c_disk * (1.0 + 0.01 * static_cast<double>(i));
    c_mem[i] = hera.c_mem * (1.0 + 0.02 * static_cast<double>(i));
    v_guar[i] = hera.v_guaranteed;
    v_part[i] = hera.v_partial;
  }
  platform::CostModel costs(hera, c_disk, c_mem, v_guar, v_part);
  platform::PlanningLaw law;
  law.law = platform::FailureLaw::kWeibull;
  law.weibull_shape = 0.7;
  costs.set_planning_law(law);

  core::BatchJob job{core::Algorithm::kADMVstar,
                     chain::make_decrease(n, 25000.0), costs};
  core::BatchSolver reference;
  const core::OptimizationResult expected = reference.solve_job(job);

  service::JobRequest request;
  request.work = job;
  const SubmitOutcome outcome = client.submit(request, 7, /*stream=*/true);
  ASSERT_FALSE(outcome.retry);
  const service::JobStatus status = client.wait_result(7);
  ASSERT_EQ(status.state, service::JobState::kSucceeded) << status.error;
  EXPECT_EQ(status.result.expected_makespan, expected.expected_makespan);
  EXPECT_TRUE(status.result.plan == expected.plan);

  server.stop();
}

TEST(WireRoundtrip, PlanCacheHitsServeBitwiseIdenticalResults) {
  service::SolverService svc;
  WireServer server(svc);
  server.start();
  WireClient client(client_options(server.port()));

  core::BatchJob job{core::Algorithm::kADVstar,
                     chain::make_uniform(80, 25000.0),
                     platform::CostModel{platform::hera()}};
  service::JobRequest request;
  request.work = job;
  request.options.cache_epsilon = 0.0;  // exact hits only

  ASSERT_FALSE(client.submit(request, 1, true).retry);
  const service::JobStatus first = client.wait_result(1);
  ASSERT_EQ(first.state, service::JobState::kSucceeded);

  ASSERT_FALSE(client.submit(request, 2, true).retry);
  const service::JobStatus second = client.wait_result(2);
  ASSERT_EQ(second.state, service::JobState::kSucceeded);

  EXPECT_EQ(first.result.expected_makespan, second.result.expected_makespan);
  EXPECT_TRUE(first.result.plan == second.result.plan);

  // The second solve was served by the plan cache; the JSON stats frame
  // reports it, proving cache-hit results flow through the wire too.
  const std::string stats = client.stats_json();
  EXPECT_NE(stats.find("\"plan_cache\""), std::string::npos);
  EXPECT_EQ(stats.find("\"exact_hits\":0,"), std::string::npos) << stats;

  server.stop();
}

TEST(WireRoundtrip, NonRetryableRejectionRoundTripsItsReason) {
  service::ServiceOptions options;
  options.admission.max_job_units = 0.001;  // everything is over the cap
  service::SolverService svc(options);
  WireServer server(svc);
  server.start();
  WireClient client(client_options(server.port()));

  service::JobRequest request;
  request.work = core::BatchJob{core::Algorithm::kADMVstar,
                                chain::make_uniform(100, 25000.0),
                                platform::CostModel{platform::hera()}};
  const SubmitOutcome outcome = client.submit(request, 1);
  ASSERT_FALSE(outcome.retry);  // a cap rejection is final, not backpressure
  EXPECT_EQ(outcome.status.state, service::JobState::kRejected);
  EXPECT_EQ(outcome.status.reject_reason, service::RejectReason::kPerJobCap);
  EXPECT_FALSE(outcome.status.error.empty());

  // The rejected request id stays pollable on this connection.
  const service::JobStatus polled = client.poll(1);
  EXPECT_EQ(polled.state, service::JobState::kRejected);
  EXPECT_EQ(polled.reject_reason, service::RejectReason::kPerJobCap);

  server.stop();
}

TEST(WireRoundtrip, QueueFullAnswersRetryAfterAndRefundsTheQuota) {
  service::ServiceOptions options;
  options.workers = 1;
  options.admission.queue_capacity = 1;
  service::SolverService svc(options);
  WireServerOptions server_options;
  server_options.queue_full_retry_ms = 123;
  WireServer server(svc, server_options);
  server.start();
  WireClient client(client_options(server.port()));

  service::JobRequest request;
  request.work = core::BatchJob{core::Algorithm::kADMVstar,
                                chain::make_uniform(140, 25000.0),
                                platform::CostModel{platform::hera()}};

  // Flood: worker busy with the first, queue holds the second, the rest
  // bounce with kQueueFull backpressure.
  bool saw_retry = false;
  RetryAfterPayload retry_info;
  for (std::uint64_t id = 1; id <= 8; ++id) {
    const SubmitOutcome outcome = client.submit(request, id);
    if (outcome.retry) {
      saw_retry = true;
      retry_info = outcome.retry_info;
      break;
    }
  }
  ASSERT_TRUE(saw_retry);
  EXPECT_EQ(retry_info.reason, service::RejectReason::kQueueFull);
  EXPECT_EQ(retry_info.retry_after_ms, 123u);

  // Queue-full must refund: charges equal refunds + live submissions.
  const auto tenant_stats = server.tenant_stats();
  const auto it = tenant_stats.find(1);
  ASSERT_NE(it, tenant_stats.end());
  EXPECT_GE(it->second.refunded, 1u);

  const WireServerStats stats = server.stats();
  EXPECT_GE(stats.backpressured, 1u);
  EXPECT_EQ(stats.throttled, 0u);  // default quota is unlimited

  server.stop();
}

TEST(WireRoundtrip, CancelReachesQueuedJobsOverTheWire) {
  service::ServiceOptions options;
  options.workers = 1;
  service::SolverService svc(options);
  WireServer server(svc);
  server.start();
  WireClient client(client_options(server.port()));

  service::JobRequest request;
  request.work = core::BatchJob{core::Algorithm::kADMVstar,
                                chain::make_uniform(120, 25000.0),
                                platform::CostModel{platform::hera()}};
  // Saturate the single worker, then cancel a queued follower.
  ASSERT_FALSE(client.submit(request, 1).retry);
  ASSERT_FALSE(client.submit(request, 2).retry);
  const bool cancelled = client.cancel(2);
  EXPECT_TRUE(cancelled);
  const service::JobStatus status = client.poll(2);
  EXPECT_TRUE(status.state == service::JobState::kCancelled ||
              status.state == service::JobState::kRunning)
      << service::to_string(status.state);

  server.stop();
}

}  // namespace
}  // namespace chainckpt::net
