// Byte-pinned golden captures of every protocol-version-1 frame type.
// The wire layout is a compatibility contract: an accidental field
// reorder, a width change, or an endianness slip breaks real clients, so
// every frame type's exact bytes are checked into tests/net/golden/ and
// compared here byte for byte.
//
// Re-pin workflow (docs/PROTOCOL.md): after an INTENTIONAL protocol
// change (which must bump kProtocolVersion), regenerate the captures
// with
//     CHAINCKPT_WRITE_GOLDEN=1 ./net_wire_golden_test
// and commit the diff together with the version bump.  A diff here
// without a version bump is a wire-compatibility bug, not a test to
// update.
//
// Every payload below is built from pinned literals (never from the
// platform registry or defaults that might legitimately evolve), so the
// captures only change when the ENCODING changes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chain/chain.hpp"
#include "net/payload.hpp"
#include "plan/plan.hpp"
#include "platform/cost_model.hpp"
#include "service/solver_service.hpp"

namespace chainckpt::net {
namespace {

std::string golden_dir() {
  return std::string(CHAINCKPT_SOURCE_DIR) + "/tests/net/golden";
}

std::string to_hex(const std::vector<std::uint8_t>& bytes) {
  std::ostringstream out;
  char buffer[4];
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%02x", bytes[i]);
    out << buffer;
    if ((i + 1) % 32 == 0) out << "\n";
  }
  if (bytes.size() % 32 != 0) out << "\n";
  return out.str();
}

std::vector<std::uint8_t> from_hex(const std::string& text) {
  std::vector<std::uint8_t> bytes;
  int hi = -1;
  for (const char c : text) {
    int nibble = -1;
    if (c >= '0' && c <= '9') nibble = c - '0';
    if (c >= 'a' && c <= 'f') nibble = c - 'a' + 10;
    if (c >= 'A' && c <= 'F') nibble = c - 'A' + 10;
    if (nibble < 0) continue;  // whitespace
    if (hi < 0) {
      hi = nibble;
    } else {
      bytes.push_back(static_cast<std::uint8_t>((hi << 4) | nibble));
      hi = -1;
    }
  }
  return bytes;
}

struct GoldenFrame {
  std::string name;
  std::vector<std::uint8_t> bytes;
};

FrameHeader header_of(FrameType type, std::uint16_t flags = 0) {
  FrameHeader header;
  header.type = type;
  header.flags = flags;
  header.tenant_id = 7;
  header.request_id = 42;
  return header;
}

/// All literals pinned: the capture must not depend on registry defaults.
platform::Platform pinned_platform() {
  platform::Platform p;
  p.name = "golden";
  p.nodes = 128;
  p.lambda_f = 1.0 / 86400.0;
  p.lambda_s = 1.0 / 172800.0;
  p.c_disk = 600.0;
  p.c_mem = 60.0;
  p.r_disk = 600.0;
  p.r_mem = 60.0;
  p.v_guaranteed = 300.0;
  p.v_partial = 30.0;
  p.recall = 0.8;
  return p;
}

service::JobStatus pinned_status(service::JobState state) {
  service::JobStatus status;
  status.id = 11;
  status.state = state;
  status.priority = service::Priority::kInteractive;
  status.tenant = 7;
  status.cost_units = 0.25;
  status.reject_reason = state == service::JobState::kRejected
                             ? service::RejectReason::kPerJobCap
                             : service::RejectReason::kNone;
  status.submit_seq = 3;
  status.start_seq = 5;
  status.starts = 1;
  status.preemptions = 0;
  if (state == service::JobState::kRejected) status.error = "over the cap";
  if (state == service::JobState::kSucceeded) {
    status.result.plan = plan::ResiliencePlan(std::vector<plan::Action>{
        plan::Action::kNone, plan::Action::kPartialVerif,
        plan::Action::kGuaranteedVerif, plan::Action::kMemoryCheckpoint,
        plan::Action::kDiskCheckpoint});
    status.result.expected_makespan = 123456.78125;  // exact binary
    status.result.scan.dense_cells = 10;
    status.result.scan.cells_scanned = 6;
    status.result.scan.steps = 4;
  }
  return status;
}

/// One capture per frame type, every payload from pinned literals.
std::vector<GoldenFrame> golden_frames() {
  std::vector<GoldenFrame> frames;
  const auto add = [&](const std::string& name, const FrameHeader& header,
                       const std::vector<std::uint8_t>& payload) {
    frames.push_back({name, encode_frame(header, payload)});
  };

  add("01_hello", header_of(FrameType::kHello),
      encode_hello("golden-client"));

  WelcomePayload welcome;
  welcome.version = kProtocolVersion;
  welcome.max_payload_bytes = 16u << 20;
  welcome.max_n = 900;
  welcome.server = "golden-server";
  add("02_welcome", header_of(FrameType::kWelcome), encode_welcome(welcome));

  // Submit with the full codec surface: per-position streams, an EMPTY
  // r_disk/r_mem pair (the mirror convention), and a Weibull law.
  service::JobRequest request;
  request.work.algorithm = core::Algorithm::kADMVstar;
  request.work.chain =
      chain::TaskChain(std::vector<double>{1000.0, 2000.0, 3000.0, 4000.0});
  std::vector<double> c_disk{600.0, 610.0, 620.0, 630.0};
  std::vector<double> c_mem{60.0, 61.0, 62.0, 63.0};
  std::vector<double> v_guar{300.0, 300.0, 300.0, 300.0};
  std::vector<double> v_part{30.0, 30.0, 30.0, 30.0};
  platform::CostModel costs(pinned_platform(), c_disk, c_mem, v_guar,
                            v_part);
  platform::PlanningLaw law;
  law.law = platform::FailureLaw::kWeibull;
  law.weibull_shape = 0.7;
  costs.set_planning_law(law);
  request.work.costs = costs;
  request.work.cache_epsilon = 0.125;
  request.options.priority = service::Priority::kInteractive;
  request.options.deadline = std::chrono::milliseconds(30000);
  request.options.cache_epsilon = 0.125;
  request.options.tenant = 7;
  add("03_submit", header_of(FrameType::kSubmit, kFlagStreamResult),
      encode_job_request(request));

  add("04_submit_ack", header_of(FrameType::kSubmitAck),
      encode_job_status(pinned_status(service::JobState::kQueued)));
  add("05_poll", header_of(FrameType::kPoll), {});
  add("06_status", header_of(FrameType::kStatus),
      encode_job_status(pinned_status(service::JobState::kRejected)));
  add("07_cancel", header_of(FrameType::kCancel), {});
  add("08_cancel_ack", header_of(FrameType::kCancelAck),
      encode_cancel_ack(true));
  add("09_result", header_of(FrameType::kResult),
      encode_job_status(pinned_status(service::JobState::kSucceeded)));

  RetryAfterPayload retry;
  retry.retry_after_ms = 123;
  retry.reason = service::RejectReason::kQueueFull;
  retry.message = "queue full";
  add("10_retry_after", header_of(FrameType::kRetryAfter),
      encode_retry_after(retry));

  add("11_error", header_of(FrameType::kError),
      encode_error(ErrorPayload{WireError::kBadMagic, "bad magic"}));
  add("12_stats_request", header_of(FrameType::kStatsRequest), {});

  service::ServiceStats stats;
  stats.submitted = 5;
  stats.succeeded = 4;
  stats.rejected = 1;
  stats.queued = 0;
  stats.running = 0;
  stats.inflight_units = 0.0;
  stats.queued_units = 0.0;
  stats.solver.jobs_solved = 4;
  stats.solver.tables_built = 2;
  stats.solver.tables_reused = 2;
  stats.plan_cache.lookups = 4;
  stats.plan_cache.exact_hits = 1;
  stats.plan_cache.misses = 3;
  service::TenantCounters tenant;
  tenant.submitted = 5;
  tenant.succeeded = 4;
  tenant.rejected = 1;
  stats.tenants[7] = tenant;
  const std::string json = service_stats_to_json(stats);
  add("13_stats_reply", header_of(FrameType::kStatsReply),
      std::vector<std::uint8_t>(json.begin(), json.end()));

  add("14_goodbye", header_of(FrameType::kGoodbye), {});
  return frames;
}

TEST(WireGolden, EveryFrameTypeMatchesItsPinnedCapture) {
  const bool repin = std::getenv("CHAINCKPT_WRITE_GOLDEN") != nullptr;
  for (const GoldenFrame& frame : golden_frames()) {
    const std::string path = golden_dir() + "/" + frame.name + ".hex";
    if (repin) {
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << path;
      out << to_hex(frame.bytes);
      continue;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden capture " << path
        << " (re-pin with CHAINCKPT_WRITE_GOLDEN=1)";
    std::stringstream text;
    text << in.rdbuf();
    const std::vector<std::uint8_t> expected = from_hex(text.str());
    ASSERT_EQ(frame.bytes.size(), expected.size()) << frame.name;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(frame.bytes[i], expected[i])
          << frame.name << " differs at byte " << i
          << " -- wire layout changed without a version bump?";
    }
  }
  if (repin) {
    GTEST_SKIP() << "golden captures re-pinned; commit the diff together "
                    "with a protocol version bump";
  }
}

TEST(WireGolden, GoldenFramesDecodeAndReencodeIdentically) {
  for (const GoldenFrame& frame : golden_frames()) {
    FrameHeader header;
    ASSERT_EQ(decode_header(frame.bytes.data(), frame.bytes.size(), header),
              DecodeStatus::kOk)
        << frame.name;
    ASSERT_EQ(frame.bytes.size(), kHeaderBytes + header.payload_size);
    const std::uint8_t* payload = frame.bytes.data() + kHeaderBytes;
    const std::size_t payload_size = header.payload_size;

    // Decode the payload with the matching codec, re-encode, and demand
    // the identical bytes: the codecs are mutually inverse on the wire.
    std::vector<std::uint8_t> reencoded;
    switch (header.type) {
      case FrameType::kHello: {
        std::string client;
        ASSERT_TRUE(decode_hello(payload, payload_size, client));
        reencoded = encode_hello(client);
        break;
      }
      case FrameType::kWelcome: {
        WelcomePayload welcome;
        ASSERT_TRUE(decode_welcome(payload, payload_size, welcome));
        reencoded = encode_welcome(welcome);
        break;
      }
      case FrameType::kSubmit: {
        service::JobRequest request;
        ASSERT_TRUE(decode_job_request(payload, payload_size, request));
        reencoded = encode_job_request(request);
        break;
      }
      case FrameType::kSubmitAck:
      case FrameType::kStatus:
      case FrameType::kResult: {
        service::JobStatus status;
        ASSERT_TRUE(decode_job_status(payload, payload_size, status));
        reencoded = encode_job_status(status);
        break;
      }
      case FrameType::kCancelAck: {
        bool cancelled = false;
        ASSERT_TRUE(decode_cancel_ack(payload, payload_size, cancelled));
        reencoded = encode_cancel_ack(cancelled);
        break;
      }
      case FrameType::kRetryAfter: {
        RetryAfterPayload retry;
        ASSERT_TRUE(decode_retry_after(payload, payload_size, retry));
        reencoded = encode_retry_after(retry);
        break;
      }
      case FrameType::kError: {
        ErrorPayload error;
        ASSERT_TRUE(decode_error(payload, payload_size, error));
        reencoded = encode_error(error);
        break;
      }
      case FrameType::kPoll:
      case FrameType::kCancel:
      case FrameType::kStatsRequest:
      case FrameType::kStatsReply:
      case FrameType::kGoodbye:
        // Empty or free-text payloads: nothing to invert.
        continue;
    }
    ASSERT_EQ(reencoded,
              std::vector<std::uint8_t>(payload, payload + payload_size))
        << frame.name;
  }
}

}  // namespace
}  // namespace chainckpt::net
