// Multi-tenant stress battery over the network edge (ctest label:
// stress).  A greedy tenant floods kNormal work under a tight quota
// while polite tenants submit kInteractive work under no quota; asserts
// (a) the quota actually bites the greedy tenant and never the polite
// ones, (b) ZERO cross-tenant priority inversions in the dispatch trace
// (the same event-clock counting rule as the scheduler soak,
// tests/service/stress_harness.hpp), (c) queue-full turns into
// kRetryAfter backpressure with quota refunds, and (d) the per-tenant
// counters in ServiceStats reconcile EXACTLY: each tenant's counters
// match the client-side tally, and the per-tenant sums equal the global
// counters.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "chain/patterns.hpp"
#include "core/batch_solver.hpp"
#include "net/wire_client.hpp"
#include "net/wire_server.hpp"
#include "platform/cost_model.hpp"
#include "platform/registry.hpp"
#include "service/solver_service.hpp"
#include "../service/stress_harness.hpp"

namespace chainckpt::net {
namespace {

constexpr std::uint64_t kGreedy = 2;
constexpr std::uint64_t kPoliteA = 3;
constexpr std::uint64_t kPoliteB = 4;

struct TenantTally {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t throttled = 0;
  std::uint64_t backpressured = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t cancelled = 0;
  std::vector<service::JobStatus> outcomes;
};

/// Submits `count` copies of `job` under `priority`, streaming results,
/// and tallies every verdict client-side.
TenantTally run_tenant(std::uint16_t port, std::uint64_t tenant,
                       const core::BatchJob& job,
                       service::Priority priority, std::size_t count) {
  TenantTally tally;
  WireClient::Options options;
  options.port = port;
  options.tenant = tenant;
  WireClient client(options);
  client.hello();

  std::vector<std::uint64_t> live;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t request_id = i + 1;
    service::JobRequest request;
    request.work = job;
    request.options.priority = priority;
    const SubmitOutcome outcome =
        client.submit(request, request_id, /*stream=*/true);
    if (outcome.retry) {
      if (outcome.retry_info.reason == service::RejectReason::kQueueFull) {
        ++tally.backpressured;
      } else {
        ++tally.throttled;
      }
      continue;
    }
    if (outcome.status.state == service::JobState::kRejected) {
      ++tally.rejected;
      continue;
    }
    ++tally.accepted;
    live.push_back(request_id);
  }
  for (const std::uint64_t request_id : live) {
    const service::JobStatus status = client.wait_result(request_id);
    if (status.state == service::JobState::kSucceeded) ++tally.succeeded;
    if (status.state == service::JobState::kCancelled) ++tally.cancelled;
    tally.outcomes.push_back(status);
  }
  client.goodbye();
  return tally;
}

TEST(NetTenantStress, QuotasFairnessAndCounterReconciliation) {
  CHAINCKPT_REQUIRE_STRESS();

  service::SolverService svc;  // unlimited budget: exact dispatcher
  WireServerOptions server_options;
  // Greedy tenant: ~burst admits then throttle (AD@120 prices at
  // 120^2 * 1e-6 = 0.0144 units; burst covers ~8 of them, the trickle
  // rate a handful more over the battery's lifetime).
  TenantQuota greedy_quota;
  greedy_quota.rate_units_per_sec = 0.01;
  greedy_quota.burst_units = 0.12;
  server_options.tenant_quotas[kGreedy] = greedy_quota;
  WireServer server(svc, server_options);
  server.start();

  const platform::CostModel hera{platform::hera()};
  const platform::CostModel atlas{platform::atlas()};
  const core::BatchJob greedy_job{core::Algorithm::kAD,
                                  chain::make_uniform(120, 25000.0), hera};
  const core::BatchJob polite_a_job{core::Algorithm::kADMVstar,
                                    chain::make_uniform(40, 25000.0), hera};
  const core::BatchJob polite_b_job{core::Algorithm::kADVstar,
                                    chain::make_decrease(90, 25000.0),
                                    atlas};

  // Reference solves: every streamed outcome must be bitwise right even
  // under contention (cross-tenant corruption would show here).
  core::BatchSolver reference;
  const core::OptimizationResult greedy_expected =
      reference.solve_job(greedy_job);
  const core::OptimizationResult polite_a_expected =
      reference.solve_job(polite_a_job);
  const core::OptimizationResult polite_b_expected =
      reference.solve_job(polite_b_job);

  TenantTally greedy, polite_a, polite_b;
  std::thread greedy_thread([&] {
    greedy = run_tenant(server.port(), kGreedy, greedy_job,
                        service::Priority::kNormal, 200);
  });
  std::thread polite_a_thread([&] {
    polite_a = run_tenant(server.port(), kPoliteA, polite_a_job,
                          service::Priority::kInteractive, 60);
  });
  std::thread polite_b_thread([&] {
    polite_b = run_tenant(server.port(), kPoliteB, polite_b_job,
                          service::Priority::kInteractive, 60);
  });
  greedy_thread.join();
  polite_a_thread.join();
  polite_b_thread.join();
  svc.drain();

  // (a) Quota enforcement: the greedy tenant got throttled, admitted at
  // most burst + trickle; the polite tenants never saw a throttle.
  EXPECT_GT(greedy.throttled, 0u);
  EXPECT_GT(greedy.accepted, 0u);  // the burst did admit something
  EXPECT_LT(greedy.accepted, 200u);
  EXPECT_EQ(polite_a.throttled, 0u);
  EXPECT_EQ(polite_b.throttled, 0u);
  EXPECT_EQ(polite_a.accepted, 60u);
  EXPECT_EQ(polite_b.accepted, 60u);
  EXPECT_EQ(polite_a.succeeded, 60u);
  EXPECT_EQ(polite_b.succeeded, 60u);

  // (b) Bitwise integrity of every stream under contention.
  for (const auto& status : greedy.outcomes) {
    ASSERT_EQ(status.state, service::JobState::kSucceeded);
    ASSERT_EQ(status.result.expected_makespan,
              greedy_expected.expected_makespan);
    ASSERT_TRUE(status.result.plan == greedy_expected.plan);
    ASSERT_EQ(status.tenant, kGreedy);
  }
  for (const auto& status : polite_a.outcomes) {
    ASSERT_EQ(status.result.expected_makespan,
              polite_a_expected.expected_makespan);
    ASSERT_TRUE(status.result.plan == polite_a_expected.plan);
    ASSERT_EQ(status.tenant, kPoliteA);
  }
  for (const auto& status : polite_b.outcomes) {
    ASSERT_EQ(status.result.expected_makespan,
              polite_b_expected.expected_makespan);
    ASSERT_TRUE(status.result.plan == polite_b_expected.plan);
    ASSERT_EQ(status.tenant, kPoliteB);
  }

  // (c) Zero cross-tenant priority inversions: with an unlimited
  // admission budget the dispatcher is exact, so no kNormal greedy job
  // may start inside a queued window of a kInteractive polite job.
  std::vector<service::JobStatus> all_outcomes;
  for (const auto* tally : {&greedy, &polite_a, &polite_b}) {
    all_outcomes.insert(all_outcomes.end(), tally->outcomes.begin(),
                        tally->outcomes.end());
  }
  EXPECT_EQ(service::stress::count_priority_inversions(all_outcomes), 0u);

  // (d) Exact reconciliation: per-tenant counters match the client-side
  // tallies, and the tenant sums equal the global counters.
  const service::ServiceStats stats = svc.stats();
  const auto tenant_counters = [&](std::uint64_t id) {
    const auto it = stats.tenants.find(id);
    EXPECT_NE(it, stats.tenants.end());
    return it != stats.tenants.end() ? it->second
                                     : service::TenantCounters{};
  };
  const service::TenantCounters greedy_counters = tenant_counters(kGreedy);
  const service::TenantCounters polite_a_counters =
      tenant_counters(kPoliteA);
  const service::TenantCounters polite_b_counters =
      tenant_counters(kPoliteB);
  // Throttled submits never reached the service: submitted == accepted +
  // rejected exactly (queue-full bounces never enqueue either).
  EXPECT_EQ(greedy_counters.submitted, greedy.accepted + greedy.rejected);
  EXPECT_EQ(greedy_counters.succeeded, greedy.succeeded);
  EXPECT_EQ(polite_a_counters.submitted, 60u);
  EXPECT_EQ(polite_a_counters.succeeded, 60u);
  EXPECT_EQ(polite_b_counters.submitted, 60u);
  EXPECT_EQ(polite_b_counters.succeeded, 60u);

  std::uint64_t sum_submitted = 0, sum_succeeded = 0, sum_rejected = 0;
  for (const auto& [id, counters] : stats.tenants) {
    sum_submitted += counters.submitted;
    sum_succeeded += counters.succeeded;
    sum_rejected += counters.rejected;
  }
  EXPECT_EQ(sum_submitted, stats.submitted);
  EXPECT_EQ(sum_succeeded, stats.succeeded);
  EXPECT_EQ(sum_rejected, stats.rejected);

  // Edge-side accounting agrees with the client-side verdicts.
  const auto edge = server.tenant_stats();
  const auto greedy_edge = edge.find(kGreedy);
  ASSERT_NE(greedy_edge, edge.end());
  EXPECT_EQ(greedy_edge->second.throttled, greedy.throttled);
  EXPECT_EQ(greedy_edge->second.admitted,
            greedy.accepted + greedy.rejected + greedy.backpressured);
  EXPECT_EQ(greedy_edge->second.refunded, greedy.backpressured);

  server.stop();
}

TEST(NetTenantStress, QueueFullBackpressuresEveryTenantWithRetryAfter) {
  CHAINCKPT_REQUIRE_STRESS();

  service::ServiceOptions options;
  options.workers = 1;
  options.admission.queue_capacity = 2;
  service::SolverService svc(options);
  WireServerOptions server_options;
  server_options.queue_full_retry_ms = 77;
  WireServer server(svc, server_options);
  server.start();

  const core::BatchJob slow_job{core::Algorithm::kADMVstar,
                                chain::make_uniform(130, 25000.0),
                                platform::CostModel{platform::hera()}};

  std::atomic<std::uint64_t> backpressured{0};
  std::vector<std::thread> tenants;
  for (std::uint64_t tenant = 10; tenant < 13; ++tenant) {
    tenants.emplace_back([&, tenant] {
      WireClient::Options client_options;
      client_options.port = server.port();
      client_options.tenant = tenant;
      WireClient client(client_options);
      for (std::uint64_t id = 1; id <= 10; ++id) {
        service::JobRequest request;
        request.work = slow_job;
        const SubmitOutcome outcome = client.submit(request, id);
        if (outcome.retry) {
          EXPECT_EQ(outcome.retry_info.reason,
                    service::RejectReason::kQueueFull);
          EXPECT_EQ(outcome.retry_info.retry_after_ms, 77u);
          ++backpressured;
        }
      }
      client.goodbye();
    });
  }
  for (auto& thread : tenants) thread.join();

  // 30 expensive submits into a 1-worker, 2-deep queue: most bounce.
  EXPECT_GT(backpressured.load(), 0u);
  const WireServerStats stats = server.stats();
  EXPECT_EQ(stats.backpressured, backpressured.load());

  // Refund accounting: every queue-full bounce refunded its charge.
  std::uint64_t refunded = 0;
  for (const auto& [tenant, edge] : server.tenant_stats()) {
    refunded += edge.refunded;
  }
  EXPECT_EQ(refunded, backpressured.load());

  server.stop();
}

}  // namespace
}  // namespace chainckpt::net
