#include "platform/cost_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "platform/registry.hpp"

namespace chainckpt::platform {
namespace {

TEST(CostModel, UniformModelMirrorsPlatform) {
  const Platform p = hera();
  const CostModel m(p);
  EXPECT_TRUE(m.is_uniform());
  for (std::size_t i : {1u, 7u, 50u, 1000u}) {
    EXPECT_DOUBLE_EQ(m.c_disk_after(i), p.c_disk);
    EXPECT_DOUBLE_EQ(m.c_mem_after(i), p.c_mem);
    EXPECT_DOUBLE_EQ(m.v_guaranteed_after(i), p.v_guaranteed);
    EXPECT_DOUBLE_EQ(m.v_partial_after(i), p.v_partial);
    EXPECT_DOUBLE_EQ(m.r_disk_after(i), p.r_disk);
    EXPECT_DOUBLE_EQ(m.r_mem_after(i), p.r_mem);
  }
  EXPECT_DOUBLE_EQ(m.lambda_f(), p.lambda_f);
  EXPECT_DOUBLE_EQ(m.lambda_s(), p.lambda_s);
  EXPECT_DOUBLE_EQ(m.recall(), 0.8);
  EXPECT_NEAR(m.miss(), 0.2, 1e-12);
}

TEST(CostModel, VirtualTaskRecoveryIsFree) {
  const CostModel m(hera());
  EXPECT_DOUBLE_EQ(m.r_disk_after(0), 0.0);
  EXPECT_DOUBLE_EQ(m.r_mem_after(0), 0.0);
}

TEST(CostModel, ActionPositionsAreOneBased) {
  const CostModel m(hera());
  EXPECT_THROW(m.c_disk_after(0), std::invalid_argument);
  EXPECT_THROW(m.v_partial_after(0), std::invalid_argument);
}

TEST(CostModel, PerPositionCostsAreUsed) {
  const Platform p = hera();
  const CostModel m(p, /*c_disk=*/{100.0, 200.0, 300.0},
                    /*c_mem=*/{10.0, 20.0, 30.0},
                    /*v_guaranteed=*/{1.0, 2.0, 3.0},
                    /*v_partial=*/{0.1, 0.2, 0.3});
  EXPECT_FALSE(m.is_uniform());
  EXPECT_DOUBLE_EQ(m.c_disk_after(2), 200.0);
  EXPECT_DOUBLE_EQ(m.c_mem_after(3), 30.0);
  EXPECT_DOUBLE_EQ(m.v_guaranteed_after(1), 1.0);
  EXPECT_DOUBLE_EQ(m.v_partial_after(2), 0.2);
  // Recovery mirrors the (per-position) checkpoint cost.
  EXPECT_DOUBLE_EQ(m.r_disk_after(3), 300.0);
  EXPECT_DOUBLE_EQ(m.r_mem_after(1), 10.0);
  EXPECT_DOUBLE_EQ(m.r_disk_after(0), 0.0);
  // Out-of-table positions are rejected.
  EXPECT_THROW(m.c_disk_after(4), std::invalid_argument);
}

TEST(CostModel, PerPositionVectorsMustAlign) {
  const Platform p = hera();
  EXPECT_THROW(CostModel(p, {1.0, 2.0}, {1.0}, {1.0, 2.0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(CostModel(p, {}, {}, {}, {}), std::invalid_argument);
  EXPECT_THROW(CostModel(p, {1.0}, {-1.0}, {1.0}, {1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace chainckpt::platform
