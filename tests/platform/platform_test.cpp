#include "platform/platform.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "platform/registry.hpp"

namespace chainckpt::platform {
namespace {

TEST(Registry, TableOneValuesAreExact) {
  const Platform h = hera();
  EXPECT_EQ(h.nodes, 256u);
  EXPECT_DOUBLE_EQ(h.lambda_f, 9.46e-7);
  EXPECT_DOUBLE_EQ(h.lambda_s, 3.38e-6);
  EXPECT_DOUBLE_EQ(h.c_disk, 300.0);
  EXPECT_DOUBLE_EQ(h.c_mem, 15.4);

  const Platform a = atlas();
  EXPECT_EQ(a.nodes, 512u);
  EXPECT_DOUBLE_EQ(a.lambda_f, 5.19e-7);
  EXPECT_DOUBLE_EQ(a.lambda_s, 7.78e-6);
  EXPECT_DOUBLE_EQ(a.c_disk, 439.0);
  EXPECT_DOUBLE_EQ(a.c_mem, 9.1);

  const Platform c = coastal();
  EXPECT_EQ(c.nodes, 1024u);
  EXPECT_DOUBLE_EQ(c.lambda_f, 4.02e-7);
  EXPECT_DOUBLE_EQ(c.lambda_s, 2.01e-6);
  EXPECT_DOUBLE_EQ(c.c_disk, 1051.0);
  EXPECT_DOUBLE_EQ(c.c_mem, 4.5);

  const Platform s = coastal_ssd();
  EXPECT_EQ(s.nodes, 1024u);
  EXPECT_DOUBLE_EQ(s.lambda_f, 4.02e-7);
  EXPECT_DOUBLE_EQ(s.lambda_s, 2.01e-6);
  EXPECT_DOUBLE_EQ(s.c_disk, 2500.0);
  EXPECT_DOUBLE_EQ(s.c_mem, 180.0);
}

TEST(Registry, PaperConventionsApplied) {
  for (const Platform& p : table1_platforms()) {
    EXPECT_DOUBLE_EQ(p.r_disk, p.c_disk) << p.name;
    EXPECT_DOUBLE_EQ(p.r_mem, p.c_mem) << p.name;
    EXPECT_DOUBLE_EQ(p.v_guaranteed, p.c_mem) << p.name;
    EXPECT_DOUBLE_EQ(p.v_partial, p.v_guaranteed / 100.0) << p.name;
    EXPECT_DOUBLE_EQ(p.recall, 0.8) << p.name;
    EXPECT_NEAR(p.miss_probability(), 0.2, 1e-12) << p.name;
  }
}

TEST(Registry, MtbfMatchesPaperQuotes) {
  // "Hera ... platform MTBF of 12.2 days for fail-stop errors and 3.4 days
  // for silent errors"; "Coastal ... 28.8 days ... 5.8 days".
  EXPECT_NEAR(hera().mtbf_fail_stop() / kSecondsPerDay, 12.2, 0.05);
  EXPECT_NEAR(hera().mtbf_silent() / kSecondsPerDay, 3.4, 0.05);
  EXPECT_NEAR(coastal().mtbf_fail_stop() / kSecondsPerDay, 28.8, 0.05);
  EXPECT_NEAR(coastal().mtbf_silent() / kSecondsPerDay, 5.8, 0.05);
}

TEST(Registry, LookupByName) {
  EXPECT_EQ(by_name("Hera").name, "Hera");
  EXPECT_EQ(by_name("atlas").name, "Atlas");
  EXPECT_EQ(by_name("Coastal SSD").name, "CoastalSSD");
  EXPECT_EQ(by_name("coastal_ssd").name, "CoastalSSD");
  EXPECT_THROW(by_name("Summit"), std::invalid_argument);
}

TEST(Registry, TableHasFourPlatformsInOrder) {
  const auto all = table1_platforms();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "Hera");
  EXPECT_EQ(all[1].name, "Atlas");
  EXPECT_EQ(all[2].name, "Coastal");
  EXPECT_EQ(all[3].name, "CoastalSSD");
}

TEST(Platform, ValidateRejectsBadValues) {
  Platform p = hera();
  p.recall = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = hera();
  p.lambda_f = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = hera();
  p.c_disk = -5.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = hera();
  p.name.clear();
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Platform, ZeroRatesHaveInfiniteMtbf) {
  Platform p = hera();
  p.lambda_f = 0.0;
  p.lambda_s = 0.0;
  EXPECT_TRUE(std::isinf(p.mtbf_fail_stop()));
  EXPECT_TRUE(std::isinf(p.mtbf_silent()));
}

TEST(Platform, DescribeMentionsKeyNumbers) {
  const std::string d = hera().describe();
  EXPECT_NE(d.find("Hera"), std::string::npos);
  EXPECT_NE(d.find("256"), std::string::npos);
  EXPECT_NE(d.find("300"), std::string::npos);
}

}  // namespace
}  // namespace chainckpt::platform
