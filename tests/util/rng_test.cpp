#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

namespace chainckpt::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 1234;
  std::uint64_t s2 = 1234;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, StreamsAreOrderIndependent) {
  // stream(seed, k) must be a pure function of (seed, k).
  Xoshiro256 s3_first = Xoshiro256::stream(99, 3);
  Xoshiro256 s1 = Xoshiro256::stream(99, 1);
  (void)s1();
  Xoshiro256 s3_again = Xoshiro256::stream(99, 3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(s3_first(), s3_again());
}

TEST(Xoshiro256, DistinctStreamsAreDecorrelated) {
  std::set<std::uint64_t> firsts;
  for (std::uint64_t k = 0; k < 1000; ++k)
    firsts.insert(Xoshiro256::stream(5, k)());
  EXPECT_EQ(firsts.size(), 1000u);
}

TEST(Xoshiro256, Uniform01InRange) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01OpenLowNeverZero) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01_open_low();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Xoshiro256, UniformMomentsAreSane) {
  Xoshiro256 rng(13);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    sum += u;
    sumsq += u * u;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);          // sigma/sqrt(n) ~ 6.5e-4
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(Xoshiro256, ExponentialZeroRateIsInfinite) {
  Xoshiro256 rng(14);
  EXPECT_TRUE(std::isinf(rng.exponential(0.0)));
  EXPECT_TRUE(std::isinf(rng.exponential(-1.0)));
}

TEST(Xoshiro256, ExponentialMeanMatchesRate) {
  Xoshiro256 rng(15);
  const double rate = 0.25;
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.05);  // sigma/sqrt(n) ~ 0.009
}

TEST(Xoshiro256, BernoulliEdgesAreExact) {
  Xoshiro256 rng(16);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Xoshiro256, BernoulliFrequencyMatchesP) {
  Xoshiro256 rng(17);
  const double p = 0.8;  // the paper's partial-verification recall
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(p)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.006);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(18);
  // Usable with <random> distributions.
  std::vector<std::uint64_t> draws;
  for (int i = 0; i < 3; ++i) draws.push_back(rng());
  EXPECT_EQ(draws.size(), 3u);
}

}  // namespace
}  // namespace chainckpt::util
