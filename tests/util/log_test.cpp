#include "util/log.hpp"

#include <gtest/gtest.h>

namespace chainckpt::util {
namespace {

/// RAII guard restoring the global level after each test.
struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

TEST(Log, LevelIsGlobalAndSettable) {
  LevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, StreamingBuildsMessages) {
  LevelGuard guard;
  set_log_level(LogLevel::kOff);  // discard output; exercise the path
  log_debug() << "debug " << 42;
  log_info() << "info " << 3.14;
  log_warn() << "warn";
  log_error() << "error " << std::string("text");
  // Nothing to assert beyond "does not crash / leak": the sink is
  // stderr.  Re-enable a level and emit once more for coverage.
  set_log_level(LogLevel::kError);
  log_debug() << "should be filtered";
}

TEST(Log, MessagesBelowLevelAreDiscarded) {
  LevelGuard guard;
  set_log_level(LogLevel::kOff);
  // log_message must be safe to call directly at any level.
  log_message(LogLevel::kDebug, "dropped");
  log_message(LogLevel::kError, "dropped too (level is Off)");
  set_log_level(LogLevel::kWarn);
  log_message(LogLevel::kDebug, "still dropped");
}

}  // namespace
}  // namespace chainckpt::util
