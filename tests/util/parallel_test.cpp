#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace chainckpt::util {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(0, n, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  parallel_for(7, 3, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, NonZeroBegin) {
  std::atomic<long> sum{0};
  parallel_for(10, 20, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [&](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
  const std::size_t n = 500;
  auto compute = [&] {
    std::vector<double> out(n);
    parallel_for(0, n, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    return out;
  };
  set_parallelism(1);
  const auto serial = compute();
  set_parallelism(4);
  const auto parallel = compute();
  set_parallelism(0);  // restore default
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, TypeErasedOverloadStillWorks) {
  // ABI-stable entry point: an actual std::function must resolve to the
  // non-template overload and behave identically to the template.
  std::vector<std::atomic<int>> visits(64);
  const std::function<void(std::size_t)> body = [&](std::size_t i) {
    visits[i].fetch_add(1);
  };
  parallel_for(0, visits.size(), body);
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1);
  }
}

TEST(ParallelFor, MoveOnlyCallableRequiresZeroErasureTemplate) {
  // A move-only closure cannot convert to std::function, so this call
  // compiles ONLY through the zero-erasure template overload -- deleting
  // that overload breaks this test at compile time.
  auto counter = std::make_unique<std::atomic<int>>(0);
  std::atomic<int>* const observed = counter.get();
  const auto move_only = [c = std::move(counter)](std::size_t) {
    c->fetch_add(1);
  };
  // (std::function's converting constructor is not SFINAE-constrained on
  // copyability in C++17, so this can't be a static_assert: the guard is
  // that erasing move_only is a hard instantiation error, which this call
  // would trigger if only the type-erased overload existed.)
  parallel_for(0, 4, move_only);
  EXPECT_EQ(observed->load(), 4);
}

TEST(Parallelism, ForcedCountIsReported) {
  set_parallelism(3);
  EXPECT_EQ(hardware_parallelism(), 3);
  set_parallelism(0);
  EXPECT_GE(hardware_parallelism(), 1);
}

}  // namespace
}  // namespace chainckpt::util
