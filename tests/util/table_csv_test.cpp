#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace chainckpt::util {
namespace {

TEST(TextTable, RejectsEmptyHeaders) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"n", "makespan"});
  t.add_row({"1", "1.1144"});
  t.add_row({"50", "1.0402"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| n "), std::string::npos);
  EXPECT_NE(out.find("makespan"), std::string::npos);
  EXPECT_NE(out.find("1.0402"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesRowsRoundTrip) {
  const std::string path = ::testing::TempDir() + "/chainckpt_test.csv";
  {
    CsvWriter csv(path, {"series", "x", "y"});
    csv.add_row({"ADV*", "1", "1.114"});
    csv.add_row({"with,comma", "2", "3"});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_EQ(content,
            "series,x,y\nADV*,1,1.114\n\"with,comma\",2,3\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWrongWidth) {
  const std::string path = ::testing::TempDir() + "/chainckpt_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row({"x"}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace chainckpt::util
