#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace chainckpt::util {
namespace {

CliParser make_parser() {
  CliParser p;
  p.add_option("platform", "Hera", "platform name");
  p.add_option("tasks", "50", "number of tasks");
  p.add_option("weight", "25000.0", "total weight");
  p.add_flag("verbose", "chatty output");
  return p;
}

void parse(CliParser& p, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  p.parse(static_cast<int>(args.size()), args.data());
}

TEST(CliParser, DefaultsApply) {
  CliParser p = make_parser();
  parse(p, {});
  EXPECT_EQ(p.get("platform"), "Hera");
  EXPECT_EQ(p.get_int("tasks"), 50);
  EXPECT_DOUBLE_EQ(p.get_double("weight"), 25000.0);
  EXPECT_FALSE(p.get_flag("verbose"));
}

TEST(CliParser, SpaceSeparatedValues) {
  CliParser p = make_parser();
  parse(p, {"--platform", "Atlas", "--tasks", "10"});
  EXPECT_EQ(p.get("platform"), "Atlas");
  EXPECT_EQ(p.get_int("tasks"), 10);
}

TEST(CliParser, EqualsSyntax) {
  CliParser p = make_parser();
  parse(p, {"--platform=CoastalSSD", "--weight=1e4"});
  EXPECT_EQ(p.get("platform"), "CoastalSSD");
  EXPECT_DOUBLE_EQ(p.get_double("weight"), 1e4);
}

TEST(CliParser, FlagsAndPositionals) {
  CliParser p = make_parser();
  parse(p, {"--verbose", "pos1", "pos2"});
  EXPECT_TRUE(p.get_flag("verbose"));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "pos1");
  EXPECT_EQ(p.positional()[1], "pos2");
}

TEST(CliParser, UnknownFlagThrows) {
  CliParser p = make_parser();
  EXPECT_THROW(parse(p, {"--nope"}), std::invalid_argument);
}

TEST(CliParser, MissingValueThrows) {
  CliParser p = make_parser();
  EXPECT_THROW(parse(p, {"--tasks"}), std::invalid_argument);
}

TEST(CliParser, FlagWithValueThrows) {
  CliParser p = make_parser();
  EXPECT_THROW(parse(p, {"--verbose=yes"}), std::invalid_argument);
}

TEST(CliParser, BadNumbersThrow) {
  CliParser p = make_parser();
  parse(p, {"--tasks", "12x"});
  EXPECT_THROW(p.get_int("tasks"), std::invalid_argument);
  CliParser q = make_parser();
  parse(q, {"--weight", "abc"});
  EXPECT_THROW(q.get_double("weight"), std::invalid_argument);
}

TEST(CliParser, HelpRequested) {
  CliParser p = make_parser();
  parse(p, {"--help"});
  EXPECT_TRUE(p.help_requested());
  const std::string help = p.help_text("test program");
  EXPECT_NE(help.find("--platform"), std::string::npos);
  EXPECT_NE(help.find("chatty output"), std::string::npos);
}

TEST(CliParser, UnregisteredLookupThrows) {
  CliParser p = make_parser();
  parse(p, {});
  EXPECT_THROW(p.get("nothere"), std::invalid_argument);
}

}  // namespace
}  // namespace chainckpt::util
