#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace chainckpt::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  const std::vector<double> xs{1.5, 2.5, -3.0, 7.25, 0.0, 11.0};
  RunningStats s;
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  const double var = ss / static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 11.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Xoshiro256 rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 100.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // empty lhs: adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, CiHalfwidthScalesWithZ) {
  RunningStats s;
  for (int i = 0; i < 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.ci_halfwidth(1.0) * 1.96, s.ci_halfwidth(1.96), 1e-12);
  EXPECT_GT(s.ci_halfwidth(), 0.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamped into bin 0
  h.add(100.0);  // clamped into bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_THROW(h.bin_count(5), std::invalid_argument);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.75);
  h.add(0.8);
  const std::string text = h.render(10);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('2'), std::string::npos);
}

}  // namespace
}  // namespace chainckpt::util
