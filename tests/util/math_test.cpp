#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace chainckpt::util {
namespace {

TEST(ExpM1OverX, EqualsOneAtZero) { EXPECT_DOUBLE_EQ(expm1_over_x(0.0), 1.0); }

TEST(ExpM1OverX, MatchesDirectFormulaAtModerateX) {
  for (double x : {1e-3, 1e-2, 0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(expm1_over_x(x), std::expm1(x) / x, 1e-12 * expm1_over_x(x))
        << "x=" << x;
  }
}

TEST(ExpM1OverX, SeriesRegimeIsAccurate) {
  // Compare against the analytically exact value 1 + x/2 + x^2/6 + ... for
  // tiny x, where the naive quotient would lose precision.
  for (double x : {1e-12, 1e-9, 1e-7, 1e-6}) {
    const double exact = 1.0 + x / 2.0 + x * x / 6.0;
    EXPECT_NEAR(expm1_over_x(x), exact, 1e-15);
  }
}

TEST(ExpM1OverX, NegativeArguments) {
  EXPECT_NEAR(expm1_over_x(-1.0), std::expm1(-1.0) / -1.0, 1e-14);
  EXPECT_NEAR(expm1_over_x(-1e-10), 1.0 - 0.5e-10, 1e-15);
}

TEST(OneMinusExpNeg, BasicValues) {
  EXPECT_DOUBLE_EQ(one_minus_exp_neg(0.0), 0.0);
  EXPECT_NEAR(one_minus_exp_neg(1.0), 1.0 - std::exp(-1.0), 1e-15);
  // Tiny x: 1 - e^{-x} ~ x; the naive form would return exactly 0 or lose
  // most digits.
  EXPECT_NEAR(one_minus_exp_neg(1e-12), 1e-12, 1e-24);
}

TEST(ErrorProbability, MatchesPoissonForm) {
  EXPECT_DOUBLE_EQ(error_probability(0.0, 100.0), 0.0);
  EXPECT_NEAR(error_probability(1e-6, 25000.0), 1.0 - std::exp(-0.025),
              1e-12);
  EXPECT_NEAR(error_probability(1.0, 1000.0), 1.0, 1e-12);
}

TEST(ErrorProbability, MonotoneInBothArguments) {
  double prev = -1.0;
  for (double w : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    const double p = error_probability(1e-5, w);
    EXPECT_GT(p, prev);
    prev = p;
  }
  prev = -1.0;
  for (double lambda : {1e-9, 1e-7, 1e-5, 1e-3}) {
    const double p = error_probability(lambda, 500.0);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(ExpectedTimeLost, ZeroDuration) {
  EXPECT_DOUBLE_EQ(expected_time_lost(1e-5, 0.0), 0.0);
}

TEST(ExpectedTimeLost, LambdaToZeroLimitIsHalfDuration) {
  // T_lost -> W/2 as lambda -> 0 (uniform conditional strike time).
  EXPECT_NEAR(expected_time_lost(0.0, 1000.0), 500.0, 1e-9);
  EXPECT_NEAR(expected_time_lost(1e-12, 1000.0), 500.0, 1e-6);
}

TEST(ExpectedTimeLost, MatchesClosedFormAtModerateRates) {
  // Eq. (3): 1/lambda - W / (e^{lambda W} - 1).
  for (double lambda : {1e-4, 1e-3, 1e-2}) {
    for (double w : {100.0, 1000.0, 25000.0}) {
      const double direct = 1.0 / lambda - w / std::expm1(lambda * w);
      EXPECT_NEAR(expected_time_lost(lambda, w), direct,
                  1e-9 * std::abs(direct))
          << "lambda=" << lambda << " w=" << w;
    }
  }
}

TEST(ExpectedTimeLost, BoundedByDurationAndMonotone) {
  for (double lambda : {1e-7, 1e-5, 1e-3, 1e-1}) {
    double prev = 0.0;
    for (double w : {1.0, 10.0, 100.0, 1000.0}) {
      const double t = expected_time_lost(lambda, w);
      EXPECT_GT(t, 0.0);
      EXPECT_LT(t, w);
      EXPECT_GT(t, prev);  // increasing in duration
      prev = t;
    }
  }
}

TEST(ExpectedTimeLost, ApproachesMtbfForHugeWindows) {
  // For lambda W >> 1 the conditional loss approaches 1/lambda.
  EXPECT_NEAR(expected_time_lost(1e-2, 1e6), 100.0, 1e-6);
}

TEST(ApproxEqual, RelativeAndAbsoluteBehaviour) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12, 1e-9));
  EXPECT_FALSE(approx_equal(1.0, 1.1, 1e-3));
  EXPECT_TRUE(approx_equal(1e9, 1e9 * (1 + 1e-10), 1e-9));
  EXPECT_TRUE(approx_equal(0.0, 1e-12, 1e-9));  // max(1,...) scale
}

/// Property sweep: expected_time_lost must equal the integral-derived
/// closed form over a wide (lambda, W) grid spanning the series/direct
/// branch boundary.
class TimeLostProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TimeLostProperty, SeriesAndDirectBranchesAgree) {
  const auto [lambda, w] = GetParam();
  const double x = lambda * w;
  // Reference via long double for extra headroom.
  const long double xl = static_cast<long double>(x);
  const long double direct =
      xl < 1e-18L
          ? static_cast<long double>(w) / 2.0L
          : static_cast<long double>(w) * (std::expm1(xl) - xl) /
                (xl * std::expm1(xl));
  EXPECT_NEAR(expected_time_lost(lambda, w), static_cast<double>(direct),
              1e-7 * static_cast<double>(direct) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TimeLostProperty,
    ::testing::Combine(::testing::Values(1e-9, 1e-7, 4e-7, 9.46e-7, 1e-5,
                                         1e-3, 1e-1),
                       ::testing::Values(0.5, 5.0, 50.0, 500.0, 5000.0,
                                         25000.0)));

}  // namespace
}  // namespace chainckpt::util
