// Property battery for core::sensitivity and analysis::first_order.
//
// Two layers:
//  * finite-difference cross-checks: every closed-form first-order
//    derivative (Young/Daly periods + overhead) against central
//    differences at THREE step sizes, on the Table I platforms and on
//    seeded random platforms; the envelope elasticities of
//    parameter_sensitivity are checked for step-size stability.
//  * the soundness lemma behind ValidityCertificate's epsilon-hits:
//    for any FIXED plan the evaluator objective is affine in the cost
//    vector with non-negative slope and monotone non-decreasing in the
//    error rates and the miss probability -- under the exponential AND
//    the Weibull planning law.  These are the exact properties the
//    gamma-scaled lower bound of check_certificate rests on.
#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/evaluator.hpp"
#include "analysis/first_order.hpp"
#include "chain/patterns.hpp"
#include "core/dp_context.hpp"
#include "core/optimizer.hpp"
#include "platform/registry.hpp"
#include "util/rng.hpp"

namespace chainckpt::core {
namespace {

const double kSteps[] = {1e-3, 1e-4, 1e-5};

std::vector<platform::Platform> table1_platforms() {
  return {platform::hera(), platform::atlas(), platform::coastal(),
          platform::coastal_ssd()};
}

platform::Platform random_platform(std::uint64_t seed) {
  util::Xoshiro256 rng = util::Xoshiro256::stream(seed, 0);
  platform::Platform p = platform::hera();
  const auto jitter = [&rng] { return std::exp(2.0 * rng.uniform01() - 1.0); };
  p.lambda_f *= 25.0 * jitter();
  p.lambda_s *= 25.0 * jitter();
  p.c_disk *= jitter();
  p.c_mem *= jitter();
  p.r_disk *= jitter();
  p.r_mem *= jitter();
  p.v_guaranteed *= jitter();
  p.v_partial *= jitter();
  p.recall = 0.5 + 0.5 * rng.uniform01();
  return p;
}

/// Central difference of f around x at relative step h; returns the best
/// (smallest |fd - analytic| relative error) across the three steps, so a
/// single step hitting cancellation noise cannot fail the check.
template <typename F>
double best_fd_error(const F& f, double x, double analytic) {
  double best = std::numeric_limits<double>::infinity();
  for (const double h : kSteps) {
    const double dx = x * h;
    const double fd = (f(x + dx) - f(x - dx)) / (2.0 * dx);
    const double scale = std::max(std::abs(analytic), 1e-300);
    best = std::min(best, std::abs(fd - analytic) / scale);
  }
  return best;
}

void check_first_order_derivatives(const platform::Platform& p) {
  using analysis::first_order_prediction;
  const analysis::FirstOrderPrediction fo = first_order_prediction(p);

  // period_verif = sqrt(2 V*/ls): d/dV* = P/(2 V*), d/dls = -P/(2 ls).
  EXPECT_LT(best_fd_error(
                [&](double v) {
                  platform::Platform q = p;
                  q.v_guaranteed = v;
                  return first_order_prediction(q).period_verif;
                },
                p.v_guaranteed, fo.period_verif / (2.0 * p.v_guaranteed)),
            1e-6)
      << p.name << " dW_V/dV*";
  EXPECT_LT(best_fd_error(
                [&](double l) {
                  platform::Platform q = p;
                  q.lambda_s = l;
                  return first_order_prediction(q).period_verif;
                },
                p.lambda_s, -fo.period_verif / (2.0 * p.lambda_s)),
            1e-6)
      << p.name << " dW_V/dlambda_s";

  // period_memory = sqrt(2 (C_M + V*)/ls).
  const double mem_base = p.c_mem + p.v_guaranteed;
  EXPECT_LT(best_fd_error(
                [&](double c) {
                  platform::Platform q = p;
                  q.c_mem = c;
                  return first_order_prediction(q).period_memory;
                },
                p.c_mem, fo.period_memory / (2.0 * mem_base)),
            1e-6)
      << p.name << " dW_M/dC_M";
  EXPECT_LT(best_fd_error(
                [&](double l) {
                  platform::Platform q = p;
                  q.lambda_s = l;
                  return first_order_prediction(q).period_memory;
                },
                p.lambda_s, -fo.period_memory / (2.0 * p.lambda_s)),
            1e-6)
      << p.name << " dW_M/dlambda_s";

  // period_disk = sqrt(2 C_D/lf).
  EXPECT_LT(best_fd_error(
                [&](double c) {
                  platform::Platform q = p;
                  q.c_disk = c;
                  return first_order_prediction(q).period_disk;
                },
                p.c_disk, fo.period_disk / (2.0 * p.c_disk)),
            1e-6)
      << p.name << " dW_D/dC_D";
  EXPECT_LT(best_fd_error(
                [&](double l) {
                  platform::Platform q = p;
                  q.lambda_f = l;
                  return first_order_prediction(q).period_disk;
                },
                p.lambda_f, -fo.period_disk / (2.0 * p.lambda_f)),
            1e-6)
      << p.name << " dW_D/dlambda_f";

  // overhead = sqrt(2 ls (C_M + V*)) + sqrt(2 lf C_D).
  EXPECT_LT(best_fd_error(
                [&](double l) {
                  platform::Platform q = p;
                  q.lambda_s = l;
                  return first_order_prediction(q).overhead;
                },
                p.lambda_s,
                0.5 * std::sqrt(2.0 * mem_base / p.lambda_s)),
            1e-6)
      << p.name << " dH/dlambda_s";
  EXPECT_LT(best_fd_error(
                [&](double l) {
                  platform::Platform q = p;
                  q.lambda_f = l;
                  return first_order_prediction(q).overhead;
                },
                p.lambda_f, 0.5 * std::sqrt(2.0 * p.c_disk / p.lambda_f)),
            1e-6)
      << p.name << " dH/dlambda_f";
  EXPECT_LT(best_fd_error(
                [&](double c) {
                  platform::Platform q = p;
                  q.c_disk = c;
                  return first_order_prediction(q).overhead;
                },
                p.c_disk, 0.5 * std::sqrt(2.0 * p.lambda_f / p.c_disk)),
            1e-6)
      << p.name << " dH/dC_D";
  EXPECT_LT(best_fd_error(
                [&](double c) {
                  platform::Platform q = p;
                  q.c_mem = c;
                  return first_order_prediction(q).overhead;
                },
                p.c_mem, 0.5 * std::sqrt(2.0 * p.lambda_s / mem_base)),
            1e-6)
      << p.name << " dH/dC_M";
}

TEST(FirstOrderDerivatives, FiniteDifferencesMatchOnTableI) {
  for (const platform::Platform& p : table1_platforms()) {
    check_first_order_derivatives(p);
  }
}

TEST(FirstOrderDerivatives, FiniteDifferencesMatchOnSeededRandomPlatforms) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    check_first_order_derivatives(random_platform(seed));
  }
}

TEST(FirstOrderDerivatives, StabilityRadiusIsMonotoneAndClamped) {
  EXPECT_DOUBLE_EQ(analysis::stability_radius(0), 0.5);
  EXPECT_DOUBLE_EQ(analysis::stability_radius(1), 0.5);
  double prev = analysis::stability_radius(1);
  for (std::size_t count = 2; count <= 200; ++count) {
    const double r = analysis::stability_radius(count);
    EXPECT_LE(r, prev);
    EXPECT_GE(r, 0.02);
    EXPECT_LE(r, 0.5);
    prev = r;
  }
  EXPECT_DOUBLE_EQ(analysis::stability_radius(1000), 0.02);
}

TEST(EnvelopeElasticities, AreStableAcrossThreeStepSizes) {
  // parameter_sensitivity is itself a central difference over the
  // RE-OPTIMIZED objective; the envelope theorem says the derivative
  // exists, so shrinking the step must converge, not wander.
  const auto chain = chain::make_uniform(10, 25000.0);
  SensitivityOptions options;
  options.algorithm = Algorithm::kADMVstar;
  std::vector<std::vector<SensitivityRow>> runs;
  for (const double step : {0.15, 0.10, 0.05}) {
    options.relative_step = step;
    runs.push_back(
        parameter_sensitivity(chain, platform::hera(), options));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_NEAR(runs[r][i].elasticity, runs[0][i].elasticity,
                  0.02 + 0.25 * std::abs(runs[0][i].elasticity))
          << runs[0][i].parameter;
    }
  }
}

// ---------------------------------------------------------------- lemma

struct FixedPlanCase {
  chain::TaskChain chain;
  platform::Platform platform;
  plan::ResiliencePlan plan;
  platform::PlanningLaw law;
};

FixedPlanCase make_case(std::uint64_t seed, bool weibull) {
  FixedPlanCase out{chain::make_uniform(10, 25000.0),
                    random_platform(seed),
                    plan::ResiliencePlan(),
                    {}};
  if (weibull) {
    out.law = {platform::FailureLaw::kWeibull, 0.7};
  }
  platform::CostModel costs(out.platform);
  costs.set_planning_law(out.law);
  DpContext ctx(out.chain, costs);
  out.plan = optimize(Algorithm::kADMVstar, ctx).plan;
  return out;
}

platform::CostModel scaled_costs(const FixedPlanCase& c, double cost_scale,
                                 double rate_scale, double recall = -1.0) {
  platform::Platform p = c.platform;
  p.c_disk *= cost_scale;
  p.c_mem *= cost_scale;
  p.r_disk *= cost_scale;
  p.r_mem *= cost_scale;
  p.v_guaranteed *= cost_scale;
  p.v_partial *= cost_scale;
  p.lambda_f *= rate_scale;
  p.lambda_s *= rate_scale;
  if (recall >= 0.0) p.recall = recall;
  platform::CostModel costs(p);
  costs.set_planning_law(c.law);
  return costs;
}

double score(const FixedPlanCase& c, const platform::CostModel& costs) {
  return analysis::PlanEvaluator(c.chain, costs)
      .expected_makespan(c.plan);
}

TEST(CertificateLemma, ObjectiveIsAffineInTheCostVector) {
  // E(P, s * costs) must be exactly linear in s -- the basis of the
  // gamma-scaled lower bound.  Midpoint test at machine precision.
  for (const bool weibull : {false, true}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const FixedPlanCase c = make_case(seed, weibull);
      const double lo = score(c, scaled_costs(c, 0.5, 1.0));
      const double mid = score(c, scaled_costs(c, 1.0, 1.0));
      const double hi = score(c, scaled_costs(c, 1.5, 1.0));
      EXPECT_NEAR(mid, 0.5 * (lo + hi), 1e-9 * mid)
          << "seed " << seed << (weibull ? " weibull" : " exp");
      // Non-negative slope and constant term >= total weight.
      EXPECT_LE(lo, hi);
      EXPECT_GE(2.0 * lo - hi, c.chain.total_weight() * (1.0 - 1e-12));
    }
  }
}

TEST(CertificateLemma, ObjectiveIsMonotoneInRatesAndMiss) {
  for (const bool weibull : {false, true}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const FixedPlanCase c = make_case(seed, weibull);
      const double base = score(c, scaled_costs(c, 1.0, 1.0));
      EXPECT_GE(score(c, scaled_costs(c, 1.0, 1.3)), base * (1.0 - 1e-12))
          << "rates up, seed " << seed;
      // Lower recall = higher miss probability g.
      const double worse_recall =
          score(c, scaled_costs(c, 1.0, 1.0, c.platform.recall * 0.5));
      EXPECT_GE(worse_recall, base * (1.0 - 1e-12))
          << "recall down, seed " << seed;
    }
  }
}

TEST(CertificateLemma, CheckCertificateHonorsTheGammaBound) {
  // End-to-end soundness: whenever check_certificate reports a bound, a
  // FRESH optimum under the drifted model must sit at or above it.
  for (const bool weibull : {false, true}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const FixedPlanCase c = make_case(seed, weibull);
      platform::CostModel base_costs(c.platform);
      base_costs.set_planning_law(c.law);
      DpContext base_ctx(c.chain, base_costs);
      const OptimizationResult base_opt =
          optimize(Algorithm::kADMVstar, base_ctx);
      const ValidityCertificate cert = make_validity_certificate(
          base_opt.plan, c.platform, base_opt.expected_makespan,
          c.chain.total_weight());

      util::Xoshiro256 rng = util::Xoshiro256::stream(seed, 99);
      for (int trial = 0; trial < 6; ++trial) {
        const double cost_scale = 0.9 + 0.3 * rng.uniform01();
        const double rate_scale = 1.0 + 0.2 * rng.uniform01();  // never down
        const platform::CostModel request =
            scaled_costs(c, cost_scale, rate_scale);
        const DriftCheck check =
            check_certificate(cert, base_costs, request, c.chain.size());
        EXPECT_GE(check.lower_bound,
                  c.chain.total_weight() * (1.0 - 1e-12));
        DpContext ctx(c.chain, request);
        const OptimizationResult fresh =
            optimize(Algorithm::kADMVstar, ctx);
        EXPECT_GE(fresh.expected_makespan,
                  check.lower_bound * (1.0 - 1e-9))
            << "seed " << seed << " trial " << trial;
      }
    }
  }
}

TEST(CertificateLemma, DecreasedRatesFallBackToTheWeightFloor) {
  const FixedPlanCase c = make_case(3, /*weibull=*/false);
  platform::CostModel base_costs(c.platform);
  const ValidityCertificate cert = make_validity_certificate(
      c.plan, c.platform, score(c, base_costs), c.chain.total_weight());
  // Rates go DOWN: the multiplicative bound is unsound there, so the
  // check must not scale -- only the unconditional weight floor remains.
  const platform::CostModel request = scaled_costs(c, 1.0, 0.8);
  const DriftCheck check =
      check_certificate(cert, base_costs, request, c.chain.size());
  EXPECT_FALSE(check.scaled_bound);
  EXPECT_DOUBLE_EQ(check.lower_bound, c.chain.total_weight());
}

TEST(CertificateLemma, IdenticalModelsAreAnExactMatch) {
  const FixedPlanCase c = make_case(5, /*weibull=*/true);
  platform::CostModel costs(c.platform);
  costs.set_planning_law(c.law);
  const ValidityCertificate cert = make_validity_certificate(
      c.plan, c.platform, score(c, costs), c.chain.total_weight());
  const DriftCheck check =
      check_certificate(cert, costs, costs, c.chain.size());
  EXPECT_EQ(check.outcome, DriftOutcome::kExactMatch);
  EXPECT_DOUBLE_EQ(check.max_drift, 0.0);
}

TEST(CertificateLemma, LawFamilyChangeIsBeyondRadius) {
  const FixedPlanCase c = make_case(2, /*weibull=*/false);
  platform::CostModel base_costs(c.platform);
  const ValidityCertificate cert = make_validity_certificate(
      c.plan, c.platform, score(c, base_costs), c.chain.total_weight());
  platform::CostModel request(c.platform);
  request.set_planning_law({platform::FailureLaw::kWeibull, 0.7});
  const DriftCheck check =
      check_certificate(cert, base_costs, request, c.chain.size());
  EXPECT_EQ(check.outcome, DriftOutcome::kBeyondRadius);
}

}  // namespace
}  // namespace chainckpt::core
