#include "core/batch_solver.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "chain/patterns.hpp"
#include "platform/cost_model.hpp"
#include "platform/registry.hpp"
#include "util/arena.hpp"
#include "util/parallel.hpp"

namespace chainckpt::core {
namespace {

/// A heterogeneous workload: mixed algorithms, lengths, weight patterns,
/// and platforms, with deliberate (chain, platform) repeats so the table
/// cache has something to share.  The single-level jobs carry the large n.
std::vector<BatchJob> mixed_batch() {
  std::vector<BatchJob> jobs;
  const platform::CostModel hera{platform::hera()};
  const platform::CostModel atlas{platform::atlas()};
  jobs.push_back({Algorithm::kADVstar, chain::make_uniform(400, 25000.0), hera});
  jobs.push_back({Algorithm::kAD, chain::make_uniform(400, 25000.0), hera});
  jobs.push_back({Algorithm::kADMVstar, chain::make_decrease(60, 25000.0), hera});
  jobs.push_back({Algorithm::kADMV, chain::make_highlow(30, 25000.0), atlas});
  jobs.push_back({Algorithm::kADVstar, chain::make_highlow(30, 25000.0), atlas});
  jobs.push_back({Algorithm::kADMVstar, chain::make_uniform(45, 50000.0), atlas});
  jobs.push_back({Algorithm::kPeriodic, chain::make_uniform(25, 25000.0), hera});
  jobs.push_back({Algorithm::kDaly, chain::make_uniform(25, 25000.0), hera});
  return jobs;
}

TEST(BatchSolver, MatchesPerChainOptimizeBitIdentically) {
  const auto jobs = mixed_batch();
  BatchSolver solver;
  const auto batch = solver.solve(jobs);
  ASSERT_EQ(batch.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto standalone =
        optimize(jobs[i].algorithm, jobs[i].chain, jobs[i].costs);
    EXPECT_EQ(batch[i].expected_makespan, standalone.expected_makespan)
        << "job " << i << " (" << to_string(jobs[i].algorithm) << ")";
    EXPECT_EQ(batch[i].plan, standalone.plan)
        << "job " << i << " (" << to_string(jobs[i].algorithm) << ")";
  }
}

TEST(BatchSolver, SerialAndParallelBatchesAgreeBitwise) {
  const auto jobs = mixed_batch();
  BatchSolver parallel_solver{{.parallel = true}};
  BatchSolver serial_solver{{.parallel = false}};
  const auto par = parallel_solver.solve(jobs);
  const auto ser = serial_solver.solve(jobs);
  ASSERT_EQ(par.size(), ser.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(par[i].expected_makespan, ser[i].expected_makespan) << i;
    EXPECT_EQ(par[i].plan, ser[i].plan) << i;
  }
}

TEST(BatchSolver, SharesTablesAcrossJobsAndBatches) {
  const auto jobs = mixed_batch();
  BatchSolver solver;
  solver.solve(jobs);
  // 6 DP jobs over 4 distinct (chain, platform) keys.
  EXPECT_EQ(solver.stats().tables_built, 4u);
  EXPECT_EQ(solver.stats().tables_reused, 2u);
  // A second identical batch is served entirely from the cache.
  solver.solve(jobs);
  EXPECT_EQ(solver.stats().tables_built, 4u);
  EXPECT_EQ(solver.stats().tables_reused, 8u);
  EXPECT_EQ(solver.stats().jobs_solved, 2 * jobs.size());
}

TEST(BatchSolver, ReleaseScratchThenResolveReproducesResults) {
  const auto jobs = mixed_batch();
  BatchSolver solver;
  const auto before = solver.solve(jobs);
  EXPECT_GT(solver.resident_bytes(), 0u);

  const std::size_t freed = solver.release_scratch();
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(solver.stats().released_bytes, freed);
  // The table cache is empty and the solver arenas hold no memory.
  EXPECT_EQ(solver.resident_bytes(), util::arena_resident_bytes());
  EXPECT_EQ(util::arena_resident_bytes(), 0u);

  const auto after = solver.solve(jobs);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(after[i].expected_makespan, before[i].expected_makespan) << i;
    EXPECT_EQ(after[i].plan, before[i].plan) << i;
  }
  // The re-solve rebuilt the four distinct tables from scratch.
  EXPECT_EQ(solver.stats().tables_built, 8u);
}

TEST(BatchSolver, RowlessEntryIsUpgradedWhenAdmvJoins) {
  // Same (chain, platform) key first without, then with an ADMV job:
  // the cache entry is rebuilt with row tables, and the non-ADMV job
  // still matches its standalone result exactly.
  const auto chain = chain::make_uniform(25, 25000.0);
  const platform::CostModel costs{platform::hera()};
  BatchSolver solver;
  solver.solve({{Algorithm::kADVstar, chain, costs}});
  EXPECT_EQ(solver.stats().tables_built, 1u);
  const auto mixed = solver.solve({{Algorithm::kADMV, chain, costs},
                                   {Algorithm::kADVstar, chain, costs}});
  EXPECT_EQ(solver.stats().tables_built, 2u);  // rebuilt with rows
  const auto adv = optimize(Algorithm::kADVstar, chain, costs);
  const auto admv = optimize(Algorithm::kADMV, chain, costs);
  EXPECT_EQ(mixed[0].expected_makespan, admv.expected_makespan);
  EXPECT_EQ(mixed[0].plan, admv.plan);
  EXPECT_EQ(mixed[1].expected_makespan, adv.expected_makespan);
  EXPECT_EQ(mixed[1].plan, adv.plan);
}

TEST(BatchSolver, JobsDifferingOnlyInCheckpointCostsShareTables) {
  // The coefficient tables read weights, error rates, and verification
  // costs only; checkpoint/recovery costs and recall enter per job at
  // solve time.  A checkpoint-price sweep must therefore share one table
  // pair -- and still solve each job under its own cost model.
  const auto chain = chain::make_uniform(30, 25000.0);
  platform::Platform pricey = platform::hera();
  pricey.c_disk *= 10.0;
  pricey.r_disk = pricey.c_disk;
  const platform::CostModel cheap_costs{platform::hera()};
  const platform::CostModel pricey_costs{pricey};
  BatchSolver solver;
  const auto results =
      solver.solve({{Algorithm::kADVstar, chain, cheap_costs},
                    {Algorithm::kADVstar, chain, pricey_costs}});
  EXPECT_EQ(solver.stats().tables_built, 1u);
  EXPECT_EQ(solver.stats().tables_reused, 1u);
  const auto cheap_alone = optimize(Algorithm::kADVstar, chain, cheap_costs);
  const auto pricey_alone =
      optimize(Algorithm::kADVstar, chain, pricey_costs);
  EXPECT_EQ(results[0].expected_makespan, cheap_alone.expected_makespan);
  EXPECT_EQ(results[0].plan, cheap_alone.plan);
  EXPECT_EQ(results[1].expected_makespan, pricey_alone.expected_makespan);
  EXPECT_EQ(results[1].plan, pricey_alone.plan);
  EXPECT_NE(results[0].expected_makespan, results[1].expected_makespan);
}

TEST(BatchSolver, EmptyBatchAndEmptyChainEdgeCases) {
  BatchSolver solver;
  EXPECT_TRUE(solver.solve({}).empty());
  EXPECT_THROW(solver.solve({{Algorithm::kADVstar, chain::TaskChain{},
                              platform::CostModel{platform::hera()}}}),
               std::invalid_argument);
}

TEST(BatchSolver, ThreadCountDoesNotChangeResults) {
  const auto jobs = mixed_batch();
  BatchSolver solver;
  const auto baseline = solver.solve(jobs);
  for (int threads : {1, 7}) {
    util::set_parallelism(threads);
    BatchSolver other;
    const auto results = other.solve(jobs);
    util::set_parallelism(0);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(results[i].expected_makespan, baseline[i].expected_makespan)
          << "threads=" << threads << " job=" << i;
      EXPECT_EQ(results[i].plan, baseline[i].plan)
          << "threads=" << threads << " job=" << i;
    }
  }
}

}  // namespace
}  // namespace chainckpt::core
